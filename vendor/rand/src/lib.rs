//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no registry access, so the workspace ships
//! the slice of `rand` it actually uses: [`Rng`]/[`RngCore`]/[`SeedableRng`],
//! a deterministic [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64),
//! uniform [`distributions`], and [`seq::SliceRandom::shuffle`]. Streams
//! are deterministic per seed but are *not* the upstream `StdRng` streams;
//! everything in-repo seeds explicitly, so only reproducibility within
//! this codebase matters.

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the [`distributions::Standard`]
    /// distribution (floats in `[0, 1)`, full-range integers, fair bools).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Sample a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from explicit seeds.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into the full seed
        // buffer, mirroring upstream's `seed_from_u64` construction.
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state is the one degenerate orbit of xoshiro.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }
}

pub mod distributions {
    use super::Rng;

    /// Types that can produce samples of `T` given a generator.
    pub trait Distribution<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution per type: `[0, 1)` floats, full-range
    /// integers, fair coin bools.
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits → uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Uniform distribution over `[lo, hi)`.
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl<T: Copy + PartialOrd> Uniform<T> {
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo < hi, "Uniform::new called with empty range");
            Uniform { lo, hi }
        }
    }

    impl<T: uniform::SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_half_open(self.lo, self.hi, rng)
        }
    }

    pub mod uniform {
        use super::super::Rng;

        /// Primitive types that support uniform range sampling.
        pub trait SampleUniform: Copy + PartialOrd {
            fn sample_half_open<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
            fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
        }

        macro_rules! uniform_float {
            ($($t:ty => $gen:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_half_open<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                        let unit: $gen =
                            super::Distribution::sample(&super::Standard, rng);
                        lo + unit as $t * (hi - lo)
                    }
                    fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                        Self::sample_half_open(lo, hi, rng)
                    }
                }
            )*};
        }
        uniform_float!(f32 => f32, f64 => f64);

        macro_rules! uniform_int {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_half_open<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                        assert!(lo < hi, "gen_range called with empty range");
                        let span = (hi as i128 - lo as i128) as u128;
                        let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                        (lo as i128 + draw as i128) as $t
                    }
                    fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                        assert!(lo <= hi, "gen_range called with empty inclusive range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                        (lo as i128 + draw as i128) as $t
                    }
                }
            )*};
        }
        uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        /// Range arguments accepted by [`Rng::gen_range`](super::super::Rng::gen_range).
        pub trait SampleRange<T> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
                T::sample_half_open(self.start, self.end, rng)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
                T::sample_inclusive(*self.start(), *self.end(), rng)
            }
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling (Fisher–Yates), the only `seq` API the workspace uses.
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let u = rng.gen_range(0usize..=3);
            assert!(u <= 3);
            let f = rng.gen_range(2.0f64..4.0);
            assert!((2.0..4.0).contains(&f));
        }
    }

    #[test]
    fn uniform_distribution_samples_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let dist = Uniform::new(-1.0f32, 1.0);
        let mean: f32 =
            (0..2000).map(|_| dist.sample(&mut rng)).sum::<f32>() / 2000.0;
        assert!(mean.abs() < 0.1, "uniform mean {mean} should be near 0");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }
}
