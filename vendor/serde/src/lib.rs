//! Offline vendored serde facade.
//!
//! The registry is unreachable in this build environment, so the
//! workspace ships a *value-based* serialization core instead of real
//! serde: types convert to and from a self-describing [`Value`] tree and
//! format crates (the vendored `serde_json`) render that tree. This
//! keeps call sites (`serde_json::to_string` / `from_str`) and trait
//! names (`Serialize` / `Deserialize`) stable while avoiding proc
//! macros entirely.

use std::fmt;

/// Self-describing data tree — the interchange format between
/// `Serialize`/`Deserialize` impls and format crates.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered map (JSON object).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Deserialization failure: a human-readable description of the mismatch.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }

    fn expected(want: &str, got: &Value) -> Self {
        DeError(format!("expected {want}, found {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// `serde::de::Error`-compatible alias so existing `use serde::de` paths
/// keep working.
pub mod de {
    pub use super::DeError as Error;
}

// ------------------------------------------------------------- primitives

macro_rules! serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                value
                    .as_f64()
                    .map(|n| n as $t)
                    .ok_or_else(|| DeError::expected("number", value))
            }
        }
    )*};
}
serde_float!(f32, f64);

macro_rules! serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value
                    .as_f64()
                    .ok_or_else(|| DeError::expected("number", value))?;
                if n.fract() != 0.0 {
                    return Err(DeError(format!("expected integer, found {n}")));
                }
                Ok(n as $t)
            }
        }
    )*};
}
serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", value))
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String((*self).to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(f32::from_value(&1.5f32.to_value()), Ok(1.5));
        assert_eq!(usize::from_value(&42usize.to_value()), Ok(42));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()), Ok(v));
    }

    #[test]
    fn type_mismatches_error() {
        assert!(f32::from_value(&Value::String("x".into())).is_err());
        assert!(bool::from_value(&Value::Number(1.0)).is_err());
        assert!(u32::from_value(&Value::Number(1.5)).is_err());
        assert!(Vec::<f32>::from_value(&Value::Null).is_err());
    }

    #[test]
    fn object_field_lookup() {
        let obj = Value::Object(vec![
            ("shape".into(), Value::Array(vec![Value::Number(2.0)])),
            ("data".into(), Value::Array(vec![])),
        ]);
        assert!(obj.get("shape").is_some());
        assert!(obj.get("missing").is_none());
        assert_eq!(Value::Null.get("shape"), None);
    }
}
