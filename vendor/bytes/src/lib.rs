//! Offline vendored subset of the `bytes` crate: [`Bytes`], [`BytesMut`],
//! and the little-endian [`Buf`]/[`BufMut`] accessors the GTRF raster
//! container uses. Backed by plain `Vec<u8>`/`Arc` storage — no
//! zero-copy slicing tricks, which the workspace does not need.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable shared byte buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    pub fn from_vec(data: Vec<u8>) -> Self {
        Bytes { data: Arc::new(data) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes::from_vec(data)
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Little-endian write accessors.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Little-endian read accessors over an advancing cursor.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dest: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut buf = [0u8; 1];
        self.copy_to_slice(&mut buf);
        buf[0]
    }
    fn get_u16_le(&mut self) -> u16 {
        let mut buf = [0u8; 2];
        self.copy_to_slice(&mut buf);
        u16::from_le_bytes(buf)
    }
    fn get_u32_le(&mut self) -> u32 {
        let mut buf = [0u8; 4];
        self.copy_to_slice(&mut buf);
        u32::from_le_bytes(buf)
    }
    fn get_u64_le(&mut self) -> u64 {
        let mut buf = [0u8; 8];
        self.copy_to_slice(&mut buf);
        u64::from_le_bytes(buf)
    }
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dest: &mut [u8]) {
        assert!(
            dest.len() <= self.len(),
            "buffer underflow: need {} bytes, have {}",
            dest.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dest.len());
        dest.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u16_le(7);
        buf.put_u32_le(0xDEADBEEF);
        buf.put_u64_le(u64::MAX - 3);
        buf.put_f32_le(-1.25);
        buf.put_f64_le(6.02e23);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u16_le(), 7);
        assert_eq!(cursor.get_u32_le(), 0xDEADBEEF);
        assert_eq!(cursor.get_u64_le(), u64::MAX - 3);
        assert_eq!(cursor.get_f32_le(), -1.25);
        assert_eq!(cursor.get_f64_le(), 6.02e23);
        let mut tail = [0u8; 2];
        cursor.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn cursor_advances_and_reports_remaining() {
        let data = [1u8, 2, 3, 4, 5];
        let mut cursor: &[u8] = &data;
        assert_eq!(cursor.remaining(), 5);
        assert_eq!(cursor.get_u8(), 1);
        assert_eq!(cursor.remaining(), 4);
        assert_eq!(cursor.get_u32_le(), u32::from_le_bytes([2, 3, 4, 5]));
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1, 2];
        cursor.get_u32_le();
    }

    #[test]
    fn bytes_slices_and_indexes() {
        let b = Bytes::from_vec(vec![9, 8, 7, 6]);
        assert_eq!(b.len(), 4);
        assert_eq!(&b[..2], &[9, 8]);
        assert_eq!(b.to_vec(), vec![9, 8, 7, 6]);
    }
}
