//! Offline vendored property-testing harness.
//!
//! Mirrors the slice of the `proptest` API this workspace uses: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! range/tuple/`vec` strategies, `prop_map`/`prop_flat_map`,
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`], `any::<T>()`,
//! and [`TestCaseError`]. Differences from upstream: cases are generated
//! from a fixed per-test seed (deterministic across runs, no `PROPTEST_`
//! env handling) and failing inputs are reported without shrinking.

use std::fmt::Debug;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic per-test random source handed to strategies.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeded from an FNV-1a hash of the fully qualified test name, so
    /// every test owns a stable, independent stream.
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        TestRng { inner: StdRng::seed_from_u64(hash) }
    }

    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// Input did not satisfy a `prop_assume!` precondition; the case is
    /// retried with fresh input rather than counted as a failure.
    Reject(String),
    /// A property assertion failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Per-test run configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Derive a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B: Strategy, O, F: Fn(B::Value) -> O> Strategy for Map<B, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<B, F> {
    base: B,
    f: F,
}

impl<B: Strategy, S: Strategy, F: Fn(B::Value) -> S> Strategy for FlatMap<B, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "generate anything" strategy ([`any`]).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen()
    }
}

macro_rules! arbitrary_via_full_range {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng().gen()
            }
        }
    )*};
}
arbitrary_via_full_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy form of [`Arbitrary`]; returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification: a fixed size or a (half-open/inclusive) range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy yielding vectors of `element` with lengths from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng
                .rng()
                .gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec(..)` resolves.
pub mod prop {
    pub use super::collection;
}

/// Everything the `proptest!` test files import.
pub mod prelude {
    pub use super::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume,
        proptest, Any, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Run one generated case body; used by the [`proptest!`] expansion.
#[doc(hidden)]
pub fn run_cases(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::for_test(name);
    let mut passed = 0u32;
    let mut attempts = 0u32;
    let max_attempts = config.cases.saturating_mul(20).max(100);
    while passed < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "{name}: too many rejected cases ({attempts} attempts for {} passes)",
            passed
        );
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed on case {attempts}: {msg}")
            }
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let test_name = concat!(module_path!(), "::", stringify!($name));
                $crate::run_cases(&config, test_name, |__proptest_rng| {
                    let ($($p,)+) = (
                        $($crate::Strategy::generate(&($s), __proptest_rng),)+
                    );
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..200 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let y = (1usize..=4).generate(&mut rng);
            assert!((1..=4).contains(&y));
            let f = (-2.0f32..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_obeys_size_specs() {
        let mut rng = TestRng::for_test("vecs");
        for _ in 0..100 {
            let fixed = collection::vec(0.0f32..1.0, 7).generate(&mut rng);
            assert_eq!(fixed.len(), 7);
            let ranged = collection::vec(0u32..10, 1..5).generate(&mut rng);
            assert!((1..5).contains(&ranged.len()));
            let inclusive = collection::vec(0u32..10, 2..=3).generate(&mut rng);
            assert!((2..=3).contains(&inclusive.len()));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::for_test("compose");
        let strat = (1usize..4).prop_flat_map(|n| {
            collection::vec(0.0f32..1.0, n..=n).prop_map(move |v| (n, v))
        });
        for _ in 0..50 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a: Vec<u64> = {
            let mut rng = TestRng::for_test("det");
            (0..10).map(|_| (0u64..1000).generate(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::for_test("det");
            (0..10).map(|_| (0u64..1000).generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn macro_binds_parameters(x in 0u32..50, mut v in collection::vec(0i64..5, 1..4)) {
            prop_assert!(x < 50);
            v.push(3);
            prop_assert!(v.len() >= 2);
            prop_assert_eq!(*v.last().unwrap(), 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_honours_config_and_assume(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics() {
        run_inner();
    }

    proptest! {
        #[test]
        fn tuple_strategies_work((a, b) in (0u32..10, 10u32..20)) {
            prop_assert!(a < 10 && (10..20).contains(&b));
        }
    }

    fn run_inner() {
        crate::run_cases(
            &ProptestConfig::with_cases(4),
            "inner",
            |_rng| Err(TestCaseError::fail("intentional")),
        );
    }
}
