//! Offline vendored JSON format crate over the vendored serde facade.
//!
//! Implements exactly the API surface the workspace calls —
//! [`to_string`] / [`from_str`] with a string-rendering [`Error`] — on
//! top of [`serde::Value`]. Numbers are emitted via Rust's shortest
//! round-trip float formatting, so `f32` tensor payloads survive a
//! JSON round trip bit-exactly (f32 → f64 is exact, and the f64 prints
//! and re-parses to the same value).

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// JSON encode/decode failure.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parse a JSON string into `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse(input)?;
    Ok(T::from_value(&value)?)
}

// --------------------------------------------------------------- writer

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    use fmt::Write;
    if n.is_finite() {
        // JSON has no NaN/Inf; finite values print shortest round-trip.
        write!(out, "{n}").expect("write to String");
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(Error(format!(
                "unexpected byte '{}' at {}",
                b as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".into())),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid codepoint".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v = Value::Object(vec![
            ("shape".into(), Value::Array(vec![Value::Number(2.0), Value::Number(3.0)])),
            (
                "data".into(),
                Value::Array(vec![
                    Value::Number(-1.5),
                    Value::Number(0.1),
                    Value::Number(1e-7),
                ]),
            ),
            ("name".into(), Value::String("t\"x\\\n".into())),
            ("flag".into(), Value::Bool(true)),
            ("nothing".into(), Value::Null),
        ]);
        let json = to_string(&v).unwrap();
        let back: Value = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn f32_payloads_round_trip_exactly() {
        let xs: Vec<f32> = vec![0.1, -3.25, 1e-30, 1234567.8, f32::MIN_POSITIVE];
        let json = to_string(&xs).unwrap();
        let back: Vec<f32> = from_str(&json).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("[1] trailing").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Vec<f32>>("{\"not\": \"an array\"}").is_err());
    }

    #[test]
    fn whitespace_tolerant() {
        let v: Vec<u32> = from_str(" [ 1 , 2 , 3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn error_display_is_usable() {
        let err = from_str::<Value>("[").unwrap_err();
        assert!(!err.to_string().is_empty());
    }
}
