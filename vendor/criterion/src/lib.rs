//! Offline vendored micro-benchmark harness.
//!
//! Keeps the `criterion` 0.5 call surface the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`criterion_group!`]/[`criterion_main!`] — while
//! replacing the statistics engine with a simple warmup + median-of-N
//! timer that prints one line per benchmark. Honors a substring filter
//! argument (as `cargo bench -- <filter>` passes) and ignores the rest
//! of criterion's CLI flags.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_id.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Top-level harness state.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Parse the benchmark binary's CLI arguments: the first
    /// non-flag argument is a substring filter; criterion's own flags
    /// are accepted and ignored.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                // Flags that take a value in real criterion.
                "--sample-size" | "--warm-up-time" | "--measurement-time"
                | "--save-baseline" | "--baseline" | "--load-baseline"
                | "--output-format" | "--color" | "--profile-time" => {
                    args.next();
                }
                s if s.starts_with("--") => {}
                s => self.filter = Some(s.to_owned()),
            }
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.to_string(), |bencher| routine(bencher));
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut routine: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |bencher| routine(bencher, input));
    }

    pub fn finish(self) {}

    fn run(&mut self, id: &str, mut routine: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        routine(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            return;
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let lo = samples[0];
        let hi = samples[samples.len() - 1];
        println!(
            "{full:<60} time: [{} {} {}]",
            format_duration(lo),
            format_duration(median),
            format_duration(hi)
        );
    }
}

/// Timing driver passed to each benchmark routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup + calibration: time one call, then pick an iteration
        // count putting each sample in the ~2ms range so cheap routines
        // are not measured at timer resolution.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let iters = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut group_samples = 0;
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::new("work", 1), &1, |bench, _| {
            bench.iter(|| black_box(2 + 2));
            group_samples = bench.samples.len();
        });
        group.finish();
        assert_eq!(group_samples, 5);
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut ran = false;
        let mut criterion = Criterion { filter: Some("other".into()) };
        let mut group = criterion.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(3), &3, |bench, _| {
            ran = true;
            bench.iter(|| ());
        });
        group.finish();
        assert!(!ran, "filtered-out benchmark must not run");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("blocked", 64).to_string(), "blocked/64");
        assert_eq!(BenchmarkId::from_parameter("4x4").to_string(), "4x4");
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(format_duration(Duration::from_nanos(12)).contains("ns"));
        assert!(format_duration(Duration::from_micros(12)).contains("µs"));
        assert!(format_duration(Duration::from_millis(12)).contains("ms"));
        assert!(format_duration(Duration::from_secs(2)).contains(" s"));
    }
}
