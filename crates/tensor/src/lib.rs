//! # geotorch-tensor
//!
//! Dense, contiguous `f32` tensors and the compute kernels that power the
//! GeoTorch-RS deep-learning stack.
//!
//! This crate stands in for the tensor core of PyTorch in the GeoTorchAI
//! reproduction: it provides an n-dimensional array type with NumPy-style
//! broadcasting, reductions, matrix multiplication, and the convolution /
//! pooling kernels needed by the neural-network layers in `geotorch-nn`.
//!
//! ## Design notes
//!
//! * Tensors are always **contiguous** in row-major order. Axis-reordering
//!   views (`transpose`, `permute`) materialise a new buffer; this keeps
//!   every kernel simple and cache-friendly at the cost of some copies.
//!   Pure re-labelings (`reshape`, `squeeze`, `unsqueeze`, `flatten`) are
//!   zero-copy metadata moves sharing the storage `Arc`.
//! * Storage is an `Arc`-shared, pooled [`pool::Buffer`] with
//!   copy-on-write: cloning a tensor is O(1), in-place ops mutate
//!   directly when the buffer is uniquely held and copy otherwise, and
//!   freed buffers are recycled through a size-class [`pool`] (the
//!   caching-allocator analogue) so hot loops stay off the heap.
//! * The execution backend is selected through [`Device`]: `Device::Cpu`
//!   runs kernels on the calling thread, `Device::parallel()` fans heavy
//!   kernels (matmul, conv, pooling, reductions, softmax, large elementwise
//!   ops and the backward passes) out across a persistent worker pool that
//!   is woken per dispatch instead of spawning threads per call — see
//!   [`device`] for the pool design. In the paper's experiments this models
//!   the GPU-vs-CPU axis.
//! * Shape errors are programming errors and **panic** with descriptive
//!   messages, mirroring the behaviour of `ndarray` and PyTorch's eager
//!   mode. Fallible, data-dependent APIs live in the higher-level crates.
//!
//! ## Example
//!
//! ```
//! use geotorch_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::ones(&[2, 2]);
//! let c = a.matmul(&b);
//! assert_eq!(c.shape(), &[2, 2]);
//! assert_eq!(c.as_slice(), &[3.0, 3.0, 7.0, 7.0]);
//! ```

#![warn(missing_docs)]

pub mod device;
pub mod ops;
pub mod pool;
mod tensor;

pub use device::{parallel_map, with_device, worker_pool_size, Device, PARALLEL_THRESHOLD};
pub use tensor::Tensor;

/// Row-major strides (in elements) for a shape.
///
/// The last axis always has stride 1; an empty shape yields no strides.
pub fn strides_for(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![0; shape.len()];
    let mut acc = 1usize;
    for (s, &dim) in strides.iter_mut().zip(shape.iter()).rev() {
        *s = acc;
        acc *= dim;
    }
    strides
}

/// Total number of elements implied by a shape.
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(strides_for(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides_for(&[5]), vec![1]);
        assert_eq!(strides_for(&[]), Vec::<usize>::new());
    }

    #[test]
    fn numel_products() {
        assert_eq!(numel(&[2, 3, 4]), 24);
        assert_eq!(numel(&[]), 1);
        assert_eq!(numel(&[0, 3]), 0);
    }
}
