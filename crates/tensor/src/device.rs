//! Execution-device selection and the persistent data-parallel worker pool.
//!
//! GeoTorchAI's evaluation compares CPU against GPU training. This
//! reproduction has no GPU, so the same axis is modelled as *serial* versus
//! *data-parallel multicore* execution: [`Device::Cpu`] runs every kernel on
//! the calling thread, while [`Device::Parallel`] fans heavy kernels out
//! across a **persistent worker pool**. The substitution preserves the
//! property under test (a data-parallel backend amortises per-sample work),
//! which is what Figure 9 of the paper measures.
//!
//! # The worker pool
//!
//! Parallel dispatch used to spawn `n` fresh OS threads per kernel call,
//! which priced small kernels out of the parallel path entirely. Instead,
//! a process-wide pool is initialized lazily on the first parallel
//! dispatch and reused for every subsequent one:
//!
//! - **Sizing.** `Device::Parallel(n)` requests `n`-way splitting; the pool
//!   grows on demand to the largest concurrent demand it has seen, capped
//!   at [`MAX_POOL_WORKERS`]. Workers are plain parked threads — idle cost
//!   is one blocked thread each, no spinning.
//! - **Dispatch.** [`parallel_for`] splits `0..tasks` into contiguous
//!   ranges, *claims* idle workers with a lock-free flag, hands each one a
//!   range, and runs the first range (plus any range it could not claim a
//!   worker for) inline on the calling thread. Claimed workers are woken by
//!   a condvar; dispatch cost is a wakeup, not a thread spawn.
//! - **Nesting / deadlock freedom.** Claiming never blocks: if every worker
//!   is busy (for example inside a nested `parallel_for`, or when several
//!   trainer threads dispatch concurrently) the caller simply runs all
//!   ranges serially. Worker threads themselves default to [`Device::Cpu`],
//!   so kernels nested inside a parallel region stay serial rather than
//!   re-entering the pool.
//! - **Panics.** A panicking kernel closure is caught on the worker, the
//!   dispatch drains normally, and the payload is re-thrown on the calling
//!   thread. Workers survive panics and return to the idle set, so the pool
//!   stays usable for the next dispatch.
//!
//! Elementwise kernels guard the parallel path with
//! [`PARALLEL_THRESHOLD`]: tensors with fewer elements than the
//! threshold stay serial because even a wakeup costs more than the work
//! itself. The blocked GEMM and the conv lowerings carry their own
//! flop-based cutoffs instead (`ops::matmul::GEMM_PARALLEL_FLOPS`,
//! `ops::conv::CONV_PARALLEL_FLOPS`) — for those kernels the work per
//! element scales with the inner/kernel dimensions, so an element count
//! is the wrong predictor of when fan-out pays off.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Where tensor kernels execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Device {
    /// Serial execution on the calling thread (the paper's "CPU").
    Cpu,
    /// Data-parallel execution over `n` pool workers (the paper's "GPU").
    Parallel(usize),
}

impl Device {
    /// A parallel device sized to the machine's available cores.
    pub fn parallel() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Device::Parallel(n.max(1))
    }

    /// Number of ways this device splits a kernel (caller + pool workers).
    pub fn threads(self) -> usize {
        match self {
            Device::Cpu => 1,
            Device::Parallel(n) => n.max(1),
        }
    }

    /// The device kernels on the current thread will use.
    pub fn current() -> Self {
        CURRENT.with(|c| c.get())
    }

    /// Set the device for the current thread (prefer [`with_device`]).
    pub fn set_current(device: Device) {
        CURRENT.with(|c| c.set(device));
    }
}

thread_local! {
    static CURRENT: Cell<Device> = const { Cell::new(Device::Cpu) };
}

/// Run `f` with `device` as the current execution device, restoring the
/// previous device afterwards (also on panic).
pub fn with_device<T>(device: Device, f: impl FnOnce() -> T) -> T {
    struct Restore(Device);
    impl Drop for Restore {
        fn drop(&mut self) {
            Device::set_current(self.0);
        }
    }
    let _restore = Restore(Device::current());
    Device::set_current(device);
    f()
}

/// A raw `*mut T` that may cross thread boundaries. Only for writes to
/// provably disjoint regions inside this crate's kernels.
pub(crate) struct SendPtr<T = f32>(pub *mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

/// Minimum number of elements before elementwise kernels bother going
/// parallel; below this the dispatch overhead dominates. Matmul and
/// conv use per-kernel flop thresholds instead (see module docs).
pub const PARALLEL_THRESHOLD: usize = 16 * 1024;

/// Hard cap on pool size; demand beyond this runs inline on callers.
pub const MAX_POOL_WORKERS: usize = 64;

// ------------------------------------------------------------------ pool

/// A contiguous range of task indices plus the (lifetime-erased) kernel
/// closure to run it with and the dispatch to report back to.
struct Job {
    f: &'static (dyn Fn(usize) + Sync),
    start: usize,
    end: usize,
    dispatch: Arc<Dispatch>,
}

/// Per-dispatch completion accounting shared by caller and workers.
struct Dispatch {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

impl Dispatch {
    fn new(jobs: usize) -> Self {
        Dispatch {
            remaining: Mutex::new(jobs),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn finish_one(&self) {
        let mut remaining = lock(&self.remaining);
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = lock(&self.remaining);
        while *remaining > 0 {
            remaining = self
                .done
                .wait(remaining)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// One parked pool thread: a claim flag plus a condvar-guarded job slot.
struct Worker {
    /// `true` while a dispatcher owns this worker or it is running a job.
    claimed: AtomicBool,
    slot: Mutex<Option<Job>>,
    wake: Condvar,
    /// Telemetry accumulator for this worker's busy (job-running) time.
    busy: &'static geotorch_telemetry::Stat,
}

impl Worker {
    fn run(self: Arc<Self>) {
        loop {
            let job = {
                let mut slot = lock(&self.slot);
                loop {
                    if let Some(job) = slot.take() {
                        break job;
                    }
                    slot = self.wake.wait(slot).unwrap_or_else(|e| e.into_inner());
                }
            };
            let busy_since = geotorch_telemetry::enabled().then(std::time::Instant::now);
            let result = catch_unwind(AssertUnwindSafe(|| {
                for i in job.start..job.end {
                    (job.f)(i);
                }
            }));
            if let Some(start) = busy_since {
                self.busy.record_ns(start.elapsed().as_nanos() as u64);
            }
            if let Err(payload) = result {
                let mut panic = lock(&job.dispatch.panic);
                // First panic wins; later ones are dropped like in
                // `std::thread::scope`.
                panic.get_or_insert(payload);
            }
            // Return to the idle set *before* signalling completion so a
            // dispatch that immediately follows can re-claim this worker.
            self.claimed.store(false, Ordering::Release);
            job.dispatch.finish_one();
        }
    }

    fn submit(&self, job: Job) {
        let mut slot = lock(&self.slot);
        debug_assert!(slot.is_none(), "claimed worker already has a job");
        *slot = Some(job);
        self.wake.notify_one();
    }
}

/// The process-wide worker set. Grows lazily, never shrinks.
struct Pool {
    workers: Mutex<Vec<Arc<Worker>>>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool { workers: Mutex::new(Vec::new()) })
}

impl Pool {
    /// Claim up to `want` idle workers, spawning new ones while under the
    /// cap. Never blocks on busy workers — may return fewer than `want`
    /// (including zero), in which case the caller runs those ranges inline.
    fn claim(&self, want: usize) -> Vec<Arc<Worker>> {
        let mut claimed = Vec::with_capacity(want);
        let mut workers = lock(&self.workers);
        for worker in workers.iter() {
            if claimed.len() == want {
                break;
            }
            if worker
                .claimed
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                claimed.push(Arc::clone(worker));
            }
        }
        while claimed.len() < want && workers.len() < MAX_POOL_WORKERS {
            let worker = Arc::new(Worker {
                claimed: AtomicBool::new(true),
                slot: Mutex::new(None),
                wake: Condvar::new(),
                busy: geotorch_telemetry::register_dynamic(format!(
                    "device.pool.worker{}.busy",
                    workers.len()
                )),
            });
            let handle = Arc::clone(&worker);
            std::thread::Builder::new()
                .name(format!("geotorch-pool-{}", workers.len()))
                .spawn(move || handle.run())
                .expect("spawn pool worker");
            workers.push(Arc::clone(&worker));
            claimed.push(worker);
        }
        claimed
    }

    fn size(&self) -> usize {
        lock(&self.workers).len()
    }
}

/// Number of worker threads the pool has spawned so far (diagnostics;
/// the count only grows, proving dispatches reuse workers).
pub fn worker_pool_size() -> usize {
    pool().size()
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// Fan `f` out over `ways` contiguous ranges of `0..tasks` using the pool.
/// Blocks until every range has completed; panics from `f` (on any thread)
/// are re-thrown here after the dispatch has fully drained.
fn pool_dispatch(tasks: usize, ways: usize, f: &(dyn Fn(usize) + Sync)) {
    let chunk = tasks.div_ceil(ways);
    let ranges: Vec<(usize, usize)> = (0..ways)
        .map(|t| (t * chunk, ((t + 1) * chunk).min(tasks)))
        .filter(|(start, end)| start < end)
        .collect();
    // The caller always keeps the first range for itself, so a dispatch
    // costs at most `ranges - 1` wakeups and zero thread spawns.
    let workers = pool().claim(ranges.len() - 1);
    let inline = ranges.len() - workers.len();
    geotorch_telemetry::count!("device.pool.dispatches", 1);
    geotorch_telemetry::count!("device.pool.tasks", tasks);
    // Ranges beyond the caller's own first range that found no idle worker
    // and fell back to inline execution.
    geotorch_telemetry::count!("device.pool.inline_fallbacks", inline.saturating_sub(1));
    let dispatch = Arc::new(Dispatch::new(workers.len()));
    // SAFETY: the erased closure reference only lives in `Job`s belonging
    // to this dispatch, and this function does not return before `wait()`
    // has observed every job finished — the borrow of `f` outlives all use.
    let erased: &'static (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(f) };
    for (worker, &(start, end)) in workers.iter().zip(&ranges[inline..]) {
        worker.submit(Job { f: erased, start, end, dispatch: Arc::clone(&dispatch) });
    }
    let inline_result = catch_unwind(AssertUnwindSafe(|| {
        for &(start, end) in &ranges[..inline] {
            for i in start..end {
                f(i);
            }
        }
    }));
    dispatch.wait();
    let worker_panic = lock(&dispatch.panic).take();
    if let Err(payload) = inline_result {
        resume_unwind(payload);
    }
    if let Some(payload) = worker_panic {
        resume_unwind(payload);
    }
}

/// Run `f(task_index)` for every index in `0..tasks`, fanned out over the
/// current device's share of the worker pool. Tasks are distributed in
/// contiguous ranges; `f` must be safe to call concurrently for distinct
/// indices.
pub fn parallel_for(tasks: usize, f: impl Fn(usize) + Sync) {
    let ways = Device::current().threads().min(tasks.max(1));
    if ways <= 1 || tasks <= 1 {
        for i in 0..tasks {
            f(i);
        }
        return;
    }
    pool_dispatch(tasks, ways, &f);
}

/// Run `f(task_index)` for every index in `0..tasks` on the current
/// device's share of the worker pool, collecting the results in index
/// order. The safe sibling of [`parallel_for`] for fan-out that produces a
/// value per task (e.g. per-batch-sample gradients).
pub fn parallel_map<T: Send>(tasks: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let mut out: Vec<std::mem::MaybeUninit<T>> = Vec::with_capacity(tasks);
    out.resize_with(tasks, std::mem::MaybeUninit::uninit);
    let base = SendPtr(out.as_mut_ptr());
    let base = &base;
    parallel_for(tasks, move |i| {
        // SAFETY: each task writes exactly its own slot. If a task panics the
        // dispatch drains and rethrows; initialised slots leak (MaybeUninit
        // never drops), which is safe.
        unsafe { base.0.add(i).write(std::mem::MaybeUninit::new(f(i))) };
    });
    // SAFETY: parallel_for returned normally, so every slot is initialised;
    // MaybeUninit<T> has the same layout as T.
    let mut out = std::mem::ManuallyDrop::new(out);
    unsafe { Vec::from_raw_parts(out.as_mut_ptr() as *mut T, out.len(), out.capacity()) }
}

/// Apply `f` to contiguous chunks of `out`, in parallel on the current
/// device. `f` receives the element offset of the chunk and the chunk
/// itself. Chunks are at least `min_chunk` elements, so slices smaller
/// than `2 * min_chunk` stay on the calling thread.
pub fn parallel_chunks_mut(out: &mut [f32], min_chunk: usize, f: impl Fn(usize, &mut [f32]) + Sync) {
    let ways = Device::current().threads();
    let len = out.len();
    if ways <= 1 || len < min_chunk.max(1) * 2 {
        f(0, out);
        return;
    }
    let chunk = len.div_ceil(ways).max(min_chunk);
    let chunks = len.div_ceil(chunk);
    let base = SendPtr(out.as_mut_ptr());
    let base = &base;
    parallel_for(chunks, move |i| {
        let start = i * chunk;
        let end = ((i + 1) * chunk).min(len);
        // SAFETY: chunk ranges are disjoint and in-bounds for `out`, which
        // outlives the dispatch (parallel_for blocks until completion).
        let part = unsafe { std::slice::from_raw_parts_mut(base.0.add(start), end - start) };
        f(start, part);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn default_device_is_cpu() {
        assert_eq!(Device::current(), Device::Cpu);
    }

    #[test]
    fn with_device_restores() {
        assert_eq!(Device::current(), Device::Cpu);
        with_device(Device::Parallel(4), || {
            assert_eq!(Device::current(), Device::Parallel(4));
            with_device(Device::Cpu, || {
                assert_eq!(Device::current(), Device::Cpu);
            });
            assert_eq!(Device::current(), Device::Parallel(4));
        });
        assert_eq!(Device::current(), Device::Cpu);
    }

    #[test]
    fn with_device_restores_on_panic() {
        let result = std::panic::catch_unwind(|| {
            with_device(Device::Parallel(2), || panic!("boom"));
        });
        assert!(result.is_err());
        assert_eq!(Device::current(), Device::Cpu);
    }

    #[test]
    fn parallel_for_visits_every_index_once() {
        for device in [Device::Cpu, Device::Parallel(4)] {
            with_device(device, || {
                let hits = AtomicUsize::new(0);
                parallel_for(1000, |_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
                assert_eq!(hits.load(Ordering::Relaxed), 1000);
            });
        }
    }

    #[test]
    fn parallel_for_handles_edge_counts() {
        with_device(Device::Parallel(8), || {
            for tasks in [0usize, 1, 2, 7, 8, 9] {
                let hits = AtomicUsize::new(0);
                parallel_for(tasks, |_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
                assert_eq!(hits.load(Ordering::Relaxed), tasks);
            }
        });
    }

    #[test]
    fn parallel_chunks_cover_whole_slice() {
        with_device(Device::Parallel(4), || {
            let mut data = vec![0.0f32; 100_000];
            parallel_chunks_mut(&mut data, 1024, |offset, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = (offset + i) as f32;
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, i as f32);
            }
        });
    }

    #[test]
    fn device_thread_counts() {
        assert_eq!(Device::Cpu.threads(), 1);
        assert_eq!(Device::Parallel(6).threads(), 6);
        assert_eq!(Device::Parallel(0).threads(), 1);
        assert!(Device::parallel().threads() >= 1);
    }

    #[test]
    fn pool_reuses_workers_across_dispatches() {
        with_device(Device::Parallel(4), || {
            // Warm the pool, then check that repeated dispatches do not
            // grow it: the same parked workers serve every call.
            parallel_for(100, |_| {});
            let size_after_first = worker_pool_size();
            assert!(size_after_first >= 1, "first dispatch must populate the pool");
            for _ in 0..50 {
                parallel_for(100, |_| {});
            }
            assert_eq!(
                worker_pool_size(),
                size_after_first,
                "steady-state dispatches must not spawn threads"
            );
        });
    }

    #[test]
    fn pool_never_exceeds_cap() {
        with_device(Device::Parallel(MAX_POOL_WORKERS * 4), || {
            parallel_for(MAX_POOL_WORKERS * 8, |_| {});
            assert!(worker_pool_size() <= MAX_POOL_WORKERS);
        });
    }

    #[test]
    fn panic_propagates_and_pool_stays_usable() {
        with_device(Device::Parallel(4), || {
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                parallel_for(1000, |i| {
                    if i == 977 {
                        panic!("kernel exploded on task {i}");
                    }
                });
            }));
            let payload = result.expect_err("panic must reach the caller");
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(msg.contains("kernel exploded"), "payload: {msg}");

            // The pool must keep working after the panic: every worker
            // returned to the idle set.
            for _ in 0..10 {
                let hits = AtomicUsize::new(0);
                parallel_for(1000, |_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
                assert_eq!(hits.load(Ordering::Relaxed), 1000);
            }
        });
    }

    #[test]
    fn panic_on_caller_range_still_drains_workers() {
        with_device(Device::Parallel(4), || {
            // Task 0 always lands on the calling thread.
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                parallel_for(1000, |i| {
                    if i == 0 {
                        panic!("inline range panicked");
                    }
                });
            }));
            assert!(result.is_err());
            let hits = AtomicUsize::new(0);
            parallel_for(64, |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 64);
        });
    }

    #[test]
    fn nested_parallel_for_completes() {
        with_device(Device::Parallel(4), || {
            let hits = AtomicUsize::new(0);
            parallel_for(8, |_| {
                // Workers default to Device::Cpu, so this inner call is
                // serial — but it must not deadlock or double-count even
                // when the caller's inline range re-enters parallel_for.
                with_device(Device::Parallel(2), || {
                    parallel_for(16, |_| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                });
            });
            assert_eq!(hits.load(Ordering::Relaxed), 8 * 16);
        });
    }

    #[test]
    fn telemetry_counts_are_exact_under_parallel_dispatch() {
        // Uses a key unique to this test so concurrently running tests
        // (which share the process-global registry) cannot interfere.
        with_device(Device::Parallel(4), || {
            geotorch_telemetry::set_enabled(true);
            for _ in 0..20 {
                parallel_for(250, |_| {
                    geotorch_telemetry::count!("test.device.par_hits", 1);
                });
            }
            geotorch_telemetry::set_enabled(false);
        });
        let snap = geotorch_telemetry::snapshot();
        let hits = snap
            .iter()
            .find(|s| s.name == "test.device.par_hits")
            .expect("counter registered");
        assert_eq!(hits.count, 20 * 250, "no lost or duplicated counts");
        // The dispatch path itself is counted...
        assert!(snap.iter().any(|s| s.name == "device.pool.dispatches" && s.count >= 1));
        // ...and across 20 dispatches of 4 ways, at least one range must
        // have landed on a pool worker and recorded busy time.
        assert!(
            snap.iter()
                .any(|s| s.name.starts_with("device.pool.worker") && s.calls > 0),
            "no worker busy time recorded: {snap:?}"
        );
    }

    #[test]
    fn telemetry_disabled_records_no_pool_stats() {
        // Telemetry defaults to off; a dispatch must leave no trace. Use a
        // reset-free check (other tests may have recorded already): compare
        // the dispatch counter before and after.
        let dispatches = |snap: &[geotorch_telemetry::StatSnapshot]| {
            snap.iter()
                .find(|s| s.name == "device.pool.dispatches")
                .map_or(0, |s| s.count)
        };
        // Only meaningful while telemetry is globally off; if another test
        // in this process has it enabled right now, skip the assertion
        // rather than flake.
        if geotorch_telemetry::enabled() {
            return;
        }
        let before = dispatches(&geotorch_telemetry::snapshot());
        with_device(Device::Parallel(4), || {
            parallel_for(500, |_| {});
        });
        if geotorch_telemetry::enabled() {
            return;
        }
        let after = dispatches(&geotorch_telemetry::snapshot());
        assert_eq!(before, after, "disabled telemetry must not record dispatches");
    }

    #[test]
    fn concurrent_dispatches_from_many_threads() {
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    with_device(Device::Parallel(4), || {
                        for _ in 0..20 {
                            let hits = AtomicUsize::new(0);
                            parallel_for(500, |_| {
                                hits.fetch_add(1, Ordering::Relaxed);
                            });
                            assert_eq!(hits.load(Ordering::Relaxed), 500);
                        }
                    });
                });
            }
        });
    }
}
