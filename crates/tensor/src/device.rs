//! Execution-device selection and the data-parallel helper used by kernels.
//!
//! GeoTorchAI's evaluation compares CPU against GPU training. This
//! reproduction has no GPU, so the same axis is modelled as *serial* versus
//! *data-parallel multicore* execution: [`Device::Cpu`] runs every kernel on
//! the calling thread, while [`Device::Parallel`] splits heavy kernels
//! across a crossbeam scope. The substitution preserves the property under
//! test (a data-parallel backend amortises per-sample work), which is what
//! Figure 9 of the paper measures.

use std::cell::Cell;

/// Where tensor kernels execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Device {
    /// Serial execution on the calling thread (the paper's "CPU").
    Cpu,
    /// Data-parallel execution over `n` worker threads (the paper's "GPU").
    Parallel(usize),
}

impl Device {
    /// A parallel device sized to the machine's available cores.
    pub fn parallel() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Device::Parallel(n.max(1))
    }

    /// Number of worker threads this device fans out to.
    pub fn threads(self) -> usize {
        match self {
            Device::Cpu => 1,
            Device::Parallel(n) => n.max(1),
        }
    }

    /// The device kernels on the current thread will use.
    pub fn current() -> Self {
        CURRENT.with(|c| c.get())
    }

    /// Set the device for the current thread (prefer [`with_device`]).
    pub fn set_current(device: Device) {
        CURRENT.with(|c| c.set(device));
    }
}

thread_local! {
    static CURRENT: Cell<Device> = const { Cell::new(Device::Cpu) };
}

/// Run `f` with `device` as the current execution device, restoring the
/// previous device afterwards (also on panic).
pub fn with_device<T>(device: Device, f: impl FnOnce() -> T) -> T {
    struct Restore(Device);
    impl Drop for Restore {
        fn drop(&mut self) {
            Device::set_current(self.0);
        }
    }
    let _restore = Restore(Device::current());
    Device::set_current(device);
    f()
}

/// A raw `*mut f32` that may cross thread boundaries. Only for writes to
/// provably disjoint regions inside this crate's kernels.
pub(crate) struct SendPtr(pub *mut f32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Minimum number of elements before elementwise kernels bother going
/// parallel; below this the spawn overhead dominates.
pub(crate) const PARALLEL_THRESHOLD: usize = 16 * 1024;

/// Run `f(task_index)` for every index in `0..tasks`, fanned out over the
/// current device's worker threads. Tasks are distributed in contiguous
/// ranges; `f` must be safe to call concurrently for distinct indices.
pub fn parallel_for(tasks: usize, f: impl Fn(usize) + Sync) {
    let threads = Device::current().threads().min(tasks.max(1));
    if threads <= 1 || tasks <= 1 {
        for i in 0..tasks {
            f(i);
        }
        return;
    }
    let chunk = tasks.div_ceil(threads);
    crossbeam::scope(|scope| {
        for t in 0..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(tasks);
            if start >= end {
                break;
            }
            let f = &f;
            scope.spawn(move |_| {
                for i in start..end {
                    f(i);
                }
            });
        }
    })
    .expect("parallel_for worker panicked");
}

/// Apply `f` to equal chunks of `out`, in parallel on the current device.
/// `f` receives the element offset of the chunk and the chunk itself.
pub fn parallel_chunks_mut(out: &mut [f32], min_chunk: usize, f: impl Fn(usize, &mut [f32]) + Sync) {
    let threads = Device::current().threads();
    let len = out.len();
    if threads <= 1 || len < min_chunk * 2 {
        f(0, out);
        return;
    }
    let chunk = len.div_ceil(threads).max(min_chunk);
    crossbeam::scope(|scope| {
        for (idx, part) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move |_| f(idx * chunk, part));
        }
    })
    .expect("parallel_chunks_mut worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn default_device_is_cpu() {
        assert_eq!(Device::current(), Device::Cpu);
    }

    #[test]
    fn with_device_restores() {
        assert_eq!(Device::current(), Device::Cpu);
        with_device(Device::Parallel(4), || {
            assert_eq!(Device::current(), Device::Parallel(4));
            with_device(Device::Cpu, || {
                assert_eq!(Device::current(), Device::Cpu);
            });
            assert_eq!(Device::current(), Device::Parallel(4));
        });
        assert_eq!(Device::current(), Device::Cpu);
    }

    #[test]
    fn with_device_restores_on_panic() {
        let result = std::panic::catch_unwind(|| {
            with_device(Device::Parallel(2), || panic!("boom"));
        });
        assert!(result.is_err());
        assert_eq!(Device::current(), Device::Cpu);
    }

    #[test]
    fn parallel_for_visits_every_index_once() {
        for device in [Device::Cpu, Device::Parallel(4)] {
            with_device(device, || {
                let hits = AtomicUsize::new(0);
                parallel_for(1000, |_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
                assert_eq!(hits.load(Ordering::Relaxed), 1000);
            });
        }
    }

    #[test]
    fn parallel_for_handles_edge_counts() {
        with_device(Device::Parallel(8), || {
            for tasks in [0usize, 1, 2, 7, 8, 9] {
                let hits = AtomicUsize::new(0);
                parallel_for(tasks, |_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
                assert_eq!(hits.load(Ordering::Relaxed), tasks);
            }
        });
    }

    #[test]
    fn parallel_chunks_cover_whole_slice() {
        with_device(Device::Parallel(4), || {
            let mut data = vec![0.0f32; 100_000];
            parallel_chunks_mut(&mut data, 1024, |offset, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = (offset + i) as f32;
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, i as f32);
            }
        });
    }

    #[test]
    fn device_thread_counts() {
        assert_eq!(Device::Cpu.threads(), 1);
        assert_eq!(Device::Parallel(6).threads(), 6);
        assert_eq!(Device::Parallel(0).threads(), 1);
        assert!(Device::parallel().threads() >= 1);
    }
}
