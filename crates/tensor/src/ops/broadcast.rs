//! NumPy-style broadcasting for binary elementwise operations.

use crate::{strides_for, Tensor};

/// Compute the broadcast result shape of two shapes, per NumPy rules:
/// trailing axes are aligned; each pair of dims must be equal or one of
/// them must be 1.
///
/// # Panics
/// If the shapes are not broadcast-compatible.
pub fn broadcast_shape(a: &[usize], b: &[usize]) -> Vec<usize> {
    let rank = a.len().max(b.len());
    let mut out = vec![0; rank];
    for i in 0..rank {
        let da = if i < rank - a.len() { 1 } else { a[i - (rank - a.len())] };
        let db = if i < rank - b.len() { 1 } else { b[i - (rank - b.len())] };
        out[i] = match (da, db) {
            (x, y) if x == y => x,
            (1, y) => y,
            (x, 1) => x,
            _ => panic!("shapes {:?} and {:?} are not broadcast-compatible", a, b),
        };
    }
    out
}

/// Strides for iterating `shape` as if broadcast to `out_shape`:
/// broadcast axes get stride 0.
fn broadcast_strides(shape: &[usize], out_shape: &[usize]) -> Vec<usize> {
    let rank = out_shape.len();
    let base = strides_for(shape);
    let mut out = vec![0; rank];
    let offset = rank - shape.len();
    for i in 0..shape.len() {
        out[offset + i] = if shape[i] == 1 { 0 } else { base[i] };
    }
    out
}

/// Apply `f` elementwise over broadcast inputs, producing a tensor of the
/// broadcast shape. Fast paths cover equal shapes and scalar operands.
/// Output buffers come from the size-class pool; every element is
/// written, so stale recycled contents never escape.
pub fn zip_broadcast(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    let _t = geotorch_telemetry::scope!("tensor.elementwise");
    let out_shape = broadcast_shape(a.shape(), b.shape());
    // Fast path: identical shapes.
    if a.shape() == b.shape() {
        let mut data = crate::pool::alloc_uninit(a.len());
        for ((d, &x), &y) in data.iter_mut().zip(a.as_slice()).zip(b.as_slice()) {
            *d = f(x, y);
        }
        return Tensor::from_vec(data, &out_shape);
    }
    // Fast path: one operand is a single element and the other already has
    // the broadcast shape.
    if b.len() == 1 && a.shape() == out_shape {
        let y = b.as_slice()[0];
        let mut data = crate::pool::alloc_uninit(a.len());
        for (d, &x) in data.iter_mut().zip(a.as_slice()) {
            *d = f(x, y);
        }
        return Tensor::from_vec(data, &out_shape);
    }
    if a.len() == 1 && b.shape() == out_shape {
        let x = a.as_slice()[0];
        let mut data = crate::pool::alloc_uninit(b.len());
        for (d, &y) in data.iter_mut().zip(b.as_slice()) {
            *d = f(x, y);
        }
        return Tensor::from_vec(data, &out_shape);
    }

    let sa = broadcast_strides(a.shape(), &out_shape);
    let sb = broadcast_strides(b.shape(), &out_shape);
    let total = crate::numel(&out_shape);
    let mut data = crate::pool::alloc_uninit(total);
    let mut index = vec![0usize; out_shape.len()];
    let (pa, pb) = (a.as_slice(), b.as_slice());
    let mut off_a = 0usize;
    let mut off_b = 0usize;
    for slot in data.iter_mut() {
        *slot = f(pa[off_a], pb[off_b]);
        // Odometer increment with incremental offset updates.
        for ax in (0..out_shape.len()).rev() {
            index[ax] += 1;
            off_a += sa[ax];
            off_b += sb[ax];
            if index[ax] < out_shape[ax] {
                break;
            }
            off_a -= sa[ax] * out_shape[ax];
            off_b -= sb[ax] * out_shape[ax];
            index[ax] = 0;
        }
    }
    Tensor::from_vec(data, &out_shape)
}

/// In-place variant of [`zip_broadcast`]: `dst[i] = f(dst[i], src[...])`,
/// broadcasting `src` against `dst`. Requires the broadcast shape to
/// equal `dst`'s shape (i.e. `src` must not enlarge `dst`). Mutates
/// `dst`'s buffer directly when it is uniquely held; a shared buffer is
/// copied first (copy-on-write), so results never differ from the
/// out-of-place op — only the allocation behaviour does.
///
/// # Panics
/// If broadcasting `src` against `dst` would change `dst`'s shape.
pub fn zip_broadcast_inplace(dst: &mut Tensor, src: &Tensor, f: impl Fn(f32, f32) -> f32) {
    let _t = geotorch_telemetry::scope!("tensor.elementwise");
    let out_shape = broadcast_shape(dst.shape(), src.shape());
    assert_eq!(
        out_shape,
        dst.shape(),
        "in-place op: operand of shape {:?} would broadcast {:?} to {:?}",
        src.shape(),
        dst.shape(),
        out_shape
    );
    // Fast path: identical shapes.
    if dst.shape() == src.shape() {
        // If dst and src share storage, as_mut_slice copy-on-writes dst,
        // so src still reads the pre-op values — same as out-of-place.
        let ps = src.as_slice();
        let pd = dst.as_mut_slice();
        for (d, &y) in pd.iter_mut().zip(ps) {
            *d = f(*d, y);
        }
        return;
    }
    // Fast path: scalar src.
    if src.len() == 1 {
        let y = src.as_slice()[0];
        for d in dst.as_mut_slice() {
            *d = f(*d, y);
        }
        return;
    }
    let ss = broadcast_strides(src.shape(), &out_shape);
    let ps = src.as_slice();
    let mut index = vec![0usize; out_shape.len()];
    let mut off_s = 0usize;
    let pd = dst.as_mut_slice();
    for d in pd.iter_mut() {
        *d = f(*d, ps[off_s]);
        for ax in (0..out_shape.len()).rev() {
            index[ax] += 1;
            off_s += ss[ax];
            if index[ax] < out_shape[ax] {
                break;
            }
            off_s -= ss[ax] * out_shape[ax];
            index[ax] = 0;
        }
    }
}

/// Reduce `grad` (shaped like the broadcast output) back to `shape` by
/// summing over the axes that were broadcast. This is the adjoint of
/// broadcasting and is used by autograd.
pub fn reduce_to_shape(grad: &Tensor, shape: &[usize]) -> Tensor {
    if grad.shape() == shape {
        return grad.clone();
    }
    let out_rank = grad.ndim();
    let offset = out_rank - shape.len();
    let mut result = grad.clone();
    // Sum away leading axes not present in the target shape.
    for _ in 0..offset {
        result = result.sum_axis(0);
    }
    // Sum (keeping dims) over axes where the target had extent 1.
    for (ax, &dim) in shape.iter().enumerate() {
        if dim == 1 && result.shape()[ax] != 1 {
            result = result.sum_axis_keepdim(ax);
        }
    }
    assert_eq!(
        result.shape(),
        shape,
        "reduce_to_shape produced {:?}, wanted {:?}",
        result.shape(),
        shape
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_shapes() {
        assert_eq!(broadcast_shape(&[2, 3], &[2, 3]), vec![2, 3]);
        assert_eq!(broadcast_shape(&[2, 1], &[1, 3]), vec![2, 3]);
        assert_eq!(broadcast_shape(&[3], &[2, 3]), vec![2, 3]);
        assert_eq!(broadcast_shape(&[], &[4, 5]), vec![4, 5]);
        assert_eq!(broadcast_shape(&[4, 1, 2], &[3, 1]), vec![4, 3, 2]);
    }

    #[test]
    #[should_panic(expected = "not broadcast-compatible")]
    fn incompatible_shapes_panic() {
        broadcast_shape(&[2, 3], &[4, 3]);
    }

    #[test]
    fn zip_equal_shapes() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]);
        let c = zip_broadcast(&a, &b, |x, y| x + y);
        assert_eq!(c.as_slice(), &[11.0, 22.0, 33.0]);
    }

    #[test]
    fn zip_scalar() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let c = zip_broadcast(&a, &Tensor::scalar(5.0), |x, y| x * y);
        assert_eq!(c.as_slice(), &[5.0, 10.0]);
        let d = zip_broadcast(&Tensor::scalar(1.0), &a, |x, y| x - y);
        assert_eq!(d.as_slice(), &[0.0, -1.0]);
    }

    #[test]
    fn zip_row_and_column() {
        let col = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]);
        let row = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[1, 3]);
        let c = zip_broadcast(&col, &row, |x, y| x + y);
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.as_slice(), &[11.0, 21.0, 31.0, 12.0, 22.0, 32.0]);
    }

    #[test]
    fn zip_vector_against_matrix() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let v = Tensor::from_vec(vec![1.0, 0.0, -1.0], &[3]);
        let c = zip_broadcast(&m, &v, |x, y| x * y);
        assert_eq!(c.as_slice(), &[1.0, 0.0, -3.0, 4.0, 0.0, -6.0]);
    }

    #[test]
    fn reduce_to_shape_sums_broadcast_axes() {
        let g = Tensor::ones(&[2, 3]);
        assert_eq!(reduce_to_shape(&g, &[2, 3]), g);
        let r = reduce_to_shape(&g, &[3]);
        assert_eq!(r.as_slice(), &[2.0, 2.0, 2.0]);
        let c = reduce_to_shape(&g, &[2, 1]);
        assert_eq!(c.shape(), &[2, 1]);
        assert_eq!(c.as_slice(), &[3.0, 3.0]);
        let s = reduce_to_shape(&g, &[]);
        assert_eq!(s.item(), 6.0);
    }
}
