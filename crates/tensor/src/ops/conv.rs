//! Convolution kernels: im2col/col2im, conv2d, conv_transpose2d, upsampling.
//!
//! All image tensors use the NCHW layout. The production [`conv2d`] is a
//! dispatcher over three lowerings:
//!
//! * **1×1 / stride 1 / no pad** — implicit GEMM: [`im2col`] degenerates
//!   to a zero-copy reshape (the column matrix *is* the image), so the
//!   conv is one blocked-SIMD GEMM per image with no scratch at all.
//! * **3×3 / stride 1 with a large output plane** (≥
//!   [`DIRECT_CONV_MIN_PLANE`]) — [`conv2d_direct`]: a shift-and-axpy
//!   kernel that accumulates each filter tap as a scaled row-add over
//!   the output plane, never materialising columns. Taps are applied in
//!   im2col row order with the bias added last, so the accumulation
//!   order per output element matches the im2col path exactly.
//! * **everything else** — [`conv2d_im2col`]: the classic per-image
//!   lower-to-columns + GEMM strategy PyTorch's CPU backend uses. With
//!   the blocked GEMM this also wins on small planes, whose column
//!   matrix stays cache-resident.
//!
//! A naive sliding-window reference (`conv2d_naive`) is kept for tests
//! and for the kernel ablation benchmark. Parallel dispatch is
//! per-kernel: the direct path fans out over `batch × out-channel`
//! planes once a conv crosses [`CONV_PARALLEL_FLOPS`], while the im2col
//! path fans out over batch items.

use crate::device::{parallel_for, Device, SendPtr};
use crate::Tensor;

/// FLOP count (`2·B·O·C·kh·kw·oh·ow`) below which a convolution runs on
/// the calling thread. Tuned alongside `GEMM_PARALLEL_FLOPS`: conv
/// tasks are coarser (a whole output plane each), so the bar is lower.
pub const CONV_PARALLEL_FLOPS: usize = 1 << 20;

/// Minimum output-plane size (`oh·ow`) for [`conv2d`] to pick the
/// direct 3×3 path over im2col + GEMM. Measured crossover on the bench
/// host: small planes (28²–32²) fit their column matrix in cache, so
/// the blocked GEMM wins; from ~45² up the materialised columns spill
/// and the direct path is 1.1–1.2x faster.
pub const DIRECT_CONV_MIN_PLANE: usize = 2048;

/// Output spatial extent of a convolution along one axis.
///
/// # Panics
/// If the kernel (plus padding) does not fit in the input.
pub fn conv_out_len(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    assert!(
        input + 2 * pad >= kernel,
        "kernel {} larger than padded input {}",
        kernel,
        input + 2 * pad
    );
    (input + 2 * pad - kernel) / stride + 1
}

/// Lower a single image `[C, H, W]` to a column matrix
/// `[C*kh*kw, oh*ow]` for kernel `(kh, kw)`, `stride`, and zero `pad`.
pub fn im2col(img: &Tensor, kh: usize, kw: usize, stride: usize, pad: usize) -> Tensor {
    let _t = geotorch_telemetry::scope!("tensor.im2col");
    assert_eq!(img.ndim(), 3, "im2col expects [C,H,W], got {:?}", img.shape());
    if kh == 1 && kw == 1 && stride == 1 && pad == 0 {
        // A 1×1 column matrix is the image itself: reshape shares the
        // storage, so no scratch is materialised.
        geotorch_telemetry::count!("tensor.im2col.zero_copy", 1);
        let (c, h, w) = (img.shape()[0], img.shape()[1], img.shape()[2]);
        return img.reshape(&[c, h * w]);
    }
    let padded = img.pad2d(pad);
    let (c, h, w) = (padded.shape()[0], padded.shape()[1], padded.shape()[2]);
    let oh = conv_out_len(img.shape()[1], kh, stride, pad);
    let ow = conv_out_len(img.shape()[2], kw, stride, pad);
    let src = padded.as_slice();
    let mut out = crate::pool::alloc_uninit(c * kh * kw * oh * ow);
    let cols = oh * ow;
    for ch in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = ((ch * kh + ki) * kw + kj) * cols;
                for oi in 0..oh {
                    let si = oi * stride + ki;
                    let src_base = (ch * h + si) * w + kj;
                    let dst_base = row + oi * ow;
                    for oj in 0..ow {
                        out[dst_base + oj] = src[src_base + oj * stride];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[c * kh * kw, cols])
}

/// Adjoint of [`im2col`]: scatter-add a column matrix back into an image of
/// shape `[c, h, w]` (the *unpadded* original extent).
#[allow(clippy::too_many_arguments)] // mirrors im2col's full parameter set
pub fn col2im(
    col: &Tensor,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> Tensor {
    let _t = geotorch_telemetry::scope!("tensor.col2im");
    let oh = conv_out_len(h, kh, stride, pad);
    let ow = conv_out_len(w, kw, stride, pad);
    assert_eq!(
        col.shape(),
        &[c * kh * kw, oh * ow],
        "col2im column shape mismatch"
    );
    if kh == 1 && kw == 1 && stride == 1 && pad == 0 {
        // Adjoint of the zero-copy im2col: every column owns exactly one
        // pixel, so the scatter-add is a reshape.
        geotorch_telemetry::count!("tensor.col2im.zero_copy", 1);
        return col.reshape(&[c, h, w]);
    }
    let (ph, pw) = (h + 2 * pad, w + 2 * pad);
    let mut padded = crate::pool::alloc_zeroed(c * ph * pw);
    let src = col.as_slice();
    let cols = oh * ow;
    for ch in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = ((ch * kh + ki) * kw + kj) * cols;
                for oi in 0..oh {
                    let di = oi * stride + ki;
                    let dst_base = (ch * ph + di) * pw + kj;
                    let src_base = row + oi * ow;
                    for oj in 0..ow {
                        padded[dst_base + oj * stride] += src[src_base + oj];
                    }
                }
            }
        }
    }
    Tensor::from_vec(padded, &[c, ph, pw]).unpad2d(pad)
}

/// 2-D convolution. `input [B,C,H,W]`, `weight [O,C,kh,kw]`,
/// optional `bias [O]` → `[B,O,oh,ow]`.
///
/// Dispatches to the fastest lowering for the shape (see the module
/// docs): implicit GEMM for 1×1/stride-1/no-pad, the direct
/// shift-and-axpy kernel for large-plane 3×3/stride-1, and im2col +
/// GEMM everywhere else. All paths produce the same accumulation order
/// per output element, so results agree to within SIMD-FMA rounding.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
) -> Tensor {
    let _t = geotorch_telemetry::scope!("tensor.conv2d");
    assert_eq!(input.ndim(), 4, "conv2d input must be [B,C,H,W]");
    assert_eq!(weight.ndim(), 4, "conv2d weight must be [O,C,kh,kw]");
    let (kh, kw) = (weight.shape()[2], weight.shape()[3]);
    // Note: 1×1/stride-1/no-pad stays on im2col *by design* — the
    // lowering degenerates to a zero-copy reshape, so the whole conv is
    // one blocked GEMM with no scratch (implicit GEMM).
    let plane = conv_out_len(input.shape()[2], kh, stride, pad)
        * conv_out_len(input.shape()[3], kw, stride, pad);
    if stride == 1 && kh == 3 && kw == 3 && plane >= DIRECT_CONV_MIN_PLANE {
        geotorch_telemetry::count!("tensor.conv2d.direct", 1);
        conv2d_direct(input, weight, bias, pad)
    } else {
        geotorch_telemetry::count!("tensor.conv2d.im2col", 1);
        conv2d_im2col(input, weight, bias, stride, pad)
    }
}

/// Direct stride-1 convolution: for each `(batch, out-channel)` output
/// plane, every filter tap `(ic, ki, kj)` is applied as a scaled
/// row-wise axpy of the shifted input plane. No column matrix is built.
/// Taps run in im2col row order (`ic → ki → kj`) and the bias is added
/// after all taps, so each output element's accumulation order matches
/// [`conv2d_im2col`]'s GEMM exactly.
pub fn conv2d_direct(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    pad: usize,
) -> Tensor {
    let _t = geotorch_telemetry::scope!("tensor.conv2d_direct");
    assert_eq!(input.ndim(), 4, "conv2d input must be [B,C,H,W]");
    assert_eq!(weight.ndim(), 4, "conv2d weight must be [O,C,kh,kw]");
    let (b, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (o, wc, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    assert_eq!(c, wc, "conv2d channel mismatch: input {c}, weight {wc}");
    if let Some(bias) = bias {
        assert_eq!(bias.shape(), &[o], "conv2d bias must be [O]");
    }
    let oh = conv_out_len(h, kh, 1, pad);
    let ow = conv_out_len(w, kw, 1, pad);
    let padded = if pad > 0 { input.pad2d(pad) } else { input.clone() };
    let (ph, pw) = (h + 2 * pad, w + 2 * pad);
    let x = padded.as_slice();
    let wt = weight.as_slice();
    let plane = oh * ow;
    let mut out = crate::pool::alloc_uninit(b * o * plane);
    let out_ptr = SendPtr(out.as_mut_ptr());
    let task = |t: usize| {
        let (bi, oc) = (t / o, t % o);
        // SAFETY: each (bi, oc) task owns a disjoint output plane.
        let dst = unsafe {
            std::slice::from_raw_parts_mut({ &out_ptr }.0.add((bi * o + oc) * plane), plane)
        };
        dst.fill(0.0);
        for ic in 0..c {
            for ki in 0..kh {
                let w_row = &wt[((oc * c + ic) * kh + ki) * kw..][..kw];
                for oi in 0..oh {
                    let src = &x[((bi * c + ic) * ph + oi + ki) * pw..][..ow + kw - 1];
                    let row = &mut dst[oi * ow..(oi + 1) * ow];
                    // One pass over the output row applies all kw taps of
                    // this filter row (kj ascending per element, matching
                    // the im2col accumulation order), so the row is
                    // loaded/stored once per (ic, ki) instead of per tap.
                    match *w_row {
                        [w0] => {
                            for (d, &s) in row.iter_mut().zip(src) {
                                *d += w0 * s;
                            }
                        }
                        [w0, w1, w2] => {
                            for (j, d) in row.iter_mut().enumerate() {
                                let mut v = *d;
                                v += w0 * src[j];
                                v += w1 * src[j + 1];
                                v += w2 * src[j + 2];
                                *d = v;
                            }
                        }
                        _ => {
                            for (j, d) in row.iter_mut().enumerate() {
                                let mut v = *d;
                                for (kj, &wv) in w_row.iter().enumerate() {
                                    v += wv * src[j + kj];
                                }
                                *d = v;
                            }
                        }
                    }
                }
            }
        }
        if let Some(bias) = bias {
            let bv = bias.as_slice()[oc];
            for d in dst.iter_mut() {
                *d += bv;
            }
        }
    };
    let flops = 2 * b * o * c * kh * kw * plane;
    if Device::current().threads() > 1 && flops >= CONV_PARALLEL_FLOPS {
        parallel_for(b * o, task);
    } else {
        for t in 0..b * o {
            task(t);
        }
    }
    Tensor::from_vec(out, &[b, o, oh, ow])
}

/// im2col + GEMM convolution: lower each image to a column matrix and
/// multiply it against the flattened filter bank. The fallback for
/// strided convs and the implicit-GEMM path for 1×1 shapes (where
/// [`im2col`] is a zero-copy reshape). Batch items fan out across the
/// current device.
pub fn conv2d_im2col(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
) -> Tensor {
    assert_eq!(input.ndim(), 4, "conv2d input must be [B,C,H,W]");
    assert_eq!(weight.ndim(), 4, "conv2d weight must be [O,C,kh,kw]");
    let (b, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (o, wc, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    assert_eq!(c, wc, "conv2d channel mismatch: input {c}, weight {wc}");
    if let Some(bias) = bias {
        assert_eq!(bias.shape(), &[o], "conv2d bias must be [O]");
    }
    let oh = conv_out_len(h, kh, stride, pad);
    let ow = conv_out_len(w, kw, stride, pad);
    let w_mat = weight.reshape(&[o, c * kh * kw]);
    let mut out = crate::pool::alloc_uninit(b * o * oh * ow);
    let per_img = o * oh * ow;
    let out_ptr = SendPtr(out.as_mut_ptr());
    parallel_for(b, |bi| {
        let img = input.index_axis(0, bi);
        let col = im2col(&img, kh, kw, stride, pad);
        let mut res = w_mat.matmul(&col); // [O, oh*ow]
        if let Some(bias) = bias {
            let data = res.as_mut_slice();
            for ch in 0..o {
                let bv = bias.as_slice()[ch];
                for v in &mut data[ch * oh * ow..(ch + 1) * oh * ow] {
                    *v += bv;
                }
            }
        }
        // SAFETY: each batch item writes a disjoint region.
        let dst =
            unsafe { std::slice::from_raw_parts_mut({ &out_ptr }.0.add(bi * per_img), per_img) };
        dst.copy_from_slice(res.as_slice());
    });
    Tensor::from_vec(out, &[b, o, oh, ow])
}

/// Sliding-window reference convolution (tests + ablation bench only).
pub fn conv2d_naive(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
) -> Tensor {
    let (b, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (o, _, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    let oh = conv_out_len(h, kh, stride, pad);
    let ow = conv_out_len(w, kw, stride, pad);
    let padded = input.pad2d(pad);
    let (ph, pw) = (h + 2 * pad, w + 2 * pad);
    let x = padded.as_slice();
    let wt = weight.as_slice();
    let mut out = crate::pool::alloc_uninit(b * o * oh * ow);
    for bi in 0..b {
        for oc in 0..o {
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut acc = bias.map_or(0.0, |t| t.as_slice()[oc]);
                    for ic in 0..c {
                        for ki in 0..kh {
                            for kj in 0..kw {
                                let xi = oi * stride + ki;
                                let xj = oj * stride + kj;
                                acc += x[((bi * c + ic) * ph + xi) * pw + xj]
                                    * wt[((oc * c + ic) * kh + ki) * kw + kj];
                            }
                        }
                    }
                    out[((bi * o + oc) * oh + oi) * ow + oj] = acc;
                }
            }
        }
    }
    Tensor::from_vec(out, &[b, o, oh, ow])
}

/// Transposed 2-D convolution (a.k.a. deconvolution), the adjoint of
/// [`conv2d`]. `input [B,C,H,W]`, `weight [C,O,kh,kw]`, optional `bias [O]`
/// → `[B, O, (H-1)*stride + kh - 2*pad, (W-1)*stride + kw - 2*pad]`.
pub fn conv_transpose2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
) -> Tensor {
    let _t = geotorch_telemetry::scope!("tensor.conv_transpose2d");
    assert_eq!(input.ndim(), 4, "conv_transpose2d input must be [B,C,H,W]");
    assert_eq!(weight.ndim(), 4, "conv_transpose2d weight must be [C,O,kh,kw]");
    let (b, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (wc, o, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    assert_eq!(c, wc, "conv_transpose2d channel mismatch");
    let out_h = (h - 1) * stride + kh;
    let out_w = (w - 1) * stride + kw;
    assert!(
        out_h > 2 * pad && out_w > 2 * pad,
        "conv_transpose2d padding {pad} too large for output {out_h}x{out_w}"
    );
    // [C, O*kh*kw]^T × [C, H*W] = [O*kh*kw, H*W], then scatter with col2im.
    let w_mat = weight.reshape(&[c, o * kh * kw]).transpose();
    let final_h = out_h - 2 * pad;
    let final_w = out_w - 2 * pad;
    let per_img = o * final_h * final_w;
    let mut out = crate::pool::alloc_uninit(b * per_img);
    let out_ptr = SendPtr(out.as_mut_ptr());
    parallel_for(b, |bi| {
        let x_mat = input.index_axis(0, bi).reshape(&[c, h * w]);
        let col = w_mat.matmul(&x_mat); // [O*kh*kw, H*W]
        // The input positions are conv-output positions of the result:
        // col2im over the *final* image with the same stride/pad recovers it.
        let img = col2im(&col, o, final_h, final_w, kh, kw, stride, pad);
        let dst =
            unsafe { std::slice::from_raw_parts_mut({ &out_ptr }.0.add(bi * per_img), per_img) };
        dst.copy_from_slice(img.as_slice());
    });
    let mut result = Tensor::from_vec(out, &[b, o, final_h, final_w]);
    if let Some(bias) = bias {
        assert_eq!(bias.shape(), &[o], "conv_transpose2d bias must be [O]");
        let data = result.as_mut_slice();
        let hw = final_h * final_w;
        for bi in 0..b {
            for oc in 0..o {
                let bv = bias.as_slice()[oc];
                let base = (bi * o + oc) * hw;
                for v in &mut data[base..base + hw] {
                    *v += bv;
                }
            }
        }
    }
    result
}

/// Nearest-neighbour spatial upsampling by an integer `factor` (NCHW).
pub fn upsample_nearest2d(input: &Tensor, factor: usize) -> Tensor {
    assert!(factor > 0, "upsample factor must be positive");
    assert_eq!(input.ndim(), 4, "upsample_nearest2d input must be [B,C,H,W]");
    if factor == 1 {
        return input.clone();
    }
    let (b, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (oh, ow) = (h * factor, w * factor);
    let src = input.as_slice();
    let mut out = crate::pool::alloc_uninit(b * c * oh * ow);
    for bc in 0..b * c {
        for i in 0..oh {
            let si = i / factor;
            let src_row = &src[(bc * h + si) * w..(bc * h + si + 1) * w];
            let dst_row = &mut out[(bc * oh + i) * ow..(bc * oh + i + 1) * ow];
            for (j, d) in dst_row.iter_mut().enumerate() {
                *d = src_row[j / factor];
            }
        }
    }
    Tensor::from_vec(out, &[b, c, oh, ow])
}

/// Adjoint of [`upsample_nearest2d`]: sum each `factor × factor` block.
pub fn upsample_nearest2d_backward(grad: &Tensor, factor: usize) -> Tensor {
    if factor == 1 {
        return grad.clone();
    }
    let (b, c, oh, ow) = (
        grad.shape()[0],
        grad.shape()[1],
        grad.shape()[2],
        grad.shape()[3],
    );
    let (h, w) = (oh / factor, ow / factor);
    let src = grad.as_slice();
    let mut out = crate::pool::alloc_zeroed(b * c * h * w);
    for bc in 0..b * c {
        for i in 0..oh {
            let si = i / factor;
            for j in 0..ow {
                out[(bc * h + si) * w + j / factor] += src[(bc * oh + i) * ow + j];
            }
        }
    }
    Tensor::from_vec(out, &[b, c, h, w])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{with_device, Device};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn out_len_formula() {
        assert_eq!(conv_out_len(5, 3, 1, 0), 3);
        assert_eq!(conv_out_len(5, 3, 1, 1), 5);
        assert_eq!(conv_out_len(5, 3, 2, 1), 3);
        assert_eq!(conv_out_len(28, 5, 1, 2), 28);
    }

    #[test]
    fn im2col_known_values() {
        // 1×3×3 image, 2×2 kernel, stride 1, no pad → [4, 4] columns.
        let img = Tensor::arange(9).reshape(&[1, 3, 3]);
        let col = im2col(&img, 2, 2, 1, 0);
        assert_eq!(col.shape(), &[4, 4]);
        // First column = top-left patch [0,1,3,4].
        assert_eq!(col.at(&[0, 0]), 0.0);
        assert_eq!(col.at(&[1, 0]), 1.0);
        assert_eq!(col.at(&[2, 0]), 3.0);
        assert_eq!(col.at(&[3, 0]), 4.0);
        // Last column = bottom-right patch [4,5,7,8].
        assert_eq!(col.at(&[0, 3]), 4.0);
        assert_eq!(col.at(&[3, 3]), 8.0);
    }

    #[test]
    fn conv_matches_naive_across_configs() {
        let mut rng = rng();
        for &(c, o, h, w, k, s, p) in &[
            (1usize, 1usize, 5usize, 5usize, 3usize, 1usize, 0usize),
            (3, 4, 8, 8, 3, 1, 1),
            (2, 3, 9, 7, 3, 2, 1),
            (4, 2, 6, 6, 5, 1, 2),
            (1, 1, 4, 4, 1, 1, 0),
        ] {
            let input = Tensor::rand_uniform(&[2, c, h, w], -1.0, 1.0, &mut rng);
            let weight = Tensor::rand_uniform(&[o, c, k, k], -1.0, 1.0, &mut rng);
            let bias = Tensor::rand_uniform(&[o], -1.0, 1.0, &mut rng);
            let fast = conv2d(&input, &weight, Some(&bias), s, p);
            let slow = conv2d_naive(&input, &weight, Some(&bias), s, p);
            assert!(
                fast.allclose(&slow, 1e-4),
                "mismatch for c={c} o={o} h={h} w={w} k={k} s={s} p={p}"
            );
        }
    }

    #[test]
    fn direct_path_matches_im2col_path() {
        let mut rng = rng();
        for &(c, o, h, w, k, p) in &[
            (1usize, 1usize, 5usize, 5usize, 3usize, 0usize),
            (3, 4, 8, 8, 3, 1),
            (2, 3, 9, 7, 5, 2),
            (3, 2, 6, 6, 1, 1), // 1×1 with pad still takes the direct path
        ] {
            let input = Tensor::rand_uniform(&[2, c, h, w], -1.0, 1.0, &mut rng);
            let weight = Tensor::rand_uniform(&[o, c, k, k], -1.0, 1.0, &mut rng);
            let bias = Tensor::rand_uniform(&[o], -1.0, 1.0, &mut rng);
            let direct = conv2d_direct(&input, &weight, Some(&bias), p);
            let lowered = conv2d_im2col(&input, &weight, Some(&bias), 1, p);
            assert!(
                direct.allclose(&lowered, 1e-5),
                "path mismatch for c={c} o={o} h={h} w={w} k={k} p={p}"
            );
        }
    }

    #[test]
    fn one_by_one_im2col_is_zero_copy_reshape() {
        let img = Tensor::arange(12).reshape(&[3, 2, 2]);
        let col = im2col(&img, 1, 1, 1, 0);
        assert_eq!(col.shape(), &[3, 4]);
        assert_eq!(col.as_slice(), img.as_slice());
        let back = col2im(&col, 3, 2, 2, 1, 1, 1, 0);
        assert_eq!(back.shape(), &[3, 2, 2]);
        assert_eq!(back.as_slice(), img.as_slice());
    }

    #[test]
    fn direct_parallel_matches_serial() {
        // A 48×48 plane crosses DIRECT_CONV_MIN_PLANE (dispatcher picks
        // the direct path) and CONV_PARALLEL_FLOPS (Parallel(4) actually
        // fans out plane tasks).
        let mut rng = rng();
        let input = Tensor::rand_uniform(&[2, 8, 48, 48], -1.0, 1.0, &mut rng);
        let weight = Tensor::rand_uniform(&[16, 8, 3, 3], -1.0, 1.0, &mut rng);
        let serial = conv2d(&input, &weight, None, 1, 1);
        assert_eq!(
            serial.as_slice(),
            conv2d_direct(&input, &weight, None, 1).as_slice(),
            "dispatcher should pick the direct path at this plane size"
        );
        let parallel = with_device(Device::Parallel(4), || conv2d(&input, &weight, None, 1, 1));
        assert_eq!(serial.as_slice(), parallel.as_slice());
    }

    #[test]
    fn conv_parallel_matches_serial() {
        let mut rng = rng();
        let input = Tensor::rand_uniform(&[4, 3, 10, 10], -1.0, 1.0, &mut rng);
        let weight = Tensor::rand_uniform(&[5, 3, 3, 3], -1.0, 1.0, &mut rng);
        let serial = conv2d(&input, &weight, None, 1, 1);
        let parallel = with_device(Device::Parallel(4), || conv2d(&input, &weight, None, 1, 1));
        assert!(serial.allclose(&parallel, 1e-5));
    }

    #[test]
    fn identity_kernel_preserves_image() {
        let img = Tensor::arange(16).reshape(&[1, 1, 4, 4]);
        let weight = Tensor::ones(&[1, 1, 1, 1]);
        let out = conv2d(&img, &weight, None, 1, 0);
        assert_eq!(out, img);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y.
        let mut rng = rng();
        let (c, h, w, k, s, p) = (2, 6, 5, 3, 2, 1);
        let x = Tensor::rand_uniform(&[c, h, w], -1.0, 1.0, &mut rng);
        let col_shape_probe = im2col(&x, k, k, s, p);
        let y = Tensor::rand_uniform(col_shape_probe.shape(), -1.0, 1.0, &mut rng);
        let lhs = col_shape_probe.flatten().dot(&y.flatten());
        let back = col2im(&y, c, h, w, k, k, s, p);
        let rhs = x.flatten().dot(&back.flatten());
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn conv_transpose_inverts_stride_shape() {
        let mut rng = rng();
        let input = Tensor::rand_uniform(&[1, 3, 4, 4], -1.0, 1.0, &mut rng);
        let weight = Tensor::rand_uniform(&[3, 2, 2, 2], -1.0, 1.0, &mut rng);
        let out = conv_transpose2d(&input, &weight, None, 2, 0);
        assert_eq!(out.shape(), &[1, 2, 8, 8]);
    }

    #[test]
    fn conv_transpose_is_adjoint_of_conv() {
        // <conv(x, w), y> == <x, conv_T(y, w')> with w' = w axes swapped.
        let mut rng = rng();
        // Dims chosen so the strided conv tiles exactly: (h + 2p - k) % s == 0,
        // making conv_transpose the exact shape inverse.
        let (c, o, h, w, k, s, p) = (2, 3, 7, 7, 3, 2, 1);
        let x = Tensor::rand_uniform(&[1, c, h, w], -1.0, 1.0, &mut rng);
        let wt = Tensor::rand_uniform(&[o, c, k, k], -1.0, 1.0, &mut rng);
        let fwd = conv2d(&x, &wt, None, s, p);
        let y = Tensor::rand_uniform(fwd.shape(), -1.0, 1.0, &mut rng);
        let lhs = fwd.flatten().dot(&y.flatten());
        // conv_transpose2d takes weight [Cin, Cout, kh, kw]; the conv weight
        // [O, C, k, k] already has that layout for the adjoint direction
        // (Cin = O channels of y, Cout = C channels of x).
        let back = conv_transpose2d(&y, &wt, None, s, p);
        assert_eq!(back.shape(), x.shape());
        let rhs = x.flatten().dot(&back.flatten());
        assert!((lhs - rhs).abs() < 1e-2, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn upsample_nearest_values() {
        let img = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let up = upsample_nearest2d(&img, 2);
        assert_eq!(up.shape(), &[1, 1, 4, 4]);
        assert_eq!(up.at(&[0, 0, 0, 0]), 1.0);
        assert_eq!(up.at(&[0, 0, 0, 1]), 1.0);
        assert_eq!(up.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(up.at(&[0, 0, 3, 3]), 4.0);
    }

    #[test]
    fn upsample_backward_is_adjoint() {
        let mut rng = rng();
        let x = Tensor::rand_uniform(&[1, 2, 3, 3], -1.0, 1.0, &mut rng);
        let up = upsample_nearest2d(&x, 2);
        let y = Tensor::rand_uniform(up.shape(), -1.0, 1.0, &mut rng);
        let lhs = up.flatten().dot(&y.flatten());
        let back = upsample_nearest2d_backward(&y, 2);
        let rhs = x.flatten().dot(&back.flatten());
        assert!((lhs - rhs).abs() < 1e-3);
    }
}
