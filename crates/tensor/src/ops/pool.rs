//! Pooling kernels (NCHW).
//!
//! Every kernel here decomposes over the `B*C` image planes, which write
//! disjoint regions of the output — so planes fan out over the device
//! worker pool when the tensor clears [`PARALLEL_THRESHOLD`].

use crate::device::{parallel_for, SendPtr, PARALLEL_THRESHOLD};
use crate::ops::conv::conv_out_len;
use crate::Tensor;

/// 2-D max pooling. Returns the pooled tensor and the flat index (into the
/// input buffer) of each selected maximum, which the backward pass scatters
/// gradients through.
pub fn maxpool2d(input: &Tensor, kernel: usize, stride: usize) -> (Tensor, Vec<usize>) {
    let _t = geotorch_telemetry::scope!("tensor.maxpool2d");
    assert_eq!(input.ndim(), 4, "maxpool2d input must be [B,C,H,W]");
    let (b, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let oh = conv_out_len(h, kernel, stride, 0);
    let ow = conv_out_len(w, kernel, stride, 0);
    let src = input.as_slice();
    let mut out = crate::pool::alloc_uninit(b * c * oh * ow);
    let mut argmax = vec![0usize; b * c * oh * ow];
    let out_ptr = SendPtr(out.as_mut_ptr());
    let arg_ptr = SendPtr(argmax.as_mut_ptr());
    let plane = move |bc: usize| {
        // Capture the whole SendPtr (not just its raw-pointer field) so the
        // closure stays Sync under edition-2021 disjoint capture.
        let (out_ptr, arg_ptr) = (out_ptr, arg_ptr);
        let img_base = bc * h * w;
        for oi in 0..oh {
            for oj in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0usize;
                for ki in 0..kernel {
                    let row = img_base + (oi * stride + ki) * w + oj * stride;
                    for kj in 0..kernel {
                        let v = src[row + kj];
                        if v > best {
                            best = v;
                            best_idx = row + kj;
                        }
                    }
                }
                let o_idx = (bc * oh + oi) * ow + oj;
                // SAFETY: plane `bc` owns output range [bc*oh*ow, (bc+1)*oh*ow).
                unsafe {
                    *out_ptr.0.add(o_idx) = best;
                    *arg_ptr.0.add(o_idx) = best_idx;
                }
            }
        }
    };
    if input.len() >= PARALLEL_THRESHOLD {
        parallel_for(b * c, plane);
    } else {
        (0..b * c).for_each(plane);
    }
    (Tensor::from_vec(out, &[b, c, oh, ow]), argmax)
}

/// Scatter `grad` back through the argmax indices from [`maxpool2d`].
pub fn maxpool2d_backward(grad: &Tensor, argmax: &[usize], input_shape: &[usize]) -> Tensor {
    let _t = geotorch_telemetry::scope!("tensor.maxpool2d_bwd");
    assert_eq!(grad.len(), argmax.len(), "maxpool backward length mismatch");
    let numel = crate::numel(input_shape);
    let mut out = crate::pool::alloc_zeroed(numel);
    let g = grad.as_slice();
    let planes = input_shape[0] * input_shape[1];
    let plane_out = grad.len() / planes.max(1);
    if numel >= PARALLEL_THRESHOLD && planes > 1 && grad.len().is_multiple_of(planes) {
        // Argmax indices always point inside their own `bc` image plane, so
        // scattering plane-by-plane writes disjoint regions of `out`.
        let out_ptr = SendPtr(out.as_mut_ptr());
        let plane_in = numel / planes;
        parallel_for(planes, move |bc| {
            let out_ptr = out_ptr;
            let lo = bc * plane_in;
            let hi = lo + plane_in;
            for o in bc * plane_out..(bc + 1) * plane_out {
                let idx = argmax[o];
                // Real assert, not debug: argmax is caller-supplied, and an
                // out-of-plane index would race with another worker.
                assert!((lo..hi).contains(&idx), "argmax escaped its plane");
                // SAFETY: `idx` lies in plane `bc`'s disjoint range.
                unsafe { *out_ptr.0.add(idx) += g[o] };
            }
        });
    } else {
        for (gv, &idx) in g.iter().zip(argmax) {
            out[idx] += gv;
        }
    }
    Tensor::from_vec(out, input_shape)
}

/// 2-D average pooling.
pub fn avgpool2d(input: &Tensor, kernel: usize, stride: usize) -> Tensor {
    let _t = geotorch_telemetry::scope!("tensor.avgpool2d");
    assert_eq!(input.ndim(), 4, "avgpool2d input must be [B,C,H,W]");
    let (b, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let oh = conv_out_len(h, kernel, stride, 0);
    let ow = conv_out_len(w, kernel, stride, 0);
    let inv = 1.0 / (kernel * kernel) as f32;
    let src = input.as_slice();
    let mut out = crate::pool::alloc_uninit(b * c * oh * ow);
    let out_ptr = SendPtr(out.as_mut_ptr());
    let plane = move |bc: usize| {
        let out_ptr = out_ptr;
        let img_base = bc * h * w;
        for oi in 0..oh {
            for oj in 0..ow {
                let mut acc = 0.0;
                for ki in 0..kernel {
                    let row = img_base + (oi * stride + ki) * w + oj * stride;
                    for kj in 0..kernel {
                        acc += src[row + kj];
                    }
                }
                // SAFETY: plane `bc` owns output range [bc*oh*ow, (bc+1)*oh*ow).
                unsafe { *out_ptr.0.add((bc * oh + oi) * ow + oj) = acc * inv };
            }
        }
    };
    if input.len() >= PARALLEL_THRESHOLD {
        parallel_for(b * c, plane);
    } else {
        (0..b * c).for_each(plane);
    }
    Tensor::from_vec(out, &[b, c, oh, ow])
}

/// Spread `grad` uniformly back through the averaging windows.
pub fn avgpool2d_backward(
    grad: &Tensor,
    kernel: usize,
    stride: usize,
    input_shape: &[usize],
) -> Tensor {
    let _t = geotorch_telemetry::scope!("tensor.avgpool2d_bwd");
    let (b, c, h, w) = (
        input_shape[0],
        input_shape[1],
        input_shape[2],
        input_shape[3],
    );
    let (oh, ow) = (grad.shape()[2], grad.shape()[3]);
    let inv = 1.0 / (kernel * kernel) as f32;
    let g = grad.as_slice();
    let mut out = crate::pool::alloc_zeroed(b * c * h * w);
    let out_ptr = SendPtr(out.as_mut_ptr());
    let plane = move |bc: usize| {
        let out_ptr = out_ptr;
        let img_base = bc * h * w;
        for oi in 0..oh {
            for oj in 0..ow {
                let gv = g[(bc * oh + oi) * ow + oj] * inv;
                for ki in 0..kernel {
                    let row = img_base + (oi * stride + ki) * w + oj * stride;
                    for kj in 0..kernel {
                        // SAFETY: all windows of plane `bc` lie inside its
                        // disjoint image range [bc*h*w, (bc+1)*h*w).
                        unsafe { *out_ptr.0.add(row + kj) += gv };
                    }
                }
            }
        }
    };
    if out.len() >= PARALLEL_THRESHOLD {
        parallel_for(b * c, plane);
    } else {
        (0..b * c).for_each(plane);
    }
    Tensor::from_vec(out, input_shape)
}

/// Global average pool: `[B,C,H,W] → [B,C]`.
pub fn global_avgpool2d(input: &Tensor) -> Tensor {
    let _t = geotorch_telemetry::scope!("tensor.global_avgpool2d");
    assert_eq!(input.ndim(), 4, "global_avgpool2d input must be [B,C,H,W]");
    let (b, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let inv = 1.0 / (h * w) as f32;
    let src = input.as_slice();
    let mut out = crate::pool::alloc_uninit(b * c);
    if input.len() >= PARALLEL_THRESHOLD {
        let out_ptr = SendPtr(out.as_mut_ptr());
        parallel_for(b * c, move |bc| {
            let out_ptr = out_ptr;
            let mean = src[bc * h * w..(bc + 1) * h * w].iter().sum::<f32>() * inv;
            // SAFETY: each plane writes exactly its own `out[bc]` slot.
            unsafe { *out_ptr.0.add(bc) = mean };
        });
    } else {
        for (bc, o) in out.iter_mut().enumerate() {
            *o = src[bc * h * w..(bc + 1) * h * w].iter().sum::<f32>() * inv;
        }
    }
    Tensor::from_vec(out, &[b, c])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn maxpool_known() {
        let img = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        );
        let (out, argmax) = maxpool2d(&img, 2, 2);
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert_eq!(out.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
        assert_eq!(argmax, vec![5, 7, 13, 15]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let img = Tensor::arange(16).reshape(&[1, 1, 4, 4]);
        let (_, argmax) = maxpool2d(&img, 2, 2);
        let grad = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let back = maxpool2d_backward(&grad, &argmax, &[1, 1, 4, 4]);
        assert_eq!(back.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(back.at(&[0, 0, 1, 3]), 2.0);
        assert_eq!(back.at(&[0, 0, 3, 1]), 3.0);
        assert_eq!(back.at(&[0, 0, 3, 3]), 4.0);
        assert_eq!(back.sum(), 10.0);
    }

    #[test]
    fn avgpool_known() {
        let img = Tensor::arange(16).reshape(&[1, 1, 4, 4]);
        let out = avgpool2d(&img, 2, 2);
        assert_eq!(out.as_slice(), &[2.5, 4.5, 10.5, 12.5]);
    }

    #[test]
    fn avgpool_backward_is_adjoint() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let x = Tensor::rand_uniform(&[2, 3, 6, 6], -1.0, 1.0, &mut rng);
        let y = avgpool2d(&x, 2, 2);
        let g = Tensor::rand_uniform(y.shape(), -1.0, 1.0, &mut rng);
        let lhs = y.flatten().dot(&g.flatten());
        let back = avgpool2d_backward(&g, 2, 2, x.shape());
        let rhs = x.flatten().dot(&back.flatten());
        assert!((lhs - rhs).abs() < 1e-3);
    }

    #[test]
    fn overlapping_windows_stride_one() {
        let img = Tensor::arange(9).reshape(&[1, 1, 3, 3]);
        let (out, _) = maxpool2d(&img, 2, 1);
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert_eq!(out.as_slice(), &[4.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    fn global_avgpool() {
        let img = Tensor::arange(8).reshape(&[2, 1, 2, 2]);
        let out = global_avgpool2d(&img);
        assert_eq!(out.shape(), &[2, 1]);
        assert_eq!(out.as_slice(), &[1.5, 5.5]);
    }
}
