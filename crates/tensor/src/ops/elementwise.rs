//! Elementwise arithmetic, comparison, and math functions.

use crate::device::{parallel_chunks_mut, PARALLEL_THRESHOLD};
use crate::ops::broadcast::{zip_broadcast, zip_broadcast_inplace};
use crate::Tensor;

impl Tensor {
    /// Apply `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let _t = geotorch_telemetry::scope!("tensor.map");
        let mut out = crate::pool::alloc_uninit(self.len());
        let src = self.as_slice();
        parallel_chunks_mut(&mut out, PARALLEL_THRESHOLD, |offset, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = f(src[offset + i]);
            }
        });
        Tensor::from_vec(out, self.shape())
    }

    /// Apply `f` to every element in place (copies if storage is shared).
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        let _t = geotorch_telemetry::scope!("tensor.map");
        let data = self.as_mut_slice();
        parallel_chunks_mut(data, PARALLEL_THRESHOLD, |_, chunk| {
            for v in chunk.iter_mut() {
                *v = f(*v);
            }
        });
    }

    /// Elementwise addition with broadcasting.
    pub fn add(&self, other: &Tensor) -> Tensor {
        zip_broadcast(self, other, |a, b| a + b)
    }

    /// Elementwise subtraction with broadcasting.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        zip_broadcast(self, other, |a, b| a - b)
    }

    /// Elementwise multiplication with broadcasting.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        zip_broadcast(self, other, |a, b| a * b)
    }

    /// Elementwise division with broadcasting.
    pub fn div(&self, other: &Tensor) -> Tensor {
        zip_broadcast(self, other, |a, b| a / b)
    }

    /// Elementwise maximum with broadcasting.
    pub fn maximum(&self, other: &Tensor) -> Tensor {
        zip_broadcast(self, other, f32::max)
    }

    /// Elementwise minimum with broadcasting.
    pub fn minimum(&self, other: &Tensor) -> Tensor {
        zip_broadcast(self, other, f32::min)
    }

    /// Add a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v + s)
    }

    /// Multiply every element by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Negate every element.
    pub fn neg(&self) -> Tensor {
        self.map(|v| -v)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Elementwise natural exponential.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Tensor {
        self.map(f32::ln)
    }

    /// Elementwise square.
    pub fn square(&self) -> Tensor {
        self.map(|v| v * v)
    }

    /// Elementwise reciprocal.
    pub fn recip(&self) -> Tensor {
        self.map(|v| 1.0 / v)
    }

    /// Elementwise integer power.
    pub fn powi(&self, n: i32) -> Tensor {
        self.map(|v| v.powi(n))
    }

    /// Rectified linear unit: `max(v, 0)`.
    pub fn relu(&self) -> Tensor {
        self.map(|v| v.max(0.0))
    }

    /// Logistic sigmoid, numerically stable on both tails.
    pub fn sigmoid(&self) -> Tensor {
        self.map(stable_sigmoid)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        self.map(f32::tanh)
    }

    /// Clamp every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|v| v.clamp(lo, hi))
    }

    /// Elementwise `1.0` where `self > other` (broadcast), else `0.0`.
    pub fn gt_mask(&self, other: &Tensor) -> Tensor {
        zip_broadcast(self, other, |a, b| if a > b { 1.0 } else { 0.0 })
    }

    /// Accumulate `other` into `self` elementwise (shapes must match).
    ///
    /// # Panics
    /// If shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add_assign requires matching shapes"
        );
        // No staging copy: even when self and other share storage,
        // as_mut_slice copy-on-writes self first, so other still reads
        // the pre-op values.
        let src = other.as_slice();
        let dst = self.as_mut_slice();
        for (d, &s) in dst.iter_mut().zip(src) {
            *d += s;
        }
    }

    // ------------------------------------------------------- in-place ops
    //
    // The `_`-suffixed ops mutate `self`'s buffer directly when it is the
    // only handle to its storage and fall back to copy-on-write when it
    // is shared, so they always produce exactly the same values as their
    // out-of-place counterparts — only the allocation behaviour differs.
    // The operand may broadcast against `self` as long as the result
    // keeps `self`'s shape.

    /// In-place elementwise addition: `self += other` (broadcasting).
    pub fn add_(&mut self, other: &Tensor) {
        zip_broadcast_inplace(self, other, |a, b| a + b);
    }

    /// In-place elementwise subtraction: `self -= other` (broadcasting).
    pub fn sub_(&mut self, other: &Tensor) {
        zip_broadcast_inplace(self, other, |a, b| a - b);
    }

    /// In-place elementwise multiplication: `self *= other` (broadcasting).
    pub fn mul_(&mut self, other: &Tensor) {
        zip_broadcast_inplace(self, other, |a, b| a * b);
    }

    /// In-place scalar multiplication: `self *= s`.
    pub fn scale_(&mut self, s: f32) {
        self.map_inplace(|v| v * s);
    }

    /// In-place axpy: `self += alpha * other` (broadcasting). The fused
    /// update behind the in-place optimiser steps.
    pub fn add_scaled_(&mut self, other: &Tensor, alpha: f32) {
        zip_broadcast_inplace(self, other, |a, b| a + alpha * b);
    }

    /// In-place rectified linear unit.
    pub fn relu_(&mut self) {
        self.map_inplace(|v| v.max(0.0));
    }

    /// In-place logistic sigmoid (numerically stable on both tails).
    pub fn sigmoid_(&mut self) {
        self.map_inplace(stable_sigmoid);
    }

    /// In-place hyperbolic tangent.
    pub fn tanh_(&mut self) {
        self.map_inplace(f32::tanh);
    }
}

/// Sigmoid that does not overflow for large |x|.
pub fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{with_device, Device};

    #[test]
    fn basic_arithmetic() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.add(&b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.sub(&b).as_slice(), &[-3.0, -3.0, -3.0]);
        assert_eq!(a.mul(&b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).as_slice(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    fn scalar_helpers() {
        let a = Tensor::from_vec(vec![-1.0, 2.0], &[2]);
        assert_eq!(a.add_scalar(1.0).as_slice(), &[0.0, 3.0]);
        assert_eq!(a.mul_scalar(-2.0).as_slice(), &[2.0, -4.0]);
        assert_eq!(a.neg().as_slice(), &[1.0, -2.0]);
        assert_eq!(a.abs().as_slice(), &[1.0, 2.0]);
        assert_eq!(a.square().as_slice(), &[1.0, 4.0]);
    }

    #[test]
    fn activations() {
        let a = Tensor::from_vec(vec![-2.0, 0.0, 3.0], &[3]);
        assert_eq!(a.relu().as_slice(), &[0.0, 0.0, 3.0]);
        let s = a.sigmoid();
        assert!((s.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(s.as_slice()[0] < 0.5 && s.as_slice()[2] > 0.5);
        let t = a.tanh();
        assert!((t.as_slice()[1]).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert_eq!(stable_sigmoid(1000.0), 1.0);
        assert_eq!(stable_sigmoid(-1000.0), 0.0);
        assert!(stable_sigmoid(-1000.0).is_finite());
    }

    #[test]
    fn maximum_minimum_clamp() {
        let a = Tensor::from_vec(vec![1.0, 5.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 2.0], &[2]);
        assert_eq!(a.maximum(&b).as_slice(), &[3.0, 5.0]);
        assert_eq!(a.minimum(&b).as_slice(), &[1.0, 2.0]);
        assert_eq!(a.clamp(2.0, 4.0).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn gt_mask_broadcasts() {
        let a = Tensor::from_vec(vec![1.0, 3.0], &[2]);
        let m = a.gt_mask(&Tensor::scalar(2.0));
        assert_eq!(m.as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = Tensor::ones(&[3]);
        a.add_assign(&Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]));
        assert_eq!(a.as_slice(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn inplace_ops_match_out_of_place() {
        let base = Tensor::from_vec(vec![-1.0, 0.5, 2.0, -3.0], &[2, 2]);
        let other = Tensor::from_vec(vec![0.5, -1.5], &[2]);

        let mut t = base.clone();
        t.add_(&other);
        assert_eq!(t, base.add(&other));

        let mut t = base.clone();
        t.sub_(&other);
        assert_eq!(t, base.sub(&other));

        let mut t = base.clone();
        t.mul_(&other);
        assert_eq!(t, base.mul(&other));

        let mut t = base.clone();
        t.scale_(-2.5);
        assert_eq!(t, base.mul_scalar(-2.5));

        let mut t = base.clone();
        t.add_scaled_(&other, 0.75);
        assert_eq!(t, base.add(&other.mul_scalar(0.75)));

        let mut t = base.clone();
        t.relu_();
        assert_eq!(t, base.relu());

        let mut t = base.clone();
        t.sigmoid_();
        assert_eq!(t, base.sigmoid());

        let mut t = base.clone();
        t.tanh_();
        assert_eq!(t, base.tanh());
    }

    #[test]
    fn inplace_on_shared_storage_copy_on_writes() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let mut b = a.clone();
        b.add_(&a);
        assert_eq!(a.as_slice(), &[1.0, 2.0, 3.0], "original untouched");
        assert_eq!(b.as_slice(), &[2.0, 4.0, 6.0]);
        // Unique storage mutates without reallocating the Arc.
        let mut c = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        assert!(c.storage_unique());
        c.scale_(3.0);
        assert!(c.storage_unique());
        assert_eq!(c.as_slice(), &[3.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "in-place op")]
    fn inplace_rejects_enlarging_broadcast() {
        let mut small = Tensor::ones(&[1, 3]);
        small.add_(&Tensor::ones(&[2, 3]));
    }

    #[test]
    fn map_parallel_matches_serial() {
        let data: Vec<f32> = (0..100_000).map(|i| i as f32).collect();
        let t = Tensor::from_vec(data, &[100_000]);
        let serial = t.map(|v| v * 2.0 + 1.0);
        let parallel = with_device(Device::Parallel(4), || t.map(|v| v * 2.0 + 1.0));
        assert_eq!(serial, parallel);
    }
}
