//! Matrix multiplication kernels.

use crate::device::{parallel_for, SendPtr};
use crate::Tensor;

impl Tensor {
    /// 2-D matrix product `self [m,k] × other [k,n] → [m,n]`.
    ///
    /// Rows of the output are computed independently and fanned out across
    /// the current device's threads. The inner loop is written `ikj` so the
    /// innermost traversal is contiguous in both `other` and the output.
    ///
    /// # Panics
    /// If either operand is not 2-D or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let _t = geotorch_telemetry::scope!("tensor.matmul");
        assert_eq!(self.ndim(), 2, "matmul lhs must be 2-D, got {:?}", self.shape());
        assert_eq!(other.ndim(), 2, "matmul rhs must be 2-D, got {:?}", other.shape());
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        assert_eq!(
            k, k2,
            "matmul inner dims differ: {:?} × {:?}",
            self.shape(),
            other.shape()
        );
        let a = self.as_slice();
        let b = other.as_slice();
        // The kernel accumulates (and skips zero lhs entries), so the
        // output must start zeroed.
        let mut out = crate::pool::alloc_zeroed(m * n);
        // Split output rows into bands; each band is an independent task.
        let band = 16usize.max(if m > 0 { m.div_ceil(64) } else { 1 });
        let bands = m.div_ceil(band.max(1)).max(1);
        let out_ptr = SendPtr(out.as_mut_ptr());
        parallel_for(bands, |bi| {
            let row_start = bi * band;
            let row_end = ((bi + 1) * band).min(m);
            // SAFETY: bands touch disjoint row ranges of `out`.
            let out = unsafe {
                std::slice::from_raw_parts_mut({ &out_ptr }.0.add(row_start * n), (row_end - row_start) * n)
            };
            for (local_i, i) in (row_start..row_end).enumerate() {
                let a_row = &a[i * k..(i + 1) * k];
                let out_row = &mut out[local_i * n..(local_i + 1) * n];
                for (p, &a_ip) in a_row.iter().enumerate() {
                    if a_ip == 0.0 {
                        continue;
                    }
                    let b_row = &b[p * n..(p + 1) * n];
                    for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                        *o += a_ip * b_pj;
                    }
                }
            }
        });
        Tensor::from_vec(out, &[m, n])
    }

    /// Dot product of two 1-D tensors.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.ndim(), 1, "dot lhs must be 1-D");
        assert_eq!(self.shape(), other.shape(), "dot length mismatch");
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| a * b)
            .sum()
    }
}

/// Naive triple-loop reference used by tests and the kernel ablation bench.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[1];
    let mut out = crate::pool::alloc_uninit(m * n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a.as_slice()[i * k + p] * b.as_slice()[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{with_device, Device};
    use rand::SeedableRng;

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = Tensor::rand_uniform(&[5, 5], -1.0, 1.0, &mut rng);
        assert!(a.matmul(&Tensor::eye(5)).allclose(&a, 1e-6));
        assert!(Tensor::eye(5).matmul(&a).allclose(&a, 1e-6));
    }

    #[test]
    fn rectangular_matches_naive() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let a = Tensor::rand_uniform(&[7, 13], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[13, 5], -1.0, 1.0, &mut rng);
        assert!(a.matmul(&b).allclose(&matmul_naive(&a, &b), 1e-4));
    }

    #[test]
    fn parallel_matches_serial() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(19);
        let a = Tensor::rand_uniform(&[64, 32], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[32, 48], -1.0, 1.0, &mut rng);
        let serial = a.matmul(&b);
        let parallel = with_device(Device::Parallel(4), || a.matmul(&b));
        assert!(serial.allclose(&parallel, 1e-5));
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn mismatched_dims_panic() {
        Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.dot(&b), 32.0);
    }

    #[test]
    fn degenerate_shapes() {
        let a = Tensor::zeros(&[0, 4]);
        let b = Tensor::zeros(&[4, 3]);
        assert_eq!(a.matmul(&b).shape(), &[0, 3]);
        let c = Tensor::ones(&[1, 1]).matmul(&Tensor::full(&[1, 1], 2.0));
        assert_eq!(c.item(), 2.0);
    }
}
