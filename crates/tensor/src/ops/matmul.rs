//! Matrix multiplication kernels.
//!
//! # The packed, cache-blocked GEMM
//!
//! [`Tensor::matmul`] runs a BLIS-style blocked kernel instead of a
//! plain loop nest:
//!
//! * **Packing.** For each `KC`-deep panel, slices of `A` and `B` are
//!   repacked into contiguous, microkernel-ordered tiles ([`pack_a`] /
//!   [`pack_b`]) allocated from the tensor buffer pool — steady-state
//!   packing is allocation-free, which the `kernel_regression` gate in
//!   `geotorch-bench` enforces.
//! * **Blocking.** The loop nest walks `NC`-wide column blocks, `KC`-deep
//!   depth panels, and `MC`-tall row blocks, sized so an `A` block stays
//!   L2-resident and the `B` micro-panel streams through L1 while a
//!   [`MR`]`×`[`NR`] tile of `C` lives entirely in registers.
//! * **SIMD.** The innermost microkernel is selected once per process by
//!   runtime CPU detection: AVX+FMA (`std::arch` intrinsics, 2×8-lane
//!   fused multiply-adds per row), AVX without FMA, or a portable
//!   half-tile kernel the autovectorizer lowers to SSE. All variants
//!   share the packed layout.
//! * **Parallelism.** Products past [`GEMM_PARALLEL_FLOPS`] split the
//!   longer output axis into microkernel-aligned bands, one
//!   [`parallel_for`] task per band, so `Device::Parallel` distributes
//!   blocked tiles instead of raw rows.
//!
//! # Numerics and the oracle contract
//!
//! Every kernel variant accumulates each output element's products in
//! strictly ascending `p` order (the tile is loaded from `C`, updated,
//! and stored back, so `KC` panel boundaries do not reassociate the
//! sum). Rust never enables floating-point contraction on its own, so
//! the only rounding difference against the retained [`matmul_naive`]
//! oracle is the FMA microkernel's fused rounding. On inputs whose
//! products and partial sums are exactly representable (the lattice
//! inputs used by `tests/kernel_oracle.rs`) every variant is therefore
//! **bit-identical** to the oracle; on arbitrary inputs the deltas stay
//! within ordinary mul+add rounding of the same summation order.

use crate::device::{parallel_for, Device, SendPtr};
use crate::pool::Buffer;
use crate::Tensor;

/// Microkernel tile height: rows of `C` updated per microkernel call.
pub const MR: usize = 6;
/// Microkernel tile width: columns of `C` updated per microkernel call
/// (two 8-lane vectors).
pub const NR: usize = 16;
/// Row-block size: an `MC×KC` packed `A` block is sized for L2.
pub const MC: usize = 120;
/// Depth-panel size: `KC×NR` packed `B` micro-panels stream through L1.
pub const KC: usize = 256;
/// Column-block size: one packed `B` panel is at most `KC×NC`.
pub const NC: usize = 1024;

/// FLOP count (`2·m·n·k`) below which a product stays on the calling
/// thread: waking pool workers costs more than the arithmetic. Above
/// it, the longer output axis is split into tile-aligned bands.
pub const GEMM_PARALLEL_FLOPS: usize = 2 * 1024 * 1024;

/// `m·n·k` below which the packed path is skipped entirely: for tiny
/// products the pack/tile bookkeeping dominates, so a simple `ipj`
/// accumulation loop (same per-element order) wins.
const GEMM_TINY_MACS: usize = 16 * 1024;

impl Tensor {
    /// 2-D matrix product `self [m,k] × other [k,n] → [m,n]` via the
    /// packed, cache-blocked SIMD kernel (see the module docs).
    ///
    /// # Panics
    /// If either operand is not 2-D or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let _t = geotorch_telemetry::scope!("tensor.matmul");
        assert_eq!(self.ndim(), 2, "matmul lhs must be 2-D, got {:?}", self.shape());
        assert_eq!(other.ndim(), 2, "matmul rhs must be 2-D, got {:?}", other.shape());
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        assert_eq!(
            k, k2,
            "matmul inner dims differ: {:?} × {:?}",
            self.shape(),
            other.shape()
        );
        // The kernels accumulate `C += A·B`, so the output starts zeroed.
        let mut out = crate::pool::alloc_zeroed(m * n);
        gemm(self.as_slice(), other.as_slice(), &mut out, m, n, k);
        Tensor::from_vec(out, &[m, n])
    }

    /// Dot product of two 1-D tensors.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.ndim(), 1, "dot lhs must be 1-D");
        assert_eq!(self.shape(), other.shape(), "dot length mismatch");
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| a * b)
            .sum()
    }
}

/// Naive triple-loop reference used as the test oracle and by the kernel
/// ablation bench. Accumulates each element's products in ascending `p`
/// order — the order every fast kernel reproduces.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[1];
    let mut out = crate::pool::alloc_uninit(m * n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a.as_slice()[i * k + p] * b.as_slice()[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n])
}

// ------------------------------------------------------------ dispatch

/// The SIMD tier the microkernel runs at, detected once per process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Simd {
    /// AVX 8-lane vectors with fused multiply-add (`vfmadd231ps`).
    Fma,
    /// AVX 8-lane vectors, separate multiply and add.
    Avx,
    /// Autovectorized half-tile fallback (SSE on x86, NEON elsewhere).
    Portable,
}

/// Runtime CPU-feature detection, memoized for the process lifetime.
pub(crate) fn simd() -> Simd {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static TIER: OnceLock<Simd> = OnceLock::new();
        *TIER.get_or_init(|| {
            if std::is_x86_feature_detected!("avx") && std::is_x86_feature_detected!("fma") {
                Simd::Fma
            } else if std::is_x86_feature_detected!("avx") {
                Simd::Avx
            } else {
                Simd::Portable
            }
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Simd::Portable
    }
}

/// Name of the detected microkernel tier (for benches and reports).
pub fn simd_kernel_name() -> &'static str {
    match simd() {
        Simd::Fma => "avx+fma",
        Simd::Avx => "avx",
        Simd::Portable => "portable",
    }
}

/// `out[m,n] += a[m,k] × b[k,n]`. `out` must hold `m·n` elements (it is
/// zeroed by [`Tensor::matmul`], so the net effect there is `A·B`).
pub(crate) fn gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, n: usize, k: usize) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if m * n * k <= GEMM_TINY_MACS {
        gemm_tiny(a, b, out, m, n, k);
        return;
    }
    let threads = Device::current().threads();
    let c = SendPtr(out.as_mut_ptr());
    if threads > 1 && 2 * m * n * k >= GEMM_PARALLEL_FLOPS {
        // Split the longer output axis into tile-aligned bands; each
        // band is an independent serial blocked GEMM over disjoint
        // rows/columns of C.
        if m >= n {
            let band = m.div_ceil(threads).div_ceil(MR) * MR;
            parallel_for(m.div_ceil(band), |bi| {
                let r0 = bi * band;
                let r1 = (r0 + band).min(m);
                gemm_block(a, b, c, (r0, r1), (0, n), k, n);
            });
        } else {
            let band = n.div_ceil(threads).div_ceil(NR) * NR;
            parallel_for(n.div_ceil(band), |bi| {
                let c0 = bi * band;
                let c1 = (c0 + band).min(n);
                gemm_block(a, b, c, (0, m), (c0, c1), k, n);
            });
        }
    } else {
        gemm_block(a, b, c, (0, m), (0, n), k, n);
    }
}

/// Tiny-product path: plain `ipj` accumulation, no packing. Same
/// per-element accumulation order as the blocked path and the oracle.
fn gemm_tiny(a: &[f32], b: &[f32], out: &mut [f32], m: usize, n: usize, k: usize) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                *o += a_ip * b_pj;
            }
        }
    }
}

/// Serial blocked GEMM over `C[rows, cols] += A[rows, :] × B[:, cols]`.
/// Pack buffers come from the tensor pool, so repeated products recycle
/// them instead of touching the heap.
fn gemm_block(
    a: &[f32],
    b: &[f32],
    c: SendPtr<f32>,
    rows: (usize, usize),
    cols: (usize, usize),
    k: usize,
    ldc: usize,
) {
    let kern = simd();
    let (r0, r1) = rows;
    let (c0, c1) = cols;
    let a_rows = (r1 - r0).min(MC).div_ceil(MR) * MR;
    let b_cols = (c1 - c0).min(NC).div_ceil(NR) * NR;
    let kc_max = k.min(KC);
    let mut apack = Buffer::uninit(a_rows * kc_max);
    let mut bpack = Buffer::uninit(kc_max * b_cols);
    let ap = apack.as_mut_slice();
    let bp = bpack.as_mut_slice();
    let mut jc = c0;
    while jc < c1 {
        let nc = NC.min(c1 - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_b(b, bp, pc, jc, kc, nc, ldc);
            let mut ic = r0;
            while ic < r1 {
                let mc = MC.min(r1 - ic);
                pack_a(a, ap, ic, pc, mc, kc, k);
                for jr in (0..nc).step_by(NR) {
                    let nr = NR.min(nc - jr);
                    let pb = &bp[(jr / NR) * (kc * NR)..][..kc * NR];
                    for ir in (0..mc).step_by(MR) {
                        let mr = MR.min(mc - ir);
                        let pa = &ap[(ir / MR) * (kc * MR)..][..kc * MR];
                        // SAFETY: the tile covers rows ic+ir..ic+ir+mr and
                        // columns jc+jr..jc+jr+nr, all inside this band's
                        // disjoint region of C.
                        let ctile = unsafe { c.0.add((ic + ir) * ldc + jc + jr) };
                        if mr == MR && nr == NR {
                            match kern {
                                #[cfg(target_arch = "x86_64")]
                                // SAFETY: tier detected at runtime; full
                                // tile bounds as above.
                                Simd::Fma => unsafe {
                                    mk_fma(pa.as_ptr(), pb.as_ptr(), kc, ctile, ldc)
                                },
                                #[cfg(target_arch = "x86_64")]
                                // SAFETY: as for `mk_fma`.
                                Simd::Avx => unsafe {
                                    mk_avx(pa.as_ptr(), pb.as_ptr(), kc, ctile, ldc)
                                },
                                _ => mk_portable(pa, pb, kc, ctile, ldc),
                            }
                        } else {
                            mk_edge(pa, pb, kc, ctile, ldc, mr, nr);
                        }
                    }
                }
                ic += mc;
            }
            pc += kc;
        }
        jc += nc;
    }
}

/// Pack `A[ic.., pc..]` (`mc×kc`) into `MR`-row micro-panels laid out
/// `[row_block][p][r]`, zero-padding the ragged final block so the full
/// microkernel never reads out of bounds.
fn pack_a(a: &[f32], ap: &mut [f32], ic: usize, pc: usize, mc: usize, kc: usize, lda: usize) {
    for ib in 0..mc.div_ceil(MR) {
        let dst = &mut ap[ib * kc * MR..][..kc * MR];
        let rows = MR.min(mc - ib * MR);
        for p in 0..kc {
            let tile = &mut dst[p * MR..(p + 1) * MR];
            for (r, slot) in tile[..rows].iter_mut().enumerate() {
                *slot = a[(ic + ib * MR + r) * lda + pc + p];
            }
            tile[rows..].fill(0.0);
        }
    }
}

/// Pack `B[pc.., jc..]` (`kc×nc`) into `NR`-column micro-panels laid out
/// `[col_block][p][lane]`, zero-padding ragged lanes.
fn pack_b(b: &[f32], bp: &mut [f32], pc: usize, jc: usize, kc: usize, nc: usize, ldb: usize) {
    for jb in 0..nc.div_ceil(NR) {
        let dst = &mut bp[jb * kc * NR..][..kc * NR];
        let cols = NR.min(nc - jb * NR);
        for p in 0..kc {
            let src = &b[(pc + p) * ldb + jc + jb * NR..][..cols];
            dst[p * NR..p * NR + cols].copy_from_slice(src);
            dst[p * NR + cols..(p + 1) * NR].fill(0.0);
        }
    }
}

/// AVX+FMA full-tile microkernel: `MR×NR` tile of `C` held in twelve
/// 8-lane registers, one fused multiply-add pair per packed `A` scalar.
///
/// # Safety
/// Requires AVX and FMA (checked by [`simd`]); `pa`/`pb` must hold
/// `kc·MR` / `kc·NR` packed elements and `c` an `MR×NR` tile with row
/// stride `ldc`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx,fma")]
unsafe fn mk_fma(pa: *const f32, pb: *const f32, kc: usize, c: *mut f32, ldc: usize) {
    use std::arch::x86_64::*;
    let mut acc = [[_mm256_setzero_ps(); 2]; MR];
    for (r, row) in acc.iter_mut().enumerate() {
        row[0] = _mm256_loadu_ps(c.add(r * ldc));
        row[1] = _mm256_loadu_ps(c.add(r * ldc + 8));
    }
    for p in 0..kc {
        let b0 = _mm256_loadu_ps(pb.add(p * NR));
        let b1 = _mm256_loadu_ps(pb.add(p * NR + 8));
        for (r, row) in acc.iter_mut().enumerate() {
            let a = _mm256_broadcast_ss(&*pa.add(p * MR + r));
            row[0] = _mm256_fmadd_ps(a, b0, row[0]);
            row[1] = _mm256_fmadd_ps(a, b1, row[1]);
        }
    }
    for (r, row) in acc.iter().enumerate() {
        _mm256_storeu_ps(c.add(r * ldc), row[0]);
        _mm256_storeu_ps(c.add(r * ldc + 8), row[1]);
    }
}

/// AVX full-tile microkernel without FMA: separate multiply and add, so
/// its rounding matches the scalar oracle bit-for-bit.
///
/// # Safety
/// Requires AVX; same contracts as [`mk_fma`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn mk_avx(pa: *const f32, pb: *const f32, kc: usize, c: *mut f32, ldc: usize) {
    use std::arch::x86_64::*;
    let mut acc = [[_mm256_setzero_ps(); 2]; MR];
    for (r, row) in acc.iter_mut().enumerate() {
        row[0] = _mm256_loadu_ps(c.add(r * ldc));
        row[1] = _mm256_loadu_ps(c.add(r * ldc + 8));
    }
    for p in 0..kc {
        let b0 = _mm256_loadu_ps(pb.add(p * NR));
        let b1 = _mm256_loadu_ps(pb.add(p * NR + 8));
        for (r, row) in acc.iter_mut().enumerate() {
            let a = _mm256_broadcast_ss(&*pa.add(p * MR + r));
            row[0] = _mm256_add_ps(row[0], _mm256_mul_ps(a, b0));
            row[1] = _mm256_add_ps(row[1], _mm256_mul_ps(a, b1));
        }
    }
    for (r, row) in acc.iter().enumerate() {
        _mm256_storeu_ps(c.add(r * ldc), row[0]);
        _mm256_storeu_ps(c.add(r * ldc + 8), row[1]);
    }
}

/// Portable full-tile microkernel: the tile is processed in two 8-lane
/// halves so the live accumulators fit the 16 SSE registers, and the
/// plain mul+add loops autovectorize on any target.
fn mk_portable(pa: &[f32], pb: &[f32], kc: usize, c: *mut f32, ldc: usize) {
    const H: usize = NR / 2;
    for half in 0..2 {
        let off = half * H;
        let mut acc = [[0.0f32; H]; MR];
        for (r, row) in acc.iter_mut().enumerate() {
            for (l, v) in row.iter_mut().enumerate() {
                // SAFETY: full-tile call — all MR×NR elements in bounds.
                *v = unsafe { *c.add(r * ldc + off + l) };
            }
        }
        for p in 0..kc {
            let bv = &pb[p * NR + off..p * NR + off + H];
            let av = &pa[p * MR..(p + 1) * MR];
            for (row, &a) in acc.iter_mut().zip(av) {
                for (v, &bl) in row.iter_mut().zip(bv) {
                    *v += a * bl;
                }
            }
        }
        for (r, row) in acc.iter().enumerate() {
            for (l, &v) in row.iter().enumerate() {
                // SAFETY: as above.
                unsafe { *c.add(r * ldc + off + l) = v };
            }
        }
    }
}

/// Ragged-edge microkernel for partial `mr×nr` tiles. Each valid row
/// still accumulates a full `NR`-lane stripe (the packed panels are
/// zero-padded, so the extra lanes are dead work the autovectorizer
/// keeps in vectors); only the `nr` valid lanes are stored back.
fn mk_edge(pa: &[f32], pb: &[f32], kc: usize, c: *mut f32, ldc: usize, mr: usize, nr: usize) {
    for r in 0..mr {
        let mut acc = [0.0f32; NR];
        for (l, v) in acc[..nr].iter_mut().enumerate() {
            // SAFETY: r < mr and l < nr keep the access inside the valid
            // corner of the C tile.
            *v = unsafe { *c.add(r * ldc + l) };
        }
        for p in 0..kc {
            let a = pa[p * MR + r];
            for (v, &bl) in acc.iter_mut().zip(&pb[p * NR..(p + 1) * NR]) {
                *v += a * bl;
            }
        }
        for (l, &v) in acc[..nr].iter().enumerate() {
            // SAFETY: as above.
            unsafe { *c.add(r * ldc + l) = v };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{with_device, Device};
    use rand::SeedableRng;

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = Tensor::rand_uniform(&[5, 5], -1.0, 1.0, &mut rng);
        assert!(a.matmul(&Tensor::eye(5)).allclose(&a, 1e-6));
        assert!(Tensor::eye(5).matmul(&a).allclose(&a, 1e-6));
    }

    #[test]
    fn rectangular_matches_naive() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let a = Tensor::rand_uniform(&[7, 13], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[13, 5], -1.0, 1.0, &mut rng);
        assert!(a.matmul(&b).allclose(&matmul_naive(&a, &b), 1e-4));
    }

    #[test]
    fn packed_path_matches_naive_past_block_edges() {
        // Big enough to leave the tiny path and cross MR/NR/MC/KC edges.
        let mut rng = rand::rngs::StdRng::seed_from_u64(29);
        for &(m, k, n) in &[(MC + 3, KC + 5, NR + 1), (64, 64, 64), (MR, 1, NR)] {
            let a = Tensor::rand_uniform(&[m, k], -1.0, 1.0, &mut rng);
            let b = Tensor::rand_uniform(&[k, n], -1.0, 1.0, &mut rng);
            assert!(
                a.matmul(&b).allclose(&matmul_naive(&a, &b), 1e-3),
                "mismatch at m={m} k={k} n={n}"
            );
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(19);
        let a = Tensor::rand_uniform(&[64, 32], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[32, 48], -1.0, 1.0, &mut rng);
        let serial = a.matmul(&b);
        let parallel = with_device(Device::Parallel(4), || a.matmul(&b));
        assert!(serial.allclose(&parallel, 1e-5));
    }

    #[test]
    fn parallel_band_split_is_bit_identical() {
        // Large enough to cross GEMM_PARALLEL_FLOPS: band splitting must
        // not change any element's accumulation order.
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let a = Tensor::rand_uniform(&[160, 130], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[130, 96], -1.0, 1.0, &mut rng);
        let serial = a.matmul(&b);
        let parallel = with_device(Device::Parallel(4), || a.matmul(&b));
        assert_eq!(serial.as_slice(), parallel.as_slice());
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn mismatched_dims_panic() {
        Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.dot(&b), 32.0);
    }

    #[test]
    fn degenerate_shapes() {
        let a = Tensor::zeros(&[0, 4]);
        let b = Tensor::zeros(&[4, 3]);
        assert_eq!(a.matmul(&b).shape(), &[0, 3]);
        let c = Tensor::ones(&[1, 1]).matmul(&Tensor::full(&[1, 1], 2.0));
        assert_eq!(c.item(), 2.0);
    }

    #[test]
    fn simd_tier_is_detected_once() {
        assert_eq!(simd(), simd());
        assert!(!simd_kernel_name().is_empty());
    }
}
