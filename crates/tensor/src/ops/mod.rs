//! Tensor kernels, grouped by family.
//!
//! All kernels operate on contiguous row-major buffers and respect the
//! thread-local [`crate::Device`] for parallel execution.

pub mod broadcast;
pub mod conv;
pub mod elementwise;
pub mod matmul;
pub mod pool;
pub mod reduce;
pub mod shape_ops;
pub mod softmax;
