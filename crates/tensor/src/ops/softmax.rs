//! Row-wise softmax and log-softmax over the last axis.

use crate::Tensor;

impl Tensor {
    /// Softmax over the last axis, numerically stabilised by max-shift.
    pub fn softmax_lastdim(&self) -> Tensor {
        assert!(self.ndim() >= 1, "softmax requires at least 1 axis");
        let cols = *self.shape().last().expect("non-empty shape");
        assert!(cols > 0, "softmax over empty axis");
        let rows = self.len() / cols;
        let src = self.as_slice();
        let mut out = vec![0.0f32; self.len()];
        for r in 0..rows {
            let row = &src[r * cols..(r + 1) * cols];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let dst = &mut out[r * cols..(r + 1) * cols];
            let mut sum = 0.0;
            for (d, &v) in dst.iter_mut().zip(row) {
                *d = (v - m).exp();
                sum += *d;
            }
            let inv = 1.0 / sum;
            for d in dst.iter_mut() {
                *d *= inv;
            }
        }
        Tensor::from_vec(out, self.shape())
    }

    /// Log-softmax over the last axis (stable log-sum-exp).
    pub fn log_softmax_lastdim(&self) -> Tensor {
        let cols = *self.shape().last().expect("non-empty shape");
        let rows = self.len() / cols;
        let src = self.as_slice();
        let mut out = vec![0.0f32; self.len()];
        for r in 0..rows {
            let row = &src[r * cols..(r + 1) * cols];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = m + row.iter().map(|&v| (v - m).exp()).sum::<f32>().ln();
            for (d, &v) in out[r * cols..(r + 1) * cols].iter_mut().zip(row) {
                *d = v - lse;
            }
        }
        Tensor::from_vec(out, self.shape())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let s = t.softmax_lastdim();
        for r in 0..2 {
            let sum: f32 = s.as_slice()[r * 3..(r + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Monotone in the logits.
        assert!(s.at(&[0, 2]) > s.at(&[0, 1]));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = a.add_scalar(100.0);
        assert!(a.softmax_lastdim().allclose(&b.softmax_lastdim(), 1e-6));
    }

    #[test]
    fn softmax_survives_large_logits() {
        let t = Tensor::from_vec(vec![1000.0, 0.0], &[2]);
        let s = t.softmax_lastdim();
        assert!((s.as_slice()[0] - 1.0).abs() < 1e-6);
        assert!(s.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let t = Tensor::from_vec(vec![0.5, -0.5, 2.0, 1.0, 1.0, 1.0], &[2, 3]);
        let ls = t.log_softmax_lastdim();
        let reference = t.softmax_lastdim().ln();
        assert!(ls.allclose(&reference, 1e-5));
    }

    #[test]
    fn uniform_logits_give_uniform_probs() {
        let t = Tensor::zeros(&[1, 4]);
        let s = t.softmax_lastdim();
        assert!(s.as_slice().iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }
}
