//! Row-wise softmax and log-softmax over the last axis.
//!
//! Each row writes a disjoint `cols`-wide slice of the output, so rows fan
//! out over the device worker pool once the tensor clears
//! [`PARALLEL_THRESHOLD`].

use crate::device::{parallel_for, SendPtr, PARALLEL_THRESHOLD};
use crate::Tensor;

impl Tensor {
    /// Softmax over the last axis, numerically stabilised by max-shift.
    pub fn softmax_lastdim(&self) -> Tensor {
        let _t = geotorch_telemetry::scope!("tensor.softmax");
        assert!(self.ndim() >= 1, "softmax requires at least 1 axis");
        let cols = *self.shape().last().expect("non-empty shape");
        assert!(cols > 0, "softmax over empty axis");
        let rows = self.len() / cols;
        let src = self.as_slice();
        let mut out = crate::pool::alloc_uninit(self.len());
        let out_ptr = SendPtr(out.as_mut_ptr());
        let do_row = move |r: usize| {
            let out_ptr = out_ptr;
            let row = &src[r * cols..(r + 1) * cols];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            // SAFETY: row `r` owns output range [r*cols, (r+1)*cols).
            unsafe {
                for (j, &v) in row.iter().enumerate() {
                    let e = (v - m).exp();
                    *out_ptr.0.add(r * cols + j) = e;
                    sum += e;
                }
                let inv = 1.0 / sum;
                for j in 0..cols {
                    *out_ptr.0.add(r * cols + j) *= inv;
                }
            }
        };
        if self.len() >= PARALLEL_THRESHOLD && rows > 1 {
            parallel_for(rows, do_row);
        } else {
            (0..rows).for_each(do_row);
        }
        Tensor::from_vec(out, self.shape())
    }

    /// Log-softmax over the last axis (stable log-sum-exp).
    pub fn log_softmax_lastdim(&self) -> Tensor {
        let _t = geotorch_telemetry::scope!("tensor.log_softmax");
        let cols = *self.shape().last().expect("non-empty shape");
        let rows = self.len() / cols;
        let src = self.as_slice();
        let mut out = crate::pool::alloc_uninit(self.len());
        let out_ptr = SendPtr(out.as_mut_ptr());
        let do_row = move |r: usize| {
            let out_ptr = out_ptr;
            let row = &src[r * cols..(r + 1) * cols];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = m + row.iter().map(|&v| (v - m).exp()).sum::<f32>().ln();
            for (j, &v) in row.iter().enumerate() {
                // SAFETY: row `r` owns output range [r*cols, (r+1)*cols).
                unsafe { *out_ptr.0.add(r * cols + j) = v - lse };
            }
        };
        if self.len() >= PARALLEL_THRESHOLD && rows > 1 {
            parallel_for(rows, do_row);
        } else {
            (0..rows).for_each(do_row);
        }
        Tensor::from_vec(out, self.shape())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let s = t.softmax_lastdim();
        for r in 0..2 {
            let sum: f32 = s.as_slice()[r * 3..(r + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Monotone in the logits.
        assert!(s.at(&[0, 2]) > s.at(&[0, 1]));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = a.add_scalar(100.0);
        assert!(a.softmax_lastdim().allclose(&b.softmax_lastdim(), 1e-6));
    }

    #[test]
    fn softmax_survives_large_logits() {
        let t = Tensor::from_vec(vec![1000.0, 0.0], &[2]);
        let s = t.softmax_lastdim();
        assert!((s.as_slice()[0] - 1.0).abs() < 1e-6);
        assert!(s.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let t = Tensor::from_vec(vec![0.5, -0.5, 2.0, 1.0, 1.0, 1.0], &[2, 3]);
        let ls = t.log_softmax_lastdim();
        let reference = t.softmax_lastdim().ln();
        assert!(ls.allclose(&reference, 1e-5));
    }

    #[test]
    fn uniform_logits_give_uniform_probs() {
        let t = Tensor::zeros(&[1, 4]);
        let s = t.softmax_lastdim();
        assert!(s.as_slice().iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn large_tensor_takes_parallel_path() {
        // 64 rows x 1024 cols clears PARALLEL_THRESHOLD.
        let t = Tensor::arange(64 * 1024).reshape(&[64, 1024]).mul_scalar(1e-3);
        let s = crate::with_device(crate::Device::parallel(), || t.softmax_lastdim());
        for r in 0..64 {
            let sum: f32 = s.as_slice()[r * 1024..(r + 1) * 1024].iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
        }
    }
}
