//! Shape manipulation: reshape, transpose, permute, slicing, concat, pad.

use crate::{numel, strides_for, Tensor};

impl Tensor {
    /// Reinterpret the buffer with a new shape (same element count).
    /// Tensors are always contiguous, so this is a zero-copy metadata
    /// move: the result shares storage with `self` (copy-on-write keeps
    /// later mutations of either side independent).
    ///
    /// # Panics
    /// If the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            self.len(),
            numel(shape),
            "cannot reshape {:?} ({} elems) into {:?} ({} elems)",
            self.shape(),
            self.len(),
            shape,
            numel(shape)
        );
        Tensor::from_shared(self.storage(), shape)
    }

    /// Flatten into a 1-D tensor.
    pub fn flatten(&self) -> Tensor {
        self.reshape(&[self.len()])
    }

    /// Insert a new axis of extent 1 at `axis`.
    pub fn unsqueeze(&self, axis: usize) -> Tensor {
        assert!(axis <= self.ndim(), "unsqueeze axis out of range");
        let mut shape = self.shape().to_vec();
        shape.insert(axis, 1);
        self.reshape(&shape)
    }

    /// Remove an axis of extent 1 at `axis`.
    ///
    /// # Panics
    /// If the axis does not have extent 1.
    pub fn squeeze(&self, axis: usize) -> Tensor {
        assert_eq!(
            self.shape()[axis],
            1,
            "squeeze axis {} has extent {} (must be 1)",
            axis,
            self.shape()[axis]
        );
        let mut shape = self.shape().to_vec();
        shape.remove(axis);
        self.reshape(&shape)
    }

    /// Transpose a 2-D tensor.
    ///
    /// # Panics
    /// If the tensor is not 2-D.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "transpose requires 2-D, got {:?}", self.shape());
        let (r, c) = (self.shape()[0], self.shape()[1]);
        let src = self.as_slice();
        let mut out = crate::pool::alloc_uninit(r * c);
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = src[i * c + j];
            }
        }
        Tensor::from_vec(out, &[c, r])
    }

    /// Permute axes: `perm[i]` names the source axis placed at position `i`.
    ///
    /// # Panics
    /// If `perm` is not a permutation of `0..ndim`.
    pub fn permute(&self, perm: &[usize]) -> Tensor {
        let rank = self.ndim();
        assert_eq!(perm.len(), rank, "permute needs {} axes, got {:?}", rank, perm);
        let mut seen = vec![false; rank];
        for &p in perm {
            assert!(p < rank && !seen[p], "permute {:?} is not a permutation", perm);
            seen[p] = true;
        }
        let src_shape = self.shape();
        let src_strides = strides_for(src_shape);
        let out_shape: Vec<usize> = perm.iter().map(|&p| src_shape[p]).collect();
        let total = self.len();
        let mut out = crate::pool::alloc_uninit(total);
        let src = self.as_slice();
        let mut index = vec![0usize; rank];
        let step: Vec<usize> = perm.iter().map(|&p| src_strides[p]).collect();
        let mut offset = 0usize;
        for slot in out.iter_mut() {
            *slot = src[offset];
            for ax in (0..rank).rev() {
                index[ax] += 1;
                offset += step[ax];
                if index[ax] < out_shape[ax] {
                    break;
                }
                offset -= step[ax] * out_shape[ax];
                index[ax] = 0;
            }
        }
        Tensor::from_vec(out, &out_shape)
    }

    /// Slice `[start, end)` along `axis`.
    ///
    /// # Panics
    /// If the range is empty-invalid or out of bounds.
    pub fn narrow(&self, axis: usize, start: usize, end: usize) -> Tensor {
        let shape = self.shape();
        assert!(axis < shape.len(), "narrow axis {} out of range", axis);
        assert!(
            start <= end && end <= shape[axis],
            "narrow range {}..{} invalid for axis of extent {}",
            start,
            end,
            shape[axis]
        );
        // Keeping the full extent is a no-op: share storage.
        if start == 0 && end == shape[axis] {
            return self.clone();
        }
        let outer: usize = shape[..axis].iter().product();
        let inner: usize = shape[axis + 1..].iter().product();
        let n = shape[axis];
        let keep = end - start;
        let src = self.as_slice();
        let mut out = crate::pool::alloc_uninit(outer * keep * inner);
        for o in 0..outer {
            let base = (o * n + start) * inner;
            out[o * keep * inner..(o + 1) * keep * inner]
                .copy_from_slice(&src[base..base + keep * inner]);
        }
        let mut out_shape = shape.to_vec();
        out_shape[axis] = keep;
        Tensor::from_vec(out, &out_shape)
    }

    /// Select a single index along `axis`, removing the axis.
    pub fn index_axis(&self, axis: usize, index: usize) -> Tensor {
        self.narrow(axis, index, index + 1).squeeze(axis)
    }

    /// Concatenate tensors along `axis`. All other axes must match.
    ///
    /// # Panics
    /// If `tensors` is empty or shapes are incompatible.
    pub fn concat(tensors: &[&Tensor], axis: usize) -> Tensor {
        assert!(!tensors.is_empty(), "concat of zero tensors");
        let first = tensors[0].shape();
        assert!(axis < first.len(), "concat axis {} out of range", axis);
        for t in tensors {
            assert_eq!(t.ndim(), first.len(), "concat rank mismatch");
            for (ax, (&a, &b)) in first.iter().zip(t.shape()).enumerate() {
                assert!(
                    ax == axis || a == b,
                    "concat shape mismatch on axis {}: {:?} vs {:?}",
                    ax,
                    first,
                    t.shape()
                );
            }
        }
        // A one-tensor concat is a no-op: share storage.
        if tensors.len() == 1 {
            return tensors[0].clone();
        }
        let outer: usize = first[..axis].iter().product();
        let inner: usize = first[axis + 1..].iter().product();
        let total_axis: usize = tensors.iter().map(|t| t.shape()[axis]).sum();
        let mut out = crate::pool::alloc_uninit(outer * total_axis * inner);
        let mut cursor = 0usize;
        for o in 0..outer {
            for t in tensors {
                let n = t.shape()[axis];
                let src = t.as_slice();
                let base = o * n * inner;
                out[cursor..cursor + n * inner].copy_from_slice(&src[base..base + n * inner]);
                cursor += n * inner;
            }
        }
        let mut out_shape = first.to_vec();
        out_shape[axis] = total_axis;
        Tensor::from_vec(out, &out_shape)
    }

    /// Stack tensors along a new leading axis.
    pub fn stack(tensors: &[&Tensor]) -> Tensor {
        assert!(!tensors.is_empty(), "stack of zero tensors");
        let shape = tensors[0].shape().to_vec();
        // Stacking one tensor is an unsqueeze: share storage.
        if tensors.len() == 1 {
            return tensors[0].unsqueeze(0);
        }
        let row = tensors[0].len();
        let mut out = crate::pool::alloc_uninit(tensors.len() * row);
        for (i, t) in tensors.iter().enumerate() {
            assert_eq!(t.shape(), &shape[..], "stack shape mismatch");
            out[i * row..(i + 1) * row].copy_from_slice(t.as_slice());
        }
        let mut out_shape = vec![tensors.len()];
        out_shape.extend_from_slice(&shape);
        Tensor::from_vec(out, &out_shape)
    }

    /// Zero-pad the last two axes by `pad` on every side (NCHW images).
    ///
    /// # Panics
    /// If the tensor has fewer than 2 axes.
    pub fn pad2d(&self, pad: usize) -> Tensor {
        if pad == 0 {
            return self.clone();
        }
        let rank = self.ndim();
        assert!(rank >= 2, "pad2d requires at least 2 axes");
        let (h, w) = (self.shape()[rank - 2], self.shape()[rank - 1]);
        let outer: usize = self.shape()[..rank - 2].iter().product();
        let (oh, ow) = (h + 2 * pad, w + 2 * pad);
        let mut out = crate::pool::alloc_zeroed(outer * oh * ow);
        let src = self.as_slice();
        for o in 0..outer {
            for i in 0..h {
                let src_base = (o * h + i) * w;
                let dst_base = (o * oh + i + pad) * ow + pad;
                out[dst_base..dst_base + w].copy_from_slice(&src[src_base..src_base + w]);
            }
        }
        let mut out_shape = self.shape().to_vec();
        out_shape[rank - 2] = oh;
        out_shape[rank - 1] = ow;
        Tensor::from_vec(out, &out_shape)
    }

    /// Remove `pad` elements from every side of the last two axes
    /// (the inverse of [`Tensor::pad2d`]).
    pub fn unpad2d(&self, pad: usize) -> Tensor {
        if pad == 0 {
            return self.clone();
        }
        let rank = self.ndim();
        let (h, w) = (self.shape()[rank - 2], self.shape()[rank - 1]);
        assert!(h > 2 * pad && w > 2 * pad, "unpad2d removes entire extent");
        self.narrow(rank - 2, pad, h - pad).narrow(rank - 1, pad, w - pad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reshape_and_flatten() {
        let t = Tensor::arange(6).reshape(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.flatten().shape(), &[6]);
        assert_eq!(t.unsqueeze(0).shape(), &[1, 2, 3]);
        assert_eq!(t.unsqueeze(0).squeeze(0).shape(), &[2, 3]);
    }

    #[test]
    fn reshape_family_shares_storage() {
        let t = Tensor::arange(6);
        // Metadata moves: no copy, so the original is no longer unique.
        let r = t.reshape(&[2, 3]);
        assert!(!t.storage_unique());
        let views = [r.flatten(), r.unsqueeze(1), r.unsqueeze(1).squeeze(1)];
        for v in &views {
            assert_eq!(v.as_slice(), t.as_slice());
        }
        // Copy-on-write keeps views independent under mutation.
        let mut m = t.reshape(&[3, 2]);
        m.set(&[0, 0], 99.0);
        assert_eq!(t.at(&[0]), 0.0);
        assert_eq!(m.at(&[0, 0]), 99.0);
    }

    #[test]
    fn narrow_full_range_and_single_concat_share_storage() {
        let t = Tensor::arange(8).reshape(&[2, 4]);
        let full = t.narrow(1, 0, 4);
        assert_eq!(full, t);
        assert!(!t.storage_unique(), "full-range narrow is a clone");
        let one = Tensor::concat(&[&t], 0);
        assert_eq!(one, t);
        let stacked = Tensor::stack(&[&t]);
        assert_eq!(stacked.shape(), &[1, 2, 4]);
        assert_eq!(stacked.as_slice(), t.as_slice());
    }

    #[test]
    fn transpose_2d() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = t.transpose();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.as_slice(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(tt.transpose(), t);
    }

    #[test]
    fn permute_matches_transpose() {
        let t = Tensor::arange(24).reshape(&[2, 3, 4]);
        let p = t.permute(&[2, 0, 1]);
        assert_eq!(p.shape(), &[4, 2, 3]);
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    assert_eq!(p.at(&[k, i, j]), t.at(&[i, j, k]));
                }
            }
        }
        let m = Tensor::arange(6).reshape(&[2, 3]);
        assert_eq!(m.permute(&[1, 0]), m.transpose());
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permute_rejects_duplicates() {
        Tensor::zeros(&[2, 3]).permute(&[0, 0]);
    }

    #[test]
    fn narrow_and_index_axis() {
        let t = Tensor::arange(24).reshape(&[2, 3, 4]);
        let n = t.narrow(1, 1, 3);
        assert_eq!(n.shape(), &[2, 2, 4]);
        assert_eq!(n.at(&[0, 0, 0]), t.at(&[0, 1, 0]));
        let idx = t.index_axis(0, 1);
        assert_eq!(idx.shape(), &[3, 4]);
        assert_eq!(idx.at(&[0, 0]), 12.0);
    }

    #[test]
    fn concat_middle_axis() {
        let a = Tensor::arange(4).reshape(&[2, 1, 2]);
        let b = Tensor::arange(8).reshape(&[2, 2, 2]);
        let c = Tensor::concat(&[&a, &b], 1);
        assert_eq!(c.shape(), &[2, 3, 2]);
        assert_eq!(c.at(&[0, 0, 0]), a.at(&[0, 0, 0]));
        assert_eq!(c.at(&[0, 1, 0]), b.at(&[0, 0, 0]));
        assert_eq!(c.at(&[1, 2, 1]), b.at(&[1, 1, 1]));
    }

    #[test]
    fn concat_then_narrow_round_trips() {
        let a = Tensor::arange(6).reshape(&[2, 3]);
        let b = Tensor::arange(4).reshape(&[2, 2]);
        let c = Tensor::concat(&[&a, &b], 1);
        assert_eq!(c.narrow(1, 0, 3), a);
        assert_eq!(c.narrow(1, 3, 5), b);
    }

    #[test]
    fn stack_adds_leading_axis() {
        let a = Tensor::ones(&[2, 2]);
        let b = Tensor::zeros(&[2, 2]);
        let s = Tensor::stack(&[&a, &b]);
        assert_eq!(s.shape(), &[2, 2, 2]);
        assert_eq!(s.at(&[0, 0, 0]), 1.0);
        assert_eq!(s.at(&[1, 0, 0]), 0.0);
    }

    #[test]
    fn pad_unpad_round_trip() {
        let t = Tensor::arange(12).reshape(&[1, 3, 4]);
        let p = t.pad2d(2);
        assert_eq!(p.shape(), &[1, 7, 8]);
        assert_eq!(p.at(&[0, 0, 0]), 0.0);
        assert_eq!(p.at(&[0, 2, 2]), t.at(&[0, 0, 0]));
        assert_eq!(p.unpad2d(2), t);
    }
}
