//! Reductions: full-tensor and per-axis.
//!
//! Full-tensor reductions split the buffer into fixed-size chunks, reduce
//! each chunk on the device worker pool, and combine the per-chunk partials
//! in chunk order — so the parallel result is deterministic for a given
//! length. Axis reductions fan out over the `outer` dimension instead, each
//! task writing a disjoint row of the output.

use crate::device::{parallel_for, SendPtr, PARALLEL_THRESHOLD};
use crate::Tensor;

/// Chunk length for parallel full-tensor reductions.
const REDUCE_CHUNK: usize = 64 * 1024;

/// Reduce each `REDUCE_CHUNK`-sized chunk of `data` with `f` on the worker
/// pool, returning the per-chunk partials in chunk order.
fn chunk_partials(data: &[f32], f: impl Fn(&[f32]) -> f64 + Sync) -> Vec<f64> {
    let chunks = data.len().div_ceil(REDUCE_CHUNK).max(1);
    let mut out = vec![0.0f64; chunks];
    let out_ptr = SendPtr(out.as_mut_ptr());
    parallel_for(chunks, move |i| {
        let out_ptr = out_ptr;
        let lo = i * REDUCE_CHUNK;
        let hi = (lo + REDUCE_CHUNK).min(data.len());
        // SAFETY: each chunk writes exactly its own `out[i]` slot.
        unsafe { *out_ptr.0.add(i) = f(&data[lo..hi]) };
    });
    out
}

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        let _t = geotorch_telemetry::scope!("tensor.reduce.sum");
        let data = self.as_slice();
        if data.len() >= PARALLEL_THRESHOLD {
            chunk_partials(data, |c| c.iter().map(|&v| v as f64).sum())
                .iter()
                .sum::<f64>() as f32
        } else {
            // Accumulation in f64 keeps large reductions accurate.
            data.iter().map(|&v| v as f64).sum::<f64>() as f32
        }
    }

    /// Mean of all elements (`NaN` for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            return f32::NAN;
        }
        self.sum() / self.len() as f32
    }

    /// Maximum element (`-inf` for empty tensors).
    pub fn max(&self) -> f32 {
        let data = self.as_slice();
        if data.len() >= PARALLEL_THRESHOLD {
            chunk_partials(data, |c| {
                c.iter().copied().fold(f32::NEG_INFINITY, f32::max) as f64
            })
            .iter()
            .fold(f64::NEG_INFINITY, |a, &b| a.max(b)) as f32
        } else {
            data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
        }
    }

    /// Minimum element (`+inf` for empty tensors).
    pub fn min(&self) -> f32 {
        let data = self.as_slice();
        if data.len() >= PARALLEL_THRESHOLD {
            chunk_partials(data, |c| {
                c.iter().copied().fold(f32::INFINITY, f32::min) as f64
            })
            .iter()
            .fold(f64::INFINITY, |a, &b| a.min(b)) as f32
        } else {
            data.iter().copied().fold(f32::INFINITY, f32::min)
        }
    }

    /// Population variance of all elements.
    pub fn variance(&self) -> f32 {
        if self.is_empty() {
            return f32::NAN;
        }
        let mean = self.mean() as f64;
        let data = self.as_slice();
        let sum_sq = |c: &[f32]| {
            c.iter()
                .map(|&v| {
                    let d = v as f64 - mean;
                    d * d
                })
                .sum::<f64>()
        };
        let ss: f64 = if data.len() >= PARALLEL_THRESHOLD {
            chunk_partials(data, sum_sq).iter().sum()
        } else {
            sum_sq(data)
        };
        (ss / self.len() as f64) as f32
    }

    /// Index of the maximum element in the flat buffer.
    pub fn argmax(&self) -> usize {
        assert!(!self.is_empty(), "argmax on empty tensor");
        let mut best = 0;
        let data = self.as_slice();
        for (i, &v) in data.iter().enumerate() {
            if v > data[best] {
                best = i;
            }
        }
        best
    }

    /// Sum along `axis`, removing it from the shape.
    pub fn sum_axis(&self, axis: usize) -> Tensor {
        let t = self.sum_axis_keepdim(axis);
        let mut shape = t.shape().to_vec();
        shape.remove(axis);
        t.reshape(&shape)
    }

    /// Sum along `axis`, keeping it with extent 1.
    ///
    /// # Panics
    /// If `axis` is out of range.
    pub fn sum_axis_keepdim(&self, axis: usize) -> Tensor {
        let _t = geotorch_telemetry::scope!("tensor.reduce.sum_axis");
        self.reduce_axis_keepdim(axis, 0.0, |acc, v| acc + v)
    }

    /// Mean along `axis`, removing it from the shape.
    pub fn mean_axis(&self, axis: usize) -> Tensor {
        let n = self.shape()[axis] as f32;
        self.sum_axis(axis).mul_scalar(1.0 / n)
    }

    /// Maximum along `axis`, removing it from the shape.
    pub fn max_axis(&self, axis: usize) -> Tensor {
        let t = self.reduce_axis_keepdim(axis, f32::NEG_INFINITY, f32::max);
        let mut shape = t.shape().to_vec();
        shape.remove(axis);
        t.reshape(&shape)
    }

    /// Per-row argmax of a 2-D tensor: returns the column index of the
    /// largest value in each row.
    ///
    /// # Panics
    /// If the tensor is not 2-D.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.ndim(), 2, "argmax_rows requires a 2-D tensor");
        let (rows, cols) = (self.shape()[0], self.shape()[1]);
        let data = self.as_slice();
        let row_best = |r: usize| {
            let row = &data[r * cols..(r + 1) * cols];
            let mut best = 0;
            for (c, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = c;
                }
            }
            best
        };
        let mut out = vec![0usize; rows];
        if data.len() >= PARALLEL_THRESHOLD && rows > 1 {
            let out_ptr = SendPtr(out.as_mut_ptr());
            parallel_for(rows, move |r| {
                let out_ptr = out_ptr;
                // SAFETY: each row writes exactly its own `out[r]` slot.
                unsafe { *out_ptr.0.add(r) = row_best(r) };
            });
        } else {
            for (r, o) in out.iter_mut().enumerate() {
                *o = row_best(r);
            }
        }
        out
    }

    fn reduce_axis_keepdim(
        &self,
        axis: usize,
        init: f32,
        f: impl Fn(f32, f32) -> f32 + Sync,
    ) -> Tensor {
        assert!(
            axis < self.ndim(),
            "axis {} out of range for shape {:?}",
            axis,
            self.shape()
        );
        let shape = self.shape();
        let outer: usize = shape[..axis].iter().product();
        let n = shape[axis];
        let inner: usize = shape[axis + 1..].iter().product();
        let data = self.as_slice();
        let mut out = crate::pool::alloc_filled(outer * inner, init);
        let out_ptr = SendPtr(out.as_mut_ptr());
        let f = &f;
        let reduce_outer = move |o: usize| {
            let out_ptr = out_ptr;
            let src_base = o * n * inner;
            let dst_base = o * inner;
            for k in 0..n {
                let row = &data[src_base + k * inner..src_base + (k + 1) * inner];
                for (j, &v) in row.iter().enumerate() {
                    // SAFETY: task `o` owns output range [o*inner, (o+1)*inner).
                    unsafe {
                        let d = out_ptr.0.add(dst_base + j);
                        *d = f(*d, v);
                    }
                }
            }
        };
        if data.len() >= PARALLEL_THRESHOLD && outer > 1 {
            parallel_for(outer, reduce_outer);
        } else {
            (0..outer).for_each(reduce_outer);
        }
        let mut out_shape = shape.to_vec();
        out_shape[axis] = 1;
        Tensor::from_vec(out, &out_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t23() -> Tensor {
        Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])
    }

    #[test]
    fn full_reductions() {
        let t = t23();
        assert_eq!(t.sum(), 21.0);
        assert_eq!(t.mean(), 3.5);
        assert_eq!(t.max(), 6.0);
        assert_eq!(t.min(), 1.0);
        assert!((t.variance() - 35.0 / 12.0).abs() < 1e-5);
        assert_eq!(t.argmax(), 5);
    }

    #[test]
    fn axis_reductions() {
        let t = t23();
        let s0 = t.sum_axis(0);
        assert_eq!(s0.shape(), &[3]);
        assert_eq!(s0.as_slice(), &[5.0, 7.0, 9.0]);
        let s1 = t.sum_axis(1);
        assert_eq!(s1.shape(), &[2]);
        assert_eq!(s1.as_slice(), &[6.0, 15.0]);
        let k = t.sum_axis_keepdim(1);
        assert_eq!(k.shape(), &[2, 1]);
        let m = t.mean_axis(0);
        assert_eq!(m.as_slice(), &[2.5, 3.5, 4.5]);
        let mx = t.max_axis(0);
        assert_eq!(mx.as_slice(), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn three_dim_axis_reduction() {
        let t = Tensor::arange(24).reshape(&[2, 3, 4]);
        let s = t.sum_axis(1);
        assert_eq!(s.shape(), &[2, 4]);
        assert_eq!(s.at(&[0, 0]), 0.0 + 4.0 + 8.0);
        assert_eq!(s.at(&[1, 3]), 15.0 + 19.0 + 23.0);
    }

    #[test]
    fn argmax_rows_per_row() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.8, 0.1, 0.1], &[2, 3]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "axis 2 out of range")]
    fn bad_axis_panics() {
        t23().sum_axis(2);
    }

    #[test]
    fn empty_tensor_behaviour() {
        let t = Tensor::zeros(&[0]);
        assert_eq!(t.sum(), 0.0);
        assert!(t.mean().is_nan());
        assert_eq!(t.max(), f32::NEG_INFINITY);
    }
}
