//! The dense `f32` tensor type.

use std::fmt;
use std::sync::Arc;

use rand::distributions::Distribution;
use rand::Rng;

use crate::pool::Buffer;
use crate::{numel, strides_for};

/// A dense, contiguous, row-major `f32` tensor.
///
/// Cloning is O(1) (shared storage); mutation copies the buffer only when it
/// is shared (copy-on-write). Storage lives in a pooled [`Buffer`]: when the
/// last handle drops, the backing vector is recycled through
/// [`crate::pool`] instead of freed, so steady-state training and serving
/// loops run without heap traffic.
#[derive(Clone)]
pub struct Tensor {
    data: Arc<Buffer>,
    shape: Vec<usize>,
}

impl Tensor {
    // ---------------------------------------------------------------- create

    /// Build a tensor from a flat row-major buffer.
    ///
    /// # Panics
    /// If `data.len()` does not match the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            numel(shape),
            "Tensor::from_vec: buffer of {} elements does not fit shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            data: Arc::new(Buffer::from_vec(data)),
            shape: shape.to_vec(),
        }
    }

    /// Build a tensor by copying a slice into a pooled buffer — the
    /// allocation-free path (after warmup) for staging external data,
    /// e.g. the converter's batch assembly.
    ///
    /// # Panics
    /// If `data.len()` does not match the product of `shape`.
    pub fn from_slice(data: &[f32], shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            numel(shape),
            "Tensor::from_slice: buffer of {} elements does not fit shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            data: Arc::new(Buffer::copied_from(data)),
            shape: shape.to_vec(),
        }
    }

    /// Wrap an already-shared buffer under a new shape — the zero-copy
    /// path behind reshape/squeeze of contiguous tensors.
    ///
    /// # Panics
    /// If the buffer length does not match the product of `shape`.
    pub(crate) fn from_shared(data: Arc<Buffer>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            numel(shape),
            "Tensor::from_shared: buffer of {} elements does not fit shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// The shared storage handle (for zero-copy reshapes).
    pub(crate) fn storage(&self) -> Arc<Buffer> {
        Arc::clone(&self.data)
    }

    /// Whether this tensor is the only handle to its storage — the
    /// condition under which in-place ops mutate without copying.
    pub fn storage_unique(&self) -> bool {
        Arc::strong_count(&self.data) == 1
    }

    /// A scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: Arc::new(Buffer::filled(1, value)),
            shape: Vec::new(),
        }
    }

    /// Tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor {
            data: Arc::new(Buffer::filled(numel(shape), value)),
            shape: shape.to_vec(),
        }
    }

    /// Tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor::full(shape, 0.0)
    }

    /// Tensor of ones.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// `[0, 1, ..., n-1]` as a 1-D tensor.
    pub fn arange(n: usize) -> Self {
        let mut data = crate::pool::alloc_uninit(n);
        for (i, slot) in data.iter_mut().enumerate() {
            *slot = i as f32;
        }
        Tensor::from_vec(data, &[n])
    }

    /// Identity matrix of size `n × n`.
    pub fn eye(n: usize) -> Self {
        let mut data = crate::pool::alloc_zeroed(n * n);
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        Tensor::from_vec(data, &[n, n])
    }

    /// Tensor with elements drawn from `dist` using `rng`.
    pub fn rand_with<D: Distribution<f32>, R: Rng>(shape: &[usize], dist: &D, rng: &mut R) -> Self {
        let data = (0..numel(shape)).map(|_| dist.sample(rng)).collect();
        Tensor::from_vec(data, shape)
    }

    /// Uniform samples in `[lo, hi)`.
    pub fn rand_uniform<R: Rng>(shape: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let dist = rand::distributions::Uniform::new(lo, hi);
        Tensor::rand_with(shape, &dist, rng)
    }

    // ------------------------------------------------------------- accessors

    /// Shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of axes.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        numel(&self.shape)
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides in elements.
    pub fn strides(&self) -> Vec<usize> {
        strides_for(&self.shape)
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the buffer, copying if the storage is shared.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Consume into the flat buffer, cloning only if shared. The
    /// returned vector leaves the pool's lifecycle.
    pub fn into_vec(self) -> Vec<f32> {
        match Arc::try_unwrap(self.data) {
            Ok(buffer) => buffer.into_vec(),
            Err(arc) => arc.to_vec(),
        }
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    /// If the index rank or any coordinate is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.flat_index(index)]
    }

    /// Set the element at a multi-dimensional index.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let flat = self.flat_index(index);
        self.as_mut_slice()[flat] = value;
    }

    /// The single value of a scalar or one-element tensor.
    ///
    /// # Panics
    /// If the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.len(),
            1,
            "Tensor::item on tensor with shape {:?}",
            self.shape
        );
        self.data[0]
    }

    fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.shape.len(),
            "index rank {} does not match tensor rank {}",
            index.len(),
            self.shape.len()
        );
        let mut flat = 0;
        for ((&i, &dim), stride) in index.iter().zip(&self.shape).zip(self.strides()) {
            assert!(i < dim, "index {:?} out of bounds for shape {:?}", index, self.shape);
            flat += i * stride;
        }
        flat
    }

    /// True when both tensors have identical shape and all elements are
    /// within `tol` of each other.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .as_slice()
                .iter()
                .zip(other.as_slice())
                .all(|(a, b)| (a - b).abs() <= tol || (a.is_nan() && b.is_nan()))
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const MAX_SHOWN: usize = 16;
        write!(f, "Tensor{:?} ", self.shape)?;
        if self.len() <= MAX_SHOWN {
            write!(f, "{:?}", self.as_slice())
        } else {
            write!(f, "[{:?}, ...]", &self.as_slice()[..MAX_SHOWN])
        }
    }
}

impl serde::Serialize for Tensor {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("shape".to_string(), self.shape.to_value()),
            ("data".to_string(), self.as_slice().to_value()),
        ])
    }
}

impl serde::Deserialize for Tensor {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| serde::DeError::custom(format!("missing tensor field `{name}`")))
        };
        let shape = Vec::<usize>::from_value(field("shape")?)?;
        let data = Vec::<f32>::from_value(field("data")?)?;
        if data.len() != numel(&shape) {
            return Err(serde::DeError::custom(format!(
                "tensor data length {} does not match shape {:?}",
                data.len(),
                shape
            )));
        }
        Ok(Tensor::from_vec(data, &shape))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.ndim(), 2);
        assert_eq!(t.len(), 6);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 6.0);
    }

    #[test]
    #[should_panic(expected = "does not fit shape")]
    fn from_vec_rejects_bad_length() {
        Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn at_rejects_out_of_bounds() {
        Tensor::zeros(&[2, 2]).at(&[2, 0]);
    }

    #[test]
    fn set_and_item() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.set(&[1, 1], 7.0);
        assert_eq!(t.at(&[1, 1]), 7.0);
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    fn copy_on_write_preserves_clones() {
        let a = Tensor::zeros(&[3]);
        let mut b = a.clone();
        b.set(&[0], 9.0);
        assert_eq!(a.at(&[0]), 0.0);
        assert_eq!(b.at(&[0]), 9.0);
    }

    #[test]
    fn eye_and_arange() {
        let e = Tensor::eye(3);
        assert_eq!(e.at(&[1, 1]), 1.0);
        assert_eq!(e.at(&[0, 1]), 0.0);
        assert_eq!(Tensor::arange(4).as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn rand_uniform_in_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let t = Tensor::rand_uniform(&[100], -0.5, 0.5, &mut rng);
        assert!(t.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn rand_is_deterministic_per_seed() {
        let a = Tensor::rand_uniform(&[10], 0.0, 1.0, &mut rand::rngs::StdRng::seed_from_u64(1));
        let b = Tensor::rand_uniform(&[10], 0.0, 1.0, &mut rand::rngs::StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    fn allclose_tolerance() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![1.0005, 2.0], &[2]);
        assert!(a.allclose(&b, 1e-3));
        assert!(!a.allclose(&b, 1e-5));
        assert!(!a.allclose(&Tensor::from_vec(vec![1.0, 2.0], &[2, 1]), 1.0));
    }

    #[test]
    fn serde_round_trip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn serde_rejects_mismatched_shape() {
        let bad = r#"{"shape":[3],"data":[1.0,2.0]}"#;
        assert!(serde_json::from_str::<Tensor>(bad).is_err());
    }
}
