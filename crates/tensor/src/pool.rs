//! A thread-safe size-class buffer pool — the caching-allocator analogue
//! PyTorch uses to keep training loops off `malloc`.
//!
//! Every tensor buffer in this crate is a [`Buffer`] wrapping a
//! `Vec<f32>`. Buffers are acquired through [`alloc_uninit`] /
//! [`alloc_zeroed`] / [`alloc_filled`] and, when the last `Arc<Buffer>`
//! handle drops, their backing vector is *released* back to the pool
//! instead of freed. The pool keeps freed vectors on power-of-two
//! size-class shelves: a request for `len` elements rounds up to the
//! next class and pops that shelf, so any recycled vector is guaranteed
//! to have enough capacity. After a training loop or serving pipeline
//! has warmed up, steady-state allocation becomes shelf pop + `resize`
//! — no heap traffic.
//!
//! Safety: recycling never touches uninitialised memory. A recycled
//! vector is re-lengthed with safe `Vec::resize`/`truncate` calls, so
//! "uninit" allocation merely means *stale but valid* `f32` contents;
//! callers of [`alloc_uninit`] must overwrite every element (the kernels
//! that use it write the full output), while [`alloc_zeroed`] /
//! [`alloc_filled`] always produce defined contents.
//!
//! The pool is global and lock-striped per size class (one short-lived
//! `Mutex` around a shelf `Vec`), so worker threads recycle without
//! contending on a single lock. Idle bytes are capped
//! ([`MAX_POOLED_BYTES`]): past the cap, released vectors are simply
//! freed. [`set_enabled`] turns pooling off entirely (every allocation
//! is a fresh `Vec`, every release a free) — the seed allocator
//! behaviour, kept for A/B benchmarks and the allocation-regression
//! test.
//!
//! Counters ([`stats`]) are always-on relaxed atomics; they are also
//! registered as `geotorch-telemetry` gauges (`alloc.pool_hit`,
//! `alloc.pool_miss`, `alloc.bytes`, `alloc.bytes_in_use`,
//! `alloc.high_water_bytes`, `alloc.pooled_bytes`) so profile snapshots
//! and serve's `/metrics` endpoint report allocator health without any
//! extra wiring.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once};

/// Shelves cover classes `2^0 ..= 2^MAX_CLASS_LOG2` elements. Larger
/// allocations (256 Mi elements = 1 GiB) bypass the pool.
const MAX_CLASS_LOG2: u32 = 28;
const NUM_CLASSES: usize = MAX_CLASS_LOG2 as usize + 1;

/// Cap on *idle* pooled bytes across all shelves. Releases past the cap
/// free their vector instead of shelving it.
const MAX_POOLED_BYTES: u64 = 1 << 30;

static SHELVES: [Mutex<Vec<Vec<f32>>>; NUM_CLASSES] =
    [const { Mutex::new(Vec::new()) }; NUM_CLASSES];

static ENABLED: AtomicBool = AtomicBool::new(true);

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
/// Cumulative bytes of fresh (non-recycled) vector allocations.
static FRESH_BYTES: AtomicU64 = AtomicU64::new(0);
/// Capacity bytes currently held by live [`Buffer`]s.
static BYTES_IN_USE: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`BYTES_IN_USE`].
static HIGH_WATER: AtomicU64 = AtomicU64::new(0);
/// Capacity bytes sitting idle on the shelves.
static POOLED_BYTES: AtomicU64 = AtomicU64::new(0);

static REGISTER_GAUGES: Once = Once::new();

/// A snapshot of the pool counters (see [`stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Allocations served by recycling a shelved vector.
    pub hits: u64,
    /// Allocations that had to touch the heap.
    pub misses: u64,
    /// Cumulative bytes of fresh heap allocations.
    pub fresh_bytes: u64,
    /// Capacity bytes currently held by live buffers.
    pub bytes_in_use: u64,
    /// High-water mark of `bytes_in_use`.
    pub high_water_bytes: u64,
    /// Capacity bytes idle on the shelves, ready for reuse.
    pub pooled_bytes: u64,
}

/// Current pool counters. Hit/miss/fresh-byte counts are cumulative
/// (never reset by recycling); `bytes_in_use` tracks live buffers.
pub fn stats() -> PoolStats {
    PoolStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        fresh_bytes: FRESH_BYTES.load(Ordering::Relaxed),
        bytes_in_use: BYTES_IN_USE.load(Ordering::Relaxed),
        high_water_bytes: HIGH_WATER.load(Ordering::Relaxed),
        pooled_bytes: POOLED_BYTES.load(Ordering::Relaxed),
    }
}

/// Turn pooling on or off. Off means every allocation is a fresh `Vec`
/// and every release a free — the pre-pool allocator behaviour. The
/// shelves are cleared on disable so A/B comparisons start cold.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
    if !on {
        clear();
    }
}

/// Whether pooling is currently on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Drop every shelved vector, returning idle memory to the OS.
pub fn clear() {
    for shelf in &SHELVES {
        let mut freed = {
            let mut guard = shelf.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *guard)
        };
        let bytes: u64 = freed.iter().map(cap_bytes).sum();
        POOLED_BYTES.fetch_sub(bytes, Ordering::Relaxed);
        freed.clear();
    }
}

fn cap_bytes(v: &Vec<f32>) -> u64 {
    (v.capacity() * std::mem::size_of::<f32>()) as u64
}

/// Size class an allocation of `len` elements is served from: the
/// smallest power of two ≥ `len`. `None` for huge requests that bypass
/// the pool.
fn class_for_len(len: usize) -> Option<usize> {
    if len > 1 << MAX_CLASS_LOG2 {
        return None;
    }
    let class = len.max(1).next_power_of_two().trailing_zeros();
    Some(class as usize)
}

/// Shelf a freed vector of `capacity` elements belongs on: the largest
/// power of two ≤ capacity, so every vector on shelf `c` has capacity
/// ≥ `2^c` and can serve any request of class `c`.
fn class_for_capacity(capacity: usize) -> Option<usize> {
    if capacity == 0 {
        return None;
    }
    let class = usize::BITS - 1 - capacity.leading_zeros();
    (class <= MAX_CLASS_LOG2).then_some(class as usize)
}

fn note_fresh(len: usize) {
    MISSES.fetch_add(1, Ordering::Relaxed);
    FRESH_BYTES.fetch_add((len * std::mem::size_of::<f32>()) as u64, Ordering::Relaxed);
}

/// Pop a recycled vector for `len` elements, or `None` on a pool miss.
/// The returned vector has length exactly `len` and stale contents.
fn try_recycle(len: usize) -> Option<Vec<f32>> {
    if !enabled() {
        return None;
    }
    let class = class_for_len(len)?;
    let mut v = {
        let mut shelf = SHELVES[class].lock().unwrap_or_else(|e| e.into_inner());
        shelf.pop()?
    };
    POOLED_BYTES.fetch_sub(cap_bytes(&v), Ordering::Relaxed);
    HITS.fetch_add(1, Ordering::Relaxed);
    debug_assert!(v.capacity() >= len);
    // Safe re-length: shrink with truncate, grow (within capacity) with
    // resize. The fill value is only written to grown elements.
    if v.len() > len {
        v.truncate(len);
    } else {
        v.resize(len, 0.0);
    }
    Some(v)
}

/// A vector of `len` elements with *unspecified* (stale but valid)
/// contents. Callers must overwrite every element. Falls back to a
/// zero-filled fresh vector on a pool miss.
pub fn alloc_uninit(len: usize) -> Vec<f32> {
    if let Some(v) = try_recycle(len) {
        return v;
    }
    note_fresh(len);
    fresh_vec(len, 0.0)
}

/// A vector of `len` zeros.
pub fn alloc_zeroed(len: usize) -> Vec<f32> {
    alloc_filled(len, 0.0)
}

/// A vector of `len` copies of `value`.
pub fn alloc_filled(len: usize, value: f32) -> Vec<f32> {
    if let Some(mut v) = try_recycle(len) {
        v.fill(value);
        return v;
    }
    note_fresh(len);
    fresh_vec(len, value)
}

/// A pooled copy of `src`.
pub fn alloc_copy(src: &[f32]) -> Vec<f32> {
    if let Some(mut v) = try_recycle(src.len()) {
        v.copy_from_slice(src);
        return v;
    }
    note_fresh(src.len());
    let mut v = fresh_with_capacity(src.len());
    v.extend_from_slice(src);
    v
}

/// Fresh vector rounded up to its size class so it recycles cleanly.
fn fresh_vec(len: usize, value: f32) -> Vec<f32> {
    let mut v = fresh_with_capacity(len);
    v.resize(len, value);
    v
}

fn fresh_with_capacity(len: usize) -> Vec<f32> {
    let capacity = match class_for_len(len) {
        Some(class) if enabled() => 1usize << class,
        _ => len,
    };
    Vec::with_capacity(capacity)
}

/// Return a vector to the pool (or free it: pooling disabled, zero or
/// oversized capacity, or the idle-byte cap is reached).
pub fn release(v: Vec<f32>) {
    if !enabled() {
        return;
    }
    let Some(class) = class_for_capacity(v.capacity()) else {
        return;
    };
    let bytes = cap_bytes(&v);
    if POOLED_BYTES.load(Ordering::Relaxed) + bytes > MAX_POOLED_BYTES {
        return;
    }
    POOLED_BYTES.fetch_add(bytes, Ordering::Relaxed);
    let mut shelf = SHELVES[class].lock().unwrap_or_else(|e| e.into_inner());
    shelf.push(v);
}

fn track_live_add(capacity: usize) {
    let bytes = (capacity * std::mem::size_of::<f32>()) as u64;
    let now = BYTES_IN_USE.fetch_add(bytes, Ordering::Relaxed) + bytes;
    HIGH_WATER.fetch_max(now, Ordering::Relaxed);
}

fn track_live_sub(capacity: usize) {
    let bytes = (capacity * std::mem::size_of::<f32>()) as u64;
    BYTES_IN_USE.fetch_sub(bytes, Ordering::Relaxed);
}

/// Register the pool counters as telemetry gauges (idempotent; called
/// from every `Buffer` constructor so any tensor-using binary gets the
/// stats in its snapshots).
fn register_gauges() {
    REGISTER_GAUGES.call_once(|| {
        geotorch_telemetry::register_gauge("alloc.pool_hit", || {
            HITS.load(Ordering::Relaxed)
        });
        geotorch_telemetry::register_gauge("alloc.pool_miss", || {
            MISSES.load(Ordering::Relaxed)
        });
        geotorch_telemetry::register_gauge("alloc.bytes", || {
            FRESH_BYTES.load(Ordering::Relaxed)
        });
        geotorch_telemetry::register_gauge("alloc.bytes_in_use", || {
            BYTES_IN_USE.load(Ordering::Relaxed)
        });
        geotorch_telemetry::register_gauge("alloc.high_water_bytes", || {
            HIGH_WATER.load(Ordering::Relaxed)
        });
        geotorch_telemetry::register_gauge("alloc.pooled_bytes", || {
            POOLED_BYTES.load(Ordering::Relaxed)
        });
    });
}

/// The storage behind every [`crate::Tensor`]: a `Vec<f32>` whose
/// lifecycle routes through the size-class pool. Dropping a `Buffer`
/// shelves its vector for reuse; cloning one (the copy-on-write path
/// under `Arc::make_mut`) fills a recycled vector instead of a fresh
/// allocation.
pub struct Buffer {
    data: Vec<f32>,
}

impl Buffer {
    /// Wrap an existing vector (e.g. caller-built data). The vector
    /// joins the pool's lifecycle: its capacity is tracked as live and
    /// it is shelved on drop.
    pub fn from_vec(data: Vec<f32>) -> Buffer {
        register_gauges();
        track_live_add(data.capacity());
        Buffer { data }
    }

    /// A buffer of `len` elements with unspecified contents (see
    /// [`alloc_uninit`]).
    pub fn uninit(len: usize) -> Buffer {
        Buffer::from_vec(alloc_uninit(len))
    }

    /// A zero-filled buffer.
    pub fn zeroed(len: usize) -> Buffer {
        Buffer::from_vec(alloc_zeroed(len))
    }

    /// A buffer of `len` copies of `value`.
    pub fn filled(len: usize, value: f32) -> Buffer {
        Buffer::from_vec(alloc_filled(len, value))
    }

    /// A pooled copy of a slice.
    pub fn copied_from(src: &[f32]) -> Buffer {
        Buffer::from_vec(alloc_copy(src))
    }

    /// Extract the vector, removing it from the pool's lifecycle (it
    /// will not be shelved when the caller drops it).
    pub fn into_vec(mut self) -> Vec<f32> {
        let v = std::mem::take(&mut self.data);
        track_live_sub(v.capacity());
        v
    }

    /// Mutable view of the elements.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

impl Drop for Buffer {
    fn drop(&mut self) {
        let v = std::mem::take(&mut self.data);
        track_live_sub(v.capacity());
        release(v);
    }
}

impl Clone for Buffer {
    fn clone(&self) -> Buffer {
        geotorch_telemetry::count!("alloc.cow_copy", 1);
        Buffer::copied_from(&self.data)
    }
}

impl std::ops::Deref for Buffer {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        &self.data
    }
}

impl std::fmt::Debug for Buffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Buffer")
            .field("len", &self.data.len())
            .field("capacity", &self.data.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes_round_trip() {
        assert_eq!(class_for_len(1), Some(0));
        assert_eq!(class_for_len(2), Some(1));
        assert_eq!(class_for_len(3), Some(2));
        assert_eq!(class_for_len(1024), Some(10));
        assert_eq!(class_for_len(1025), Some(11));
        assert_eq!(class_for_len(usize::MAX), None);
        assert_eq!(class_for_capacity(0), None);
        assert_eq!(class_for_capacity(1), Some(0));
        assert_eq!(class_for_capacity(1023), Some(9));
        assert_eq!(class_for_capacity(1024), Some(10));
        // Invariant: a vector shelved by capacity class always has
        // enough room for any request routed to that class.
        for len in [1usize, 2, 3, 7, 100, 1 << 12] {
            let shelf = class_for_len(len).unwrap();
            assert!(1usize << shelf >= len);
        }
    }

    #[test]
    fn recycles_and_counts() {
        let before = stats();
        let v = alloc_zeroed(4000);
        let cap = v.capacity();
        assert!(cap >= 4000);
        release(v);
        // Same class round-trips through the shelf.
        let v2 = alloc_uninit(3000);
        assert_eq!(v2.len(), 3000);
        let after = stats();
        if enabled() {
            assert!(v2.capacity() >= 4096);
            assert!(after.hits > before.hits);
        }
        drop(v2);
    }

    #[test]
    fn alloc_filled_overwrites_stale_contents() {
        let mut v = alloc_zeroed(256);
        v.fill(7.0);
        release(v);
        let v2 = alloc_filled(200, 1.5);
        assert!(v2.iter().all(|&x| x == 1.5));
        let v3 = alloc_zeroed(100);
        assert!(v3.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn buffer_lifecycle_tracks_live_bytes() {
        let b = Buffer::zeroed(512);
        let used = stats().bytes_in_use;
        assert!(used >= 512 * 4);
        assert_eq!(b.len(), 512);
        drop(b);
        assert!(stats().bytes_in_use < used);
    }

    #[test]
    fn into_vec_escapes_pool() {
        let b = Buffer::filled(64, 2.0);
        let v = b.into_vec();
        assert_eq!(v.len(), 64);
        assert!(v.iter().all(|&x| x == 2.0));
    }

    #[test]
    fn zero_capacity_release_is_ignored() {
        release(Vec::new());
        let empty = Buffer::from_vec(Vec::new());
        drop(empty);
    }
}
