//! Property-based tests for tensor invariants.

use geotorch_tensor::ops::broadcast::{broadcast_shape, reduce_to_shape, zip_broadcast};
use geotorch_tensor::ops::conv::{col2im, conv2d, conv2d_naive, conv_out_len, im2col};
use geotorch_tensor::ops::matmul::matmul_naive;
use geotorch_tensor::Tensor;
use proptest::prelude::*;

fn small_tensor(max_rank: usize, max_dim: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(1..=max_dim, 0..=max_rank).prop_flat_map(|shape| {
        let n: usize = shape.iter().product();
        prop::collection::vec(-100.0f32..100.0, n..=n)
            .prop_map(move |data| Tensor::from_vec(data, &shape))
    })
}

proptest! {
    #[test]
    fn reshape_preserves_data(t in small_tensor(3, 5)) {
        let flat = t.flatten();
        prop_assert_eq!(flat.as_slice(), t.as_slice());
        let back = flat.reshape(t.shape());
        prop_assert_eq!(back, t);
    }

    #[test]
    fn double_transpose_is_identity(r in 1usize..8, c in 1usize..8, seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = Tensor::rand_uniform(&[r, c], -1.0, 1.0, &mut rng);
        prop_assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn addition_commutes_under_broadcast(a in small_tensor(2, 4), b in small_tensor(2, 4)) {
        // Only when shapes broadcast; skip incompatible pairs.
        let compatible = std::panic::catch_unwind(|| broadcast_shape(a.shape(), b.shape())).is_ok();
        prop_assume!(compatible);
        let ab = zip_broadcast(&a, &b, |x, y| x + y);
        let ba = zip_broadcast(&b, &a, |x, y| x + y);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn broadcast_shape_is_commutative_and_bounded(
        a in prop::collection::vec(1usize..4, 0..3),
        b in prop::collection::vec(1usize..4, 0..3),
    ) {
        let fwd = std::panic::catch_unwind(|| broadcast_shape(&a, &b));
        let rev = std::panic::catch_unwind(|| broadcast_shape(&b, &a));
        match (fwd, rev) {
            (Ok(f), Ok(r)) => {
                prop_assert_eq!(&f, &r);
                prop_assert_eq!(f.len(), a.len().max(b.len()));
            }
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "broadcast compatibility must be symmetric"),
        }
    }

    #[test]
    fn reduce_to_shape_conserves_mass(rows in 1usize..6, cols in 1usize..6) {
        let g = Tensor::ones(&[rows, cols]);
        for target in [vec![rows, cols], vec![cols], vec![rows, 1], vec![1, cols], vec![]] {
            let r = reduce_to_shape(&g, &target);
            prop_assert!((r.sum() - g.sum()).abs() < 1e-4);
        }
    }

    #[test]
    fn sum_axis_equals_total(t in small_tensor(3, 4)) {
        prop_assume!(t.ndim() >= 1 && !t.is_empty());
        for ax in 0..t.ndim() {
            let s = t.sum_axis(ax);
            prop_assert!((s.sum() - t.sum()).abs() < 1e-2);
        }
    }

    #[test]
    fn matmul_matches_naive(
        m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..100,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&[m, k], -2.0, 2.0, &mut rng);
        let b = Tensor::rand_uniform(&[k, n], -2.0, 2.0, &mut rng);
        prop_assert!(a.matmul(&b).allclose(&matmul_naive(&a, &b), 1e-3));
    }

    #[test]
    fn matmul_distributes_over_addition(seed in 0u64..100) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&[4, 3], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[3, 5], -1.0, 1.0, &mut rng);
        let c = Tensor::rand_uniform(&[3, 5], -1.0, 1.0, &mut rng);
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(lhs.allclose(&rhs, 1e-3));
    }

    #[test]
    fn conv_fast_equals_naive(
        c in 1usize..4, o in 1usize..4, hw in 3usize..9,
        k in 1usize..4, s in 1usize..3, p in 0usize..2, seed in 0u64..50,
    ) {
        prop_assume!(hw + 2 * p >= k);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = Tensor::rand_uniform(&[1, c, hw, hw], -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform(&[o, c, k, k], -1.0, 1.0, &mut rng);
        let fast = conv2d(&x, &w, None, s, p);
        let slow = conv2d_naive(&x, &w, None, s, p);
        prop_assert!(fast.allclose(&slow, 1e-3));
    }

    #[test]
    fn im2col_col2im_adjoint(
        c in 1usize..3, hw in 3usize..8, k in 1usize..4,
        s in 1usize..3, p in 0usize..2, seed in 0u64..50,
    ) {
        prop_assume!(hw + 2 * p >= k);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = Tensor::rand_uniform(&[c, hw, hw], -1.0, 1.0, &mut rng);
        let cx = im2col(&x, k, k, s, p);
        let y = Tensor::rand_uniform(cx.shape(), -1.0, 1.0, &mut rng);
        let lhs = cx.flatten().dot(&y.flatten());
        let rhs = x.flatten().dot(&col2im(&y, c, hw, hw, k, k, s, p).flatten());
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    #[test]
    fn conv_out_len_inverts_on_stride_one(input in 1usize..32, k in 1usize..6, p in 0usize..3) {
        prop_assume!(input + 2 * p >= k);
        let out = conv_out_len(input, k, 1, p);
        prop_assert_eq!(out, input + 2 * p - k + 1);
    }

    #[test]
    fn softmax_rows_are_distributions(rows in 1usize..5, cols in 1usize..6, seed in 0u64..100) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = Tensor::rand_uniform(&[rows, cols], -10.0, 10.0, &mut rng);
        let s = t.softmax_lastdim();
        for r in 0..rows {
            let row = &s.as_slice()[r * cols..(r + 1) * cols];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn concat_narrow_round_trip(
        rows in 1usize..5, c1 in 1usize..5, c2 in 1usize..5, seed in 0u64..100,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&[rows, c1], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[rows, c2], -1.0, 1.0, &mut rng);
        let cat = Tensor::concat(&[&a, &b], 1);
        prop_assert_eq!(cat.narrow(1, 0, c1), a);
        prop_assert_eq!(cat.narrow(1, c1, c1 + c2), b);
    }

    #[test]
    fn pad_unpad_round_trip(c in 1usize..3, h in 1usize..6, w in 1usize..6, p in 0usize..3) {
        let t = Tensor::arange(c * h * w).reshape(&[c, h, w]);
        prop_assert_eq!(t.pad2d(p).unpad2d(p), t);
    }
}
