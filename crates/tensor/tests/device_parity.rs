//! Device-parity suite: every public op in `ops/` must produce the same
//! result under `Device::Cpu` and `Device::Parallel(4)`.
//!
//! Kernels with disjoint-region writes are held to bit-equality; ops built
//! on reordered float accumulation (matmul and the conv family) get a
//! `1e-6` tolerance. Small proptest cases check shape-edge behaviour; the
//! `big_*` tests use tensors past `PARALLEL_THRESHOLD` so the pool path
//! actually runs.

use geotorch_tensor::ops::broadcast::{reduce_to_shape, zip_broadcast};
use geotorch_tensor::ops::conv::{
    col2im, conv2d, conv2d_naive, conv_transpose2d, im2col, upsample_nearest2d,
    upsample_nearest2d_backward,
};
use geotorch_tensor::ops::matmul::matmul_naive;
use geotorch_tensor::ops::pool::{
    avgpool2d, avgpool2d_backward, global_avgpool2d, maxpool2d, maxpool2d_backward,
};
use geotorch_tensor::{with_device, Device, Tensor, PARALLEL_THRESHOLD};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const PAR: Device = Device::Parallel(4);

/// Evaluate `f` under Cpu, then under Parallel(4).
fn on_both<T>(f: impl Fn() -> T) -> (T, T) {
    (with_device(Device::Cpu, &f), with_device(PAR, &f))
}

/// Assert the op gives bit-identical tensors on both devices.
fn bit_equal(label: &str, f: impl Fn() -> Tensor) {
    let (c, p) = on_both(f);
    assert_eq!(c.shape(), p.shape(), "{label}: shape mismatch");
    assert_eq!(c.as_slice(), p.as_slice(), "{label}: data mismatch");
}

/// Assert the op agrees on both devices to 1e-6.
fn close(label: &str, f: impl Fn() -> Tensor) {
    let (c, p) = on_both(f);
    assert_eq!(c.shape(), p.shape(), "{label}: shape mismatch");
    assert!(c.allclose(&p, 1e-6), "{label}: beyond 1e-6");
}

fn scalar_equal(label: &str, f: impl Fn() -> f32) {
    let (c, p) = on_both(f);
    assert!(
        c == p || (c.is_nan() && p.is_nan()),
        "{label}: {c} != {p}"
    );
}

/// Deterministic random tensor.
fn rnd(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::rand_uniform(shape, -2.0, 2.0, &mut rng)
}

/// Deterministic random tensor big enough to clear PARALLEL_THRESHOLD.
fn big(shape: &[usize], seed: u64) -> Tensor {
    let t = rnd(shape, seed);
    assert!(
        t.len() >= PARALLEL_THRESHOLD,
        "test tensor too small to exercise the pool"
    );
    t
}

fn nchw() -> impl Strategy<Value = Tensor> {
    (1usize..=3, 1usize..=3, 2usize..=7, 2usize..=7).prop_flat_map(|(b, c, h, w)| {
        proptest::collection::vec(-2.0f32..2.0f32, b * c * h * w)
            .prop_map(move |data| Tensor::from_vec(data, &[b, c, h, w]))
    })
}

fn matrix() -> impl Strategy<Value = Tensor> {
    (1usize..=8, 1usize..=8).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-2.0f32..2.0f32, r * c)
            .prop_map(move |data| Tensor::from_vec(data, &[r, c]))
    })
}

// ---------------------------------------------------------- elementwise

#[test]
fn big_elementwise_unary_parity() {
    let x = big(&[40_000], 1).abs().add_scalar(0.1); // positive for sqrt/ln
    bit_equal("map", || x.map(|v| v * 3.0 - 1.0));
    bit_equal("map_inplace", || {
        let mut t = x.clone();
        t.map_inplace(|v| v * 0.5);
        t
    });
    bit_equal("add_scalar", || x.add_scalar(2.5));
    bit_equal("mul_scalar", || x.mul_scalar(-1.5));
    bit_equal("neg", || x.neg());
    bit_equal("abs", || x.neg().abs());
    bit_equal("sqrt", || x.sqrt());
    bit_equal("exp", || x.exp());
    bit_equal("ln", || x.ln());
    bit_equal("square", || x.square());
    bit_equal("recip", || x.recip());
    bit_equal("powi", || x.powi(3));
    bit_equal("relu", || x.add_scalar(-1.0).relu());
    bit_equal("sigmoid", || x.sigmoid());
    bit_equal("tanh", || x.tanh());
    bit_equal("clamp", || x.clamp(0.2, 1.7));
    bit_equal("softmax_lastdim", || {
        x.reshape(&[100, 400]).softmax_lastdim()
    });
    bit_equal("log_softmax_lastdim", || {
        x.reshape(&[100, 400]).log_softmax_lastdim()
    });
}

#[test]
fn big_elementwise_binary_parity() {
    let x = big(&[40_000], 2);
    let y = big(&[40_000], 3).abs().add_scalar(0.1); // non-zero divisor
    bit_equal("add", || x.add(&y));
    bit_equal("sub", || x.sub(&y));
    bit_equal("mul", || x.mul(&y));
    bit_equal("div", || x.div(&y));
    bit_equal("maximum", || x.maximum(&y));
    bit_equal("minimum", || x.minimum(&y));
    bit_equal("gt_mask", || x.gt_mask(&y));
    bit_equal("add_assign", || {
        let mut t = x.clone();
        t.add_assign(&y);
        t
    });
}

#[test]
fn big_broadcast_parity() {
    let x = big(&[32, 25, 40], 4);
    let row = rnd(&[1, 1, 40], 5);
    bit_equal("zip_broadcast", || zip_broadcast(&x, &row, |a, b| a + b));
    close("reduce_to_shape", || reduce_to_shape(&x, &[1, 1, 40]));
    close("reduce_to_shape scalar", || reduce_to_shape(&x, &[1]));
}

// ------------------------------------------------------------ reductions

#[test]
fn big_reduction_parity() {
    let x = big(&[64, 25, 20], 6);
    scalar_equal("sum", || x.sum());
    scalar_equal("mean", || x.mean());
    scalar_equal("max", || x.max());
    scalar_equal("min", || x.min());
    scalar_equal("variance", || x.variance());
    scalar_equal("argmax", || x.argmax() as f32);
    for axis in 0..3 {
        bit_equal("sum_axis", || x.sum_axis(axis));
        bit_equal("sum_axis_keepdim", || x.sum_axis_keepdim(axis));
        bit_equal("mean_axis", || x.mean_axis(axis));
        bit_equal("max_axis", || x.max_axis(axis));
    }
    let m = x.reshape(&[64, 500]);
    let (c, p) = on_both(|| m.argmax_rows());
    assert_eq!(c, p, "argmax_rows");
}

// --------------------------------------------------------------- linalg

#[test]
fn big_matmul_parity() {
    let a = big(&[96, 180], 7);
    let b = big(&[180, 96], 8);
    close("matmul", || a.matmul(&b));
    close("matmul_naive", || matmul_naive(&a, &b));
    let v = big(&[17_280], 9);
    scalar_equal("dot", || v.dot(&v));
}

// ----------------------------------------------------------- conv family

#[test]
fn big_conv_parity() {
    let x = big(&[4, 3, 40, 40], 10);
    let w = Tensor::rand_uniform(&[8, 3, 3, 3], -1.0, 1.0, &mut StdRng::seed_from_u64(11));
    let bias = Tensor::rand_uniform(&[8], -1.0, 1.0, &mut StdRng::seed_from_u64(12));
    close("conv2d", || conv2d(&x, &w, Some(&bias), 1, 1));
    close("conv2d stride2 nopad", || conv2d(&x, &w, None, 2, 0));
    close("conv2d_naive", || conv2d_naive(&x, &w, Some(&bias), 1, 1));
    let wt = Tensor::rand_uniform(&[3, 8, 3, 3], -1.0, 1.0, &mut StdRng::seed_from_u64(13));
    close("conv_transpose2d", || {
        conv_transpose2d(&x, &wt, Some(&bias), 2, 1)
    });
    bit_equal("im2col", || im2col(&x.index_axis(0, 0), 3, 3, 1, 1));
    let col = im2col(&x.index_axis(0, 0), 3, 3, 1, 1);
    bit_equal("col2im", || col2im(&col, 3, 40, 40, 3, 3, 1, 1));
    bit_equal("upsample_nearest2d", || upsample_nearest2d(&x, 2));
    let g = big(&[4, 3, 80, 80], 14);
    bit_equal("upsample_nearest2d_backward", || {
        upsample_nearest2d_backward(&g, 2)
    });
}

// ---------------------------------------------------------------- pooling

#[test]
fn big_pool_parity() {
    let x = big(&[4, 8, 32, 32], 15);
    bit_equal("maxpool2d", || maxpool2d(&x, 2, 2).0);
    let (pooled, argmax) = maxpool2d(&x, 2, 2);
    let (_, argmax_par) = with_device(PAR, || maxpool2d(&x, 2, 2));
    assert_eq!(argmax, argmax_par, "maxpool2d argmax");
    let g = rnd(&[4, 8, 16, 16], 16);
    assert_eq!(g.shape(), pooled.shape());
    bit_equal("maxpool2d_backward", || {
        maxpool2d_backward(&g, &argmax, x.shape())
    });
    bit_equal("avgpool2d", || avgpool2d(&x, 2, 2));
    bit_equal("avgpool2d_backward", || {
        avgpool2d_backward(&g, 2, 2, x.shape())
    });
    bit_equal("global_avgpool2d", || global_avgpool2d(&x));
}

// -------------------------------------------------------------- shape ops

#[test]
fn big_shape_op_parity() {
    let x = big(&[8, 4, 32, 32], 17);
    bit_equal("reshape", || x.reshape(&[32, 1024]));
    bit_equal("flatten", || x.flatten());
    bit_equal("unsqueeze", || x.unsqueeze(2));
    bit_equal("squeeze", || x.unsqueeze(0).squeeze(0));
    bit_equal("transpose", || x.reshape(&[256, 128]).transpose());
    bit_equal("permute", || x.permute(&[2, 0, 3, 1]));
    bit_equal("narrow", || x.narrow(2, 4, 28));
    bit_equal("index_axis", || x.index_axis(0, 3));
    bit_equal("concat", || Tensor::concat(&[&x, &x], 1));
    let a = x.index_axis(0, 0);
    let b = x.index_axis(0, 1);
    bit_equal("stack", || Tensor::stack(&[&a, &b]));
    bit_equal("pad2d", || x.pad2d(2));
    bit_equal("unpad2d", || x.pad2d(3).unpad2d(3));
}

// ---------------------------------------------- small-shape property tests

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parity_elementwise_any_shape(t in nchw()) {
        bit_equal("relu", || t.relu());
        bit_equal("sigmoid", || t.sigmoid());
        bit_equal("map", || t.map(|v| v.mul_add(2.0, -0.5)));
        scalar_equal("sum", || t.sum());
        scalar_equal("variance", || t.variance());
    }

    #[test]
    fn parity_axis_reduce_any_axis(t in nchw(), axis in 0usize..4) {
        bit_equal("sum_axis", || t.sum_axis(axis));
        bit_equal("max_axis", || t.max_axis(axis));
    }

    #[test]
    fn parity_softmax_any_matrix(m in matrix()) {
        bit_equal("softmax", || m.softmax_lastdim());
        bit_equal("log_softmax", || m.log_softmax_lastdim());
        let (c, p) = on_both(|| m.argmax_rows());
        prop_assert_eq!(c, p);
    }

    #[test]
    fn parity_matmul_any_dims(
        m in 1usize..=6, k in 1usize..=6, n in 1usize..=6, seed in 0u64..1024
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&[m, k], -2.0, 2.0, &mut rng);
        let b = Tensor::rand_uniform(&[k, n], -2.0, 2.0, &mut rng);
        close("matmul", || a.matmul(&b));
    }

    #[test]
    fn parity_pool_any_nchw(t in nchw()) {
        bit_equal("maxpool k1", || maxpool2d(&t, 1, 1).0);
        bit_equal("avgpool k1", || avgpool2d(&t, 1, 1));
        bit_equal("global_avgpool", || global_avgpool2d(&t));
        if t.shape()[2] >= 2 && t.shape()[3] >= 2 {
            bit_equal("maxpool k2", || maxpool2d(&t, 2, 1).0);
            let (pooled, argmax) = maxpool2d(&t, 2, 2);
            bit_equal("maxpool backward", || {
                maxpool2d_backward(&pooled, &argmax, t.shape())
            });
        }
    }
}
