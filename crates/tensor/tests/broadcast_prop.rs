//! Property tests for broadcast arithmetic and its autograd adjoint
//! (`reduce_to_shape`): random shape pairs, bit-identical in-place vs
//! out-of-place results, and Cpu vs Parallel device parity.

use geotorch_tensor::ops::broadcast::{reduce_to_shape, zip_broadcast, zip_broadcast_inplace};
use geotorch_tensor::{with_device, Device, Tensor};
use proptest::prelude::*;

/// A `(dst, src)` shape pair where `src` broadcasts to `dst` without
/// enlarging it — the precondition of the in-place fast paths. `src` is a
/// suffix of `dst` with a random subset of axes collapsed to extent 1 and
/// possibly some leading axes dropped entirely.
fn inplace_shape_pair() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    prop::collection::vec(1usize..5, 1..4).prop_flat_map(|dst| {
        let rank = dst.len();
        (
            Just(dst),
            0..=rank,
            prop::collection::vec(any::<bool>(), rank..=rank),
        )
            .prop_map(|(dst, drop, collapse)| {
                let src: Vec<usize> = dst[drop..]
                    .iter()
                    .zip(&collapse[drop..])
                    .map(|(&d, &c)| if c { 1 } else { d })
                    .collect();
                (dst, src)
            })
    })
}

fn filled(shape: &[usize], seed: u64) -> Tensor {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Tensor::rand_uniform(shape, -3.0, 3.0, &mut rng)
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    /// The in-place broadcast op must be bit-identical to the
    /// out-of-place one — the pooled fast path is an allocation
    /// optimisation, never a numerics change.
    #[test]
    fn inplace_is_bit_identical((dst_shape, src_shape) in inplace_shape_pair(), seed in 0u64..500) {
        let a = filled(&dst_shape, seed);
        let b = filled(&src_shape, seed ^ 0x9e37);
        for f in [|x: f32, y: f32| x + y, |x: f32, y: f32| x * y, |x: f32, y: f32| x - y] {
            let reference = zip_broadcast(&a, &b, f);
            let mut inplace = a.clone();
            zip_broadcast_inplace(&mut inplace, &b, f);
            prop_assert_eq!(inplace.shape(), reference.shape());
            prop_assert_eq!(bits(&inplace), bits(&reference));
            // The original operand must be untouched (copy-on-write).
            prop_assert_eq!(bits(&a), bits(&filled(&dst_shape, seed)));
        }
    }

    /// In-place on uniquely-held storage must not reallocate the result
    /// into a different buffer than the operand started with.
    #[test]
    fn inplace_keeps_unique_storage((dst_shape, src_shape) in inplace_shape_pair(), seed in 0u64..200) {
        let mut a = filled(&dst_shape, seed);
        let b = filled(&src_shape, seed + 1);
        prop_assert!(a.storage_unique());
        let before = a.as_slice().as_ptr();
        zip_broadcast_inplace(&mut a, &b, |x, y| x + y);
        prop_assert!(a.storage_unique());
        prop_assert_eq!(a.as_slice().as_ptr(), before, "unique buffer must be reused");
    }

    /// `reduce_to_shape` (the broadcast adjoint) must agree bit-for-bit
    /// between the serial Cpu device and the Parallel worker pool — axis
    /// reductions keep per-output-element accumulation order fixed.
    #[test]
    fn reduce_to_shape_device_parity((dst_shape, src_shape) in inplace_shape_pair(), seed in 0u64..200) {
        let grad = filled(&dst_shape, seed);
        let cpu = with_device(Device::Cpu, || reduce_to_shape(&grad, &src_shape));
        let par = with_device(Device::parallel(), || reduce_to_shape(&grad, &src_shape));
        prop_assert_eq!(cpu.shape(), &src_shape[..]);
        prop_assert_eq!(bits(&cpu), bits(&par));
    }

    /// Summing the reduced gradient conserves the total gradient mass:
    /// reduction only folds axes, it never drops or double-counts.
    #[test]
    fn reduce_to_shape_conserves_sum((dst_shape, src_shape) in inplace_shape_pair(), seed in 0u64..200) {
        let grad = filled(&dst_shape, seed);
        let reduced = reduce_to_shape(&grad, &src_shape);
        let scale = (grad.len() / reduced.len().max(1)) as f32;
        prop_assert!(
            (reduced.sum() - grad.sum()).abs() <= 1e-3 * (1.0 + grad.sum().abs() * scale),
            "mass changed: {} vs {}", reduced.sum(), grad.sum()
        );
    }

    /// The gradient identity the tape relies on: for `out = broadcast(src)`
    /// (elementwise copy), the adjoint routes each output gradient back to
    /// the source slot that produced it.
    #[test]
    fn reduce_is_adjoint_of_broadcast((dst_shape, src_shape) in inplace_shape_pair(), seed in 0u64..100) {
        let src = filled(&src_shape, seed);
        let zeros = Tensor::zeros(&dst_shape);
        // Broadcast src up by adding it to a zero tensor of the dst shape.
        let up = zip_broadcast(&zeros, &src, |_, y| y);
        let grad = filled(&dst_shape, seed + 7);
        // <broadcast(src), grad> == <src, reduce(grad)>
        let lhs: f32 = up.as_slice().iter().zip(grad.as_slice()).map(|(a, b)| a * b).sum();
        let reduced = reduce_to_shape(&grad, &src_shape);
        let rhs: f32 = src.as_slice().iter().zip(reduced.as_slice()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() <= 1e-2 * (1.0 + lhs.abs()), "adjoint mismatch: {lhs} vs {rhs}");
    }
}

/// Fixed large case that actually clears `PARALLEL_THRESHOLD`, so the
/// Parallel device genuinely fans the reduction out over the worker pool
/// (the random shapes above stay below the threshold).
#[test]
fn reduce_to_shape_device_parity_large() {
    let grad = filled(&[64, 48, 32], 42); // 98304 elements > 16384 threshold
    for target in [vec![64, 48, 32], vec![64, 1, 32], vec![48, 32], vec![32], vec![1]] {
        let cpu = with_device(Device::Cpu, || reduce_to_shape(&grad, &target));
        let par = with_device(Device::parallel(), || reduce_to_shape(&grad, &target));
        assert_eq!(bits(&cpu), bits(&par), "device mismatch reducing to {target:?}");
    }
}

/// Same for the in-place elementwise path: a large equal-shape add must be
/// bit-identical across devices and against the out-of-place op.
#[test]
fn inplace_large_matches_out_of_place_across_devices() {
    let a = filled(&[256, 128], 7);
    let b = filled(&[256, 128], 8);
    let reference = zip_broadcast(&a, &b, |x, y| x + y);
    for device in [Device::Cpu, Device::parallel()] {
        let mut inplace = a.clone();
        with_device(device, || zip_broadcast_inplace(&mut inplace, &b, |x, y| x + y));
        assert_eq!(bits(&inplace), bits(&reference), "device {device:?}");
    }
}
