//! Reference-oracle property tests for the fast kernels.
//!
//! The blocked SIMD matmul and the direct conv paths are checked against
//! the retained naive kernels (`matmul_naive`, `conv2d_naive`) and
//! against each other, on both `Device::Cpu` and `Device::Parallel`.
//!
//! # Why the oracle can demand bit-for-bit equality
//!
//! Random f32 inputs would make the comparison fuzzy: the AVX+FMA
//! microkernel fuses multiply-add rounding, so continuous inputs can
//! diverge from the scalar oracle near cancellations. Instead the main
//! suite draws **lattice inputs** — multiples of 1/16 in [-1, 1]. Every
//! pairwise product is then a multiple of 2⁻⁸ with magnitude ≤ 1, and
//! every partial sum of up to 2¹⁶ such terms is exactly representable
//! in f32. Exact values make *every* accumulation order — blocked,
//! banded, fused, naive — produce the identical bit pattern, so the
//! oracle asserts `to_bits` equality, the strongest possible check
//! (and far inside the ≤ 4-ulp acceptance bound).
//!
//! Continuous inputs are still covered: a positive-data suite bounds
//! the FMA-vs-scalar divergence at ≤ 4 ulps by keeping the inner
//! dimension ≤ 8 (each fused step can contribute at most half an ulp
//! of the monotone running sum).
//!
//! Set `GEOTORCH_KERNEL_SEED` to shift every generated input corpus —
//! CI runs the suite under seeds 1–3.

use geotorch_tensor::ops::conv::{conv2d, conv2d_direct, conv2d_im2col, conv2d_naive};
use geotorch_tensor::ops::matmul::{matmul_naive, KC, MC, MR, NC, NR};
use geotorch_tensor::{with_device, Device, Tensor};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Extra seed mixed into every generated tensor, so CI can re-run the
/// whole corpus under different data (`GEOTORCH_KERNEL_SEED=1..3`).
fn env_seed() -> u64 {
    std::env::var("GEOTORCH_KERNEL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Lattice tensor: i.i.d. multiples of 1/16 in [-1, 1]. See module docs
/// for why sums over these are exact in f32.
fn lattice(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(
        seed ^ env_seed().wrapping_mul(0x9e37_79b9_7f4a_7c15),
    );
    let n: usize = shape.iter().product();
    let data: Vec<f32> = (0..n).map(|_| rng.gen_range(-16i32..=16) as f32 / 16.0).collect();
    Tensor::from_vec(data, shape)
}

/// Continuous positive tensor in [0.25, 1.0] (no cancellation possible).
fn positive(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(
        seed ^ env_seed().wrapping_mul(0x9e37_79b9_7f4a_7c15),
    );
    Tensor::rand_uniform(shape, 0.25, 1.0, &mut rng)
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Monotone integer key: `ulp_key(a) - ulp_key(b)` counts the number of
/// representable f32 values between `a` and `b` (±0 collapse to 0).
fn ulp_key(x: f32) -> i64 {
    let b = x.to_bits() as i32;
    if b < 0 {
        i32::MIN as i64 - b as i64
    } else {
        b as i64
    }
}

fn max_ulp_diff(a: &Tensor, b: &Tensor) -> u64 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (ulp_key(x) - ulp_key(y)).unsigned_abs())
        .max()
        .unwrap_or(0)
}

proptest! {
    /// Blocked SIMD matmul vs the naive triple loop on lattice inputs:
    /// bit-for-bit, on both devices. Shapes sweep the tiny-path cutoff
    /// and every MR/NR ragged-tail combination, including K=1.
    #[test]
    fn matmul_lattice_bit_identical(m in 1usize..48, k in 1usize..48, n in 1usize..48, seed in 0u64..1000) {
        let a = lattice(&[m, k], seed);
        let b = lattice(&[k, n], seed ^ 0xabcd);
        let oracle = matmul_naive(&a, &b);
        let cpu = with_device(Device::Cpu, || a.matmul(&b));
        prop_assert_eq!(bits(&cpu), bits(&oracle), "Cpu mismatch at m={} k={} n={}", m, k, n);
        let par = with_device(Device::parallel(), || a.matmul(&b));
        prop_assert_eq!(bits(&par), bits(&oracle), "Parallel mismatch at m={} k={} n={}", m, k, n);
    }

    /// Continuous positive inputs with inner dimension ≤ 8: the fused
    /// microkernel must stay within 4 ulps of the scalar oracle.
    #[test]
    fn matmul_continuous_within_4_ulps(m in 1usize..64, k in 1usize..=8, n in 1usize..64, seed in 0u64..1000) {
        let a = positive(&[m, k], seed);
        let b = positive(&[k, n], seed ^ 0x5eed);
        let oracle = matmul_naive(&a, &b);
        let fast = a.matmul(&b);
        let ulps = max_ulp_diff(&fast, &oracle);
        prop_assert!(ulps <= 4, "{} ulps at m={} k={} n={}", ulps, m, k, n);
    }

    /// Direct conv, im2col conv, the dispatcher, and the sliding-window
    /// naive reference all agree bit-for-bit on lattice inputs, with
    /// bias, across kernel sizes, strides, and paddings, on both devices.
    #[test]
    fn conv_lattice_bit_identical(
        c in 1usize..4, o in 1usize..4, h in 6usize..12, w in 6usize..12,
        k in 1usize..=5, stride in 1usize..=3, pad in 0usize..=2, seed in 0u64..1000,
    ) {
        let input = lattice(&[2, c, h, w], seed);
        let weight = lattice(&[o, c, k, k], seed ^ 0xbeef);
        let bias = lattice(&[o], seed ^ 0xfeed);
        let oracle = conv2d_naive(&input, &weight, Some(&bias), stride, pad);
        let lowered = conv2d_im2col(&input, &weight, Some(&bias), stride, pad);
        prop_assert_eq!(bits(&lowered), bits(&oracle), "im2col path k={} s={} p={}", k, stride, pad);
        if stride == 1 {
            let direct = conv2d_direct(&input, &weight, Some(&bias), pad);
            prop_assert_eq!(bits(&direct), bits(&oracle), "direct path k={} p={}", k, pad);
        }
        for device in [Device::Cpu, Device::parallel()] {
            let got = with_device(device, || conv2d(&input, &weight, Some(&bias), stride, pad));
            prop_assert_eq!(bits(&got), bits(&oracle), "dispatch {:?} k={} s={} p={}", device, k, stride, pad);
        }
    }
}

/// Shapes chosen to cross every blocking boundary: MC/KC/NC block edges,
/// ragged MR/NR tails, K=1, single-row/column extremes. Lattice inputs,
/// bit-for-bit against the oracle on both devices.
#[test]
fn matmul_block_edges_bit_identical() {
    let shapes = [
        (MC + 1, KC + 3, NR + 1),     // crosses MC and KC, ragged NR tail
        (MC, KC, NC.min(96)),         // exact block multiples
        (MR + 1, 1, NR + 1),          // K = 1 with ragged tails
        (1, KC + 1, 1),               // single row and column across KC
        (2 * MC + 5, 7, NR - 1),      // tall and narrow, sub-NR width
        (MR, KC + KC + 1, NR),        // exactly one full tile, 3 K-panels
    ];
    for (i, &(m, k, n)) in shapes.iter().enumerate() {
        let a = lattice(&[m, k], 100 + i as u64);
        let b = lattice(&[k, n], 200 + i as u64);
        let oracle = matmul_naive(&a, &b);
        for device in [Device::Cpu, Device::parallel()] {
            let got = with_device(device, || a.matmul(&b));
            assert_eq!(
                bits(&got),
                bits(&oracle),
                "mismatch on {device:?} at m={m} k={k} n={n}"
            );
        }
    }
}

/// A product large enough to cross `GEMM_PARALLEL_FLOPS`, so the
/// Parallel device genuinely band-splits across the worker pool — and
/// must still be bit-identical to the serial blocked kernel and oracle.
#[test]
fn matmul_parallel_band_split_bit_identical() {
    let a = lattice(&[300, 129], 7);
    let b = lattice(&[129, 200], 8);
    let oracle = matmul_naive(&a, &b);
    let cpu = with_device(Device::Cpu, || a.matmul(&b));
    let par = with_device(Device::parallel(), || a.matmul(&b));
    assert_eq!(bits(&cpu), bits(&oracle));
    assert_eq!(bits(&par), bits(&oracle));
}

/// A conv whose 48×48 plane crosses both `DIRECT_CONV_MIN_PLANE` (so
/// the dispatcher picks the direct path) and `CONV_PARALLEL_FLOPS` (so
/// the direct path fans out over batch × out-channel plane tasks).
#[test]
fn conv_parallel_planes_bit_identical() {
    let input = lattice(&[2, 8, 48, 48], 21);
    let weight = lattice(&[16, 8, 3, 3], 22);
    let bias = lattice(&[16], 23);
    let serial = conv2d_direct(&input, &weight, Some(&bias), 1);
    let cpu = with_device(Device::Cpu, || conv2d(&input, &weight, Some(&bias), 1, 1));
    let par = with_device(Device::parallel(), || conv2d(&input, &weight, Some(&bias), 1, 1));
    assert_eq!(bits(&cpu), bits(&serial), "dispatcher should pick the direct path");
    assert_eq!(bits(&cpu), bits(&par));
}

/// The 1×1/stride-1/no-pad conv takes the implicit-GEMM route with a
/// zero-copy column matrix; it must match the naive reference exactly
/// on lattice inputs.
#[test]
fn conv_one_by_one_implicit_gemm_bit_identical() {
    let input = lattice(&[3, 5, 9, 9], 31);
    let weight = lattice(&[7, 5, 1, 1], 32);
    let bias = lattice(&[7], 33);
    let oracle = conv2d_naive(&input, &weight, Some(&bias), 1, 0);
    for device in [Device::Cpu, Device::parallel()] {
        let got = with_device(device, || conv2d(&input, &weight, Some(&bias), 1, 0));
        assert_eq!(bits(&got), bits(&oracle), "1x1 mismatch on {device:?}");
    }
}
