//! Property-based tests for DataFrame-engine invariants.

use proptest::prelude::*;

use geotorch_dataframe::groupby::Agg;
use geotorch_dataframe::rtree::StrTree;
use geotorch_dataframe::spatial::{add_point_column, assign_grid_cells, UniformGrid};
use geotorch_dataframe::{Column, DataFrame, Envelope, Geometry, Point};

fn int_frame(values: Vec<i64>) -> DataFrame {
    DataFrame::from_columns(vec![(
        "v".to_string(),
        Column::I64(values),
    )])
    .unwrap()
}

proptest! {
    /// Repartitioning never changes row count or content order.
    #[test]
    fn repartition_preserves_rows(values in prop::collection::vec(-100i64..100, 0..200), parts in 1usize..10) {
        let df = int_frame(values.clone());
        let re = df.repartition(parts).unwrap();
        prop_assert_eq!(re.num_rows(), values.len());
        prop_assert_eq!(re.column("v").unwrap(), Column::I64(values));
    }

    /// filter ∘ union ≡ union ∘ filter.
    #[test]
    fn filter_commutes_with_union(
        a in prop::collection::vec(-50i64..50, 0..50),
        b in prop::collection::vec(-50i64..50, 0..50),
    ) {
        let da = int_frame(a);
        let db = int_frame(b);
        let pred = |row: geotorch_dataframe::frame::RowRef<'_>| Ok(row.i64("v")? % 2 == 0);
        let left = da.union(&db).unwrap().filter(pred).unwrap();
        let right = da.filter(pred).unwrap().union(&db.filter(pred).unwrap()).unwrap();
        prop_assert_eq!(left.column("v").unwrap(), right.column("v").unwrap());
    }

    /// Group-by COUNT totals always equal the row count, for any
    /// partitioning.
    #[test]
    fn groupby_count_conserves_rows(
        keys in prop::collection::vec(0i64..10, 1..200),
        parts in 1usize..8,
    ) {
        let df = int_frame(keys.clone()).repartition(parts).unwrap();
        let out = df.group_by(&["v"], &[Agg::Count("n".into())]).unwrap();
        let total: i64 = out.column("n").unwrap().i64s().unwrap().iter().sum();
        prop_assert_eq!(total as usize, keys.len());
        // Group count = distinct keys.
        let distinct: std::collections::HashSet<i64> = keys.into_iter().collect();
        prop_assert_eq!(out.num_rows(), distinct.len());
    }

    /// Sorting yields a non-decreasing column with the same multiset.
    #[test]
    fn sort_is_a_permutation(values in prop::collection::vec(-1000i64..1000, 0..200)) {
        let sorted = int_frame(values.clone()).sort_by("v").unwrap();
        let col = sorted.column("v").unwrap();
        let got = col.i64s().unwrap();
        prop_assert!(got.windows(2).all(|w| w[0] <= w[1]));
        let mut expected = values;
        expected.sort_unstable();
        prop_assert_eq!(got, &expected[..]);
    }

    /// STR-tree point queries agree with a linear scan for random
    /// envelope sets.
    #[test]
    fn rtree_matches_linear_scan(
        boxes in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0, 0.1f64..3.0, 0.1f64..3.0), 1..60),
        px in 0.0f64..12.0,
        py in 0.0f64..12.0,
    ) {
        let envelopes: Vec<Envelope> = boxes
            .iter()
            .map(|&(x, y, w, h)| Envelope::new(x, y, x + w, y + h))
            .collect();
        let tree = StrTree::build(&envelopes);
        let p = Point::new(px, py);
        let mut hits = tree.query_point(&p);
        hits.sort_unstable();
        let mut expected: Vec<usize> = envelopes
            .iter()
            .enumerate()
            .filter(|(_, e)| e.contains_point(&p))
            .map(|(i, _)| i)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(hits, expected);
    }

    /// Every in-extent point maps to exactly one grid cell, and that
    /// cell's envelope contains it (interior points).
    #[test]
    fn grid_assignment_is_consistent(
        nx in 1usize..12,
        ny in 1usize..12,
        fx in 0.001f64..0.999,
        fy in 0.001f64..0.999,
    ) {
        let grid = UniformGrid::new(Envelope::new(0.0, 0.0, 10.0, 20.0), nx, ny).unwrap();
        let p = Point::new(10.0 * fx, 20.0 * fy);
        let cell = grid.cell_of(&p).expect("interior point");
        prop_assert!(cell < grid.num_cells());
        let env = grid.cell_envelope(cell);
        // Interior points (not on cell boundaries) are strictly inside.
        if !on_boundary(&grid, &p) {
            prop_assert!(env.contains_point(&p));
        }
    }

    /// Spatial cell assignment conserves in-extent points across
    /// partitionings.
    #[test]
    fn cell_assignment_conserves_points(
        coords in prop::collection::vec((0.0f64..4.0, 0.0f64..4.0), 1..80),
        parts in 1usize..6,
    ) {
        let df = DataFrame::from_columns(vec![
            ("lat".into(), Column::F64(coords.iter().map(|c| c.1).collect())),
            ("lon".into(), Column::F64(coords.iter().map(|c| c.0).collect())),
        ])
        .unwrap()
        .repartition(parts)
        .unwrap();
        let df = add_point_column(&df, "lat", "lon", "pt").unwrap();
        let grid = UniformGrid::new(Envelope::new(0.0, 0.0, 4.0, 4.0), 4, 4).unwrap();
        let out = assign_grid_cells(&df, "pt", &grid, "cell").unwrap();
        let cells = out.column("cell").unwrap();
        prop_assert!(cells.i64s().unwrap().iter().all(|&c| c >= 0));
        prop_assert_eq!(out.num_rows(), coords.len());
    }

    /// WKT round-trips points exactly (f64 formatting is lossless for
    /// round-trip parsing).
    #[test]
    fn wkt_point_round_trip(x in -180.0f64..180.0, y in -90.0f64..90.0) {
        let g = Geometry::Point(Point::new(x, y));
        let back = Geometry::from_wkt(&g.to_wkt()).unwrap();
        prop_assert_eq!(back, g);
    }
}

fn on_boundary(grid: &UniformGrid, p: &Point) -> bool {
    let e = grid.extent();
    let cw = e.width() / grid.nx() as f64;
    let ch = e.height() / grid.ny() as f64;
    let fx = (p.x - e.min_x) / cw;
    let fy = (p.y - e.min_y) / ch;
    (fx - fx.round()).abs() < 1e-9 || (fy - fy.round()).abs() < 1e-9
}
