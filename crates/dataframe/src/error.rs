//! Error type for DataFrame operations.

use std::fmt;

/// Result alias for DataFrame operations.
pub type DfResult<T> = Result<T, DfError>;

/// Errors surfaced by the DataFrame engine.
#[derive(Debug, Clone, PartialEq)]
pub enum DfError {
    /// Referenced column does not exist.
    ColumnNotFound(String),
    /// A column already exists where a new one was to be created.
    DuplicateColumn(String),
    /// A column had a different type than the operation requires.
    TypeMismatch {
        /// Column name.
        column: String,
        /// Type the operation expected.
        expected: &'static str,
        /// Type actually found.
        found: &'static str,
    },
    /// Columns within one partition (or rows across columns) disagree in length.
    LengthMismatch(String),
    /// Malformed WKT or geometry input.
    InvalidGeometry(String),
    /// Operation-specific invalid argument.
    InvalidArgument(String),
    /// Disk I/O failure (spill files, read-back).
    Io(String),
}

impl fmt::Display for DfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfError::ColumnNotFound(name) => write!(f, "column not found: {name}"),
            DfError::DuplicateColumn(name) => write!(f, "column already exists: {name}"),
            DfError::TypeMismatch {
                column,
                expected,
                found,
            } => write!(f, "column {column}: expected {expected}, found {found}"),
            DfError::LengthMismatch(msg) => write!(f, "length mismatch: {msg}"),
            DfError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            DfError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            DfError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for DfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            DfError::ColumnNotFound("lat".into()).to_string(),
            "column not found: lat"
        );
        let e = DfError::TypeMismatch {
            column: "x".into(),
            expected: "f64",
            found: "str",
        };
        assert_eq!(e.to_string(), "column x: expected f64, found str");
    }
}
