//! Hash group-by with partition-local partial aggregation.
//!
//! Aggregation runs in two phases, like a Spark shuffle-free combine +
//! reduce: each partition builds partial accumulators in parallel, then the
//! partials merge into the final groups. This is the engine behind
//! `STManager::get_st_grid_dataframe`'s cell/time aggregation.

use std::collections::HashMap;

use crate::column::{Column, DType, GroupKey, Value};
use crate::error::{DfError, DfResult};
use crate::exec;
use crate::frame::{DataFrame, Schema};

/// An aggregate over one group.
#[derive(Debug, Clone)]
pub enum Agg {
    /// Row count, emitted as an i64 column with the given alias.
    Count(String),
    /// Sum of a numeric column.
    Sum(String, String),
    /// Minimum of a numeric column.
    Min(String, String),
    /// Maximum of a numeric column.
    Max(String, String),
    /// Arithmetic mean of a numeric column.
    Mean(String, String),
}

impl Agg {
    fn alias(&self) -> &str {
        match self {
            Agg::Count(a) => a,
            Agg::Sum(_, a) | Agg::Min(_, a) | Agg::Max(_, a) | Agg::Mean(_, a) => a,
        }
    }

    fn source(&self) -> Option<&str> {
        match self {
            Agg::Count(_) => None,
            Agg::Sum(c, _) | Agg::Min(c, _) | Agg::Max(c, _) | Agg::Mean(c, _) => Some(c),
        }
    }

    fn output_dtype(&self) -> DType {
        match self {
            Agg::Count(_) => DType::I64,
            _ => DType::F64,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Acc {
    count: i64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Acc {
    fn new() -> Acc {
        Acc {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn update(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn merge(&mut self, other: &Acc) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

type Partial = HashMap<Vec<GroupKey>, (Vec<Value>, Vec<Acc>)>;

impl DataFrame {
    /// Group by `keys` and compute `aggs` per group.
    ///
    /// Output columns: the key columns (first-seen representative values)
    /// followed by one column per aggregate, named by its alias. Group
    /// order is unspecified; sort afterwards if needed.
    pub fn group_by(&self, keys: &[&str], aggs: &[Agg]) -> DfResult<DataFrame> {
        let schema = self.schema();
        let key_indices: Vec<usize> = keys
            .iter()
            .map(|k| schema.index_of(k))
            .collect::<DfResult<_>>()?;
        // One accumulator slot per agg; Count uses a dummy source.
        let agg_indices: Vec<Option<usize>> = aggs
            .iter()
            .map(|a| a.source().map(|c| schema.index_of(c)).transpose())
            .collect::<DfResult<_>>()?;
        for (agg, src) in aggs.iter().zip(&agg_indices) {
            if let Some(idx) = src {
                let dtype = schema.fields()[*idx].1;
                if !matches!(dtype, DType::F64 | DType::I64 | DType::Ts) {
                    return Err(DfError::TypeMismatch {
                        column: agg.source().unwrap_or_default().to_string(),
                        expected: "numeric",
                        found: dtype.name(),
                    });
                }
            }
        }

        // Phase 1: partition-local partial aggregation, in parallel.
        let partials: Vec<DfResult<Partial>> = exec::par_map(self.partitions(), |part| {
            let rows = part.first().map_or(0, Column::len);
            let mut map: Partial = HashMap::new();
            for row in 0..rows {
                let key: Vec<GroupKey> = key_indices
                    .iter()
                    .map(|&i| part[i].value(row).group_key())
                    .collect();
                let entry = map.entry(key).or_insert_with(|| {
                    let rep = key_indices.iter().map(|&i| part[i].value(row)).collect();
                    (rep, vec![Acc::new(); aggs.len()])
                });
                for (acc, src) in entry.1.iter_mut().zip(&agg_indices) {
                    match src {
                        None => acc.count += 1,
                        Some(idx) => {
                            let v = part[*idx].value(row).as_f64().ok_or_else(|| {
                                DfError::TypeMismatch {
                                    column: schema.fields()[*idx].0.clone(),
                                    expected: "numeric",
                                    found: "non-numeric",
                                }
                            })?;
                            acc.update(v);
                        }
                    }
                }
            }
            Ok(map)
        });

        // Phase 2: merge partials.
        let mut merged: Partial = HashMap::new();
        for partial in partials {
            for (key, (rep, accs)) in partial? {
                match merged.entry(key) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        for (dst, src) in e.get_mut().1.iter_mut().zip(&accs) {
                            dst.merge(src);
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert((rep, accs));
                    }
                }
            }
        }

        // Materialise output columns.
        let mut out_fields: Vec<(String, DType)> = key_indices
            .iter()
            .map(|&i| schema.fields()[i].clone())
            .collect();
        for agg in aggs {
            out_fields.push((agg.alias().to_string(), agg.output_dtype()));
        }
        let out_schema = Schema::new(out_fields)?;

        let mut key_cols: Vec<Column> = key_indices
            .iter()
            .map(|&i| Column::empty(schema.fields()[i].1))
            .collect();
        let mut agg_cols: Vec<Column> = aggs
            .iter()
            .map(|a| Column::empty(a.output_dtype()))
            .collect();
        for (rep, accs) in merged.into_values() {
            for (col, value) in key_cols.iter_mut().zip(rep) {
                col.push(value)?;
            }
            for ((col, acc), agg) in agg_cols.iter_mut().zip(&accs).zip(aggs) {
                let value = match agg {
                    Agg::Count(_) => Value::I64(acc.count),
                    Agg::Sum(_, _) => Value::F64(acc.sum),
                    Agg::Min(_, _) => Value::F64(acc.min),
                    Agg::Max(_, _) => Value::F64(acc.max),
                    Agg::Mean(_, _) => Value::F64(if acc.count > 0 {
                        acc.sum / acc.count as f64
                    } else {
                        f64::NAN
                    }),
                };
                col.push(value)?;
            }
        }
        key_cols.extend(agg_cols);
        DataFrame::from_partitions(out_schema, vec![key_cols])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sales() -> DataFrame {
        DataFrame::from_columns(vec![
            (
                "city".into(),
                Column::Str(vec![
                    "nyc".into(),
                    "sf".into(),
                    "nyc".into(),
                    "sf".into(),
                    "nyc".into(),
                ]),
            ),
            ("amount".into(), Column::F64(vec![10.0, 20.0, 30.0, 40.0, 50.0])),
        ])
        .unwrap()
    }

    fn lookup(df: &DataFrame, city: &str, col: &str) -> Value {
        let cities = df.column("city").unwrap();
        let values = df.column(col).unwrap();
        for row in 0..df.num_rows() {
            if let Value::Str(s) = cities.value(row) {
                if s == city {
                    return values.value(row);
                }
            }
        }
        panic!("city {city} not found");
    }

    #[test]
    fn count_sum_mean_min_max() {
        let out = sales()
            .group_by(
                &["city"],
                &[
                    Agg::Count("n".into()),
                    Agg::Sum("amount".into(), "total".into()),
                    Agg::Mean("amount".into(), "avg".into()),
                    Agg::Min("amount".into(), "lo".into()),
                    Agg::Max("amount".into(), "hi".into()),
                ],
            )
            .unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(lookup(&out, "nyc", "n"), Value::I64(3));
        assert_eq!(lookup(&out, "nyc", "total"), Value::F64(90.0));
        assert_eq!(lookup(&out, "nyc", "avg"), Value::F64(30.0));
        assert_eq!(lookup(&out, "sf", "lo"), Value::F64(20.0));
        assert_eq!(lookup(&out, "sf", "hi"), Value::F64(40.0));
    }

    #[test]
    fn partitioned_input_matches_single_partition() {
        let single = sales()
            .group_by(&["city"], &[Agg::Sum("amount".into(), "t".into())])
            .unwrap();
        let multi = sales()
            .repartition(3)
            .unwrap()
            .group_by(&["city"], &[Agg::Sum("amount".into(), "t".into())])
            .unwrap();
        assert_eq!(lookup(&single, "nyc", "t"), lookup(&multi, "nyc", "t"));
        assert_eq!(lookup(&single, "sf", "t"), lookup(&multi, "sf", "t"));
    }

    #[test]
    fn multi_key_grouping() {
        let df = DataFrame::from_columns(vec![
            ("a".into(), Column::I64(vec![1, 1, 2, 2, 1])),
            ("b".into(), Column::I64(vec![0, 1, 0, 0, 0])),
            ("v".into(), Column::F64(vec![1.0, 2.0, 3.0, 4.0, 5.0])),
        ])
        .unwrap();
        let out = df
            .group_by(&["a", "b"], &[Agg::Count("n".into())])
            .unwrap();
        assert_eq!(out.num_rows(), 3); // (1,0), (1,1), (2,0)
        let total: i64 = out.column("n").unwrap().i64s().unwrap().iter().sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn empty_frame_groups_to_empty() {
        let df = DataFrame::from_columns(vec![
            ("k".into(), Column::I64(vec![])),
            ("v".into(), Column::F64(vec![])),
        ])
        .unwrap();
        let out = df
            .group_by(&["k"], &[Agg::Sum("v".into(), "s".into())])
            .unwrap();
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn rejects_non_numeric_aggregation() {
        let err = sales()
            .group_by(&["city"], &[Agg::Sum("city".into(), "s".into())])
            .unwrap_err();
        assert!(matches!(err, DfError::TypeMismatch { .. }));
    }

    #[test]
    fn rejects_unknown_columns() {
        assert!(sales()
            .group_by(&["nope"], &[Agg::Count("n".into())])
            .is_err());
        assert!(sales()
            .group_by(&["city"], &[Agg::Sum("nope".into(), "s".into())])
            .is_err());
    }
}
