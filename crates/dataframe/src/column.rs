//! Typed columns and scalar values.

use crate::error::{DfError, DfResult};
use crate::geometry::Geometry;

/// Logical column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 64-bit float.
    F64,
    /// 64-bit signed integer.
    I64,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
    /// Timestamp: seconds since the Unix epoch.
    Ts,
    /// Geometry (point / envelope / polygon).
    Geom,
}

impl DType {
    /// Human-readable name (used in error messages).
    pub fn name(self) -> &'static str {
        match self {
            DType::F64 => "f64",
            DType::I64 => "i64",
            DType::Str => "str",
            DType::Bool => "bool",
            DType::Ts => "timestamp",
            DType::Geom => "geometry",
        }
    }
}

/// A single scalar value (one row of one column).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit float.
    F64(f64),
    /// 64-bit signed integer.
    I64(i64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Timestamp (epoch seconds).
    Ts(i64),
    /// Geometry.
    Geom(Geometry),
}

impl Value {
    /// The value's logical type.
    pub fn dtype(&self) -> DType {
        match self {
            Value::F64(_) => DType::F64,
            Value::I64(_) => DType::I64,
            Value::Str(_) => DType::Str,
            Value::Bool(_) => DType::Bool,
            Value::Ts(_) => DType::Ts,
            Value::Geom(_) => DType::Geom,
        }
    }

    /// Extract an f64, coercing integers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::I64(v) | Value::Ts(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Extract an i64 (also accepts timestamps).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) | Value::Ts(v) => Some(*v),
            _ => None,
        }
    }

    /// A key usable for hashing/grouping: integers and strings hash
    /// directly; floats hash by bit pattern.
    pub fn group_key(&self) -> GroupKey {
        match self {
            Value::F64(v) => GroupKey::Bits(v.to_bits()),
            Value::I64(v) | Value::Ts(v) => GroupKey::Int(*v),
            Value::Str(s) => GroupKey::Str(s.clone()),
            Value::Bool(b) => GroupKey::Int(*b as i64),
            Value::Geom(_) => GroupKey::Str(format!("{:?}", self)),
        }
    }
}

/// Hashable projection of a [`Value`] used by group-by and joins.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GroupKey {
    /// Integer-like key.
    Int(i64),
    /// Float key by bit pattern.
    Bits(u64),
    /// String key.
    Str(String),
}

/// A typed column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit floats.
    F64(Vec<f64>),
    /// 64-bit integers.
    I64(Vec<i64>),
    /// Strings.
    Str(Vec<String>),
    /// Booleans.
    Bool(Vec<bool>),
    /// Timestamps (epoch seconds).
    Ts(Vec<i64>),
    /// Geometries.
    Geom(Vec<Geometry>),
}

impl Column {
    /// The column's logical type.
    pub fn dtype(&self) -> DType {
        match self {
            Column::F64(_) => DType::F64,
            Column::I64(_) => DType::I64,
            Column::Str(_) => DType::Str,
            Column::Bool(_) => DType::Bool,
            Column::Ts(_) => DType::Ts,
            Column::Geom(_) => DType::Geom,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::F64(v) => v.len(),
            Column::I64(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Ts(v) => v.len(),
            Column::Geom(v) => v.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `row`.
    ///
    /// # Panics
    /// If `row` is out of bounds.
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::F64(v) => Value::F64(v[row]),
            Column::I64(v) => Value::I64(v[row]),
            Column::Str(v) => Value::Str(v[row].clone()),
            Column::Bool(v) => Value::Bool(v[row]),
            Column::Ts(v) => Value::Ts(v[row]),
            Column::Geom(v) => Value::Geom(v[row].clone()),
        }
    }

    /// An empty column of the same type.
    pub fn empty_like(&self) -> Column {
        Column::empty(self.dtype())
    }

    /// An empty column of the given type.
    pub fn empty(dtype: DType) -> Column {
        match dtype {
            DType::F64 => Column::F64(Vec::new()),
            DType::I64 => Column::I64(Vec::new()),
            DType::Str => Column::Str(Vec::new()),
            DType::Bool => Column::Bool(Vec::new()),
            DType::Ts => Column::Ts(Vec::new()),
            DType::Geom => Column::Geom(Vec::new()),
        }
    }

    /// Append one value; the value type must match.
    pub fn push(&mut self, value: Value) -> DfResult<()> {
        match (self, value) {
            (Column::F64(v), Value::F64(x)) => v.push(x),
            (Column::I64(v), Value::I64(x)) => v.push(x),
            (Column::Str(v), Value::Str(x)) => v.push(x),
            (Column::Bool(v), Value::Bool(x)) => v.push(x),
            (Column::Ts(v), Value::Ts(x)) => v.push(x),
            (Column::Geom(v), Value::Geom(x)) => v.push(x),
            (col, value) => {
                return Err(DfError::TypeMismatch {
                    column: String::from("<push>"),
                    expected: col.dtype().name(),
                    found: value.dtype().name(),
                })
            }
        }
        Ok(())
    }

    /// Keep only rows where `mask` is true. `mask.len()` must equal rows.
    pub fn filter(&self, mask: &[bool]) -> Column {
        fn keep<T: Clone>(v: &[T], mask: &[bool]) -> Vec<T> {
            v.iter()
                .zip(mask)
                .filter(|(_, &m)| m)
                .map(|(x, _)| x.clone())
                .collect()
        }
        match self {
            Column::F64(v) => Column::F64(keep(v, mask)),
            Column::I64(v) => Column::I64(keep(v, mask)),
            Column::Str(v) => Column::Str(keep(v, mask)),
            Column::Bool(v) => Column::Bool(keep(v, mask)),
            Column::Ts(v) => Column::Ts(keep(v, mask)),
            Column::Geom(v) => Column::Geom(keep(v, mask)),
        }
    }

    /// Rows selected by `indices`, in order (gather).
    pub fn take(&self, indices: &[usize]) -> Column {
        fn gather<T: Clone>(v: &[T], idx: &[usize]) -> Vec<T> {
            idx.iter().map(|&i| v[i].clone()).collect()
        }
        match self {
            Column::F64(v) => Column::F64(gather(v, indices)),
            Column::I64(v) => Column::I64(gather(v, indices)),
            Column::Str(v) => Column::Str(gather(v, indices)),
            Column::Bool(v) => Column::Bool(gather(v, indices)),
            Column::Ts(v) => Column::Ts(gather(v, indices)),
            Column::Geom(v) => Column::Geom(gather(v, indices)),
        }
    }

    /// Concatenate same-typed columns.
    pub fn concat(parts: &[&Column]) -> DfResult<Column> {
        let first = parts
            .first()
            .ok_or_else(|| DfError::InvalidArgument("concat of zero columns".into()))?;
        let mut out = first.empty_like();
        for part in parts {
            if part.dtype() != out.dtype() {
                return Err(DfError::TypeMismatch {
                    column: String::from("<concat>"),
                    expected: out.dtype().name(),
                    found: part.dtype().name(),
                });
            }
            match (&mut out, part) {
                (Column::F64(o), Column::F64(p)) => o.extend_from_slice(p),
                (Column::I64(o), Column::I64(p)) => o.extend_from_slice(p),
                (Column::Str(o), Column::Str(p)) => o.extend_from_slice(p),
                (Column::Bool(o), Column::Bool(p)) => o.extend_from_slice(p),
                (Column::Ts(o), Column::Ts(p)) => o.extend_from_slice(p),
                (Column::Geom(o), Column::Geom(p)) => o.extend_from_slice(p),
                _ => unreachable!("dtype checked above"),
            }
        }
        Ok(out)
    }

    /// Slice rows `[start, end)`.
    pub fn slice(&self, start: usize, end: usize) -> Column {
        fn cut<T: Clone>(v: &[T], s: usize, e: usize) -> Vec<T> {
            v[s..e].to_vec()
        }
        match self {
            Column::F64(v) => Column::F64(cut(v, start, end)),
            Column::I64(v) => Column::I64(cut(v, start, end)),
            Column::Str(v) => Column::Str(cut(v, start, end)),
            Column::Bool(v) => Column::Bool(cut(v, start, end)),
            Column::Ts(v) => Column::Ts(cut(v, start, end)),
            Column::Geom(v) => Column::Geom(cut(v, start, end)),
        }
    }

    /// Borrow as `&[f64]`, or a type error.
    pub fn f64s(&self) -> DfResult<&[f64]> {
        match self {
            Column::F64(v) => Ok(v),
            other => Err(DfError::TypeMismatch {
                column: String::from("<f64s>"),
                expected: "f64",
                found: other.dtype().name(),
            }),
        }
    }

    /// Borrow as `&[i64]` (integers or timestamps).
    pub fn i64s(&self) -> DfResult<&[i64]> {
        match self {
            Column::I64(v) | Column::Ts(v) => Ok(v),
            other => Err(DfError::TypeMismatch {
                column: String::from("<i64s>"),
                expected: "i64",
                found: other.dtype().name(),
            }),
        }
    }

    /// Borrow as `&[Geometry]`.
    pub fn geoms(&self) -> DfResult<&[Geometry]> {
        match self {
            Column::Geom(v) => Ok(v),
            other => Err(DfError::TypeMismatch {
                column: String::from("<geoms>"),
                expected: "geometry",
                found: other.dtype().name(),
            }),
        }
    }

    /// Borrow as `&[String]`.
    pub fn strs(&self) -> DfResult<&[String]> {
        match self {
            Column::Str(v) => Ok(v),
            other => Err(DfError::TypeMismatch {
                column: String::from("<strs>"),
                expected: "str",
                found: other.dtype().name(),
            }),
        }
    }

    /// Approximate heap footprint in bytes (used by the memory-scaling
    /// experiments).
    pub fn approx_bytes(&self) -> usize {
        match self {
            Column::F64(v) => v.len() * 8,
            Column::I64(v) | Column::Ts(v) => v.len() * 8,
            Column::Bool(v) => v.len(),
            Column::Str(v) => v.iter().map(|s| s.len() + 24).sum(),
            Column::Geom(v) => v.iter().map(|g| g.approx_bytes()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_and_len() {
        let c = Column::F64(vec![1.0, 2.0]);
        assert_eq!(c.dtype(), DType::F64);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert_eq!(c.value(1), Value::F64(2.0));
    }

    #[test]
    fn push_type_checked() {
        let mut c = Column::I64(vec![]);
        c.push(Value::I64(5)).unwrap();
        assert!(c.push(Value::F64(1.0)).is_err());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn filter_take_slice() {
        let c = Column::I64(vec![10, 20, 30, 40]);
        assert_eq!(c.filter(&[true, false, true, false]), Column::I64(vec![10, 30]));
        assert_eq!(c.take(&[3, 0]), Column::I64(vec![40, 10]));
        assert_eq!(c.slice(1, 3), Column::I64(vec![20, 30]));
    }

    #[test]
    fn concat_same_type() {
        let a = Column::Str(vec!["a".into()]);
        let b = Column::Str(vec!["b".into(), "c".into()]);
        let c = Column::concat(&[&a, &b]).unwrap();
        assert_eq!(c.len(), 3);
        assert!(Column::concat(&[&a, &Column::I64(vec![1])]).is_err());
    }

    #[test]
    fn value_coercions() {
        assert_eq!(Value::I64(3).as_f64(), Some(3.0));
        assert_eq!(Value::Ts(7).as_i64(), Some(7));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
    }

    #[test]
    fn group_keys_distinguish_values() {
        assert_ne!(Value::F64(1.0).group_key(), Value::F64(2.0).group_key());
        assert_eq!(Value::I64(5).group_key(), Value::Ts(5).group_key());
        assert_ne!(Value::Str("a".into()).group_key(), Value::Str("b".into()).group_key());
    }

    #[test]
    fn typed_accessors() {
        let c = Column::F64(vec![1.5]);
        assert_eq!(c.f64s().unwrap(), &[1.5]);
        assert!(c.i64s().is_err());
        let ts = Column::Ts(vec![100]);
        assert_eq!(ts.i64s().unwrap(), &[100]);
    }

    #[test]
    fn approx_bytes_scales_with_rows() {
        let small = Column::F64(vec![0.0; 10]);
        let big = Column::F64(vec![0.0; 1000]);
        assert!(big.approx_bytes() > small.approx_bytes() * 50);
    }
}
