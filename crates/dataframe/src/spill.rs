//! Spill-to-disk partition storage for out-of-core preprocessing.
//!
//! At the paper's real trip volumes (100M+ rows, Fig. 8) the partitioned
//! engine cannot hold every partition in RAM. [`SpillStore`] writes each
//! partition to its own binary file and reads it back on demand, so a
//! downstream consumer (the converter's streaming loader) touches one
//! partition at a time with bounded memory.
//!
//! Properties the training stack relies on:
//!
//! - **Atomic writes.** Each partition is serialised to a `.tmp` sibling
//!   and `rename`d into place, so a crash (or an injected fault — see the
//!   `dataframe.spill.write` fault point) can never leave a half-written
//!   file where a retry would pick it up. A failed spill registers
//!   nothing; retrying the same partition starts from scratch.
//! - **Recycled read-back buffers.** [`SpillStore::read_with`] decodes
//!   from a caller-owned scratch buffer that is reused across partitions
//!   (and the batch tensors staged from the decoded columns draw from the
//!   tensor pool), so steady-state streaming does not grow the heap with
//!   the dataset.
//! - **Telemetry.** Every spilled byte is counted under
//!   `dataframe.spill_bytes`.
//!
//! The on-disk format is a private little-endian layout (magic +
//! per-column dtype tag + payload), not an interchange format: spill
//! files live for the duration of one pipeline run and the store removes
//! its directory on drop.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::column::{Column, DType};
use crate::error::{DfError, DfResult};
use crate::frame::{DataFrame, Schema};

/// File magic: "GTSP" + format version 1.
const MAGIC: &[u8; 5] = b"GTSP1";

/// One spilled partition's bookkeeping.
#[derive(Debug, Clone)]
struct SpillEntry {
    path: PathBuf,
    rows: usize,
    bytes: u64,
}

/// Disk-backed partition storage: spill partitions out, read them back
/// one at a time.
#[derive(Debug)]
pub struct SpillStore {
    dir: PathBuf,
    schema: Schema,
    entries: Vec<SpillEntry>,
    next_id: u64,
}

impl SpillStore {
    /// A store rooted at `dir` (created if missing) for partitions of
    /// `schema`. Geometry columns cannot be spilled.
    ///
    /// # Errors
    /// If the directory cannot be created or the schema contains a
    /// geometry column.
    pub fn create(dir: impl AsRef<Path>, schema: Schema) -> DfResult<SpillStore> {
        for (name, dtype) in schema.fields() {
            if *dtype == DType::Geom {
                return Err(DfError::TypeMismatch {
                    column: name.clone(),
                    expected: "spillable (f64/i64/ts/bool/str)",
                    found: "geom",
                });
            }
        }
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| DfError::Io(format!("create {dir:?}: {e}")))?;
        Ok(SpillStore {
            dir,
            schema,
            entries: Vec::new(),
            next_id: 0,
        })
    }

    /// Spill every partition of `df` into a fresh store under `dir`.
    pub fn from_frame(dir: impl AsRef<Path>, df: &DataFrame) -> DfResult<SpillStore> {
        let mut store = SpillStore::create(dir, df.schema().clone())?;
        for part in df.partitions() {
            store.spill(part)?;
        }
        Ok(store)
    }

    /// Write one partition to disk; returns its index in the store.
    ///
    /// The file is written to a `.tmp` path and renamed into place, so a
    /// failure mid-write (crash, full disk, injected
    /// `dataframe.spill.write` fault) leaves no consumable artifact and
    /// registers no entry — the caller can simply retry.
    pub fn spill(&mut self, partition: &[Column]) -> DfResult<usize> {
        if partition.len() != self.schema.len() {
            return Err(DfError::LengthMismatch(format!(
                "partition has {} columns, schema has {}",
                partition.len(),
                self.schema.len()
            )));
        }
        let rows = partition.first().map_or(0, Column::len);
        let mut payload = Vec::new();
        payload.extend_from_slice(MAGIC);
        payload.extend_from_slice(&(partition.len() as u32).to_le_bytes());
        payload.extend_from_slice(&(rows as u64).to_le_bytes());
        for col in partition {
            if col.len() != rows {
                return Err(DfError::LengthMismatch(format!(
                    "ragged partition: {} vs {rows} rows",
                    col.len()
                )));
            }
            encode_column(col, &mut payload)?;
        }
        let id = self.next_id;
        self.next_id += 1;
        let path = self.dir.join(format!("part-{id:06}.spill"));
        let tmp = self.dir.join(format!("part-{id:06}.tmp"));
        let write = (|| -> Result<(), String> {
            let mut f = fs::File::create(&tmp).map_err(|e| e.to_string())?;
            // The fault point sits between create and the payload write:
            // an injected failure leaves an empty/partial tmp file, never
            // a renamed spill file.
            geotorch_telemetry::fault_point!("dataframe.spill.write")?;
            f.write_all(&payload).map_err(|e| e.to_string())?;
            f.sync_all().map_err(|e| e.to_string())?;
            Ok(())
        })();
        if let Err(e) = write {
            let _ = fs::remove_file(&tmp);
            return Err(DfError::Io(format!("spill {tmp:?}: {e}")));
        }
        fs::rename(&tmp, &path).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            DfError::Io(format!("rename {tmp:?}: {e}"))
        })?;
        geotorch_telemetry::count!("dataframe.spill_bytes", payload.len());
        self.entries.push(SpillEntry {
            path,
            rows,
            bytes: payload.len() as u64,
        });
        Ok(self.entries.len() - 1)
    }

    /// Read partition `i` back, reusing `scratch` as the file buffer so
    /// repeated reads recycle one allocation instead of growing the heap
    /// per partition.
    pub fn read_with(&self, i: usize, scratch: &mut Vec<u8>) -> DfResult<Vec<Column>> {
        let entry = self
            .entries
            .get(i)
            .ok_or_else(|| DfError::InvalidArgument(format!("spill partition {i} out of range")))?;
        scratch.clear();
        let mut f = fs::File::open(&entry.path)
            .map_err(|e| DfError::Io(format!("open {:?}: {e}", entry.path)))?;
        std::io::Read::read_to_end(&mut f, scratch)
            .map_err(|e| DfError::Io(format!("read {:?}: {e}", entry.path)))?;
        decode_partition(scratch, &self.schema, entry.rows)
            .map_err(|e| DfError::Io(format!("decode {:?}: {e}", entry.path)))
    }

    /// Read partition `i` back with a fresh buffer.
    pub fn read(&self, i: usize) -> DfResult<Vec<Column>> {
        let mut scratch = Vec::new();
        self.read_with(i, &mut scratch)
    }

    /// Number of spilled partitions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been spilled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Rows in partition `i`.
    pub fn rows(&self, i: usize) -> usize {
        self.entries[i].rows
    }

    /// Total rows across partitions.
    pub fn total_rows(&self) -> usize {
        self.entries.iter().map(|e| e.rows).sum()
    }

    /// Total bytes currently on disk.
    pub fn spilled_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    /// The schema every partition conforms to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        for e in &self.entries {
            let _ = fs::remove_file(&e.path);
        }
        // Only removed if empty — the store never owns foreign files.
        let _ = fs::remove_dir(&self.dir);
    }
}

fn dtype_tag(dtype: DType) -> u8 {
    match dtype {
        DType::F64 => 0,
        DType::I64 => 1,
        DType::Str => 2,
        DType::Bool => 3,
        DType::Ts => 4,
        DType::Geom => 255,
    }
}

fn encode_column(col: &Column, out: &mut Vec<u8>) -> DfResult<()> {
    out.push(dtype_tag(col.dtype()));
    match col {
        Column::F64(v) => {
            for x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        Column::I64(v) | Column::Ts(v) => {
            for x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        Column::Bool(v) => out.extend(v.iter().map(|&b| b as u8)),
        Column::Str(v) => {
            for s in v {
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
        Column::Geom(_) => {
            return Err(DfError::TypeMismatch {
                column: "<spill>".into(),
                expected: "spillable (f64/i64/ts/bool/str)",
                found: "geom",
            })
        }
    }
    Ok(())
}

fn decode_partition(buf: &[u8], schema: &Schema, rows: usize) -> Result<Vec<Column>, String> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], String> {
        if *pos + n > buf.len() {
            return Err(format!("truncated spill file at byte {}", *pos));
        }
        let s = &buf[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };
    if take(&mut pos, MAGIC.len())? != MAGIC {
        return Err("bad spill magic".into());
    }
    let ncols = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
    let file_rows = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize;
    if ncols != schema.len() || file_rows != rows {
        return Err(format!(
            "spill header mismatch: {ncols} cols / {file_rows} rows, expected {} / {rows}",
            schema.len()
        ));
    }
    let mut cols = Vec::with_capacity(ncols);
    for (name, dtype) in schema.fields() {
        let tag = take(&mut pos, 1)?[0];
        if tag != dtype_tag(*dtype) {
            return Err(format!("column {name}: dtype tag {tag} does not match schema"));
        }
        let col = match dtype {
            DType::F64 => Column::F64(
                take(&mut pos, rows * 8)?
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            ),
            DType::I64 | DType::Ts => {
                let v: Vec<i64> = take(&mut pos, rows * 8)?
                    .chunks_exact(8)
                    .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
                    .collect();
                if *dtype == DType::I64 {
                    Column::I64(v)
                } else {
                    Column::Ts(v)
                }
            }
            DType::Bool => Column::Bool(take(&mut pos, rows)?.iter().map(|&b| b != 0).collect()),
            DType::Str => {
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    let len =
                        u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
                    let bytes = take(&mut pos, len)?;
                    v.push(
                        String::from_utf8(bytes.to_vec())
                            .map_err(|e| format!("non-utf8 string payload: {e}"))?,
                    );
                }
                Column::Str(v)
            }
            DType::Geom => return Err("geometry columns are never spilled".into()),
        };
        cols.push(col);
    }
    if pos != buf.len() {
        return Err(format!(
            "trailing bytes in spill file: consumed {pos} of {}",
            buf.len()
        ));
    }
    Ok(cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Value;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "geotorch-spill-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn df() -> DataFrame {
        DataFrame::from_columns(vec![
            ("lat".into(), Column::F64(vec![40.7, 40.8, 40.9, 41.0])),
            ("count".into(), Column::I64(vec![1, 2, 3, 4])),
            ("ts".into(), Column::Ts(vec![10, 20, 30, 40])),
            (
                "flag".into(),
                Column::Bool(vec![true, false, true, false]),
            ),
            (
                "zone".into(),
                Column::Str(vec!["a".into(), "b".into(), "".into(), "über".into()]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn round_trips_every_dtype() {
        let df = df().repartition(2).unwrap();
        let store = SpillStore::from_frame(tmpdir("roundtrip"), &df).unwrap();
        assert_eq!(store.len(), df.num_partitions());
        assert_eq!(store.total_rows(), 4);
        assert!(store.spilled_bytes() > 0);
        let mut scratch = Vec::new();
        for (i, part) in df.partitions().iter().enumerate() {
            let back = store.read_with(i, &mut scratch).unwrap();
            assert_eq!(&back, part);
        }
    }

    #[test]
    fn read_buffer_is_recycled() {
        let df = df();
        let store = SpillStore::from_frame(tmpdir("recycle"), &df).unwrap();
        let mut scratch = Vec::new();
        store.read_with(0, &mut scratch).unwrap();
        let cap = scratch.capacity();
        for _ in 0..5 {
            store.read_with(0, &mut scratch).unwrap();
        }
        assert_eq!(scratch.capacity(), cap, "scratch must be reused, not regrown");
    }

    #[test]
    fn rejects_geometry_schemas() {
        let schema = Schema::new(vec![("g".into(), DType::Geom)]).unwrap();
        assert!(SpillStore::create(tmpdir("geom"), schema).is_err());
    }

    #[test]
    fn rejects_mismatched_partitions() {
        let mut store =
            SpillStore::create(tmpdir("mismatch"), df().schema().clone()).unwrap();
        assert!(store.spill(&[Column::F64(vec![1.0])]).is_err());
    }

    #[test]
    fn drop_removes_spill_files() {
        let dir = tmpdir("cleanup");
        let path;
        {
            let store = SpillStore::from_frame(&dir, &df()).unwrap();
            path = dir.join("part-000000.spill");
            assert!(path.exists());
            drop(store);
        }
        assert!(!path.exists());
        assert!(!dir.exists());
    }

    #[test]
    fn counts_spilled_bytes_in_telemetry() {
        geotorch_telemetry::reset();
        geotorch_telemetry::set_enabled(true);
        let store = SpillStore::from_frame(tmpdir("telemetry"), &df()).unwrap();
        geotorch_telemetry::set_enabled(false);
        let snap = geotorch_telemetry::snapshot();
        let stat = snap
            .iter()
            .find(|s| s.name == "dataframe.spill_bytes")
            .expect("spill_bytes counter");
        assert_eq!(stat.count, store.spilled_bytes());
    }

    #[test]
    fn truncated_file_is_rejected_not_misread() {
        let dir = tmpdir("truncate");
        let store = SpillStore::from_frame(&dir, &df()).unwrap();
        let path = dir.join("part-000000.spill");
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        let err = store.read(0).unwrap_err();
        assert!(matches!(err, DfError::Io(_)), "got {err:?}");
    }

    #[test]
    fn values_survive_via_value_api() {
        let df = df();
        let store = SpillStore::from_frame(tmpdir("values"), &df).unwrap();
        let back = store.read(0).unwrap();
        assert_eq!(back[4].value(3), Value::Str("über".into()));
        assert_eq!(back[1].value(2), Value::I64(3));
    }
}
