//! Inner hash equi-join.

use std::collections::HashMap;

use crate::column::{Column, GroupKey};
use crate::error::{DfError, DfResult};
use crate::frame::{DataFrame, Schema};

impl DataFrame {
    /// Inner join on equality of `left_key` (this frame) and `right_key`.
    ///
    /// The build side is the right frame (hashed once); the probe side
    /// streams the left frame's rows. Right-side columns are suffixed with
    /// `_right` when their name collides with a left column. The right key
    /// column is dropped from the output (it duplicates the left key).
    pub fn join_inner(
        &self,
        right: &DataFrame,
        left_key: &str,
        right_key: &str,
    ) -> DfResult<DataFrame> {
        let left = self.concat_partitions()?;
        let right = right.concat_partitions()?;
        let lk = left.schema().index_of(left_key)?;
        let rk = right.schema().index_of(right_key)?;

        let empty_left: Vec<Column> = Vec::new();
        let left_cols = left.partitions().first().unwrap_or(&empty_left);
        let empty_right: Vec<Column> = Vec::new();
        let right_cols = right.partitions().first().unwrap_or(&empty_right);
        let left_rows = left_cols.first().map_or(0, Column::len);
        let right_rows = right_cols.first().map_or(0, Column::len);

        // Build phase.
        let mut table: HashMap<GroupKey, Vec<usize>> = HashMap::new();
        if !right_cols.is_empty() {
            for row in 0..right_rows {
                table
                    .entry(right_cols[rk].value(row).group_key())
                    .or_default()
                    .push(row);
            }
        }

        // Probe phase.
        let mut left_take = Vec::new();
        let mut right_take = Vec::new();
        if !left_cols.is_empty() {
            for row in 0..left_rows {
                if let Some(matches) = table.get(&left_cols[lk].value(row).group_key()) {
                    for &r in matches {
                        left_take.push(row);
                        right_take.push(r);
                    }
                }
            }
        }

        // Output schema: all left fields + right fields except the key.
        let mut fields = left.schema().fields().to_vec();
        let left_names: Vec<String> = fields.iter().map(|(n, _)| n.clone()).collect();
        let mut right_field_indices = Vec::new();
        for (i, (name, dtype)) in right.schema().fields().iter().enumerate() {
            if i == rk {
                continue;
            }
            let out_name = if left_names.iter().any(|n| n == name) {
                format!("{name}_right")
            } else {
                name.clone()
            };
            fields.push((out_name, *dtype));
            right_field_indices.push(i);
        }
        let schema = Schema::new(fields)?;

        let mut cols: Vec<Column> = left_cols.iter().map(|c| c.take(&left_take)).collect();
        for &i in &right_field_indices {
            cols.push(right_cols[i].take(&right_take));
        }
        if cols.is_empty() {
            return Err(DfError::InvalidArgument(
                "join of two empty-schema frames".into(),
            ));
        }
        DataFrame::from_partitions(schema, vec![cols])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Value;

    fn users() -> DataFrame {
        DataFrame::from_columns(vec![
            ("uid".into(), Column::I64(vec![1, 2, 3])),
            (
                "name".into(),
                Column::Str(vec!["ann".into(), "bob".into(), "cat".into()]),
            ),
        ])
        .unwrap()
    }

    fn orders() -> DataFrame {
        DataFrame::from_columns(vec![
            ("user".into(), Column::I64(vec![1, 1, 3, 9])),
            ("total".into(), Column::F64(vec![10.0, 20.0, 30.0, 99.0])),
        ])
        .unwrap()
    }

    #[test]
    fn inner_join_matches() {
        let joined = orders().join_inner(&users(), "user", "uid").unwrap();
        // Orders for users 1,1,3 match; user 9 does not.
        assert_eq!(joined.num_rows(), 3);
        assert_eq!(joined.schema().names(), vec!["user", "total", "name"]);
        let names = joined.column("name").unwrap();
        let mut got: Vec<String> = names.strs().unwrap().to_vec();
        got.sort();
        assert_eq!(got, vec!["ann", "ann", "cat"]);
    }

    #[test]
    fn one_to_many_expands() {
        let joined = users().join_inner(&orders(), "uid", "user").unwrap();
        assert_eq!(joined.num_rows(), 3);
        // User 1 appears twice (two orders).
        let ids = joined.column("uid").unwrap();
        let ones = ids.i64s().unwrap().iter().filter(|&&v| v == 1).count();
        assert_eq!(ones, 2);
    }

    #[test]
    fn name_collision_gets_suffix() {
        let a = DataFrame::from_columns(vec![
            ("k".into(), Column::I64(vec![1])),
            ("v".into(), Column::F64(vec![1.0])),
        ])
        .unwrap();
        let b = DataFrame::from_columns(vec![
            ("k2".into(), Column::I64(vec![1])),
            ("v".into(), Column::F64(vec![2.0])),
        ])
        .unwrap();
        let joined = a.join_inner(&b, "k", "k2").unwrap();
        assert_eq!(joined.schema().names(), vec!["k", "v", "v_right"]);
        assert_eq!(joined.column("v_right").unwrap().value(0), Value::F64(2.0));
    }

    #[test]
    fn join_on_strings() {
        let a = DataFrame::from_columns(vec![(
            "city".into(),
            Column::Str(vec!["nyc".into(), "sf".into()]),
        )])
        .unwrap();
        let b = DataFrame::from_columns(vec![
            ("c".into(), Column::Str(vec!["nyc".into()])),
            ("pop".into(), Column::I64(vec![8_000_000])),
        ])
        .unwrap();
        let joined = a.join_inner(&b, "city", "c").unwrap();
        assert_eq!(joined.num_rows(), 1);
    }

    #[test]
    fn empty_sides_produce_empty_result() {
        let empty = DataFrame::from_columns(vec![
            ("user".into(), Column::I64(vec![])),
            ("total".into(), Column::F64(vec![])),
        ])
        .unwrap();
        let joined = empty.join_inner(&users(), "user", "uid").unwrap();
        assert_eq!(joined.num_rows(), 0);
        assert_eq!(joined.schema().names(), vec!["user", "total", "name"]);
    }

    #[test]
    fn missing_key_errors() {
        assert!(orders().join_inner(&users(), "nope", "uid").is_err());
        assert!(orders().join_inner(&users(), "user", "nope").is_err());
    }
}
