//! # geotorch-dataframe
//!
//! A columnar, partitioned DataFrame engine with geospatial operators —
//! the Apache Spark + Apache Sedona substrate of the GeoTorchAI
//! reproduction.
//!
//! The engine keeps a [`DataFrame`] as a set of *partitions* (column
//! chunks). Row-parallel operations (filter, projection, map) and
//! partition-local aggregation run concurrently across a scoped thread
//! pool, mirroring how Spark distributes stages over executors; the final
//! merge step plays the role of the shuffle/reduce. This preserves the
//! property GeoTorchAI's preprocessing evaluation measures: partitioned,
//! streaming execution keeps memory flat and scales with cores, while a
//! naive materialising engine (see `geotorch-preprocess::geopandas_like`)
//! does not.
//!
//! Spatial support mirrors the Sedona feature set used by the paper:
//! geometry columns ([`geometry::Geometry`]), WKT round-tripping, an STR
//! packed R-tree ([`rtree::StrTree`]), spatial predicates, and
//! [`spatial::join_points_to_zones`].
//!
//! Unlike the tensor crates (where shape errors are programmer bugs and
//! panic), this crate deals with *data-dependent* failure and returns
//! [`DfError`] everywhere.

#![warn(missing_docs)]

pub mod column;
pub mod csv;
pub mod error;
pub mod exec;
pub mod frame;
pub mod geometry;
pub mod groupby;
pub mod join;
pub mod rtree;
pub mod spatial;
pub mod spill;
pub mod stats;

pub use column::{Column, DType, Value};
pub use error::{DfError, DfResult};
pub use frame::{DataFrame, Schema};
pub use geometry::{Envelope, Geometry, Point, Polygon};
pub use spill::SpillStore;
