//! CSV reading and writing.
//!
//! The paper's raw inputs (NYC TLC trip records) ship as CSV; this module
//! lets the preprocessing pipeline start from files on disk. The reader
//! supports explicit schemas or type inference, quoted fields, and
//! partitioned loading (rows are split into chunks as they stream in, so
//! a large file lands directly in partition-parallel form).

use std::io::{BufRead, BufReader, Write};
use std::path::Path;

use crate::column::{Column, DType, Value};
use crate::error::{DfError, DfResult};
use crate::frame::DataFrame;

/// CSV reading options.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field separator.
    pub delimiter: char,
    /// Whether the first row is a header.
    pub has_header: bool,
    /// Target rows per partition (0 = single partition).
    pub rows_per_partition: usize,
    /// Explicit column types; `None` infers from the first data rows.
    pub schema: Option<Vec<DType>>,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: ',',
            has_header: true,
            rows_per_partition: 0,
            schema: None,
        }
    }
}

/// Read a CSV file into a DataFrame.
pub fn read_csv(path: impl AsRef<Path>, options: &CsvOptions) -> DfResult<DataFrame> {
    let file = std::fs::File::open(path.as_ref())
        .map_err(|e| DfError::InvalidArgument(format!("cannot open csv: {e}")))?;
    read_csv_from(BufReader::new(file), options)
}

/// Read CSV from any buffered reader (used directly in tests).
pub fn read_csv_from(reader: impl BufRead, options: &CsvOptions) -> DfResult<DataFrame> {
    let mut lines = reader.lines();
    let mut names: Vec<String> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();

    if options.has_header {
        match lines.next() {
            Some(Ok(header)) => {
                names = split_line(&header, options.delimiter);
            }
            Some(Err(e)) => return Err(DfError::InvalidArgument(format!("csv read: {e}"))),
            None => return Err(DfError::InvalidArgument("empty csv".into())),
        }
    }

    for line in lines {
        let line = line.map_err(|e| DfError::InvalidArgument(format!("csv read: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_line(&line, options.delimiter);
        if names.is_empty() {
            names = (0..fields.len()).map(|i| format!("column_{i}")).collect();
        }
        if fields.len() != names.len() {
            return Err(DfError::LengthMismatch(format!(
                "row has {} fields, header has {}",
                fields.len(),
                names.len()
            )));
        }
        rows.push(fields);
    }
    if names.is_empty() {
        return Err(DfError::InvalidArgument("empty csv".into()));
    }

    let dtypes = match &options.schema {
        Some(schema) => {
            if schema.len() != names.len() {
                return Err(DfError::LengthMismatch(format!(
                    "schema has {} types, header has {} columns",
                    schema.len(),
                    names.len()
                )));
            }
            schema.clone()
        }
        None => infer_types(&rows, names.len()),
    };

    // Build typed columns.
    let mut columns: Vec<Column> = dtypes.iter().map(|&d| Column::empty(d)).collect();
    for (row_idx, row) in rows.iter().enumerate() {
        for ((field, column), &dtype) in row.iter().zip(&mut columns).zip(&dtypes) {
            let value = parse_value(field, dtype).ok_or_else(|| {
                DfError::TypeMismatch {
                    column: format!("row {row_idx}: {field:?}"),
                    expected: dtype.name(),
                    found: "unparseable text",
                }
            })?;
            column.push(value)?;
        }
    }

    let df = DataFrame::from_columns(names.into_iter().zip(columns).collect())?;
    if options.rows_per_partition > 0 && df.num_rows() > options.rows_per_partition {
        let parts = df.num_rows().div_ceil(options.rows_per_partition);
        df.repartition(parts)
    } else {
        Ok(df)
    }
}

/// Write a DataFrame as CSV (geometry columns serialise as WKT).
pub fn write_csv(df: &DataFrame, path: impl AsRef<Path>) -> DfResult<()> {
    let mut file = std::fs::File::create(path.as_ref())
        .map_err(|e| DfError::InvalidArgument(format!("cannot create csv: {e}")))?;
    let names = df.schema().names();
    writeln!(file, "{}", names.join(","))
        .map_err(|e| DfError::InvalidArgument(format!("csv write: {e}")))?;
    df.for_each_row(|row| {
        let fields: Vec<String> = names
            .iter()
            .map(|n| format_value(&row.value(n).expect("schema column")))
            .collect();
        writeln!(file, "{}", fields.join(","))
            .map_err(|e| DfError::InvalidArgument(format!("csv write: {e}")))
    })
}

fn split_line(line: &str, delimiter: char) -> Vec<String> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    current.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            } else {
                current.push(c);
            }
        } else if c == '"' {
            in_quotes = true;
        } else if c == delimiter {
            fields.push(std::mem::take(&mut current));
        } else {
            current.push(c);
        }
    }
    fields.push(current);
    fields.iter().map(|f| f.trim().to_string()).collect()
}

fn infer_types(rows: &[Vec<String>], columns: usize) -> Vec<DType> {
    (0..columns)
        .map(|col| {
            let mut all_int = true;
            let mut all_float = true;
            let mut all_bool = true;
            let mut seen = false;
            for row in rows.iter().take(100) {
                let field = &row[col];
                if field.is_empty() {
                    continue;
                }
                seen = true;
                if field.parse::<i64>().is_err() {
                    all_int = false;
                }
                if field.parse::<f64>().is_err() {
                    all_float = false;
                }
                if !matches!(field.to_ascii_lowercase().as_str(), "true" | "false") {
                    all_bool = false;
                }
            }
            if !seen {
                DType::Str
            } else if all_int {
                DType::I64
            } else if all_float {
                DType::F64
            } else if all_bool {
                DType::Bool
            } else {
                DType::Str
            }
        })
        .collect()
}

fn parse_value(field: &str, dtype: DType) -> Option<Value> {
    match dtype {
        DType::I64 => field.parse().ok().map(Value::I64),
        DType::Ts => field.parse().ok().map(Value::Ts),
        DType::F64 => field.parse().ok().map(Value::F64),
        DType::Bool => match field.to_ascii_lowercase().as_str() {
            "true" => Some(Value::Bool(true)),
            "false" => Some(Value::Bool(false)),
            _ => None,
        },
        DType::Str => Some(Value::Str(field.to_string())),
        DType::Geom => crate::geometry::Geometry::from_wkt(field).ok().map(Value::Geom),
    }
}

fn format_value(value: &Value) -> String {
    match value {
        Value::F64(v) => format!("{v}"),
        Value::I64(v) | Value::Ts(v) => format!("{v}"),
        Value::Bool(v) => format!("{v}"),
        Value::Str(s) => {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        }
        Value::Geom(g) => format!("\"{}\"", g.to_wkt()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn read(text: &str, options: &CsvOptions) -> DfResult<DataFrame> {
        read_csv_from(Cursor::new(text.to_string()), options)
    }

    #[test]
    fn reads_typed_columns_with_inference() {
        let df = read(
            "id,lat,lon,name\n1,40.7,-74.0,alpha\n2,40.8,-73.9,beta\n",
            &CsvOptions::default(),
        )
        .unwrap();
        assert_eq!(df.num_rows(), 2);
        assert_eq!(df.schema().dtype_of("id").unwrap(), DType::I64);
        assert_eq!(df.schema().dtype_of("lat").unwrap(), DType::F64);
        assert_eq!(df.schema().dtype_of("name").unwrap(), DType::Str);
        assert_eq!(df.column("lat").unwrap().f64s().unwrap()[1], 40.8);
    }

    #[test]
    fn explicit_schema_overrides_inference() {
        let options = CsvOptions {
            schema: Some(vec![DType::Ts, DType::F64]),
            ..CsvOptions::default()
        };
        let df = read("ts,v\n100,1\n200,2\n", &options).unwrap();
        assert_eq!(df.schema().dtype_of("ts").unwrap(), DType::Ts);
        assert_eq!(df.column("ts").unwrap().i64s().unwrap(), &[100, 200]);
    }

    #[test]
    fn quoted_fields_and_escapes() {
        let df = read(
            "a,b\n\"hello, world\",\"say \"\"hi\"\"\"\n",
            &CsvOptions::default(),
        )
        .unwrap();
        let b = df.column("b").unwrap();
        assert_eq!(b.strs().unwrap()[0], "say \"hi\"");
        let a = df.column("a").unwrap();
        assert_eq!(a.strs().unwrap()[0], "hello, world");
    }

    #[test]
    fn headerless_generates_names() {
        let options = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        let df = read("1,2.5\n3,4.5\n", &options).unwrap();
        assert_eq!(df.schema().names(), vec!["column_0", "column_1"]);
        assert_eq!(df.num_rows(), 2);
    }

    #[test]
    fn partitioned_loading() {
        let options = CsvOptions {
            rows_per_partition: 2,
            ..CsvOptions::default()
        };
        let df = read("v\n1\n2\n3\n4\n5\n", &options).unwrap();
        assert_eq!(df.num_rows(), 5);
        assert!(df.num_partitions() >= 2);
    }

    #[test]
    fn bad_rows_are_rejected() {
        assert!(read("a,b\n1\n", &CsvOptions::default()).is_err());
        let options = CsvOptions {
            schema: Some(vec![DType::I64]),
            ..CsvOptions::default()
        };
        assert!(read("a\nnot_an_int\n", &options).is_err());
        assert!(read("", &CsvOptions::default()).is_err());
    }

    #[test]
    fn mixed_numeric_column_infers_f64() {
        let df = read("v\n1\n2.5\n", &CsvOptions::default()).unwrap();
        assert_eq!(df.schema().dtype_of("v").unwrap(), DType::F64);
    }

    #[test]
    fn file_round_trip_with_geometry() {
        use crate::geometry::{Geometry, Point};
        let df = DataFrame::from_columns(vec![
            ("id".into(), Column::I64(vec![1, 2])),
            (
                "geom".into(),
                Column::Geom(vec![
                    Geometry::Point(Point::new(1.0, 2.0)),
                    Geometry::Point(Point::new(-73.9, 40.7)),
                ]),
            ),
        ])
        .unwrap();
        let path = std::env::temp_dir().join(format!("geotorch_csv_{}.csv", std::process::id()));
        write_csv(&df, &path).unwrap();
        let options = CsvOptions {
            schema: Some(vec![DType::I64, DType::Geom]),
            ..CsvOptions::default()
        };
        let back = read_csv(&path, &options).unwrap();
        assert_eq!(back.column("geom").unwrap(), df.column("geom").unwrap());
        std::fs::remove_file(path).ok();
    }
}
