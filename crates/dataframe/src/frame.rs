//! The partitioned DataFrame.

use crate::column::{Column, DType, Value};
use crate::error::{DfError, DfResult};
use crate::exec;
use crate::geometry::Geometry;

/// Named, typed column layout shared by every partition of a DataFrame.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    fields: Vec<(String, DType)>,
}

impl Schema {
    /// Build from `(name, dtype)` pairs.
    ///
    /// # Errors
    /// On duplicate names.
    pub fn new(fields: Vec<(String, DType)>) -> DfResult<Schema> {
        for (i, (name, _)) in fields.iter().enumerate() {
            if fields[..i].iter().any(|(n, _)| n == name) {
                return Err(DfError::DuplicateColumn(name.clone()));
            }
        }
        Ok(Schema { fields })
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> DfResult<usize> {
        self.fields
            .iter()
            .position(|(n, _)| n == name)
            .ok_or_else(|| DfError::ColumnNotFound(name.to_string()))
    }

    /// The dtype of a column by name.
    pub fn dtype_of(&self, name: &str) -> DfResult<DType> {
        Ok(self.fields[self.index_of(name)?].1)
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// `(name, dtype)` pairs.
    pub fn fields(&self) -> &[(String, DType)] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }
}

/// A borrowed view of one row inside one partition.
#[derive(Clone, Copy)]
pub struct RowRef<'a> {
    schema: &'a Schema,
    columns: &'a [Column],
    row: usize,
}

impl<'a> RowRef<'a> {
    /// The value in `column` at this row.
    pub fn value(&self, column: &str) -> DfResult<Value> {
        let idx = self.schema.index_of(column)?;
        Ok(self.columns[idx].value(self.row))
    }

    /// f64 accessor (coerces integers/timestamps).
    pub fn f64(&self, column: &str) -> DfResult<f64> {
        let v = self.value(column)?;
        v.as_f64().ok_or_else(|| DfError::TypeMismatch {
            column: column.to_string(),
            expected: "f64",
            found: v.dtype().name(),
        })
    }

    /// i64 accessor (accepts timestamps).
    pub fn i64(&self, column: &str) -> DfResult<i64> {
        let v = self.value(column)?;
        v.as_i64().ok_or_else(|| DfError::TypeMismatch {
            column: column.to_string(),
            expected: "i64",
            found: v.dtype().name(),
        })
    }

    /// Geometry accessor.
    pub fn geometry(&self, column: &str) -> DfResult<Geometry> {
        match self.value(column)? {
            Value::Geom(g) => Ok(g),
            v => Err(DfError::TypeMismatch {
                column: column.to_string(),
                expected: "geometry",
                found: v.dtype().name(),
            }),
        }
    }

    /// Row index within the partition.
    pub fn index(&self) -> usize {
        self.row
    }
}

/// A columnar table split into partitions processed in parallel.
#[derive(Debug, Clone)]
pub struct DataFrame {
    schema: Schema,
    partitions: Vec<Vec<Column>>,
}

impl DataFrame {
    /// Single-partition DataFrame from `(name, column)` pairs.
    ///
    /// # Errors
    /// On duplicate names or ragged column lengths.
    pub fn from_columns(columns: Vec<(String, Column)>) -> DfResult<DataFrame> {
        let schema = Schema::new(
            columns
                .iter()
                .map(|(n, c)| (n.clone(), c.dtype()))
                .collect(),
        )?;
        let cols: Vec<Column> = columns.into_iter().map(|(_, c)| c).collect();
        if let Some(first) = cols.first() {
            let n = first.len();
            if cols.iter().any(|c| c.len() != n) {
                return Err(DfError::LengthMismatch(
                    "columns have different lengths".into(),
                ));
            }
        }
        Ok(DataFrame {
            schema,
            partitions: vec![cols],
        })
    }

    /// An empty DataFrame with the given schema.
    pub fn empty(schema: Schema) -> DataFrame {
        DataFrame {
            schema,
            partitions: Vec::new(),
        }
    }

    /// Build directly from partitions (internal constructors and tests).
    ///
    /// # Errors
    /// If any partition disagrees with the schema layout.
    pub fn from_partitions(schema: Schema, partitions: Vec<Vec<Column>>) -> DfResult<DataFrame> {
        for part in &partitions {
            if part.len() != schema.len() {
                return Err(DfError::LengthMismatch(format!(
                    "partition has {} columns, schema has {}",
                    part.len(),
                    schema.len()
                )));
            }
            for (col, (name, dtype)) in part.iter().zip(schema.fields()) {
                if col.dtype() != *dtype {
                    return Err(DfError::TypeMismatch {
                        column: name.clone(),
                        expected: dtype.name(),
                        found: col.dtype().name(),
                    });
                }
            }
            if let Some(first) = part.first() {
                if part.iter().any(|c| c.len() != first.len()) {
                    return Err(DfError::LengthMismatch(
                        "ragged columns within a partition".into(),
                    ));
                }
            }
        }
        Ok(DataFrame { schema, partitions })
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total row count across partitions.
    pub fn num_rows(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| p.first().map_or(0, Column::len))
            .sum()
    }

    /// Partition count.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Raw partition access (for engine-level operators).
    pub fn partitions(&self) -> &[Vec<Column>] {
        &self.partitions
    }

    /// A full column, concatenated across partitions.
    pub fn column(&self, name: &str) -> DfResult<Column> {
        let idx = self.schema.index_of(name)?;
        let parts: Vec<&Column> = self.partitions.iter().map(|p| &p[idx]).collect();
        if parts.is_empty() {
            return Ok(Column::empty(self.schema.fields()[idx].1));
        }
        Column::concat(&parts)
    }

    /// Redistribute rows into `n` roughly equal partitions.
    pub fn repartition(&self, n: usize) -> DfResult<DataFrame> {
        let n = n.max(1);
        let merged = self.concat_partitions()?;
        let total = merged.num_rows();
        let cols = match merged.partitions.first() {
            Some(c) => c,
            None => return Ok(DataFrame::empty(self.schema.clone())),
        };
        let chunk = total.div_ceil(n).max(1);
        let mut partitions = Vec::new();
        let mut start = 0;
        while start < total {
            let end = (start + chunk).min(total);
            partitions.push(cols.iter().map(|c| c.slice(start, end)).collect());
            start = end;
        }
        DataFrame::from_partitions(self.schema.clone(), partitions)
    }

    /// Merge all partitions into one.
    pub fn concat_partitions(&self) -> DfResult<DataFrame> {
        if self.partitions.len() <= 1 {
            return Ok(self.clone());
        }
        let mut cols = Vec::with_capacity(self.schema.len());
        for idx in 0..self.schema.len() {
            let parts: Vec<&Column> = self.partitions.iter().map(|p| &p[idx]).collect();
            cols.push(Column::concat(&parts)?);
        }
        DataFrame::from_partitions(self.schema.clone(), vec![cols])
    }

    /// Append another DataFrame's rows (schemas must match).
    pub fn union(&self, other: &DataFrame) -> DfResult<DataFrame> {
        if self.schema != other.schema {
            return Err(DfError::LengthMismatch("union schema mismatch".into()));
        }
        let mut partitions = self.partitions.clone();
        partitions.extend(other.partitions.clone());
        DataFrame::from_partitions(self.schema.clone(), partitions)
    }

    /// Project a subset of columns (in the given order).
    pub fn select(&self, names: &[&str]) -> DfResult<DataFrame> {
        let indices: Vec<usize> = names
            .iter()
            .map(|n| self.schema.index_of(n))
            .collect::<DfResult<_>>()?;
        let schema = Schema::new(
            indices
                .iter()
                .map(|&i| self.schema.fields()[i].clone())
                .collect(),
        )?;
        let partitions = self
            .partitions
            .iter()
            .map(|p| indices.iter().map(|&i| p[i].clone()).collect())
            .collect();
        DataFrame::from_partitions(schema, partitions)
    }

    /// Drop a column.
    pub fn drop_column(&self, name: &str) -> DfResult<DataFrame> {
        let keep: Vec<&str> = self
            .schema
            .names()
            .into_iter()
            .filter(|n| *n != name)
            .collect();
        if keep.len() == self.schema.len() {
            return Err(DfError::ColumnNotFound(name.to_string()));
        }
        self.select(&keep)
    }

    /// Append a computed column. `f` is evaluated per row, partition-
    /// parallel; every produced value must have dtype `dtype`.
    pub fn with_column<F>(&self, name: &str, dtype: DType, f: F) -> DfResult<DataFrame>
    where
        F: Fn(RowRef<'_>) -> DfResult<Value> + Sync,
    {
        if self.schema.index_of(name).is_ok() {
            return Err(DfError::DuplicateColumn(name.to_string()));
        }
        let schema = Schema::new(
            self.schema
                .fields()
                .iter()
                .cloned()
                .chain(std::iter::once((name.to_string(), dtype)))
                .collect(),
        )?;
        let results: Vec<DfResult<Vec<Column>>> = exec::par_map(&self.partitions, |part| {
            let rows = part.first().map_or(0, Column::len);
            let mut new_col = Column::empty(dtype);
            for row in 0..rows {
                let value = f(RowRef {
                    schema: &self.schema,
                    columns: part,
                    row,
                })?;
                if value.dtype() != dtype {
                    return Err(DfError::TypeMismatch {
                        column: name.to_string(),
                        expected: dtype.name(),
                        found: value.dtype().name(),
                    });
                }
                new_col.push(value)?;
            }
            let mut cols = part.clone();
            cols.push(new_col);
            Ok(cols)
        });
        let partitions = results.into_iter().collect::<DfResult<Vec<_>>>()?;
        DataFrame::from_partitions(schema, partitions)
    }

    /// Keep rows where `predicate` returns true (partition-parallel).
    pub fn filter<F>(&self, predicate: F) -> DfResult<DataFrame>
    where
        F: Fn(RowRef<'_>) -> DfResult<bool> + Sync,
    {
        let results: Vec<DfResult<Vec<Column>>> = exec::par_map(&self.partitions, |part| {
            let rows = part.first().map_or(0, Column::len);
            let mut mask = Vec::with_capacity(rows);
            for row in 0..rows {
                mask.push(predicate(RowRef {
                    schema: &self.schema,
                    columns: part,
                    row,
                })?);
            }
            Ok(part.iter().map(|c| c.filter(&mask)).collect())
        });
        let partitions = results.into_iter().collect::<DfResult<Vec<_>>>()?;
        DataFrame::from_partitions(self.schema.clone(), partitions)
    }

    /// Sort all rows ascending by a numeric (f64/i64/timestamp) column.
    /// Produces a single partition.
    pub fn sort_by(&self, name: &str) -> DfResult<DataFrame> {
        let merged = self.concat_partitions()?;
        let idx = merged.schema.index_of(name)?;
        let Some(cols) = merged.partitions.first() else {
            return Ok(merged);
        };
        let n = cols.first().map_or(0, Column::len);
        let mut order: Vec<usize> = (0..n).collect();
        match &cols[idx] {
            Column::F64(v) => order.sort_by(|&a, &b| {
                v[a].partial_cmp(&v[b]).unwrap_or(std::cmp::Ordering::Equal)
            }),
            Column::I64(v) | Column::Ts(v) => order.sort_by_key(|&i| v[i]),
            Column::Str(v) => order.sort_by(|&a, &b| v[a].cmp(&v[b])),
            Column::Bool(v) => order.sort_by_key(|&i| v[i]),
            Column::Geom(_) => {
                return Err(DfError::InvalidArgument(
                    "cannot sort by a geometry column".into(),
                ))
            }
        }
        let sorted = cols.iter().map(|c| c.take(&order)).collect();
        DataFrame::from_partitions(merged.schema.clone(), vec![sorted])
    }

    /// First `n` rows (after merging partitions in order).
    pub fn limit(&self, n: usize) -> DfResult<DataFrame> {
        let merged = self.concat_partitions()?;
        let Some(cols) = merged.partitions.first() else {
            return Ok(merged);
        };
        let end = n.min(cols.first().map_or(0, Column::len));
        let cut = cols.iter().map(|c| c.slice(0, end)).collect();
        DataFrame::from_partitions(merged.schema.clone(), vec![cut])
    }

    /// Iterate rows of all partitions with a visitor (sequential).
    pub fn for_each_row<F>(&self, mut f: F) -> DfResult<()>
    where
        F: FnMut(RowRef<'_>) -> DfResult<()>,
    {
        for part in &self.partitions {
            let rows = part.first().map_or(0, Column::len);
            for row in 0..rows {
                f(RowRef {
                    schema: &self.schema,
                    columns: part,
                    row,
                })?;
            }
        }
        Ok(())
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.partitions
            .iter()
            .flat_map(|p| p.iter())
            .map(Column::approx_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        DataFrame::from_columns(vec![
            ("id".into(), Column::I64(vec![1, 2, 3, 4])),
            ("x".into(), Column::F64(vec![0.5, 1.5, 2.5, 3.5])),
            (
                "name".into(),
                Column::Str(vec!["a".into(), "b".into(), "c".into(), "d".into()]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn construction_and_counts() {
        let df = sample();
        assert_eq!(df.num_rows(), 4);
        assert_eq!(df.num_partitions(), 1);
        assert_eq!(df.schema().names(), vec!["id", "x", "name"]);
    }

    #[test]
    fn rejects_duplicate_and_ragged() {
        assert!(matches!(
            DataFrame::from_columns(vec![
                ("a".into(), Column::I64(vec![1])),
                ("a".into(), Column::I64(vec![2])),
            ]),
            Err(DfError::DuplicateColumn(_))
        ));
        assert!(matches!(
            DataFrame::from_columns(vec![
                ("a".into(), Column::I64(vec![1])),
                ("b".into(), Column::I64(vec![2, 3])),
            ]),
            Err(DfError::LengthMismatch(_))
        ));
    }

    #[test]
    fn repartition_and_merge_round_trip() {
        let df = sample().repartition(2).unwrap();
        assert_eq!(df.num_partitions(), 2);
        assert_eq!(df.num_rows(), 4);
        let merged = df.concat_partitions().unwrap();
        assert_eq!(merged.num_partitions(), 1);
        assert_eq!(
            merged.column("id").unwrap(),
            Column::I64(vec![1, 2, 3, 4])
        );
    }

    #[test]
    fn select_and_drop() {
        let df = sample();
        let sel = df.select(&["x", "id"]).unwrap();
        assert_eq!(sel.schema().names(), vec!["x", "id"]);
        assert!(df.select(&["missing"]).is_err());
        let dropped = df.drop_column("name").unwrap();
        assert_eq!(dropped.schema().len(), 2);
        assert!(df.drop_column("nope").is_err());
    }

    #[test]
    fn with_column_computes_per_row() {
        let df = sample().repartition(2).unwrap();
        let out = df
            .with_column("x2", DType::F64, |row| Ok(Value::F64(row.f64("x")? * 2.0)))
            .unwrap();
        assert_eq!(
            out.column("x2").unwrap(),
            Column::F64(vec![1.0, 3.0, 5.0, 7.0])
        );
        // Duplicate name rejected.
        assert!(df
            .with_column("x", DType::F64, |_| Ok(Value::F64(0.0)))
            .is_err());
        // Wrong produced dtype rejected.
        assert!(df
            .with_column("bad", DType::F64, |_| Ok(Value::I64(1)))
            .is_err());
    }

    #[test]
    fn filter_keeps_matching_rows() {
        let df = sample().repartition(2).unwrap();
        let out = df.filter(|row| Ok(row.i64("id")? % 2 == 0)).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.column("id").unwrap(), Column::I64(vec![2, 4]));
    }

    #[test]
    fn sort_by_each_type() {
        let df = DataFrame::from_columns(vec![
            ("k".into(), Column::F64(vec![2.0, 1.0, 3.0])),
            ("v".into(), Column::I64(vec![20, 10, 30])),
        ])
        .unwrap();
        let sorted = df.sort_by("k").unwrap();
        assert_eq!(sorted.column("v").unwrap(), Column::I64(vec![10, 20, 30]));
        let by_str = sample().sort_by("name").unwrap();
        assert_eq!(by_str.column("id").unwrap(), Column::I64(vec![1, 2, 3, 4]));
    }

    #[test]
    fn limit_truncates() {
        let df = sample().repartition(2).unwrap();
        assert_eq!(df.limit(3).unwrap().num_rows(), 3);
        assert_eq!(df.limit(10).unwrap().num_rows(), 4);
    }

    #[test]
    fn union_requires_matching_schema() {
        let df = sample();
        let u = df.union(&df).unwrap();
        assert_eq!(u.num_rows(), 8);
        let other = DataFrame::from_columns(vec![("id".into(), Column::I64(vec![1]))]).unwrap();
        assert!(df.union(&other).is_err());
    }

    #[test]
    fn for_each_row_visits_all() {
        let df = sample().repartition(3).unwrap();
        let mut sum = 0;
        df.for_each_row(|row| {
            sum += row.i64("id")?;
            Ok(())
        })
        .unwrap();
        assert_eq!(sum, 10);
    }

    #[test]
    fn row_accessors_type_check() {
        let df = sample();
        df.for_each_row(|row| {
            assert!(row.f64("name").is_err());
            assert!(row.geometry("x").is_err());
            assert!(row.value("missing").is_err());
            Ok(())
        })
        .unwrap();
    }
}
