//! DataFrame utility operators: distinct rows, column renaming, and
//! numeric summary statistics.

use std::collections::HashSet;

use crate::column::{Column, DType, GroupKey};
use crate::error::{DfError, DfResult};
use crate::frame::{DataFrame, Schema};

/// Summary statistics of one numeric column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSummary {
    /// Column name.
    pub name: String,
    /// Non-null value count.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl DataFrame {
    /// Keep the first occurrence of each distinct row (all columns
    /// compared; floats by bit pattern). Produces a single partition,
    /// preserving first-seen order.
    pub fn distinct(&self) -> DfResult<DataFrame> {
        let merged = self.concat_partitions()?;
        let Some(cols) = merged.partitions().first() else {
            return Ok(merged);
        };
        let rows = cols.first().map_or(0, Column::len);
        let mut seen: HashSet<Vec<GroupKey>> = HashSet::new();
        let mut keep = Vec::with_capacity(rows);
        for row in 0..rows {
            let key: Vec<GroupKey> = cols.iter().map(|c| c.value(row).group_key()).collect();
            keep.push(seen.insert(key));
        }
        let filtered: Vec<Column> = cols.iter().map(|c| c.filter(&keep)).collect();
        DataFrame::from_partitions(merged.schema().clone(), vec![filtered])
    }

    /// Rename a column, keeping its position and data.
    pub fn rename_column(&self, from: &str, to: &str) -> DfResult<DataFrame> {
        let idx = self.schema().index_of(from)?;
        if from != to && self.schema().index_of(to).is_ok() {
            return Err(DfError::DuplicateColumn(to.to_string()));
        }
        let fields: Vec<(String, DType)> = self
            .schema()
            .fields()
            .iter()
            .enumerate()
            .map(|(i, (name, dtype))| {
                if i == idx {
                    (to.to_string(), *dtype)
                } else {
                    (name.clone(), *dtype)
                }
            })
            .collect();
        DataFrame::from_partitions(Schema::new(fields)?, self.partitions().to_vec())
    }

    /// Summary statistics for every numeric (f64 / i64 / timestamp)
    /// column — the engine's `describe()`.
    pub fn describe(&self) -> DfResult<Vec<ColumnSummary>> {
        let mut summaries = Vec::new();
        for (name, dtype) in self.schema().fields() {
            if !matches!(dtype, DType::F64 | DType::I64 | DType::Ts) {
                continue;
            }
            let mut count = 0usize;
            let mut sum = 0.0f64;
            let mut sum_sq = 0.0f64;
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for part in self.partitions() {
                let idx = self.schema().index_of(name)?;
                let values: Vec<f64> = match &part[idx] {
                    Column::F64(v) => v.clone(),
                    Column::I64(v) | Column::Ts(v) => v.iter().map(|&x| x as f64).collect(),
                    _ => unreachable!("dtype filtered above"),
                };
                for v in values {
                    count += 1;
                    sum += v;
                    sum_sq += v * v;
                    min = min.min(v);
                    max = max.max(v);
                }
            }
            let mean = if count > 0 { sum / count as f64 } else { f64::NAN };
            let var = if count > 0 {
                (sum_sq / count as f64 - mean * mean).max(0.0)
            } else {
                f64::NAN
            };
            summaries.push(ColumnSummary {
                name: name.clone(),
                count,
                mean,
                std: var.sqrt(),
                min,
                max,
            });
        }
        Ok(summaries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn df() -> DataFrame {
        DataFrame::from_columns(vec![
            ("k".into(), Column::I64(vec![1, 2, 1, 2, 1])),
            ("v".into(), Column::F64(vec![1.0, 2.0, 1.0, 4.0, 1.0])),
        ])
        .unwrap()
    }

    #[test]
    fn distinct_keeps_first_occurrences() {
        let out = df().distinct().unwrap();
        assert_eq!(out.num_rows(), 3); // (1,1.0), (2,2.0), (2,4.0)
        assert_eq!(out.column("k").unwrap(), Column::I64(vec![1, 2, 2]));
        assert_eq!(out.column("v").unwrap(), Column::F64(vec![1.0, 2.0, 4.0]));
    }

    #[test]
    fn distinct_on_partitioned_frame() {
        let out = df().repartition(3).unwrap().distinct().unwrap();
        assert_eq!(out.num_rows(), 3);
    }

    #[test]
    fn rename_preserves_data() {
        let out = df().rename_column("v", "value").unwrap();
        assert_eq!(out.schema().names(), vec!["k", "value"]);
        assert_eq!(out.column("value").unwrap().len(), 5);
        assert!(df().rename_column("missing", "x").is_err());
        assert!(df().rename_column("v", "k").is_err());
        // Renaming to itself is a no-op.
        assert!(df().rename_column("v", "v").is_ok());
    }

    #[test]
    fn describe_computes_summary() {
        let summaries = df().describe().unwrap();
        assert_eq!(summaries.len(), 2);
        let v = summaries.iter().find(|s| s.name == "v").unwrap();
        assert_eq!(v.count, 5);
        assert!((v.mean - 1.8).abs() < 1e-12);
        assert_eq!(v.min, 1.0);
        assert_eq!(v.max, 4.0);
        assert!(v.std > 0.0);
    }

    #[test]
    fn describe_skips_non_numeric() {
        let df = DataFrame::from_columns(vec![
            ("s".into(), Column::Str(vec!["a".into()])),
            ("x".into(), Column::F64(vec![3.0])),
        ])
        .unwrap();
        let summaries = df.describe().unwrap();
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].name, "x");
        assert_eq!(summaries[0].std, 0.0);
    }
}
