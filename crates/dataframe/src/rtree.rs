//! A packed STR (Sort-Tile-Recursive) R-tree over envelopes.
//!
//! This is the index structure behind [`crate::spatial::join_points_to_zones`],
//! mirroring the role of Sedona's spatial index. The tree is bulk-loaded
//! once (STR packing: sort by x, tile, sort tiles by y) and immutable
//! afterwards, which suits the join-once workloads of the preprocessing
//! module.

use crate::geometry::{Envelope, Point};

const NODE_CAPACITY: usize = 16;

#[derive(Debug)]
struct Node {
    envelope: Envelope,
    /// Children node indices for inner nodes; entry indices for leaves.
    children: Vec<usize>,
    is_leaf: bool,
}

/// An immutable, bulk-loaded STR-packed R-tree.
#[derive(Debug)]
pub struct StrTree {
    nodes: Vec<Node>,
    entries: Vec<Envelope>,
    root: Option<usize>,
}

impl StrTree {
    /// Bulk-load a tree from entry envelopes. Entry indices in query
    /// results refer to positions in this slice.
    pub fn build(entries: &[Envelope]) -> StrTree {
        let mut tree = StrTree {
            nodes: Vec::new(),
            entries: entries.to_vec(),
            root: None,
        };
        if entries.is_empty() {
            return tree;
        }

        // Leaf level: STR packing.
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by(|&a, &b| {
            entries[a]
                .center()
                .x
                .partial_cmp(&entries[b].center().x)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let leaf_count = entries.len().div_ceil(NODE_CAPACITY);
        let slice_count = (leaf_count as f64).sqrt().ceil() as usize;
        let slice_size = entries.len().div_ceil(slice_count.max(1));
        let mut leaves: Vec<usize> = Vec::new();
        for slice in order.chunks(slice_size.max(1)) {
            let mut slice = slice.to_vec();
            slice.sort_by(|&a, &b| {
                entries[a]
                    .center()
                    .y
                    .partial_cmp(&entries[b].center().y)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for group in slice.chunks(NODE_CAPACITY) {
                let envelope = group
                    .iter()
                    .map(|&i| entries[i])
                    .reduce(|a, b| a.union(&b))
                    .expect("non-empty group");
                tree.nodes.push(Node {
                    envelope,
                    children: group.to_vec(),
                    is_leaf: true,
                });
                leaves.push(tree.nodes.len() - 1);
            }
        }

        // Build upper levels by grouping node envelopes.
        let mut level = leaves;
        while level.len() > 1 {
            let mut next = Vec::new();
            for group in level.chunks(NODE_CAPACITY) {
                let envelope = group
                    .iter()
                    .map(|&i| tree.nodes[i].envelope)
                    .reduce(|a, b| a.union(&b))
                    .expect("non-empty group");
                tree.nodes.push(Node {
                    envelope,
                    children: group.to_vec(),
                    is_leaf: false,
                });
                next.push(tree.nodes.len() - 1);
            }
            level = next;
        }
        tree.root = level.first().copied();
        tree
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry indices whose envelope intersects `query`.
    pub fn query_envelope(&self, query: &Envelope) -> Vec<usize> {
        let mut hits = Vec::new();
        let Some(root) = self.root else {
            return hits;
        };
        let mut stack = vec![root];
        while let Some(idx) = stack.pop() {
            let node = &self.nodes[idx];
            if !node.envelope.intersects(query) {
                continue;
            }
            if node.is_leaf {
                for &e in &node.children {
                    if self.entries[e].intersects(query) {
                        hits.push(e);
                    }
                }
            } else {
                stack.extend_from_slice(&node.children);
            }
        }
        hits
    }

    /// Entry indices whose envelope contains `point` (half-open envelope
    /// semantics, matching [`Envelope::contains_point`]).
    pub fn query_point(&self, point: &Point) -> Vec<usize> {
        let mut hits = Vec::new();
        let Some(root) = self.root else {
            return hits;
        };
        let probe = Envelope::of_point(point);
        let mut stack = vec![root];
        while let Some(idx) = stack.pop() {
            let node = &self.nodes[idx];
            if !node.envelope.intersects(&probe) {
                continue;
            }
            if node.is_leaf {
                for &e in &node.children {
                    if self.entries[e].contains_point(point) {
                        hits.push(e);
                    }
                }
            } else {
                stack.extend_from_slice(&node.children);
            }
        }
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_envelopes(n: usize) -> Vec<Envelope> {
        // n×n unit cells tiling [0,n)².
        let mut cells = Vec::new();
        for i in 0..n {
            for j in 0..n {
                cells.push(Envelope::new(
                    j as f64,
                    i as f64,
                    (j + 1) as f64,
                    (i + 1) as f64,
                ));
            }
        }
        cells
    }

    #[test]
    fn empty_tree() {
        let t = StrTree::build(&[]);
        assert!(t.is_empty());
        assert!(t.query_point(&Point::new(0.0, 0.0)).is_empty());
        assert!(t
            .query_envelope(&Envelope::new(0.0, 0.0, 1.0, 1.0))
            .is_empty());
    }

    #[test]
    fn point_query_finds_unique_cell() {
        let cells = grid_envelopes(10);
        let tree = StrTree::build(&cells);
        assert_eq!(tree.len(), 100);
        let hits = tree.query_point(&Point::new(3.5, 7.5));
        assert_eq!(hits.len(), 1);
        assert!(cells[hits[0]].contains_point(&Point::new(3.5, 7.5)));
    }

    #[test]
    fn boundary_point_hits_exactly_one_cell() {
        let tree = StrTree::build(&grid_envelopes(4));
        // A point on an internal cell boundary belongs to one cell only.
        let hits = tree.query_point(&Point::new(2.0, 1.5));
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn envelope_query_matches_linear_scan() {
        let cells = grid_envelopes(8);
        let tree = StrTree::build(&cells);
        let query = Envelope::new(1.5, 2.5, 4.5, 5.5);
        let mut hits = tree.query_envelope(&query);
        hits.sort_unstable();
        let mut expected: Vec<usize> = cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.intersects(&query))
            .map(|(i, _)| i)
            .collect();
        expected.sort_unstable();
        assert_eq!(hits, expected);
    }

    #[test]
    fn single_entry_tree() {
        let tree = StrTree::build(&[Envelope::new(0.0, 0.0, 1.0, 1.0)]);
        assert_eq!(tree.query_point(&Point::new(0.5, 0.5)), vec![0]);
        assert!(tree.query_point(&Point::new(2.0, 2.0)).is_empty());
    }

    #[test]
    fn outside_point_misses() {
        let tree = StrTree::build(&grid_envelopes(5));
        assert!(tree.query_point(&Point::new(-1.0, 2.0)).is_empty());
        assert!(tree.query_point(&Point::new(5.0, 5.0)).is_empty());
    }
}
