//! Partition-parallel execution.
//!
//! The engine's analogue of Spark's executor pool: independent partitions
//! are processed concurrently on a `std::thread` scope. Parallelism defaults
//! to the machine's core count and can be overridden per scope with
//! [`with_parallelism`] — the preprocessing benchmarks use this to compare
//! single-threaded against multicore execution.

use std::cell::Cell;

thread_local! {
    static PARALLELISM: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Worker-thread count used by partition-parallel operations on the
/// current thread.
pub fn parallelism() -> usize {
    PARALLELISM.with(|p| p.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Run `f` with an explicit worker count, restoring the previous setting
/// afterwards (also on panic).
pub fn with_parallelism<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            PARALLELISM.with(|p| p.set(self.0));
        }
    }
    let _restore = Restore(PARALLELISM.with(|p| p.get()));
    PARALLELISM.with(|p| p.set(Some(threads.max(1))));
    f()
}

/// Map `f` over items in parallel, preserving order of results.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = parallelism().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let mut out: Vec<Option<U>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (inputs, outputs) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (item, slot) in inputs.iter().zip(outputs.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|v| v.expect("all slots filled"))
        .collect()
}

/// Map `f` over owned items in parallel, preserving order.
pub fn par_map_owned<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = parallelism().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(&f).collect();
    }
    let n = items.len();
    let chunk = n.div_ceil(threads);
    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    // Move items into per-thread queues.
    let mut queues: Vec<Vec<T>> = Vec::new();
    let mut iter = items.into_iter();
    loop {
        let batch: Vec<T> = iter.by_ref().take(chunk).collect();
        if batch.is_empty() {
            break;
        }
        queues.push(batch);
    }
    std::thread::scope(|scope| {
        for (queue, outputs) in queues.into_iter().zip(slots.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (item, slot) in queue.into_iter().zip(outputs.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|v| v.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let doubled = par_map(&items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_owned_preserves_order() {
        let items: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let lens = par_map_owned(items.clone(), |s| s.len());
        assert_eq!(lens, items.iter().map(|s| s.len()).collect::<Vec<_>>());
    }

    #[test]
    fn with_parallelism_scopes_setting() {
        let outer = parallelism();
        with_parallelism(2, || {
            assert_eq!(parallelism(), 2);
            with_parallelism(7, || assert_eq!(parallelism(), 7));
            assert_eq!(parallelism(), 2);
        });
        assert_eq!(parallelism(), outer);
    }

    #[test]
    fn single_threaded_path() {
        with_parallelism(1, || {
            let out = par_map(&[1, 2, 3], |x| x + 1);
            assert_eq!(out, vec![2, 3, 4]);
        });
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(&[] as &[i32], |x| *x);
        assert!(out.is_empty());
    }
}
