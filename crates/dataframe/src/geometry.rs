//! Planar geometry types, predicates, and WKT round-tripping.
//!
//! Covers the Sedona feature subset GeoTorchAI's preprocessing relies on:
//! points (from lat/lon columns), axis-aligned envelopes (grid cells),
//! simple polygons (zones), containment / intersection predicates, and
//! distance.

use crate::error::{DfError, DfResult};

/// A 2-D point (x = longitude, y = latitude in geographic use).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Point {
    /// Construct a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// An axis-aligned bounding box `[min_x, max_x] × [min_y, max_y]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    /// Minimum x.
    pub min_x: f64,
    /// Minimum y.
    pub min_y: f64,
    /// Maximum x.
    pub max_x: f64,
    /// Maximum y.
    pub max_y: f64,
}

impl Envelope {
    /// Construct, normalising min/max ordering.
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        Envelope {
            min_x: min_x.min(max_x),
            min_y: min_y.min(max_y),
            max_x: min_x.max(max_x),
            max_y: min_y.max(max_y),
        }
    }

    /// The empty-area envelope of a single point.
    pub fn of_point(p: &Point) -> Self {
        Envelope::new(p.x, p.y, p.x, p.y)
    }

    /// Smallest envelope covering both.
    pub fn union(&self, other: &Envelope) -> Envelope {
        Envelope {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Point containment. The envelope is closed on min edges and open on
    /// max edges (`[min, max)`), so adjacent grid cells tile the plane
    /// without double-counting boundary points.
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x < self.max_x && p.y >= self.min_y && p.y < self.max_y
    }

    /// Whether two envelopes overlap (closed comparison).
    pub fn intersects(&self, other: &Envelope) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// Envelope width.
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Envelope height.
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Area.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centre point.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }
}

/// A simple polygon (single exterior ring, no holes), stored as an open
/// ring of vertices (the closing edge is implicit).
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    vertices: Vec<Point>,
    envelope: Envelope,
}

impl Polygon {
    /// Build from at least three vertices.
    pub fn new(vertices: Vec<Point>) -> DfResult<Self> {
        if vertices.len() < 3 {
            return Err(DfError::InvalidGeometry(format!(
                "polygon needs >= 3 vertices, got {}",
                vertices.len()
            )));
        }
        let mut env = Envelope::of_point(&vertices[0]);
        for v in &vertices[1..] {
            env = env.union(&Envelope::of_point(v));
        }
        Ok(Polygon {
            vertices,
            envelope: env,
        })
    }

    /// Axis-aligned rectangle as a polygon.
    pub fn rectangle(env: &Envelope) -> Polygon {
        Polygon::new(vec![
            Point::new(env.min_x, env.min_y),
            Point::new(env.max_x, env.min_y),
            Point::new(env.max_x, env.max_y),
            Point::new(env.min_x, env.max_y),
        ])
        .expect("rectangle always has 4 vertices")
    }

    /// Exterior ring vertices (open).
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Cached bounding box.
    pub fn envelope(&self) -> Envelope {
        self.envelope
    }

    /// Even-odd ray-casting point-in-polygon test. Boundary points may
    /// fall on either side (standard for floating-point PIP).
    pub fn contains_point(&self, p: &Point) -> bool {
        if !self.envelope.contains_point(p) && !on_closed_envelope(&self.envelope, p) {
            return false;
        }
        let mut inside = false;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let (vi, vj) = (&self.vertices[i], &self.vertices[j]);
            if (vi.y > p.y) != (vj.y > p.y) {
                let x_cross = vj.x + (p.y - vj.y) / (vi.y - vj.y) * (vi.x - vj.x);
                if p.x < x_cross {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// Signed area via the shoelace formula (positive when counter-
    /// clockwise).
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        let mut acc = 0.0;
        for i in 0..n {
            let a = &self.vertices[i];
            let b = &self.vertices[(i + 1) % n];
            acc += a.x * b.y - b.x * a.y;
        }
        acc / 2.0
    }
}

fn on_closed_envelope(env: &Envelope, p: &Point) -> bool {
    p.x >= env.min_x && p.x <= env.max_x && p.y >= env.min_y && p.y <= env.max_y
}

/// Any geometry storable in a [`crate::Column::Geom`] column.
#[derive(Debug, Clone, PartialEq)]
pub enum Geometry {
    /// Point.
    Point(Point),
    /// Axis-aligned envelope (grid cells).
    Envelope(Envelope),
    /// Simple polygon.
    Polygon(Polygon),
}

impl Geometry {
    /// Bounding box of the geometry.
    pub fn envelope(&self) -> Envelope {
        match self {
            Geometry::Point(p) => Envelope::of_point(p),
            Geometry::Envelope(e) => *e,
            Geometry::Polygon(poly) => poly.envelope(),
        }
    }

    /// Whether this geometry contains the point.
    pub fn contains_point(&self, p: &Point) -> bool {
        match self {
            Geometry::Point(q) => q == p,
            Geometry::Envelope(e) => e.contains_point(p),
            Geometry::Polygon(poly) => poly.contains_point(p),
        }
    }

    /// Representative point (centroid of the envelope).
    pub fn representative_point(&self) -> Point {
        self.envelope().center()
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        match self {
            Geometry::Point(_) => 16,
            Geometry::Envelope(_) => 32,
            Geometry::Polygon(p) => 32 + p.vertices.len() * 16,
        }
    }

    /// Serialise to Well-Known Text.
    pub fn to_wkt(&self) -> String {
        match self {
            Geometry::Point(p) => format!("POINT ({} {})", p.x, p.y),
            Geometry::Envelope(e) => format!(
                "POLYGON (({} {}, {} {}, {} {}, {} {}, {} {}))",
                e.min_x, e.min_y, e.max_x, e.min_y, e.max_x, e.max_y, e.min_x, e.max_y, e.min_x, e.min_y
            ),
            Geometry::Polygon(poly) => {
                let mut coords: Vec<String> = poly
                    .vertices
                    .iter()
                    .map(|v| format!("{} {}", v.x, v.y))
                    .collect();
                // Close the ring.
                coords.push(format!("{} {}", poly.vertices[0].x, poly.vertices[0].y));
                format!("POLYGON (({}))", coords.join(", "))
            }
        }
    }

    /// Parse `POINT (x y)` or `POLYGON ((x y, ...))` WKT.
    pub fn from_wkt(wkt: &str) -> DfResult<Geometry> {
        let trimmed = wkt.trim();
        let upper = trimmed.to_ascii_uppercase();
        if let Some(rest) = upper.strip_prefix("POINT") {
            let inner = extract_parens(rest.trim(), trimmed, "POINT")?;
            let coords = parse_coord(inner)?;
            return Ok(Geometry::Point(Point::new(coords.0, coords.1)));
        }
        if upper.starts_with("POLYGON") {
            let open = trimmed
                .find("((")
                .ok_or_else(|| DfError::InvalidGeometry(format!("malformed POLYGON: {trimmed}")))?;
            let close = trimmed
                .rfind("))")
                .ok_or_else(|| DfError::InvalidGeometry(format!("malformed POLYGON: {trimmed}")))?;
            let inner = &trimmed[open + 2..close];
            let mut vertices = Vec::new();
            for pair in inner.split(',') {
                let (x, y) = parse_coord(pair)?;
                vertices.push(Point::new(x, y));
            }
            // Drop the explicit closing vertex if present.
            if vertices.len() >= 2 && vertices.first() == vertices.last() {
                vertices.pop();
            }
            return Ok(Geometry::Polygon(Polygon::new(vertices)?));
        }
        Err(DfError::InvalidGeometry(format!(
            "unsupported WKT: {trimmed}"
        )))
    }
}

fn extract_parens<'a>(rest: &'a str, full: &str, kind: &str) -> DfResult<&'a str> {
    let rest = rest.trim();
    if let Some(stripped) = rest.strip_prefix('(').and_then(|r| r.strip_suffix(')')) {
        Ok(stripped)
    } else {
        Err(DfError::InvalidGeometry(format!(
            "malformed {kind}: {full}"
        )))
    }
}

fn parse_coord(s: &str) -> DfResult<(f64, f64)> {
    let mut parts = s.split_whitespace();
    let x = parts
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| DfError::InvalidGeometry(format!("bad coordinate: {s}")))?;
    let y = parts
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| DfError::InvalidGeometry(format!("bad coordinate: {s}")))?;
    if parts.next().is_some() {
        return Err(DfError::InvalidGeometry(format!(
            "too many ordinates: {s}"
        )));
    }
    Ok((x, y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
    }

    #[test]
    fn envelope_semantics_are_half_open() {
        let e = Envelope::new(0.0, 0.0, 1.0, 1.0);
        assert!(e.contains_point(&Point::new(0.0, 0.0)));
        assert!(e.contains_point(&Point::new(0.999, 0.5)));
        assert!(!e.contains_point(&Point::new(1.0, 0.5)));
        // Two adjacent cells: every point belongs to exactly one.
        let right = Envelope::new(1.0, 0.0, 2.0, 1.0);
        let boundary = Point::new(1.0, 0.5);
        assert_eq!(
            e.contains_point(&boundary) as u8 + right.contains_point(&boundary) as u8,
            1
        );
    }

    #[test]
    fn envelope_normalises_and_measures() {
        let e = Envelope::new(2.0, 5.0, -1.0, 1.0);
        assert_eq!(e.min_x, -1.0);
        assert_eq!(e.max_y, 5.0);
        assert_eq!(e.width(), 3.0);
        assert_eq!(e.height(), 4.0);
        assert_eq!(e.area(), 12.0);
        let c = e.center();
        assert_eq!((c.x, c.y), (0.5, 3.0));
    }

    #[test]
    fn envelope_intersection() {
        let a = Envelope::new(0.0, 0.0, 2.0, 2.0);
        let b = Envelope::new(1.0, 1.0, 3.0, 3.0);
        let c = Envelope::new(5.0, 5.0, 6.0, 6.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        let u = a.union(&c);
        assert_eq!((u.min_x, u.max_x), (0.0, 6.0));
    }

    #[test]
    fn polygon_requires_three_vertices() {
        assert!(Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]).is_err());
    }

    #[test]
    fn polygon_point_in_triangle() {
        let tri = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(2.0, 4.0),
        ])
        .unwrap();
        assert!(tri.contains_point(&Point::new(2.0, 1.0)));
        assert!(!tri.contains_point(&Point::new(0.0, 3.0)));
        assert!(!tri.contains_point(&Point::new(5.0, 1.0)));
    }

    #[test]
    fn polygon_concave_containment() {
        // An L-shape: the notch must be outside.
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(3.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 3.0),
            Point::new(0.0, 3.0),
        ])
        .unwrap();
        assert!(l.contains_point(&Point::new(0.5, 2.0)));
        assert!(l.contains_point(&Point::new(2.0, 0.5)));
        assert!(!l.contains_point(&Point::new(2.0, 2.0)));
    }

    #[test]
    fn shoelace_area() {
        let sq = Polygon::rectangle(&Envelope::new(0.0, 0.0, 2.0, 3.0));
        assert_eq!(sq.signed_area().abs(), 6.0);
    }

    #[test]
    fn wkt_point_round_trip() {
        let g = Geometry::Point(Point::new(-73.97, 40.78));
        let back = Geometry::from_wkt(&g.to_wkt()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn wkt_polygon_round_trip() {
        let poly = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(1.0, 2.0),
        ])
        .unwrap();
        let g = Geometry::Polygon(poly);
        let back = Geometry::from_wkt(&g.to_wkt()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn wkt_envelope_serialises_as_polygon() {
        let g = Geometry::Envelope(Envelope::new(0.0, 0.0, 1.0, 1.0));
        let wkt = g.to_wkt();
        assert!(wkt.starts_with("POLYGON"));
        let back = Geometry::from_wkt(&wkt).unwrap();
        // Parses back as a polygon covering the same envelope.
        assert_eq!(back.envelope(), g.envelope());
    }

    #[test]
    fn wkt_rejects_garbage() {
        assert!(Geometry::from_wkt("CIRCLE (0 0 1)").is_err());
        assert!(Geometry::from_wkt("POINT (1)").is_err());
        assert!(Geometry::from_wkt("POINT (a b)").is_err());
        assert!(Geometry::from_wkt("POLYGON ((0 0, 1 1))").is_err());
        assert!(Geometry::from_wkt("POINT (1 2 3)").is_err());
    }

    #[test]
    fn geometry_dispatch() {
        let g = Geometry::Envelope(Envelope::new(0.0, 0.0, 2.0, 2.0));
        assert!(g.contains_point(&Point::new(1.0, 1.0)));
        assert_eq!(g.representative_point(), Point::new(1.0, 1.0));
        assert!(g.approx_bytes() > 0);
    }
}
