//! Spatial operators: point construction, spatial join, grid partitioning.
//!
//! These mirror the Sedona operations GeoTorchAI's preprocessing module
//! drives: building a geometry column from lat/lon columns, joining points
//! against a set of zone geometries, and the uniform-grid fast path that
//! maps points straight to cell ids without an index.

use crate::column::{DType, Value};
use crate::error::{DfError, DfResult};
use crate::exec;
use crate::frame::DataFrame;
use crate::geometry::{Envelope, Geometry, Point};
use crate::rtree::StrTree;

/// Append a `Geom` point column built from two numeric columns.
///
/// Mirrors `STManager.add_spatial_points(df, lat_column, lon_column, ...)`
/// from the paper's Listing 8 (longitude becomes x, latitude y).
pub fn add_point_column(
    df: &DataFrame,
    lat_column: &str,
    lon_column: &str,
    alias: &str,
) -> DfResult<DataFrame> {
    df.with_column(alias, DType::Geom, |row| {
        let lat = row.f64(lat_column)?;
        let lon = row.f64(lon_column)?;
        Ok(Value::Geom(Geometry::Point(Point::new(lon, lat))))
    })
}

/// Join each point in `df[point_column]` to the index of the first
/// geometry in `zones` containing it, appended as an i64 column
/// `zone_alias`. Points matching no zone get `-1`.
///
/// Uses an STR-tree over zone envelopes with an exact refinement step —
/// the filter/refine pattern of Sedona's spatial join. Runs partition-
/// parallel.
pub fn join_points_to_zones(
    df: &DataFrame,
    point_column: &str,
    zones: &[Geometry],
    zone_alias: &str,
) -> DfResult<DataFrame> {
    let envelopes: Vec<Envelope> = zones.iter().map(Geometry::envelope).collect();
    let tree = StrTree::build(&envelopes);
    df.with_column(zone_alias, DType::I64, |row| {
        let geom = row.geometry(point_column)?;
        let Geometry::Point(p) = geom else {
            return Err(DfError::TypeMismatch {
                column: point_column.to_string(),
                expected: "point geometry",
                found: "non-point geometry",
            });
        };
        let mut candidates = tree.query_point(&p);
        candidates.sort_unstable(); // deterministic "first zone wins"
        let hit = candidates
            .into_iter()
            .find(|&i| zones[i].contains_point(&p))
            .map(|i| i as i64)
            .unwrap_or(-1);
        Ok(Value::I64(hit))
    })
}

/// Reference implementation of [`join_points_to_zones`] that scans every
/// zone per point (no index). Used by tests and the index ablation bench.
pub fn join_points_to_zones_brute(
    df: &DataFrame,
    point_column: &str,
    zones: &[Geometry],
    zone_alias: &str,
) -> DfResult<DataFrame> {
    df.with_column(zone_alias, DType::I64, |row| {
        let geom = row.geometry(point_column)?;
        let Geometry::Point(p) = geom else {
            return Err(DfError::TypeMismatch {
                column: point_column.to_string(),
                expected: "point geometry",
                found: "non-point geometry",
            });
        };
        let hit = zones
            .iter()
            .position(|z| z.contains_point(&p))
            .map(|i| i as i64)
            .unwrap_or(-1);
        Ok(Value::I64(hit))
    })
}

/// A uniform grid over an extent: `nx × ny` equal cells (the paper's
/// `SpacePartition.generate_grid`).
#[derive(Debug, Clone)]
pub struct UniformGrid {
    extent: Envelope,
    nx: usize,
    ny: usize,
}

impl UniformGrid {
    /// Partition `extent` into `nx` columns × `ny` rows.
    ///
    /// # Errors
    /// If either count is zero or the extent is degenerate.
    pub fn new(extent: Envelope, nx: usize, ny: usize) -> DfResult<UniformGrid> {
        if nx == 0 || ny == 0 {
            return Err(DfError::InvalidArgument(
                "grid partitions must be positive".into(),
            ));
        }
        if extent.width() <= 0.0 || extent.height() <= 0.0 {
            return Err(DfError::InvalidArgument(
                "grid extent must have positive area".into(),
            ));
        }
        Ok(UniformGrid { extent, nx, ny })
    }

    /// Grid columns.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid rows.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total cells.
    pub fn num_cells(&self) -> usize {
        self.nx * self.ny
    }

    /// The covered extent.
    pub fn extent(&self) -> Envelope {
        self.extent
    }

    /// Cell id (`row * nx + col`) containing the point, or `None` when the
    /// point lies outside the extent. The grid's right/top edges are
    /// inclusive so the extent is fully covered.
    pub fn cell_of(&self, p: &Point) -> Option<usize> {
        let e = &self.extent;
        if p.x < e.min_x || p.x > e.max_x || p.y < e.min_y || p.y > e.max_y {
            return None;
        }
        let fx = (p.x - e.min_x) / e.width();
        let fy = (p.y - e.min_y) / e.height();
        let col = ((fx * self.nx as f64) as usize).min(self.nx - 1);
        let row = ((fy * self.ny as f64) as usize).min(self.ny - 1);
        Some(row * self.nx + col)
    }

    /// The envelope of cell `id`.
    ///
    /// # Panics
    /// If `id >= num_cells()`.
    pub fn cell_envelope(&self, id: usize) -> Envelope {
        assert!(id < self.num_cells(), "cell id {id} out of range");
        let (row, col) = (id / self.nx, id % self.nx);
        let w = self.extent.width() / self.nx as f64;
        let h = self.extent.height() / self.ny as f64;
        Envelope::new(
            self.extent.min_x + col as f64 * w,
            self.extent.min_y + row as f64 * h,
            self.extent.min_x + (col + 1) as f64 * w,
            self.extent.min_y + (row + 1) as f64 * h,
        )
    }

    /// All cell envelopes as geometries, in cell-id order.
    pub fn cell_geometries(&self) -> Vec<Geometry> {
        (0..self.num_cells())
            .map(|id| Geometry::Envelope(self.cell_envelope(id)))
            .collect()
    }
}

/// Append an i64 `cell_alias` column mapping each point to its grid cell
/// (`-1` outside the extent). This is the O(1)-per-point fast path the
/// generic zone join is benchmarked against.
pub fn assign_grid_cells(
    df: &DataFrame,
    point_column: &str,
    grid: &UniformGrid,
    cell_alias: &str,
) -> DfResult<DataFrame> {
    df.with_column(cell_alias, DType::I64, |row| {
        let geom = row.geometry(point_column)?;
        let p = match geom {
            Geometry::Point(p) => p,
            other => other.representative_point(),
        };
        Ok(Value::I64(
            grid.cell_of(&p).map(|c| c as i64).unwrap_or(-1),
        ))
    })
}

/// The tight envelope of every geometry in a column.
pub fn column_extent(df: &DataFrame, geom_column: &str) -> DfResult<Option<Envelope>> {
    let idx = df.schema().index_of(geom_column)?;
    let partials: Vec<DfResult<Option<Envelope>>> = exec::par_map(df.partitions(), |part| {
        let geoms = part[idx].geoms()?;
        Ok(geoms
            .iter()
            .map(Geometry::envelope)
            .reduce(|a, b| a.union(&b)))
    });
    let mut acc: Option<Envelope> = None;
    for partial in partials {
        if let Some(env) = partial? {
            acc = Some(match acc {
                Some(a) => a.union(&env),
                None => env,
            });
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn points_df(coords: &[(f64, f64)]) -> DataFrame {
        // coords are (lon=x, lat=y)
        DataFrame::from_columns(vec![
            (
                "lon".into(),
                Column::F64(coords.iter().map(|c| c.0).collect()),
            ),
            (
                "lat".into(),
                Column::F64(coords.iter().map(|c| c.1).collect()),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn add_point_column_builds_geometry() {
        let df = points_df(&[(-73.9, 40.7), (0.0, 0.0)]);
        let with_pts = add_point_column(&df, "lat", "lon", "pt").unwrap();
        let geoms = with_pts.column("pt").unwrap();
        let g = geoms.geoms().unwrap();
        assert_eq!(g[0], Geometry::Point(Point::new(-73.9, 40.7)));
    }

    #[test]
    fn grid_cell_assignment() {
        let grid = UniformGrid::new(Envelope::new(0.0, 0.0, 4.0, 2.0), 4, 2).unwrap();
        assert_eq!(grid.num_cells(), 8);
        assert_eq!(grid.cell_of(&Point::new(0.5, 0.5)), Some(0));
        assert_eq!(grid.cell_of(&Point::new(3.5, 0.5)), Some(3));
        assert_eq!(grid.cell_of(&Point::new(0.5, 1.5)), Some(4));
        assert_eq!(grid.cell_of(&Point::new(5.0, 0.5)), None);
        // Max corner is inclusive and maps to the last cell.
        assert_eq!(grid.cell_of(&Point::new(4.0, 2.0)), Some(7));
    }

    #[test]
    fn cell_envelopes_tile_extent() {
        let grid = UniformGrid::new(Envelope::new(0.0, 0.0, 3.0, 3.0), 3, 3).unwrap();
        let total_area: f64 = (0..grid.num_cells())
            .map(|id| grid.cell_envelope(id).area())
            .sum();
        assert!((total_area - 9.0).abs() < 1e-9);
        // cell_of agrees with envelope containment for interior points.
        let p = Point::new(1.5, 2.5);
        let id = grid.cell_of(&p).unwrap();
        assert!(grid.cell_envelope(id).contains_point(&p));
    }

    #[test]
    fn grid_rejects_degenerate_inputs() {
        assert!(UniformGrid::new(Envelope::new(0.0, 0.0, 1.0, 1.0), 0, 2).is_err());
        assert!(UniformGrid::new(Envelope::new(0.0, 0.0, 0.0, 1.0), 2, 2).is_err());
    }

    #[test]
    fn assign_grid_cells_column() {
        let df = points_df(&[(0.5, 0.5), (1.5, 0.5), (9.0, 9.0)]);
        let df = add_point_column(&df, "lat", "lon", "pt").unwrap();
        let grid = UniformGrid::new(Envelope::new(0.0, 0.0, 2.0, 1.0), 2, 1).unwrap();
        let out = assign_grid_cells(&df, "pt", &grid, "cell").unwrap();
        assert_eq!(out.column("cell").unwrap(), Column::I64(vec![0, 1, -1]));
    }

    #[test]
    fn zone_join_indexed_matches_brute_force() {
        let coords: Vec<(f64, f64)> = (0..200)
            .map(|i| ((i % 20) as f64 * 0.5 + 0.25, (i / 20) as f64 * 0.5 + 0.25))
            .collect();
        let df = add_point_column(&points_df(&coords), "lat", "lon", "pt").unwrap();
        let grid = UniformGrid::new(Envelope::new(0.0, 0.0, 10.0, 5.0), 5, 5).unwrap();
        let zones = grid.cell_geometries();
        let a = join_points_to_zones(&df, "pt", &zones, "z").unwrap();
        let b = join_points_to_zones_brute(&df, "pt", &zones, "z").unwrap();
        assert_eq!(a.column("z").unwrap(), b.column("z").unwrap());
        // Every point fell inside some zone.
        assert!(a.column("z").unwrap().i64s().unwrap().iter().all(|&v| v >= 0));
    }

    #[test]
    fn zone_join_flags_misses() {
        let df = add_point_column(&points_df(&[(100.0, 100.0)]), "lat", "lon", "pt").unwrap();
        let zones = vec![Geometry::Envelope(Envelope::new(0.0, 0.0, 1.0, 1.0))];
        let out = join_points_to_zones(&df, "pt", &zones, "z").unwrap();
        assert_eq!(out.column("z").unwrap(), Column::I64(vec![-1]));
    }

    #[test]
    fn column_extent_unions_partitions() {
        let df = add_point_column(
            &points_df(&[(0.0, 0.0), (5.0, -2.0), (3.0, 7.0)]),
            "lat",
            "lon",
            "pt",
        )
        .unwrap()
        .repartition(3)
        .unwrap();
        let ext = column_extent(&df, "pt").unwrap().unwrap();
        assert_eq!((ext.min_x, ext.max_x), (0.0, 5.0));
        assert_eq!((ext.min_y, ext.max_y), (-2.0, 7.0));
    }

    #[test]
    fn polygon_zones_respect_shape() {
        use crate::geometry::Polygon;
        // A triangle zone: only points inside the triangle join.
        let tri = Geometry::Polygon(
            Polygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(4.0, 0.0),
                Point::new(0.0, 4.0),
            ])
            .unwrap(),
        );
        // (3.5, 3.5) is inside the bounding box but outside the triangle —
        // the refine step must reject it.
        let df = add_point_column(&points_df(&[(1.0, 1.0), (3.5, 3.5)]), "lat", "lon", "pt").unwrap();
        let out = join_points_to_zones(&df, "pt", &[tri], "z").unwrap();
        assert_eq!(out.column("z").unwrap(), Column::I64(vec![0, -1]));
    }
}
