//! # geotorch-datasets
//!
//! Benchmark datasets, synthetic data generators, and batching utilities
//! for GeoTorch-RS — the `geotorchai.datasets` module of the paper.
//!
//! The paper's benchmark datasets (Table II and III) are derived from
//! external sources (NYC TLC records, TaxiBJ GPS traces, Sentinel-2
//! imagery, WeatherBench, …) that are not available here. Every dataset
//! is therefore backed by a **seeded synthetic generator** that matches
//! the published grid shape / interval / band count / class count and —
//! crucially — reproduces the *inductive-bias structure* each model
//! family exploits:
//!
//! * traffic grids carry strong daily/weekly periodicity plus a stable
//!   spatial demand pattern (what ST-ResNet/DeepSTN+'s
//!   closeness-period-trend features capture);
//! * weather fields evolve by smooth persistence (what ConvLSTM's
//!   recurrence captures) with weak periodicity;
//! * raster scenes give each class a spectral signature plus texture
//!   (what SatCNN learns, and what DeepSatV2's handcrafted GLCM/spectral
//!   features summarise);
//! * segmentation scenes contain cloud-like blobs whose mask correlates
//!   with the spectral bands.
//!
//! Grid datasets expose the paper's three tensor representations —
//! basic (`lead_time`), sequential (`history/prediction`), and periodical
//! (`closeness/period/trend`) — exactly as Listings 2–4.

#![warn(missing_docs)]

pub mod grid;
pub mod loader;
pub mod raster;
pub mod samplers;
pub mod synth;

pub use grid::{GridDatasetBuilder, Representation, StBatch, StGridDataset, StSample};
pub use loader::{chronological_split, shuffled_split, BatchIndices};
pub use raster::{RasterBatchData, RasterDataset};
pub use samplers::{GridSampler, RandomSampler, Tile};
