//! Grid-based spatiotemporal datasets with the paper's three tensor
//! representations (§II-B, Listings 2–4).

use rand::Rng;
use rand::SeedableRng;

use geotorch_tensor::Tensor;

use crate::synth::weather::{WeatherField, WeatherVariable};

/// How samples are sliced out of the `[T, C, H, W]` series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Representation {
    /// `x = frame(t)`, `y = frame(t + lead_time)` (Listing 2).
    Basic {
        /// Steps between input and label.
        lead_time: usize,
    },
    /// `x = frames(t .. t+history)`, `y = frames(t+history ..
    /// t+history+prediction)` (Listing 3).
    Sequential {
        /// Input sequence length.
        history_length: usize,
        /// Label sequence length.
        prediction_length: usize,
    },
    /// Closeness / period / trend feature stacks (Listing 4, ST-ResNet).
    Periodical {
        /// Number of immediately preceding frames.
        len_closeness: usize,
        /// Number of daily-lagged frames.
        len_period: usize,
        /// Number of weekly-lagged frames.
        len_trend: usize,
    },
}

/// One training sample in the active representation.
#[derive(Debug, Clone)]
pub enum StSample {
    /// Basic: `x, y` are `[C, H, W]`.
    Basic {
        /// Input frame.
        x: Tensor,
        /// Label frame.
        y: Tensor,
    },
    /// Sequential: `x` is `[T_hist, C, H, W]`, `y` is `[T_pred, C, H, W]`.
    Sequential {
        /// Input sequence.
        x: Tensor,
        /// Label sequence.
        y: Tensor,
    },
    /// Periodical: each stack is `[len*C, H, W]`; `y` is `[C, H, W]`.
    Periodical {
        /// Most recent frames (channel-stacked).
        x_closeness: Tensor,
        /// Daily-lagged frames.
        x_period: Tensor,
        /// Weekly-lagged frames.
        x_trend: Tensor,
        /// Label frame.
        y: Tensor,
    },
}

/// A mini-batch: the sample layout with a leading batch axis.
#[derive(Debug, Clone)]
pub enum StBatch {
    /// `x, y` are `[B, C, H, W]`.
    Basic {
        /// Input frames.
        x: Tensor,
        /// Label frames.
        y: Tensor,
    },
    /// `x` is `[B, T_hist, C, H, W]`, `y` is `[B, T_pred, C, H, W]`.
    Sequential {
        /// Input sequences.
        x: Tensor,
        /// Label sequences.
        y: Tensor,
    },
    /// Stacks are `[B, len*C, H, W]`; `y` is `[B, C, H, W]`.
    Periodical {
        /// Closeness stacks.
        x_closeness: Tensor,
        /// Period stacks.
        x_period: Tensor,
        /// Trend stacks.
        x_trend: Tensor,
        /// Label frames.
        y: Tensor,
    },
}

impl StBatch {
    /// The label tensor of the batch.
    pub fn labels(&self) -> &Tensor {
        match self {
            StBatch::Basic { y, .. } | StBatch::Sequential { y, .. } | StBatch::Periodical { y, .. } => y,
        }
    }

    /// Batch size.
    pub fn len(&self) -> usize {
        self.labels().shape()[0]
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A grid-based spatiotemporal dataset: a normalised `[T, C, H, W]`
/// series plus an active representation.
#[derive(Debug, Clone)]
pub struct StGridDataset {
    /// Normalised series `[T, C, H, W]`.
    data: Tensor,
    name: String,
    representation: Representation,
    steps_per_day: usize,
    norm_min: f32,
    norm_max: f32,
}

impl StGridDataset {
    /// Wrap a raw `[T, H, W, C]` tensor (the preprocessing module's output
    /// layout), min-max normalising values into `[0, 1]`.
    pub fn from_thwc(raw: &Tensor, name: &str, steps_per_day: usize) -> StGridDataset {
        assert_eq!(raw.ndim(), 4, "expected [T,H,W,C], got {:?}", raw.shape());
        assert!(steps_per_day > 0, "steps_per_day must be positive");
        let tchw = raw.permute(&[0, 3, 1, 2]);
        let (lo, hi) = (tchw.min(), tchw.max());
        let span = if (hi - lo).abs() < f32::EPSILON { 1.0 } else { hi - lo };
        let data = tchw.map(|v| (v - lo) / span);
        StGridDataset {
            data,
            name: name.to_string(),
            representation: Representation::Basic { lead_time: 1 },
            steps_per_day,
            norm_min: lo,
            norm_max: hi,
        }
    }

    // ------------------------------------------------ named benchmarks

    /// BikeNYC-DeepSTN: 21 × 12 grid, 1-hour interval, bike in/out flow.
    pub fn bike_nyc_deepstn(num_days: usize, seed: u64) -> StGridDataset {
        let raw = synth_traffic(num_days * 24, 21, 12, 2, 24, 0.9, seed);
        StGridDataset::from_thwc(&raw, "BikeNYC-DeepSTN", 24)
    }

    /// TaxiNYC-STDN: 10 × 20 grid, 30-minute interval.
    pub fn taxi_nyc_stdn(num_days: usize, seed: u64) -> StGridDataset {
        let raw = synth_traffic(num_days * 48, 10, 20, 2, 48, 0.9, seed);
        StGridDataset::from_thwc(&raw, "TaxiNYC-STDN", 48)
    }

    /// BikeNYC-STDN: 10 × 20 grid, 30-minute interval.
    pub fn bike_nyc_stdn(num_days: usize, seed: u64) -> StGridDataset {
        let raw = synth_traffic(num_days * 48, 10, 20, 2, 48, 0.85, seed.wrapping_add(101));
        StGridDataset::from_thwc(&raw, "BikeNYC-STDN", 48)
    }

    /// TaxiBJ21: 32 × 32 grid, 30-minute interval, taxi flow.
    pub fn taxi_bj21(num_days: usize, seed: u64) -> StGridDataset {
        let raw = synth_traffic(num_days * 48, 32, 32, 2, 48, 0.8, seed.wrapping_add(202));
        StGridDataset::from_thwc(&raw, "TaxiBJ21", 48)
    }

    /// YellowTrip-NYC: 12 × 16 grid, 30-minute interval, pickups and
    /// dropoffs (the dataset the paper releases, built with the
    /// preprocessing module).
    pub fn yellowtrip_nyc(num_days: usize, seed: u64) -> StGridDataset {
        let raw = synth_traffic(num_days * 48, 12, 16, 2, 48, 0.95, seed.wrapping_add(303));
        StGridDataset::from_thwc(&raw, "YellowTrip-NYC", 48)
    }

    /// WeatherBench-style temperature: 32 × 64 grid, hourly.
    pub fn temperature(num_days: usize, seed: u64) -> StGridDataset {
        let raw = WeatherField::new(WeatherVariable::Temperature, seed).generate(num_days * 24);
        StGridDataset::from_thwc(&raw, "Temperature", 24)
    }

    /// WeatherBench-style total precipitation.
    pub fn total_precipitation(num_days: usize, seed: u64) -> StGridDataset {
        let raw =
            WeatherField::new(WeatherVariable::TotalPrecipitation, seed).generate(num_days * 24);
        StGridDataset::from_thwc(&raw, "TotalPrecipitation", 24)
    }

    /// WeatherBench-style total cloud cover.
    pub fn total_cloud_cover(num_days: usize, seed: u64) -> StGridDataset {
        let raw =
            WeatherField::new(WeatherVariable::TotalCloudCover, seed).generate(num_days * 24);
        StGridDataset::from_thwc(&raw, "TotalCloudCover", 24)
    }

    /// WeatherBench-style geopotential.
    pub fn geopotential(num_days: usize, seed: u64) -> StGridDataset {
        let raw = WeatherField::new(WeatherVariable::Geopotential, seed).generate(num_days * 24);
        StGridDataset::from_thwc(&raw, "Geopotential", 24)
    }

    /// WeatherBench-style incident solar radiation.
    pub fn solar_radiation(num_days: usize, seed: u64) -> StGridDataset {
        let raw = WeatherField::new(WeatherVariable::SolarRadiation, seed).generate(num_days * 24);
        StGridDataset::from_thwc(&raw, "SolarRadiation", 24)
    }

    // -------------------------------------------------- representations

    /// Switch to the basic representation (Listing 2).
    pub fn set_basic_representation(&mut self, lead_time: usize) {
        assert!(lead_time > 0, "lead_time must be positive");
        self.representation = Representation::Basic { lead_time };
    }

    /// Switch to the sequential representation (Listing 3).
    pub fn set_sequential_representation(
        &mut self,
        history_length: usize,
        prediction_length: usize,
    ) {
        assert!(
            history_length > 0 && prediction_length > 0,
            "sequence lengths must be positive"
        );
        self.representation = Representation::Sequential {
            history_length,
            prediction_length,
        };
    }

    /// Switch to the periodical representation (Listing 4). Period is one
    /// day and trend one week, in dataset steps.
    pub fn set_periodical_representation(
        &mut self,
        len_closeness: usize,
        len_period: usize,
        len_trend: usize,
    ) {
        assert!(
            len_closeness > 0 || len_period > 0 || len_trend > 0,
            "at least one periodical feature must be requested"
        );
        self.representation = Representation::Periodical {
            len_closeness,
            len_period,
            len_trend,
        };
    }

    /// The active representation.
    pub fn representation(&self) -> Representation {
        self.representation
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `(T, C, H, W)` of the underlying series.
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        let s = self.data.shape();
        (s[0], s[1], s[2], s[3])
    }

    /// Steps per day (periodicity base).
    pub fn steps_per_day(&self) -> usize {
        self.steps_per_day
    }

    /// Undo min-max normalisation (for reporting in original units).
    pub fn denormalize(&self, t: &Tensor) -> Tensor {
        let span = self.norm_max - self.norm_min;
        let lo = self.norm_min;
        t.map(|v| v * span + lo)
    }

    /// First valid *target* frame index in the active representation.
    fn first_target(&self) -> usize {
        match self.representation {
            Representation::Basic { lead_time } => lead_time,
            Representation::Sequential { history_length, .. } => history_length,
            Representation::Periodical {
                len_closeness,
                len_period,
                len_trend,
            } => {
                let day = self.steps_per_day;
                let week = 7 * day;
                len_closeness
                    .max(len_period * day)
                    .max(len_trend * week)
            }
        }
    }

    /// Number of samples in the active representation.
    pub fn len(&self) -> usize {
        let t = self.dims().0;
        let first = self.first_target();
        let tail = match self.representation {
            Representation::Sequential {
                prediction_length, ..
            } => prediction_length - 1,
            _ => 0,
        };
        (t).saturating_sub(first + tail)
    }

    /// Whether the representation yields no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch one sample.
    ///
    /// # Panics
    /// If `index >= len()`.
    pub fn get(&self, index: usize) -> StSample {
        assert!(index < self.len(), "sample {index} out of range ({})", self.len());
        let target = self.first_target() + index;
        match self.representation {
            Representation::Basic { lead_time } => StSample::Basic {
                x: self.frame(target - lead_time),
                y: self.frame(target),
            },
            Representation::Sequential {
                history_length,
                prediction_length,
            } => StSample::Sequential {
                x: self.frames(target - history_length, target),
                y: self.frames(target, target + prediction_length),
            },
            Representation::Periodical {
                len_closeness,
                len_period,
                len_trend,
            } => {
                let day = self.steps_per_day;
                let week = 7 * day;
                StSample::Periodical {
                    x_closeness: self.lag_stack(target, 1, len_closeness),
                    x_period: self.lag_stack(target, day, len_period),
                    x_trend: self.lag_stack(target, week, len_trend),
                    y: self.frame(target),
                }
            }
        }
    }

    /// Build a batch from sample indices (stacking along a new batch
    /// axis).
    pub fn batch(&self, indices: &[usize]) -> StBatch {
        assert!(!indices.is_empty(), "empty batch");
        let samples: Vec<StSample> = indices.iter().map(|&i| self.get(i)).collect();
        match &samples[0] {
            StSample::Basic { .. } => {
                let xs: Vec<Tensor> = samples
                    .iter()
                    .map(|s| match s {
                        StSample::Basic { x, .. } => x.clone(),
                        _ => unreachable!("homogeneous representation"),
                    })
                    .collect();
                let ys: Vec<Tensor> = samples
                    .iter()
                    .map(|s| match s {
                        StSample::Basic { y, .. } => y.clone(),
                        _ => unreachable!(),
                    })
                    .collect();
                StBatch::Basic {
                    x: stack(&xs),
                    y: stack(&ys),
                }
            }
            StSample::Sequential { .. } => {
                let xs: Vec<Tensor> = samples
                    .iter()
                    .map(|s| match s {
                        StSample::Sequential { x, .. } => x.clone(),
                        _ => unreachable!(),
                    })
                    .collect();
                let ys: Vec<Tensor> = samples
                    .iter()
                    .map(|s| match s {
                        StSample::Sequential { y, .. } => y.clone(),
                        _ => unreachable!(),
                    })
                    .collect();
                StBatch::Sequential {
                    x: stack(&xs),
                    y: stack(&ys),
                }
            }
            StSample::Periodical { .. } => {
                let mut cs = Vec::new();
                let mut ps = Vec::new();
                let mut ts = Vec::new();
                let mut ys = Vec::new();
                for s in &samples {
                    if let StSample::Periodical {
                        x_closeness,
                        x_period,
                        x_trend,
                        y,
                    } = s
                    {
                        cs.push(x_closeness.clone());
                        ps.push(x_period.clone());
                        ts.push(x_trend.clone());
                        ys.push(y.clone());
                    }
                }
                StBatch::Periodical {
                    x_closeness: stack(&cs),
                    x_period: stack(&ps),
                    x_trend: stack(&ts),
                    y: stack(&ys),
                }
            }
        }
    }

    /// Frame `t` as `[C, H, W]`.
    fn frame(&self, t: usize) -> Tensor {
        self.data.index_axis(0, t)
    }

    /// Frames `[start, end)` as `[end-start, C, H, W]`.
    fn frames(&self, start: usize, end: usize) -> Tensor {
        self.data.narrow(0, start, end)
    }

    /// `len` frames at lags `lag, 2·lag, …` before `target`, stacked along
    /// channels: `[len*C, H, W]`, most recent first (ST-ResNet layout).
    fn lag_stack(&self, target: usize, lag: usize, len: usize) -> Tensor {
        let (_, c, h, w) = self.dims();
        if len == 0 {
            return Tensor::zeros(&[0, h, w]);
        }
        let frames: Vec<Tensor> = (1..=len)
            .map(|k| self.frame(target - k * lag))
            .collect();
        let refs: Vec<&Tensor> = frames.iter().collect();
        Tensor::concat(&refs, 0).reshape(&[len * c, h, w])
    }
}

fn stack(tensors: &[Tensor]) -> Tensor {
    let refs: Vec<&Tensor> = tensors.iter().collect();
    Tensor::stack(&refs)
}

/// Builder for custom grid datasets from raw tensors.
pub struct GridDatasetBuilder {
    raw: Tensor,
    name: String,
    steps_per_day: usize,
}

impl GridDatasetBuilder {
    /// Start from a `[T, H, W, C]` tensor.
    pub fn new(raw: Tensor) -> GridDatasetBuilder {
        GridDatasetBuilder {
            raw,
            name: "custom".to_string(),
            steps_per_day: 24,
        }
    }

    /// Set the dataset name.
    pub fn name(mut self, name: &str) -> GridDatasetBuilder {
        self.name = name.to_string();
        self
    }

    /// Set the periodicity base.
    pub fn steps_per_day(mut self, steps: usize) -> GridDatasetBuilder {
        self.steps_per_day = steps;
        self
    }

    /// Materialise the dataset.
    pub fn build(self) -> StGridDataset {
        StGridDataset::from_thwc(&self.raw, &self.name, self.steps_per_day)
    }
}

/// Generate a synthetic traffic-flow grid `[T, H, W, C]`.
///
/// The signal is `pattern(cell) · profile(time-of-week) · amp(day) ·
/// (1 + regional(t, cell)) + noise`, with
///
/// * a stable spatial demand pattern per channel (hotspots),
/// * a smooth double-peak daily profile damped on weekends,
/// * a **global day-level amplitude** following an AR process — predicting
///   the target requires estimating today's amplitude from closeness
///   frames and *rescaling* the periodic lags by it, a multiplicative
///   interaction shallow local CNNs approximate poorly but deeper
///   residual models and DeepSTN+'s global pathway capture well (the
///   mechanism behind Table IV's model ordering),
/// * a spatially long-range regional excursion field (correlation length
///   ~ half the grid) evolving by AR(1) in time.
///
/// `periodicity` in `[0, 1]` scales how deterministic the signal is:
/// higher values shrink the amplitude and regional variance.
pub fn synth_traffic(
    steps: usize,
    height: usize,
    width: usize,
    channels: usize,
    steps_per_day: usize,
    periodicity: f32,
    seed: u64,
) -> Tensor {
    use crate::synth::field::SmoothField;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    // Stable spatial demand pattern per channel (hotspot-ish).
    let patterns: Vec<SmoothField> = (0..channels)
        .map(|_| {
            SmoothField::generate(height, width, (height / 3).max(2), &mut rng)
                .map(|v| 0.15 + 0.85 * v * v)
        })
        .collect();
    // Daily profile with two *sharp* rush peaks: the onsets are steep
    // enough that extrapolating from the most recent frames alone lags
    // behind, while the daily (period) lag anticipates them exactly —
    // this is why closeness/period/trend features matter for traffic.
    let day_profile: Vec<f32> = (0..steps_per_day)
        .map(|s| {
            let hour = s as f32 / steps_per_day as f32 * 24.0;
            let morning = (-((hour - 8.5) / 0.8).powi(2)).exp();
            let evening = (-((hour - 18.0) / 1.0).powi(2)).exp();
            0.15 + 0.85 * (morning + evening).min(1.0)
        })
        .collect();
    let amp_sigma = 0.45 * (1.0 - periodicity) + 0.18;
    let regional_weight = 0.5 * (1.0 - periodicity) + 0.15;
    let mut amp = 1.0f32;
    let mut regional = SmoothField::generate(height, width, (height / 2).max(2), &mut rng);
    let mut out = Vec::with_capacity(steps * height * width * channels);
    for t in 0..steps {
        {
            // The global amplitude drifts continuously (mean-reverting AR
            // per step, half-life around half a day): blending the
            // closeness lags (right amplitude, stale profile phase) with
            // the period/trend lags (right phase, stale amplitude) is a
            // multiplicative correction that favours deep/global models.
            let rho = 0.995f32.powi((96 / steps_per_day.max(1)).max(1) as i32);
            let shock = (rng.gen::<f32>() - 0.5) * 2.0 * amp_sigma * (1.0 - rho);
            amp = (rho * amp + (1.0 - rho) * 1.0 + shock * 6.0).clamp(0.4, 1.8);
        }
        if t % 3 == 0 {
            // Regional excursion drifts slowly with long spatial range.
            let fresh = SmoothField::generate(height, width, (height / 2).max(2), &mut rng);
            regional = SmoothField::blend(&regional, &fresh, 0.85);
        }
        let day = t / steps_per_day % 7;
        let weekend = if day >= 5 { 0.55 } else { 1.0 };
        let profile = day_profile[t % steps_per_day] * weekend;
        for r in 0..height {
            for c in 0..width {
                let region = 1.0 + regional_weight * (regional.at(r, c) - 0.5);
                for pattern in &patterns {
                    let noise = 0.04 * (rng.gen::<f32>() - 0.5);
                    let v = pattern.at(r, c) * profile * amp * region + noise;
                    out.push(v.max(0.0) * 100.0); // count-like scale
                }
            }
        }
    }
    Tensor::from_vec(out, &[steps, height, width, channels])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dataset() -> StGridDataset {
        // 3 weeks hourly on a small grid so weekly trend lags exist.
        StGridDataset::bike_nyc_deepstn(21, 7)
    }

    #[test]
    fn named_datasets_match_table_ii_shapes() {
        let (t, c, h, w) = StGridDataset::bike_nyc_deepstn(2, 0).dims();
        assert_eq!((t, c, h, w), (48, 2, 21, 12));
        assert_eq!(StGridDataset::taxi_nyc_stdn(1, 0).dims(), (48, 2, 10, 20));
        assert_eq!(StGridDataset::taxi_bj21(1, 0).dims(), (48, 2, 32, 32));
        assert_eq!(StGridDataset::yellowtrip_nyc(1, 0).dims(), (48, 2, 12, 16));
        assert_eq!(StGridDataset::temperature(1, 0).dims(), (24, 1, 32, 64));
    }

    #[test]
    fn normalisation_and_denormalisation() {
        let ds = small_dataset();
        let (t, c, h, w) = ds.dims();
        assert_eq!(t, 21 * 24);
        let frame = ds.get(0);
        if let StSample::Basic { x, .. } = frame {
            assert_eq!(x.shape(), &[c, h, w]);
            assert!(x.min() >= 0.0 && x.max() <= 1.0);
            let denorm = ds.denormalize(&x);
            assert!(denorm.max() > 1.0, "denormalised values return to count scale");
        } else {
            panic!("default representation should be Basic");
        }
    }

    #[test]
    fn basic_representation_offsets() {
        let mut ds = small_dataset();
        ds.set_basic_representation(24);
        // y at t, x at t-24: they should be *similar* (daily periodicity).
        assert_eq!(ds.len(), 21 * 24 - 24);
        let StSample::Basic { x, y } = ds.get(0) else {
            panic!()
        };
        let diff = x.sub(&y).abs().mean();
        assert!(diff < 0.2, "daily-lag frames should correlate, diff={diff}");
    }

    #[test]
    fn sequential_representation_shapes() {
        let mut ds = small_dataset();
        ds.set_sequential_representation(48, 24);
        let (_, c, h, w) = ds.dims();
        assert_eq!(ds.len(), 21 * 24 - 48 - 23);
        let StSample::Sequential { x, y } = ds.get(5) else {
            panic!()
        };
        assert_eq!(x.shape(), &[48, c, h, w]);
        assert_eq!(y.shape(), &[24, c, h, w]);
    }

    #[test]
    fn sequential_history_and_prediction_are_contiguous() {
        let mut ds = small_dataset();
        ds.set_sequential_representation(3, 2);
        let StSample::Sequential { x, y } = ds.get(0) else {
            panic!()
        };
        // Next sample's history should start one step later: x of sample 1
        // at position 0 equals x of sample 0 at position 1.
        let StSample::Sequential { x: x1, .. } = ds.get(1) else {
            panic!()
        };
        assert_eq!(x1.index_axis(0, 0), x.index_axis(0, 1));
        // y follows x immediately: overlapping frame check via basic repr.
        let mut basic = ds.clone();
        basic.set_basic_representation(1);
        let _ = y;
    }

    #[test]
    fn periodical_representation_shapes_and_lags() {
        let mut ds = small_dataset();
        ds.set_periodical_representation(3, 4, 2);
        let (_, c, h, w) = ds.dims();
        // First target = max(3, 4*24, 2*168) = 336.
        assert_eq!(ds.len(), 21 * 24 - 336);
        let StSample::Periodical {
            x_closeness,
            x_period,
            x_trend,
            y,
        } = ds.get(0) else {
            panic!()
        };
        assert_eq!(x_closeness.shape(), &[3 * c, h, w]);
        assert_eq!(x_period.shape(), &[4 * c, h, w]);
        assert_eq!(x_trend.shape(), &[2 * c, h, w]);
        assert_eq!(y.shape(), &[c, h, w]);
    }

    #[test]
    fn periodical_lags_carry_signal() {
        // On a highly periodic dataset the weekly-lag frame should be
        // close to the target.
        let mut ds = small_dataset();
        ds.set_periodical_representation(1, 1, 1);
        let (_, c, _, _) = ds.dims();
        let mut trend_err = 0.0;
        let mut rand_err = 0.0;
        let n = 20;
        for i in 0..n {
            let StSample::Periodical { x_trend, y, .. } = ds.get(i * 3) else {
                panic!()
            };
            trend_err += x_trend.narrow(0, 0, c).sub(&y).abs().mean();
            // Compare against a half-day-shifted frame as a control.
            let StSample::Periodical { y: y_far, .. } = ds.get(i * 3 + 12) else {
                panic!()
            };
            rand_err += y_far.sub(&y).abs().mean();
        }
        assert!(
            trend_err < rand_err,
            "weekly lag ({trend_err}) should beat a 12h shift ({rand_err})"
        );
    }

    #[test]
    fn batching_stacks_samples() {
        let mut ds = small_dataset();
        ds.set_periodical_representation(2, 1, 1);
        let batch = ds.batch(&[0, 1, 2, 3]);
        let StBatch::Periodical { x_closeness, y, .. } = &batch else {
            panic!()
        };
        let (_, c, h, w) = ds.dims();
        assert_eq!(x_closeness.shape(), &[4, 2 * c, h, w]);
        assert_eq!(y.shape(), &[4, c, h, w]);
        assert_eq!(batch.len(), 4);
    }

    #[test]
    fn builder_constructs_custom_dataset() {
        let raw = Tensor::ones(&[10, 4, 5, 1]);
        let ds = GridDatasetBuilder::new(raw)
            .name("custom-test")
            .steps_per_day(2)
            .build();
        assert_eq!(ds.name(), "custom-test");
        assert_eq!(ds.dims(), (10, 1, 4, 5));
        assert_eq!(ds.steps_per_day(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_sample_panics() {
        let ds = small_dataset();
        ds.get(ds.len());
    }

    #[test]
    fn traffic_generator_is_periodic() {
        let t = synth_traffic(48 * 7, 6, 6, 1, 48, 0.95, 11);
        // Same time-of-day one day apart should on average correlate more
        // than a half-day offset (averaged so the amplitude drift does not
        // dominate any single pair).
        let diff = |a: usize, b: usize| t.index_axis(0, a).sub(&t.index_axis(0, b)).abs().mean();
        let mut day_diff = 0.0;
        let mut off_diff = 0.0;
        for i in 48..(48 * 6) {
            day_diff += diff(i, i + 48);
            off_diff += diff(i, i + 24);
        }
        assert!(
            day_diff < off_diff,
            "daily periodicity: {day_diff} vs {off_diff}"
        );
    }
}
