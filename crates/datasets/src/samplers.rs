//! Windowed geo-samplers over large rasters, after TorchGeo's
//! `GridGeoSampler`/`RandomGeoSampler`: scene-scale datasets are not
//! pre-chipped — a sampler turns one huge georeferenced raster into a
//! stream of tile windows.
//!
//! Samplers are pure window geometry ([`geotorch_raster::Window`]); the
//! pixels come from [`Tile`] views or `Raster::read_window*`. The edge
//! contract is first-class: windows at the scene border **clamp** (the
//! last start along each axis is pulled back so the window stays inside
//! the raster) rather than zero-padding silently — every yielded window
//! lies fully inside the sampled extent, every pixel of the extent is
//! covered, and `stride == tile` on an exactly divisible extent
//! degenerates to non-overlapping tiling. These properties are pinned by
//! proptests in `tests/sampler_prop.rs`.

use geotorch_raster::{Raster, RasterError, RasterResult, Window};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The start offsets a clamped sliding window visits along one axis:
/// `0, stride, 2·stride, …`, with the final start pulled back to
/// `extent − tile` so the last window ends exactly at the border. When
/// `stride` divides `extent − tile` the pull-back is a no-op and the
/// grid is regular.
fn axis_starts(extent: usize, tile: usize, stride: usize) -> Vec<usize> {
    debug_assert!(tile >= 1 && stride >= 1 && tile <= extent);
    let mut starts = Vec::new();
    let mut pos = 0;
    loop {
        if pos + tile >= extent {
            starts.push(extent - tile);
            return starts;
        }
        starts.push(pos);
        pos += stride;
    }
}

/// Row-major sliding-window sampler: every pixel of the sampled extent
/// is covered by at least one window (stride ≤ tile is enforced), border
/// windows clamp inward, and the visit order is deterministic
/// (row-major by window start).
#[derive(Debug, Clone)]
pub struct GridSampler {
    roi: Window,
    tile_h: usize,
    tile_w: usize,
    row_starts: Vec<usize>,
    col_starts: Vec<usize>,
}

impl GridSampler {
    /// Windows of `tile_h × tile_w` at stride `(stride_h, stride_w)`
    /// over `roi`. The tile must fit in the roi and strides must be in
    /// `1..=tile` — a stride beyond the tile would leave uncovered gaps,
    /// which the mosaic stitcher treats as an error, so the sampler
    /// rejects it up front.
    pub fn new(
        roi: Window,
        (tile_h, tile_w): (usize, usize),
        (stride_h, stride_w): (usize, usize),
    ) -> RasterResult<GridSampler> {
        if tile_h == 0 || tile_w == 0 || tile_h > roi.height || tile_w > roi.width {
            return Err(RasterError::InvalidArgument(format!(
                "tile {tile_h}x{tile_w} does not fit roi {}x{}",
                roi.height, roi.width
            )));
        }
        if stride_h == 0 || stride_w == 0 || stride_h > tile_h || stride_w > tile_w {
            return Err(RasterError::InvalidArgument(format!(
                "stride {stride_h}x{stride_w} outside 1..=tile ({tile_h}x{tile_w}) — \
                 larger strides leave uncovered pixels"
            )));
        }
        Ok(GridSampler {
            roi,
            tile_h,
            tile_w,
            row_starts: axis_starts(roi.height, tile_h, stride_h),
            col_starts: axis_starts(roi.width, tile_w, stride_w),
        })
    }

    /// Grid over a raster's full extent.
    pub fn over(
        raster: &Raster,
        tile: (usize, usize),
        stride: (usize, usize),
    ) -> RasterResult<GridSampler> {
        GridSampler::new(raster.extent(), tile, stride)
    }

    /// The sampled region (windows are anchored inside it).
    pub fn roi(&self) -> Window {
        self.roi
    }

    /// Number of windows the sampler yields.
    pub fn len(&self) -> usize {
        self.row_starts.len() * self.col_starts.len()
    }

    /// Whether the sampler yields no windows (never true: a valid
    /// sampler always yields at least one).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Windows per grid row / per grid column.
    pub fn grid_shape(&self) -> (usize, usize) {
        (self.row_starts.len(), self.col_starts.len())
    }

    /// The `i`-th window in row-major order.
    pub fn window(&self, i: usize) -> Option<Window> {
        if i >= self.len() {
            return None;
        }
        let cols = self.col_starts.len();
        Some(Window::new(
            self.roi.row + self.row_starts[i / cols],
            self.roi.col + self.col_starts[i % cols],
            self.tile_h,
            self.tile_w,
        ))
    }

    /// All windows in row-major order.
    pub fn windows(&self) -> GridIter<'_> {
        GridIter {
            sampler: self,
            index: 0,
        }
    }

    /// Borrowing tile views over a raster, in window order. The raster's
    /// extent must contain the sampler's roi.
    pub fn tiles<'a>(&'a self, raster: &'a Raster) -> RasterResult<TileIter<'a>> {
        if !raster.extent().contains(&self.roi) {
            return Err(RasterError::InvalidArgument(format!(
                "sampler roi {:?} outside raster {}x{}",
                self.roi,
                raster.height(),
                raster.width()
            )));
        }
        Ok(TileIter {
            inner: self.windows(),
            raster,
        })
    }

    /// The tile extent every window shares.
    pub fn tile_extent(&self) -> (usize, usize) {
        (self.tile_h, self.tile_w)
    }
}

/// Row-major window iterator for [`GridSampler`].
pub struct GridIter<'a> {
    sampler: &'a GridSampler,
    index: usize,
}

impl Iterator for GridIter<'_> {
    type Item = Window;

    fn next(&mut self) -> Option<Window> {
        let s = self.sampler;
        if self.index >= s.len() {
            return None;
        }
        let cols = s.col_starts.len();
        let (r, c) = (self.index / cols, self.index % cols);
        self.index += 1;
        let (tile_h, tile_w) = s.tile_extent();
        Some(Window::new(
            s.roi.row + s.row_starts[r],
            s.roi.col + s.col_starts[c],
            tile_h,
            tile_w,
        ))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.sampler.len() - self.index;
        (left, Some(left))
    }
}

impl ExactSizeIterator for GridIter<'_> {}

/// A window bound to the raster it samples — the tile handed to
/// transforms or inference. Pixel access is zero-copy where the layout
/// allows: a full-width window's rows are contiguous per band and can be
/// borrowed directly; anything narrower must gather rows into pooled
/// storage ([`Tile::to_tensor`]).
#[derive(Debug, Clone, Copy)]
pub struct Tile<'a> {
    raster: &'a Raster,
    window: Window,
}

impl<'a> Tile<'a> {
    /// Bind `window` to `raster` (must be inside its extent).
    pub fn new(raster: &'a Raster, window: Window) -> RasterResult<Tile<'a>> {
        if !raster.extent().contains(&window) {
            return Err(RasterError::InvalidArgument(format!(
                "tile window {window:?} outside raster {}x{}",
                raster.height(),
                raster.width()
            )));
        }
        Ok(Tile { raster, window })
    }

    /// The tile's window geometry.
    pub fn window(&self) -> Window {
        self.window
    }

    /// Zero-copy borrow of one band's samples — available exactly when
    /// the window spans the raster's full width, which makes the window
    /// rows one contiguous run. Returns `None` otherwise.
    pub fn contiguous_band(&self, band: usize) -> Option<&'a [f32]> {
        if self.window.width == self.raster.width() && self.window.col == 0 {
            self.raster
                .band_rows(band, self.window.row, self.window.height)
                .ok()
        } else {
            None
        }
    }

    /// The tile's samples as a `[bands, h, w]` tensor (pooled copy).
    pub fn to_tensor(&self) -> geotorch_tensor::Tensor {
        self.raster
            .read_window_tensor(&self.window)
            .expect("tile window validated at construction")
    }

    /// The tile's samples as an owned raster (pooled copy), windowed
    /// georeferencing included.
    pub fn to_raster(&self) -> Raster {
        self.raster
            .read_window(&self.window)
            .expect("tile window validated at construction")
    }
}

/// Iterator of [`Tile`] views in grid order.
pub struct TileIter<'a> {
    inner: GridIter<'a>,
    raster: &'a Raster,
}

impl<'a> Iterator for TileIter<'a> {
    type Item = Tile<'a>;

    fn next(&mut self) -> Option<Tile<'a>> {
        let window = self.inner.next()?;
        Some(Tile {
            raster: self.raster,
            window,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for TileIter<'_> {}

/// Seeded uniform random window sampler (TorchGeo's `RandomGeoSampler`):
/// yields `length` windows of fixed extent, each anchored uniformly at
/// random inside the roi — bounds-checked by construction, so a yielded
/// window never leaves the roi. Same seed → same window sequence.
#[derive(Debug, Clone)]
pub struct RandomSampler {
    roi: Window,
    tile_h: usize,
    tile_w: usize,
    length: usize,
    rng: StdRng,
    drawn: usize,
}

impl RandomSampler {
    /// `length` random `tile_h × tile_w` windows inside `roi`, from
    /// `seed`.
    pub fn new(
        roi: Window,
        (tile_h, tile_w): (usize, usize),
        length: usize,
        seed: u64,
    ) -> RasterResult<RandomSampler> {
        if tile_h == 0 || tile_w == 0 || tile_h > roi.height || tile_w > roi.width {
            return Err(RasterError::InvalidArgument(format!(
                "tile {tile_h}x{tile_w} does not fit roi {}x{}",
                roi.height, roi.width
            )));
        }
        Ok(RandomSampler {
            roi,
            tile_h,
            tile_w,
            length,
            rng: StdRng::seed_from_u64(seed),
            drawn: 0,
        })
    }

    /// Random windows over a raster's full extent.
    pub fn over(
        raster: &Raster,
        tile: (usize, usize),
        length: usize,
        seed: u64,
    ) -> RasterResult<RandomSampler> {
        RandomSampler::new(raster.extent(), tile, length, seed)
    }

    /// The sampled region.
    pub fn roi(&self) -> Window {
        self.roi
    }

    /// Windows remaining.
    pub fn len(&self) -> usize {
        self.length - self.drawn
    }

    /// Whether the sampler is exhausted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Iterator for RandomSampler {
    type Item = Window;

    fn next(&mut self) -> Option<Window> {
        if self.drawn >= self.length {
            return None;
        }
        self.drawn += 1;
        let max_r = self.roi.height - self.tile_h;
        let max_c = self.roi.width - self.tile_w;
        let r = if max_r == 0 { 0 } else { self.rng.gen_range(0..=max_r) };
        let c = if max_c == 0 { 0 } else { self.rng.gen_range(0..=max_c) };
        Some(Window::new(
            self.roi.row + r,
            self.roi.col + c,
            self.tile_h,
            self.tile_w,
        ))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.len(), Some(self.len()))
    }
}

impl ExactSizeIterator for RandomSampler {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_starts_clamp_and_tile_exactly() {
        // Divisible extent at stride == tile: exact non-overlapping tiling.
        assert_eq!(axis_starts(8, 4, 4), vec![0, 4]);
        // Indivisible extent: last start clamps to extent - tile.
        assert_eq!(axis_starts(10, 4, 4), vec![0, 4, 6]);
        // Overlapping stride.
        assert_eq!(axis_starts(8, 4, 2), vec![0, 2, 4]);
        // Tile spans the whole extent.
        assert_eq!(axis_starts(4, 4, 1), vec![0]);
    }

    #[test]
    fn grid_sampler_row_major_and_clamped() {
        let s = GridSampler::new(Window::new(0, 0, 10, 8), (4, 4), (4, 4)).unwrap();
        assert_eq!(s.grid_shape(), (3, 2));
        let windows: Vec<Window> = s.windows().collect();
        assert_eq!(windows.len(), 6);
        assert_eq!(windows[0], Window::new(0, 0, 4, 4));
        assert_eq!(windows[1], Window::new(0, 4, 4, 4));
        // Clamped bottom row starts at 6, not 8.
        assert_eq!(windows[4], Window::new(6, 0, 4, 4));
        // Every window inside the roi.
        let roi = s.roi();
        assert!(windows.iter().all(|w| roi.contains(w)));
    }

    #[test]
    fn grid_sampler_offsets_by_roi_origin() {
        let s = GridSampler::new(Window::new(100, 200, 8, 8), (4, 4), (4, 4)).unwrap();
        let w: Vec<Window> = s.windows().collect();
        assert_eq!(w[0], Window::new(100, 200, 4, 4));
        assert_eq!(w[3], Window::new(104, 204, 4, 4));
    }

    #[test]
    fn grid_sampler_rejects_bad_geometry() {
        let roi = Window::new(0, 0, 8, 8);
        assert!(GridSampler::new(roi, (16, 4), (4, 4)).is_err()); // tile > roi
        assert!(GridSampler::new(roi, (4, 4), (5, 4)).is_err()); // stride > tile
        assert!(GridSampler::new(roi, (4, 4), (0, 4)).is_err()); // zero stride
        assert!(GridSampler::new(roi, (0, 4), (1, 1)).is_err()); // zero tile
    }

    #[test]
    fn tiles_view_zero_copy_when_full_width() {
        let raster = Raster::new((0..32).map(|v| v as f32).collect(), 2, 4, 4).unwrap();
        let s = GridSampler::over(&raster, (2, 4), (2, 4)).unwrap();
        let tiles: Vec<Tile> = s.tiles(&raster).unwrap().collect();
        assert_eq!(tiles.len(), 2);
        // Full-width tiles borrow their rows without copying.
        let band = tiles[1].contiguous_band(1).unwrap();
        assert_eq!(band, &raster.band(1).unwrap()[8..16]);
        // A narrow tile cannot borrow contiguously.
        let narrow = Tile::new(&raster, Window::new(0, 1, 2, 2)).unwrap();
        assert!(narrow.contiguous_band(0).is_none());
        let t = narrow.to_tensor();
        assert_eq!(t.shape(), &[2, 2, 2]);
        assert_eq!(t.as_slice(), &[1.0, 2.0, 5.0, 6.0, 17.0, 18.0, 21.0, 22.0]);
    }

    #[test]
    fn random_sampler_is_seeded_and_bounded() {
        let roi = Window::new(10, 10, 64, 48);
        let a: Vec<Window> = RandomSampler::new(roi, (16, 16), 50, 9).unwrap().collect();
        let b: Vec<Window> = RandomSampler::new(roi, (16, 16), 50, 9).unwrap().collect();
        assert_eq!(a, b, "same seed must replay the same windows");
        assert_eq!(a.len(), 50);
        assert!(a.iter().all(|w| roi.contains(w)));
        // Different seeds diverge.
        let c: Vec<Window> = RandomSampler::new(roi, (16, 16), 50, 10).unwrap().collect();
        assert_ne!(a, c);
        // Degenerate roi == tile: always the single possible window.
        let snug: Vec<Window> =
            RandomSampler::new(Window::new(0, 0, 16, 16), (16, 16), 3, 1).unwrap().collect();
        assert!(snug.iter().all(|w| *w == Window::new(0, 0, 16, 16)));
        // Oversized tile is rejected.
        assert!(RandomSampler::new(roi, (65, 16), 1, 0).is_err());
    }
}
