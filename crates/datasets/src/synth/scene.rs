//! Synthetic satellite scenes (EuroSAT / SAT-4 / SAT-6 / SlumDetection /
//! 38-Cloud substitutes).
//!
//! Classification scenes give every class a deterministic spectral
//! signature (per-band mean reflectance) *and* a class-specific texture
//! scale, so both the raw bands (what SatCNN exploits) and handcrafted
//! GLCM/spectral-index features (what DeepSAT V2 fuses) carry label
//! information. Segmentation scenes overlay cloud-like blobs whose mask
//! is the pixel label and whose brightness signature mimics cloud
//! reflectance.

use rand::Rng;
use rand::SeedableRng;

use geotorch_raster::Raster;

use super::field::SmoothField;

/// What a generator produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SceneKind {
    /// Single-label scenes for classification.
    Classification {
        /// Number of land-use classes.
        classes: usize,
    },
    /// Cloud scenes with per-pixel binary masks for segmentation.
    CloudSegmentation,
}

/// Seeded scene generator for a fixed `(bands, height, width)` geometry.
#[derive(Debug, Clone)]
pub struct RasterScene {
    bands: usize,
    height: usize,
    width: usize,
    seed: u64,
    signature_range: f32,
}

impl RasterScene {
    /// New generator.
    pub fn new(bands: usize, height: usize, width: usize, seed: u64) -> RasterScene {
        assert!(bands > 0 && height > 0 && width > 0, "scene dims must be positive");
        RasterScene {
            bands,
            height,
            width,
            seed,
            signature_range: 0.4,
        }
    }

    /// Override how far apart class signatures can spread (default 0.4).
    /// Smaller ranges make classes overlap more — datasets with many
    /// diverse classes (EuroSAT's 10) are intrinsically harder than
    /// few-class ones (SAT-4/6), which this knob models.
    pub fn with_signature_range(mut self, range: f32) -> RasterScene {
        assert!(range > 0.0 && range <= 0.7, "range must be in (0, 0.7]");
        self.signature_range = range;
        self
    }

    /// Band count.
    pub fn bands(&self) -> usize {
        self.bands
    }

    /// Scene height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Scene width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The spectral signature (per-band mean reflectance in `[0.3,
    /// 0.7]`) of a class — deterministic in `(generator seed, class)`.
    pub fn class_signature(&self, class: usize) -> Vec<f32> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(
            self.seed.wrapping_mul(0x9E3779B97F4A7C15) ^ (class as u64 + 1),
        );
        let lo = 0.5 - self.signature_range / 2.0;
        (0..self.bands)
            .map(|_| lo + self.signature_range * rng.gen::<f32>())
            .collect()
    }

    /// The texture correlation length of a class in pixels (2..=8),
    /// deterministic like the signature. Distinct scales make GLCM
    /// features discriminative.
    pub fn class_texture_scale(&self, class: usize) -> usize {
        2 + (self
            .seed
            .wrapping_mul(0x2545F4914F6CDD1D)
            .wrapping_add(class as u64 * 7919)
            % 7) as usize
    }

    /// Generate one classification scene of the given class.
    /// `sample_seed` individualises the instance.
    pub fn classification_image(&self, class: usize, sample_seed: u64) -> Raster {
        let signature = self.class_signature(class);
        let texture_scale = self.class_texture_scale(class);
        let mut rng = rand::rngs::StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(31)
                .wrapping_add(class as u64)
                .wrapping_mul(1_000_003)
                .wrapping_add(sample_seed),
        );
        // One shared texture field (correlated across bands, like real
        // land cover) plus small per-band independent noise. Each
        // *instance* also carries a global brightness shift and per-band
        // spectral jitter (atmospheric/seasonal variation), which makes
        // classes overlap — the source of the irreducible error real
        // scene classification has.
        let texture = SmoothField::generate(self.height, self.width, texture_scale, &mut rng);
        let brightness = 0.08 * (rng.gen::<f32>() - 0.5);
        let mut data = Vec::with_capacity(self.bands * self.height * self.width);
        for &mean in &signature {
            let band_jitter = 0.10 * (rng.gen::<f32>() - 0.5);
            let level = mean + brightness + band_jitter;
            for t in texture.as_slice() {
                let v = level + 0.25 * (t - 0.5) + 0.18 * (rng.gen::<f32>() - 0.5);
                data.push(v.clamp(0.0, 1.0));
            }
        }
        Raster::new(data, self.bands, self.height, self.width)
            .expect("generator dimensions are valid")
    }

    /// Generate one cloud scene: the raster plus a binary mask
    /// (`height × width`, 1.0 = cloud).
    pub fn segmentation_image(&self, sample_seed: u64) -> (Raster, Vec<f32>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(
            self.seed.wrapping_mul(0xD1B54A32D192ED03).wrapping_add(sample_seed),
        );
        let ground = SmoothField::generate(self.height, self.width, (self.height / 6).max(2), &mut rng);
        let clouds = SmoothField::generate(self.height, self.width, (self.height / 4).max(3), &mut rng);
        // Threshold varies per scene → cloud fraction varies.
        let threshold = 0.55 + 0.2 * (rng.gen::<f32>() - 0.5);
        let mask: Vec<f32> = clouds
            .as_slice()
            .iter()
            .map(|&v| if v > threshold { 1.0 } else { 0.0 })
            .collect();
        let mut data = Vec::with_capacity(self.bands * self.height * self.width);
        let mut band_rng = rand::rngs::StdRng::seed_from_u64(sample_seed ^ 0xABCD);
        for b in 0..self.bands {
            // Clouds are bright in every band; ground reflectance varies
            // per band.
            let ground_level = 0.15 + 0.3 * ((b as f32 + 1.0) / self.bands as f32);
            for (g, m) in ground.as_slice().iter().zip(&mask) {
                let base = ground_level + 0.2 * (g - 0.5);
                let v = if *m > 0.5 { 0.85 + 0.1 * (g - 0.5) } else { base };
                data.push((v + 0.03 * (band_rng.gen::<f32>() - 0.5)).clamp(0.0, 1.0));
            }
        }
        (
            Raster::new(data, self.bands, self.height, self.width)
                .expect("generator dimensions are valid"),
            mask,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen() -> RasterScene {
        RasterScene::new(4, 16, 16, 99)
    }

    #[test]
    fn deterministic_per_seeds() {
        let a = gen().classification_image(2, 5);
        let b = gen().classification_image(2, 5);
        assert_eq!(a, b);
        let c = gen().classification_image(2, 6);
        assert_ne!(a, c);
        let d = gen().classification_image(3, 5);
        assert_ne!(a, d);
    }

    #[test]
    fn signatures_distinguish_classes() {
        let g = gen();
        let s0 = g.class_signature(0);
        let s1 = g.class_signature(1);
        assert_eq!(s0.len(), 4);
        let dist: f32 = s0.iter().zip(&s1).map(|(a, b)| (a - b).powi(2)).sum();
        assert!(dist > 0.01, "class signatures too close: {dist}");
        assert!(s0.iter().all(|&v| (0.3..=0.7).contains(&v)));
        let narrow = RasterScene::new(4, 8, 8, 1).with_signature_range(0.2);
        assert!(narrow.class_signature(0).iter().all(|&v| (0.4..=0.6).contains(&v)));
    }

    #[test]
    fn image_band_means_track_signature() {
        let g = gen();
        let class = 1;
        let sig = g.class_signature(class);
        // Average over instances to wash out texture.
        let mut means = [0.0f32; 4];
        let n = 20;
        for s in 0..n {
            let img = g.classification_image(class, s);
            for (b, m) in means.iter_mut().enumerate() {
                let band = img.band(b).unwrap();
                *m += band.iter().sum::<f32>() / band.len() as f32;
            }
        }
        for (m, &s) in means.iter().zip(&sig) {
            let avg = m / n as f32;
            assert!(
                (avg - s).abs() < 0.1,
                "band mean {avg} should approximate signature {s}"
            );
        }
    }

    #[test]
    fn values_stay_in_unit_range() {
        let img = gen().classification_image(0, 0);
        assert!(img.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn segmentation_masks_are_binary_and_varied() {
        let g = RasterScene::new(4, 32, 32, 7);
        let (img, mask) = g.segmentation_image(0);
        assert_eq!(mask.len(), 32 * 32);
        assert!(mask.iter().all(|&v| v == 0.0 || v == 1.0));
        assert_eq!(img.bands(), 4);
        // Cloud fraction neither 0 nor 1 for typical scenes (averaged).
        let mut frac = 0.0;
        for s in 0..10 {
            let (_, m) = g.segmentation_image(s);
            frac += m.iter().sum::<f32>() / m.len() as f32;
        }
        frac /= 10.0;
        assert!((0.05..0.95).contains(&frac), "cloud fraction {frac}");
    }

    #[test]
    fn clouds_are_brighter_than_ground() {
        let g = RasterScene::new(4, 32, 32, 8);
        let (img, mask) = g.segmentation_image(3);
        let band = img.band(0).unwrap();
        let (mut cloud_sum, mut cloud_n, mut ground_sum, mut ground_n) = (0.0, 0, 0.0, 0);
        for (v, m) in band.iter().zip(&mask) {
            if *m > 0.5 {
                cloud_sum += v;
                cloud_n += 1;
            } else {
                ground_sum += v;
                ground_n += 1;
            }
        }
        if cloud_n > 0 && ground_n > 0 {
            assert!(cloud_sum / cloud_n as f32 > ground_sum / ground_n as f32 + 0.2);
        }
    }

    #[test]
    fn texture_scales_differ_between_some_classes() {
        let g = gen();
        let scales: Vec<usize> = (0..6).map(|c| g.class_texture_scale(c)).collect();
        assert!(scales.iter().any(|&s| s != scales[0]), "scales: {scales:?}");
        assert!(scales.iter().all(|&s| (2..=8).contains(&s)));
    }
}
