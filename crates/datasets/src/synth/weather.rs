//! Synthetic global weather fields (the WeatherBench substitute).
//!
//! The paper's weather datasets are hourly 32×64 global grids for 2018
//! (temperature, total precipitation, total cloud cover, geopotential,
//! incident solar radiation). This generator produces fields with the
//! dynamics that drive the paper's Table V result: **persistence-
//! dominated smooth evolution** (an advecting latent state), a latitude
//! climatology, and only weak diurnal periodicity — the regime where
//! ConvLSTM's recurrence wins over closeness/period/trend feature
//! stacking.

use rand::Rng;
use rand::SeedableRng;

use geotorch_tensor::Tensor;

use super::field::SmoothField;

/// Which physical variable to synthesise (value ranges and dynamics
/// differ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeatherVariable {
    /// 2-metre temperature (Kelvin-like scale, strong latitude gradient).
    Temperature,
    /// Total precipitation (non-negative, sparse, skewed).
    TotalPrecipitation,
    /// Total cloud cover (fraction in [0, 1]).
    TotalCloudCover,
    /// 500 hPa geopotential (smooth, large-scale).
    Geopotential,
    /// Incident solar radiation (strong diurnal cycle).
    SolarRadiation,
}

/// Generator for a `[T, H, W, 1]` weather tensor.
#[derive(Debug, Clone)]
pub struct WeatherField {
    variable: WeatherVariable,
    height: usize,
    width: usize,
    seed: u64,
}

impl WeatherField {
    /// WeatherBench-like configuration: 32 × 64 grid (5.625° × 2.8125°).
    pub fn new(variable: WeatherVariable, seed: u64) -> WeatherField {
        WeatherField {
            variable,
            height: 32,
            width: 64,
            seed,
        }
    }

    /// Custom grid size.
    pub fn with_grid(mut self, height: usize, width: usize) -> WeatherField {
        self.height = height;
        self.width = width;
        self
    }

    /// Generate `steps` hourly fields as a `[T, H, W, 1]` tensor.
    ///
    /// Dynamics: a smooth latent field advects eastward (wrapping) by one
    /// fraction of a pixel per hour while relaxing toward a climatology
    /// and accumulating small smooth perturbations. The next state is
    /// therefore highly predictable from the previous few states
    /// (persistence), far more than from the state 24 hours earlier.
    pub fn generate(&self, steps: usize) -> Tensor {
        let (h, w) = (self.height, self.width);
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        // Climatology: latitude gradient + fixed geography.
        let geography = SmoothField::generate(h, w, (h / 4).max(2), &mut rng);
        let mut state: Vec<f32> = (0..h * w)
            .map(|i| {
                let row = i / w;
                let lat = row as f32 / (h - 1).max(1) as f32; // 0 pole → 1 pole
                let equator = 1.0 - (lat - 0.5).abs() * 2.0; // 1 at equator
                0.6 * equator + 0.4 * geography.as_slice()[i]
            })
            .collect();
        let climatology = state.clone();

        let mut out = Vec::with_capacity(steps * h * w);
        let mut phase = 0.0f32;
        for t in 0..steps {
            // Advect east by a fraction of a pixel per hour.
            phase += 0.35;
            if phase >= 1.0 {
                phase -= 1.0;
                let mut next = vec![0.0f32; h * w];
                for r in 0..h {
                    for c in 0..w {
                        next[r * w + (c + 1) % w] = state[r * w + c];
                    }
                }
                state = next;
            }
            // Relax toward climatology + smooth perturbation.
            if t % 6 == 0 {
                let perturb = SmoothField::generate(h, w, (h / 3).max(2), &mut rng);
                for (s, (&c, &p)) in state
                    .iter_mut()
                    .zip(climatology.iter().zip(perturb.as_slice()))
                {
                    *s = 0.97 * *s + 0.02 * c + 0.05 * (p - 0.5);
                }
            }
            let hour = (t % 24) as f32;
            let diurnal = ((hour - 14.0) / 24.0 * std::f32::consts::TAU).cos();
            for (i, &s) in state.iter().enumerate() {
                out.push(self.observe(s, diurnal, i / w, &mut rng));
            }
        }
        Tensor::from_vec(out, &[steps, h, w, 1])
    }

    /// Map the latent state to the observed variable.
    fn observe<R: Rng>(&self, latent: f32, diurnal: f32, row: usize, rng: &mut R) -> f32 {
        let noise = (rng.gen::<f32>() - 0.5) * 0.01;
        match self.variable {
            WeatherVariable::Temperature => {
                // Latent in ~[0,1] → a temperature-like scale with a weak
                // diurnal swing.
                250.0 + 40.0 * latent + 2.0 * diurnal + noise * 40.0
            }
            WeatherVariable::TotalPrecipitation => {
                // Sparse: rain only where the latent state is high.
                ((latent - 0.75).max(0.0) * 0.004 + noise.abs() * 0.0002).max(0.0)
            }
            WeatherVariable::TotalCloudCover => (latent * 1.4 - 0.2 + noise).clamp(0.0, 1.0),
            WeatherVariable::Geopotential => 48_000.0 + 6_000.0 * latent + noise * 1_000.0,
            WeatherVariable::SolarRadiation => {
                // Dominated by the diurnal cycle; clouds (latent) attenuate.
                let _ = row;
                // `diurnal` peaks at hour 14 (cos of zero phase).
                (800.0 * diurnal.max(0.0) * (1.0 - 0.6 * latent) + noise.abs() * 10.0)
                    .max(0.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let t = WeatherField::new(WeatherVariable::Temperature, 5).generate(48);
        assert_eq!(t.shape(), &[48, 32, 64, 1]);
        let t2 = WeatherField::new(WeatherVariable::Temperature, 5).generate(48);
        assert_eq!(t, t2);
    }

    #[test]
    fn temperature_has_latitude_gradient() {
        let t = WeatherField::new(WeatherVariable::Temperature, 1).generate(4);
        // Equator (middle rows) warmer than poles on average.
        let frame = t.index_axis(0, 0);
        let pole = frame.narrow(0, 0, 4).mean();
        let equator = frame.narrow(0, 14, 18).mean();
        assert!(equator > pole + 5.0, "equator {equator} vs pole {pole}");
    }

    #[test]
    fn persistence_beats_daily_lag() {
        // |x_t - x_{t-1}| must be much smaller than |x_t - x_{t-24}|…
        // actually for persistence-dominated data with drift, 1-step diff
        // should at least clearly beat a 24-step diff.
        let t = WeatherField::new(WeatherVariable::Temperature, 3).generate(72);
        let diff = |a: usize, b: usize| {
            t.index_axis(0, a).sub(&t.index_axis(0, b)).abs().mean()
        };
        let one_step: f32 = (25..72).map(|i| diff(i, i - 1)).sum::<f32>() / 47.0;
        let day_lag: f32 = (25..72).map(|i| diff(i, i - 24)).sum::<f32>() / 47.0;
        assert!(
            one_step * 1.5 < day_lag,
            "one-step {one_step} should beat day-lag {day_lag}"
        );
    }

    #[test]
    fn precipitation_is_sparse_and_nonnegative() {
        let t = WeatherField::new(WeatherVariable::TotalPrecipitation, 2).generate(24);
        assert!(t.min() >= 0.0);
        let zeros = t.as_slice().iter().filter(|&&v| v < 1e-5).count();
        assert!(
            zeros as f32 / t.len() as f32 > 0.3,
            "precipitation should be mostly dry"
        );
    }

    #[test]
    fn cloud_cover_in_unit_interval() {
        let t = WeatherField::new(WeatherVariable::TotalCloudCover, 4).generate(24);
        assert!(t.min() >= 0.0 && t.max() <= 1.0);
    }

    #[test]
    fn solar_radiation_has_diurnal_cycle() {
        let t = WeatherField::new(WeatherVariable::SolarRadiation, 6).generate(48);
        // Mean radiation at local "hour 14" frames should exceed "hour 2".
        let day: f32 = t.index_axis(0, 14).mean();
        let night: f32 = t.index_axis(0, 2).mean();
        assert!(day > night, "day {day} vs night {night}");
    }

    #[test]
    fn custom_grid_size() {
        let t = WeatherField::new(WeatherVariable::Geopotential, 7)
            .with_grid(8, 16)
            .generate(5);
        assert_eq!(t.shape(), &[5, 8, 16, 1]);
    }
}
