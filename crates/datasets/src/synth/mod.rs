//! Seeded synthetic data generators.

pub mod field;
pub mod scene;
pub mod trips;
pub mod weather;

pub use field::SmoothField;
pub use scene::{RasterScene, SceneKind};
pub use trips::{TripGenerator, TripRecord};
pub use weather::{WeatherField, WeatherVariable};
