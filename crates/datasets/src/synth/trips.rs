//! Synthetic taxi-trip generator (the NYC TLC yellow-trip substitute).
//!
//! Figure 8 and the YellowTrip-NYC dataset of the paper are built from
//! NYC taxi trip records. This generator produces trips with the same
//! statistical features the preprocessing pipeline and the models care
//! about: a hotspot-mixture spatial distribution (midtown ≫ suburbs),
//! diurnal demand with morning/evening peaks, and a weekend dampening
//! factor. Fully deterministic per seed.

use rand::distributions::Distribution;
use rand::Rng;
use rand::SeedableRng;

/// One generated trip event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TripRecord {
    /// Pickup latitude.
    pub pickup_lat: f64,
    /// Pickup longitude.
    pub pickup_lon: f64,
    /// Dropoff latitude.
    pub dropoff_lat: f64,
    /// Dropoff longitude.
    pub dropoff_lon: f64,
    /// Pickup timestamp (epoch seconds).
    pub timestamp: i64,
}

/// Hotspot-mixture trip generator over a rectangular city extent.
#[derive(Debug, Clone)]
pub struct TripGenerator {
    seed: u64,
    /// City extent: (min_lon, min_lat, max_lon, max_lat).
    extent: (f64, f64, f64, f64),
    hotspots: Vec<(f64, f64, f64, f64)>, // (lon, lat, sigma, weight)
    /// Simulated span in seconds.
    duration_sec: i64,
}

impl TripGenerator {
    /// A Manhattan-like configuration: extent roughly matching the NYC
    /// yellow-trip bounding box, five hotspots of decreasing weight.
    pub fn nyc_like(seed: u64) -> TripGenerator {
        TripGenerator {
            seed,
            extent: (-74.05, 40.60, -73.75, 40.90),
            hotspots: vec![
                (-73.985, 40.758, 0.012, 0.40), // midtown
                (-74.007, 40.713, 0.010, 0.25), // downtown
                (-73.968, 40.785, 0.012, 0.15), // upper east
                (-73.990, 40.735, 0.010, 0.12), // village
                (-73.870, 40.773, 0.006, 0.08), // airport
            ],
            duration_sec: 92 * 24 * 3600, // ~3 months, like YellowTrip-NYC
        }
    }

    /// Override the simulated time span.
    pub fn with_duration_days(mut self, days: i64) -> TripGenerator {
        self.duration_sec = days * 24 * 3600;
        self
    }

    /// City extent as (min_lon, min_lat, max_lon, max_lat).
    pub fn extent(&self) -> (f64, f64, f64, f64) {
        self.extent
    }

    /// Relative demand at a time-of-week, combining a diurnal double-peak
    /// profile with a weekend dampening (the temporal signal grid models
    /// learn). Ranges roughly over [0.1, 1].
    pub fn demand_factor(seconds_into_week: i64) -> f64 {
        let day = (seconds_into_week / 86_400) % 7;
        let hour = (seconds_into_week % 86_400) as f64 / 3600.0;
        // Two peaks: 8-9am and 6-7pm.
        let morning = (-((hour - 8.5) / 2.5).powi(2)).exp();
        let evening = (-((hour - 18.5) / 3.0).powi(2)).exp();
        let base = 0.15 + 0.85 * (morning + evening).min(1.0);
        let weekend = if day >= 5 { 0.6 } else { 1.0 };
        base * weekend
    }

    /// Generate `n` trips, deterministic in `(seed, n)`. Trips come out
    /// ordered by timestamp.
    pub fn generate(&self, n: usize) -> Vec<TripRecord> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let normal_cache: Vec<(f64, f64, f64, f64)> = self.hotspots.clone();
        let total_weight: f64 = normal_cache.iter().map(|h| h.3).sum();
        let mut records = Vec::with_capacity(n);
        for i in 0..n {
            // Spread pickups across the duration, thinning by demand via
            // rejection-free time warping: sample a uniform base time and
            // keep; intensity shows up through resampling the slot.
            let mut ts = (i as i64 * self.duration_sec) / n.max(1) as i64;
            // Jitter within the local slot, weighted toward high demand.
            let slot = (self.duration_sec / n.max(1) as i64).max(1);
            for _ in 0..3 {
                let candidate = ts + rng.gen_range(0..=slot.max(1));
                let week_sec = candidate % (7 * 86_400);
                if rng.gen::<f64>() < Self::demand_factor(week_sec) {
                    ts = candidate;
                    break;
                }
            }
            let (pickup_lon, pickup_lat) = self.sample_location(&mut rng, total_weight);
            let (dropoff_lon, dropoff_lat) = self.sample_location(&mut rng, total_weight);
            records.push(TripRecord {
                pickup_lat,
                pickup_lon,
                dropoff_lat,
                dropoff_lon,
                timestamp: ts,
            });
        }
        records
    }

    fn sample_location<R: Rng>(&self, rng: &mut R, total_weight: f64) -> (f64, f64) {
        // 85% hotspot-distributed, 15% uniform background.
        if rng.gen::<f64>() < 0.85 {
            let mut pick = rng.gen::<f64>() * total_weight;
            for &(lon, lat, sigma, weight) in &self.hotspots {
                pick -= weight;
                if pick <= 0.0 {
                    let normal = rand_distr_normal(sigma);
                    let dx = normal.sample(rng);
                    let dy = normal.sample(rng);
                    return (
                        (lon + dx).clamp(self.extent.0, self.extent.2),
                        (lat + dy).clamp(self.extent.1, self.extent.3),
                    );
                }
            }
        }
        (
            rng.gen_range(self.extent.0..self.extent.2),
            rng.gen_range(self.extent.1..self.extent.3),
        )
    }
}

/// Box-Muller normal sampler (avoids a rand_distr dependency).
fn rand_distr_normal(sigma: f64) -> BoxMuller {
    BoxMuller { sigma }
}

struct BoxMuller {
    sigma: f64,
}

impl Distribution<f64> for BoxMuller {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() * self.sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = TripGenerator::nyc_like(7).generate(100);
        let b = TripGenerator::nyc_like(7).generate(100);
        assert_eq!(a, b);
        let c = TripGenerator::nyc_like(8).generate(100);
        assert_ne!(a, c);
    }

    #[test]
    fn trips_within_extent_and_ordered() {
        let gen = TripGenerator::nyc_like(1);
        let (min_lon, min_lat, max_lon, max_lat) = gen.extent();
        let trips = gen.generate(1000);
        assert_eq!(trips.len(), 1000);
        for t in &trips {
            assert!((min_lon..=max_lon).contains(&t.pickup_lon));
            assert!((min_lat..=max_lat).contains(&t.pickup_lat));
            assert!((min_lon..=max_lon).contains(&t.dropoff_lon));
            assert!(t.timestamp >= 0);
        }
        // Mostly ordered by construction (base time is monotone).
        let monotone = trips.windows(2).filter(|w| w[0].timestamp <= w[1].timestamp).count();
        assert!(monotone as f64 / trips.len() as f64 > 0.95);
    }

    #[test]
    fn hotspots_concentrate_demand() {
        let gen = TripGenerator::nyc_like(2);
        let trips = gen.generate(5000);
        // Count pickups within 0.03 deg of midtown vs an equal-size box in
        // a quiet corner.
        let near = |lon: f64, lat: f64, t: &TripRecord| {
            (t.pickup_lon - lon).abs() < 0.03 && (t.pickup_lat - lat).abs() < 0.03
        };
        let midtown = trips.iter().filter(|t| near(-73.985, 40.758, t)).count();
        let corner = trips.iter().filter(|t| near(-74.04, 40.61, t)).count();
        assert!(
            midtown > corner * 5,
            "midtown {midtown} should dwarf corner {corner}"
        );
    }

    #[test]
    fn demand_profile_has_peaks_and_weekend_dip() {
        let rush = TripGenerator::demand_factor(8 * 3600 + 1800); // Mon 8:30
        let night = TripGenerator::demand_factor(3 * 3600); // Mon 3:00
        assert!(rush > night * 2.0, "rush {rush} vs night {night}");
        let sat_rush = TripGenerator::demand_factor(5 * 86_400 + 8 * 3600 + 1800);
        assert!(sat_rush < rush, "weekend should be damped");
    }
}
