//! Smooth random fields (bilinear value noise).
//!
//! The building block for every spatial generator: a deterministic,
//! seeded scalar field with controllable correlation length, used for
//! demand surfaces, weather states, land textures, and cloud masks.

use rand::Rng;

/// A smooth scalar field over a `height × width` lattice, built by
/// bilinearly interpolating a coarse grid of random control values.
#[derive(Debug, Clone)]
pub struct SmoothField {
    values: Vec<f32>,
    height: usize,
    width: usize,
}

impl SmoothField {
    /// Generate a field in `[0, 1]` whose features have a spatial scale
    /// of roughly `cell` pixels.
    pub fn generate<R: Rng>(height: usize, width: usize, cell: usize, rng: &mut R) -> SmoothField {
        assert!(height > 0 && width > 0, "field dims must be positive");
        let cell = cell.max(1);
        let ch = height.div_ceil(cell) + 1;
        let cw = width.div_ceil(cell) + 1;
        let control: Vec<f32> = (0..ch * cw).map(|_| rng.gen::<f32>()).collect();
        let mut values = vec![0.0f32; height * width];
        for r in 0..height {
            let fy = r as f32 / cell as f32;
            let (cy, ty) = (fy as usize, fy.fract());
            for c in 0..width {
                let fx = c as f32 / cell as f32;
                let (cx, tx) = (fx as usize, fx.fract());
                let idx = |y: usize, x: usize| control[y.min(ch - 1) * cw + x.min(cw - 1)];
                let top = idx(cy, cx) * (1.0 - tx) + idx(cy, cx + 1) * tx;
                let bottom = idx(cy + 1, cx) * (1.0 - tx) + idx(cy + 1, cx + 1) * tx;
                values[r * width + c] = top * (1.0 - ty) + bottom * ty;
            }
        }
        SmoothField {
            values,
            height,
            width,
        }
    }

    /// Field height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Field width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Value at `(row, col)`.
    pub fn at(&self, row: usize, col: usize) -> f32 {
        self.values[row * self.width + col]
    }

    /// The flat buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.values
    }

    /// Map every value through `f` in place, returning self for chaining.
    pub fn map(mut self, f: impl Fn(f32) -> f32) -> SmoothField {
        for v in &mut self.values {
            *v = f(*v);
        }
        self
    }

    /// Convex blend: `keep · a + (1 - keep) · b` (fields must match in
    /// shape).
    pub fn blend(a: &SmoothField, b: &SmoothField, keep: f32) -> SmoothField {
        assert_eq!(
            (a.height, a.width),
            (b.height, b.width),
            "blend of differently sized fields"
        );
        SmoothField {
            values: a
                .values
                .iter()
                .zip(&b.values)
                .map(|(&x, &y)| keep * x + (1.0 - keep) * y)
                .collect(),
            height: a.height,
            width: a.width,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SmoothField::generate(16, 16, 4, &mut rng(1));
        let b = SmoothField::generate(16, 16, 4, &mut rng(1));
        assert_eq!(a.as_slice(), b.as_slice());
        let c = SmoothField::generate(16, 16, 4, &mut rng(2));
        assert_ne!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn values_in_unit_interval() {
        let f = SmoothField::generate(20, 30, 5, &mut rng(3));
        assert!(f.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!((f.height(), f.width()), (20, 30));
    }

    #[test]
    fn field_is_smooth_relative_to_noise() {
        // Neighbouring pixels should differ far less than random pairs.
        let f = SmoothField::generate(32, 32, 8, &mut rng(4));
        let mut neighbour_diff = 0.0;
        let mut count = 0;
        for r in 0..32 {
            for c in 0..31 {
                neighbour_diff += (f.at(r, c) - f.at(r, c + 1)).abs();
                count += 1;
            }
        }
        neighbour_diff /= count as f32;
        assert!(
            neighbour_diff < 0.1,
            "neighbour diff {neighbour_diff} too large for cell=8"
        );
    }

    #[test]
    fn map_transforms_values() {
        let f = SmoothField::generate(4, 4, 2, &mut rng(5)).map(|v| v * 2.0 + 1.0);
        assert!(f.as_slice().iter().all(|&v| (1.0..=3.0).contains(&v)));
    }
}
