//! Raster imagery datasets (Table III of the paper) with optional
//! handcrafted-feature extraction (Listing 1's
//! `include_additional_features=True`).

use geotorch_raster::algebra::normalized_difference;
use geotorch_raster::glcm::{Glcm, GlcmDirection};
use geotorch_raster::transforms::RasterTransform;
use geotorch_raster::Raster;
use geotorch_tensor::Tensor;

use crate::synth::scene::RasterScene;

/// What the labels of a dataset mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskKind {
    Classification,
    Segmentation,
}

/// A dataset of raster images for classification or segmentation.
pub struct RasterDataset {
    name: String,
    images: Vec<Raster>,
    labels: Vec<usize>,
    masks: Vec<Vec<f32>>, // per-pixel labels for segmentation
    num_classes: usize,
    kind: TaskKind,
    include_additional_features: bool,
    transform: Option<Box<dyn RasterTransform>>,
    // Handcrafted features are deterministic per sample (images and the
    // transform chain are fixed), so they are extracted once and cached.
    feature_cache: std::cell::RefCell<std::collections::HashMap<usize, Vec<f32>>>,
    // Cumulative wall-clock seconds spent applying `transform` on access
    // (the on-the-fly cost Table VIII measures).
    transform_seconds: std::cell::Cell<f64>,
}

impl RasterDataset {
    // ----------------------------------------------------- constructors

    /// EuroSAT substitute: 64 × 64, 13 bands, 10 classes.
    pub fn eurosat(samples_per_class: usize, seed: u64) -> RasterDataset {
        Self::classification("EuroSAT", 13, 64, 64, 10, samples_per_class, seed)
    }

    /// SAT-4 substitute: 28 × 28, 4 bands, 4 classes.
    pub fn sat4(samples_per_class: usize, seed: u64) -> RasterDataset {
        Self::classification("SAT-4", 4, 28, 28, 4, samples_per_class, seed)
    }

    /// SAT-6 substitute: 28 × 28, 4 bands, 6 classes.
    pub fn sat6(samples_per_class: usize, seed: u64) -> RasterDataset {
        Self::classification("SAT-6", 4, 28, 28, 6, samples_per_class, seed)
    }

    /// SlumDetection substitute: 32 × 32, 4 bands, binary classification.
    pub fn slum_detection(samples_per_class: usize, seed: u64) -> RasterDataset {
        Self::classification("SlumDetection", 4, 32, 32, 2, samples_per_class, seed)
    }

    /// 38-Cloud substitute: 384 × 384 scenes are scaled to a configurable
    /// size (the paper's 384² is tiled from Landsat; the structure is
    /// preserved at smaller extents) with 4 bands and binary cloud masks.
    pub fn cloud38(samples: usize, scene_size: usize, seed: u64) -> RasterDataset {
        let generator = RasterScene::new(4, scene_size, scene_size, seed);
        let mut images = Vec::with_capacity(samples);
        let mut masks = Vec::with_capacity(samples);
        for i in 0..samples {
            let (raster, mask) = generator.segmentation_image(i as u64);
            images.push(raster);
            masks.push(mask);
        }
        RasterDataset {
            name: "38-Cloud".to_string(),
            labels: vec![0; images.len()],
            images,
            masks,
            num_classes: 2,
            kind: TaskKind::Segmentation,
            include_additional_features: false,
            transform: None,
            feature_cache: Default::default(),
            transform_seconds: std::cell::Cell::new(0.0),
        }
    }

    /// Generic classification dataset with custom geometry (used by the
    /// Figure-9 band/grid sweeps).
    pub fn classification(
        name: &str,
        bands: usize,
        height: usize,
        width: usize,
        classes: usize,
        samples_per_class: usize,
        seed: u64,
    ) -> RasterDataset {
        // More (and more diverse) classes crowd the spectral space: scale
        // the signature spread down with the class count so 10-class
        // EuroSAT is intrinsically harder than 4/6-class SAT (matching
        // the paper's accuracy ordering).
        let range = (0.4 * (4.0 / classes.max(1) as f32).sqrt()).clamp(0.2, 0.5);
        let generator = RasterScene::new(bands, height, width, seed).with_signature_range(range);
        let mut images = Vec::with_capacity(classes * samples_per_class);
        let mut labels = Vec::with_capacity(classes * samples_per_class);
        // Interleave classes so chronological splits stay balanced.
        for s in 0..samples_per_class {
            for class in 0..classes {
                images.push(generator.classification_image(class, s as u64));
                labels.push(class);
            }
        }
        RasterDataset {
            name: name.to_string(),
            images,
            labels,
            masks: Vec::new(),
            num_classes: classes,
            kind: TaskKind::Classification,
            include_additional_features: false,
            transform: None,
            feature_cache: Default::default(),
            transform_seconds: std::cell::Cell::new(0.0),
        }
    }

    /// Classification dataset from pre-built images (e.g. the output of
    /// the offline preprocessing pipeline).
    ///
    /// # Panics
    /// If images and labels disagree in length, or any label is out of
    /// range.
    pub fn from_images(
        name: &str,
        images: Vec<Raster>,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> RasterDataset {
        assert_eq!(images.len(), labels.len(), "one label per image");
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );
        RasterDataset {
            name: name.to_string(),
            images,
            labels,
            masks: Vec::new(),
            num_classes,
            kind: TaskKind::Classification,
            include_additional_features: false,
            transform: None,
            feature_cache: Default::default(),
            transform_seconds: std::cell::Cell::new(0.0),
        }
    }

    // ----------------------------------------------------- configuration

    /// Enable handcrafted spectral + GLCM feature extraction (Listing 1).
    pub fn with_additional_features(mut self) -> RasterDataset {
        self.include_additional_features = true;
        self
    }

    /// Attach a transform applied to every image on access (Listing 7).
    pub fn with_transform(mut self, t: impl RasterTransform + 'static) -> RasterDataset {
        self.transform = Some(Box::new(t));
        self
    }

    // ----------------------------------------------------------- access

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sample count.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Bands after the configured transform (probes the first image).
    pub fn effective_bands(&self) -> usize {
        if self.images.is_empty() {
            return 0;
        }
        self.transformed(0).bands()
    }

    /// `(height, width)` of the images.
    pub fn image_shape(&self) -> (usize, usize) {
        if self.images.is_empty() {
            (0, 0)
        } else {
            (self.images[0].height(), self.images[0].width())
        }
    }

    /// Number of handcrafted features per sample (0 when disabled).
    pub fn feature_len(&self) -> usize {
        if !self.include_additional_features || self.images.is_empty() {
            return 0;
        }
        extract_features(&self.transformed(0)).len()
    }

    /// The class label of sample `i` (0 for segmentation datasets).
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// Fetch one image (after transforms) as a `[C, H, W]` tensor, plus
    /// its handcrafted features when enabled.
    pub fn get(&self, i: usize) -> (Tensor, usize, Option<Vec<f32>>) {
        let raster = self.transformed(i);
        let features = self.include_additional_features.then(|| {
            self.feature_cache
                .borrow_mut()
                .entry(i)
                .or_insert_with(|| extract_features(&raster))
                .clone()
        });
        (raster.to_tensor(), self.labels[i], features)
    }

    /// The segmentation mask of sample `i` as `[1, H, W]`.
    ///
    /// # Panics
    /// If this is not a segmentation dataset.
    pub fn mask(&self, i: usize) -> Tensor {
        assert_eq!(
            self.kind,
            TaskKind::Segmentation,
            "mask() on a classification dataset"
        );
        let (h, w) = self.image_shape();
        Tensor::from_vec(self.masks[i].clone(), &[1, h, w])
    }

    /// Assemble a batch.
    pub fn batch(&self, indices: &[usize]) -> RasterBatchData {
        assert!(!indices.is_empty(), "empty batch");
        let mut xs = Vec::with_capacity(indices.len());
        let mut labels = Vec::with_capacity(indices.len());
        let mut features: Vec<Tensor> = Vec::new();
        let mut masks: Vec<Tensor> = Vec::new();
        for &i in indices {
            let (x, label, f) = self.get(i);
            xs.push(x);
            labels.push(label);
            if let Some(f) = f {
                let n = f.len();
                features.push(Tensor::from_vec(f, &[n]));
            }
            if self.kind == TaskKind::Segmentation {
                masks.push(self.mask(i));
            }
        }
        let x_refs: Vec<&Tensor> = xs.iter().collect();
        RasterBatchData {
            x: Tensor::stack(&x_refs),
            labels,
            features: (!features.is_empty()).then(|| {
                let refs: Vec<&Tensor> = features.iter().collect();
                Tensor::stack(&refs)
            }),
            masks: (!masks.is_empty()).then(|| {
                let refs: Vec<&Tensor> = masks.iter().collect();
                Tensor::stack(&refs)
            }),
        }
    }

    /// Cumulative seconds spent in on-access transforms since
    /// construction (0 when no transform is attached).
    pub fn transform_seconds(&self) -> f64 {
        self.transform_seconds.get()
    }

    fn transformed(&self, i: usize) -> Raster {
        match &self.transform {
            Some(t) => {
                let start = std::time::Instant::now();
                let out = t
                    .apply(&self.images[i])
                    .expect("dataset transform failed on a generated image");
                self.transform_seconds
                    .set(self.transform_seconds.get() + start.elapsed().as_secs_f64());
                out
            }
            None => self.images[i].clone(),
        }
    }
}

/// A batched raster sample set.
pub struct RasterBatchData {
    /// Images `[B, C, H, W]`.
    pub x: Tensor,
    /// Class labels (all zero for segmentation).
    pub labels: Vec<usize>,
    /// Handcrafted features `[B, F]` when enabled.
    pub features: Option<Tensor>,
    /// Segmentation masks `[B, 1, H, W]` for segmentation datasets.
    pub masks: Option<Tensor>,
}

/// Handcrafted feature vector: spectral normalized-difference means for
/// band pairs `(0, k)` (up to 7) followed by the six GLCM texture
/// features of band 0 — the DeepSAT V2 recipe from §V-E.
pub fn extract_features(raster: &Raster) -> Vec<f32> {
    const LEVELS: usize = 16;
    let mut features = Vec::new();
    let pairs = (raster.bands() - 1).min(7);
    for k in 1..=pairs {
        let nd = normalized_difference(raster, 0, k).expect("bands checked");
        features.push(nd.iter().sum::<f32>() / nd.len() as f32);
    }
    let band0 = raster.band(0).expect("band 0 exists");
    let glcm = Glcm::compute(
        band0,
        raster.height(),
        raster.width(),
        LEVELS,
        GlcmDirection::East,
    )
    .expect("image dims are valid");
    // Normalise the unbounded texture features into ~[0, 1] so the
    // fusion branch of DeepSAT V2 sees comparable scales: contrast is
    // bounded by (L-1)^2, dissimilarity by L-1; the rest are already in
    // [-1, 1].
    let max_diff = (LEVELS - 1) as f64;
    let [contrast, dissimilarity, correlation, homogeneity, momentum, energy] =
        glcm.feature_vector();
    features.extend([
        (contrast / (max_diff * max_diff)) as f32,
        (dissimilarity / max_diff) as f32,
        correlation as f32,
        homogeneity as f32,
        momentum as f32,
        energy as f32,
    ]);
    features
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotorch_raster::transforms::AppendNormalizedDifferenceIndex;

    #[test]
    fn table_iii_shapes() {
        let euro = RasterDataset::eurosat(2, 0);
        assert_eq!(euro.len(), 20);
        assert_eq!(euro.num_classes(), 10);
        assert_eq!(euro.image_shape(), (64, 64));
        assert_eq!(euro.effective_bands(), 13);

        let sat6 = RasterDataset::sat6(3, 0);
        assert_eq!(sat6.len(), 18);
        assert_eq!(sat6.image_shape(), (28, 28));
        assert_eq!(sat6.effective_bands(), 4);

        let slum = RasterDataset::slum_detection(5, 0);
        assert_eq!(slum.num_classes(), 2);
        assert_eq!(slum.image_shape(), (32, 32));

        assert_eq!(RasterDataset::sat4(1, 0).num_classes(), 4);
    }

    #[test]
    fn labels_are_balanced_and_interleaved() {
        let ds = RasterDataset::sat6(4, 1);
        let mut counts = [0usize; 6];
        for i in 0..ds.len() {
            counts[ds.label(i)] += 1;
        }
        assert!(counts.iter().all(|&c| c == 4));
        // Interleaved: first 6 samples cover all classes.
        let first: std::collections::HashSet<usize> = (0..6).map(|i| ds.label(i)).collect();
        assert_eq!(first.len(), 6);
    }

    #[test]
    fn get_returns_tensor_and_optional_features() {
        let ds = RasterDataset::sat6(1, 2);
        let (x, label, features) = ds.get(0);
        assert_eq!(x.shape(), &[4, 28, 28]);
        assert!(label < 6);
        assert!(features.is_none());

        let ds = RasterDataset::sat6(1, 2).with_additional_features();
        let (_, _, features) = ds.get(0);
        let f = features.unwrap();
        // 3 spectral pairs (bands-1 = 3 < 7) + 6 GLCM.
        assert_eq!(f.len(), 9);
        assert_eq!(ds.feature_len(), 9);
    }

    #[test]
    fn eurosat_features_have_seven_spectral() {
        let ds = RasterDataset::eurosat(1, 3).with_additional_features();
        assert_eq!(ds.feature_len(), 7 + 6);
    }

    #[test]
    fn transform_applies_on_access() {
        let ds = RasterDataset::sat6(1, 4).with_transform(AppendNormalizedDifferenceIndex::new(0, 1));
        assert_eq!(ds.effective_bands(), 5);
        let (x, _, _) = ds.get(0);
        assert_eq!(x.shape()[0], 5);
    }

    #[test]
    fn batching_shapes() {
        let ds = RasterDataset::sat6(2, 5).with_additional_features();
        let batch = ds.batch(&[0, 3, 7]);
        assert_eq!(batch.x.shape(), &[3, 4, 28, 28]);
        assert_eq!(batch.labels.len(), 3);
        assert_eq!(batch.features.as_ref().unwrap().shape(), &[3, 9]);
        assert!(batch.masks.is_none());
    }

    #[test]
    fn segmentation_dataset_masks() {
        let ds = RasterDataset::cloud38(4, 32, 6);
        assert_eq!(ds.len(), 4);
        let m = ds.mask(0);
        assert_eq!(m.shape(), &[1, 32, 32]);
        let batch = ds.batch(&[0, 1]);
        assert_eq!(batch.masks.as_ref().unwrap().shape(), &[2, 1, 32, 32]);
        assert_eq!(batch.x.shape(), &[2, 4, 32, 32]);
    }

    #[test]
    #[should_panic(expected = "mask() on a classification dataset")]
    fn mask_on_classification_panics() {
        RasterDataset::sat6(1, 0).mask(0);
    }

    #[test]
    fn features_distinguish_classes() {
        // Average handcrafted features should differ between classes —
        // the property DeepSatV2 relies on.
        let ds = RasterDataset::sat6(6, 7).with_additional_features();
        let mut per_class: Vec<Vec<f32>> = vec![vec![]; 6];
        for i in 0..ds.len() {
            let (_, label, f) = ds.get(i);
            let f = f.unwrap();
            if per_class[label].is_empty() {
                per_class[label] = f;
            } else {
                for (acc, v) in per_class[label].iter_mut().zip(f) {
                    *acc += v;
                }
            }
        }
        let a = &per_class[0];
        let b = &per_class[1];
        let dist: f32 = a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum();
        assert!(dist > 1e-4, "class features too similar: {dist}");
    }
}
