//! Train/validation/test splitting and batch-index iteration.
//!
//! The paper's protocol (§V-C): the first 80% of time steps train the
//! model, the next 10% validate, the last 10% test. Spatiotemporal
//! datasets split chronologically; raster datasets split by shuffled
//! sample index.

use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Split `n` sample indices chronologically into train/val/test using the
/// paper's 80/10/10 protocol.
pub fn chronological_split(n: usize) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    split_at_fractions(&(0..n).collect::<Vec<_>>(), 0.8, 0.1)
}

/// Split `n` indices into train/val/test after a seeded shuffle
/// (classification datasets).
pub fn shuffled_split(n: usize, seed: u64) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let mut indices: Vec<usize> = (0..n).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    split_at_fractions(&indices, 0.8, 0.1)
}

fn split_at_fractions(
    indices: &[usize],
    train_frac: f64,
    val_frac: f64,
) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let n = indices.len();
    let train_end = ((n as f64) * train_frac).round() as usize;
    let val_end = train_end + ((n as f64) * val_frac).round() as usize;
    let val_end = val_end.min(n);
    (
        indices[..train_end.min(n)].to_vec(),
        indices[train_end.min(n)..val_end].to_vec(),
        indices[val_end..].to_vec(),
    )
}

/// Iterator over mini-batch index slices, with optional per-epoch
/// shuffling.
pub struct BatchIndices {
    indices: Vec<usize>,
    batch_size: usize,
    cursor: usize,
    drop_last: bool,
}

impl BatchIndices {
    /// Iterate `indices` in order, `batch_size` at a time. The final
    /// partial batch is kept.
    pub fn new(indices: &[usize], batch_size: usize) -> BatchIndices {
        assert!(batch_size > 0, "batch_size must be positive");
        BatchIndices {
            indices: indices.to_vec(),
            batch_size,
            cursor: 0,
            drop_last: false,
        }
    }

    /// Shuffle the indices with a seed before batching (one epoch's
    /// ordering).
    pub fn shuffled(indices: &[usize], batch_size: usize, seed: u64) -> BatchIndices {
        let mut owned = indices.to_vec();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        owned.shuffle(&mut rng);
        BatchIndices::new(&owned, batch_size)
    }

    /// Drop the final batch when it is smaller than `batch_size`.
    pub fn drop_last(mut self) -> BatchIndices {
        self.drop_last = true;
        self
    }

    /// Number of batches this iterator will yield.
    pub fn num_batches(&self) -> usize {
        if self.drop_last {
            self.indices.len() / self.batch_size
        } else {
            self.indices.len().div_ceil(self.batch_size)
        }
    }
}

impl Iterator for BatchIndices {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.cursor >= self.indices.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.indices.len());
        if self.drop_last && end - self.cursor < self.batch_size {
            return None;
        }
        let batch = self.indices[self.cursor..end].to_vec();
        self.cursor = end;
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chronological_split_is_ordered_80_10_10() {
        let (train, val, test) = chronological_split(100);
        assert_eq!(train.len(), 80);
        assert_eq!(val.len(), 10);
        assert_eq!(test.len(), 10);
        assert_eq!(train[0], 0);
        assert_eq!(val[0], 80);
        assert_eq!(test[9], 99);
    }

    #[test]
    fn split_covers_everything_without_overlap() {
        for n in [1usize, 7, 10, 99, 1000] {
            let (train, val, test) = chronological_split(n);
            let mut all: Vec<usize> = train.iter().chain(&val).chain(&test).copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..n).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn shuffled_split_is_deterministic_and_complete() {
        let (t1, v1, s1) = shuffled_split(50, 9);
        let (t2, _, _) = shuffled_split(50, 9);
        assert_eq!(t1, t2);
        let mut all: Vec<usize> = t1.iter().chain(&v1).chain(&s1).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
        // Shuffled: train should not simply be 0..40.
        assert_ne!(t1, (0..t1.len()).collect::<Vec<_>>());
    }

    #[test]
    fn batch_iteration_covers_all_indices() {
        let indices: Vec<usize> = (0..10).collect();
        let batches: Vec<Vec<usize>> = BatchIndices::new(&indices, 3).collect();
        assert_eq!(batches.len(), 4);
        assert_eq!(batches[3], vec![9]);
        let flat: Vec<usize> = batches.into_iter().flatten().collect();
        assert_eq!(flat, indices);
    }

    #[test]
    fn drop_last_discards_partial() {
        let indices: Vec<usize> = (0..10).collect();
        let it = BatchIndices::new(&indices, 3).drop_last();
        assert_eq!(it.num_batches(), 3);
        let batches: Vec<Vec<usize>> = it.collect();
        assert_eq!(batches.len(), 3);
        assert!(batches.iter().all(|b| b.len() == 3));
    }

    #[test]
    fn shuffled_batches_permute_indices() {
        let indices: Vec<usize> = (0..100).collect();
        let flat: Vec<usize> = BatchIndices::shuffled(&indices, 10, 3).flatten().collect();
        assert_ne!(flat, indices);
        let mut sorted = flat.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, indices);
    }

    #[test]
    fn num_batches_matches_iteration() {
        let indices: Vec<usize> = (0..11).collect();
        let it = BatchIndices::new(&indices, 4);
        assert_eq!(it.num_batches(), 3);
        assert_eq!(it.count(), 3);
    }
}
