//! Property tests for the windowed samplers, over random roi extents,
//! tile sizes, and strides:
//!
//! 1. `GridSampler` covers every pixel of the roi — no gaps, ever;
//! 2. every window lies entirely inside the roi (edge windows are
//!    clamped, never zero-padded past the extent);
//! 3. iteration order is deterministic row-major and matches `window(i)`;
//! 4. `stride == tile` on a divisible extent is an exact partition:
//!    each pixel is covered exactly once;
//! 5. `RandomSampler` is bounds-checked and seed-deterministic.

use geotorch_datasets::{GridSampler, RandomSampler};
use geotorch_raster::Window;
use proptest::prelude::*;

/// A roi plus a tile/stride pair that `GridSampler::new` accepts.
fn grid_params() -> impl Strategy<Value = (Window, (usize, usize), (usize, usize))> {
    // Random anchored roi so the tests also exercise non-zero offsets.
    (1usize..48, 1usize..48, 0usize..16, 0usize..16).prop_flat_map(|(h, w, row, col)| {
        (1..=h, 1..=w).prop_flat_map(move |(th, tw)| {
            (1..=th, 1..=tw).prop_map(move |(sh, sw)| {
                (Window::new(row, col, h, w), (th, tw), (sh, sw))
            })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn grid_sampler_covers_every_pixel_within_bounds(
        (roi, tile, stride) in grid_params()
    ) {
        let sampler = GridSampler::new(roi, tile, stride).unwrap();
        let mut coverage = vec![0u32; roi.height * roi.width];
        for window in sampler.windows() {
            // Clamped, not padded: the window never leaves the roi.
            prop_assert!(window.row >= roi.row && window.col >= roi.col);
            prop_assert!(window.end_row() <= roi.end_row());
            prop_assert!(window.end_col() <= roi.end_col());
            prop_assert_eq!(window.height, tile.0);
            prop_assert_eq!(window.width, tile.1);
            for r in window.row..window.end_row() {
                for c in window.col..window.end_col() {
                    coverage[(r - roi.row) * roi.width + (c - roi.col)] += 1;
                }
            }
        }
        let gaps = coverage.iter().filter(|&&n| n == 0).count();
        prop_assert_eq!(gaps, 0, "uncovered pixels in roi {:?}", roi);
    }

    #[test]
    fn grid_sampler_order_is_row_major_and_indexable(
        (roi, tile, stride) in grid_params()
    ) {
        let sampler = GridSampler::new(roi, tile, stride).unwrap();
        let collected: Vec<Window> = sampler.windows().collect();
        prop_assert_eq!(collected.len(), sampler.len());
        // `window(i)` agrees with iteration order.
        for (i, window) in collected.iter().enumerate() {
            prop_assert_eq!(sampler.window(i), Some(*window));
        }
        // Row-major: sort key (row, col) is strictly increasing.
        for pair in collected.windows(2) {
            prop_assert!(
                (pair[0].row, pair[0].col) < (pair[1].row, pair[1].col),
                "windows out of row-major order: {:?} then {:?}", pair[0], pair[1]
            );
        }
        // Determinism: a second iteration yields the same sequence.
        let again: Vec<Window> = sampler.windows().collect();
        prop_assert_eq!(collected, again);
    }

    #[test]
    fn stride_equal_tile_partitions_divisible_extents(
        tiles_down in 1usize..6,
        tiles_across in 1usize..6,
        th in 1usize..12,
        tw in 1usize..12,
    ) {
        let roi = Window::new(0, 0, tiles_down * th, tiles_across * tw);
        let sampler = GridSampler::new(roi, (th, tw), (th, tw)).unwrap();
        prop_assert_eq!(sampler.grid_shape(), (tiles_down, tiles_across));
        let mut coverage = vec![0u32; roi.height * roi.width];
        for window in sampler.windows() {
            for r in window.row..window.end_row() {
                for c in window.col..window.end_col() {
                    coverage[r * roi.width + c] += 1;
                }
            }
        }
        // Exact non-overlapping tiling: every pixel covered exactly once.
        prop_assert!(coverage.iter().all(|&n| n == 1));
    }

    #[test]
    fn random_sampler_stays_in_bounds_and_replays_from_seed(
        (roi, tile, _) in grid_params(),
        length in 0usize..32,
        seed in any::<u64>(),
    ) {
        let windows: Vec<Window> =
            RandomSampler::new(roi, tile, length, seed).unwrap().collect();
        prop_assert_eq!(windows.len(), length);
        for window in &windows {
            prop_assert_eq!((window.height, window.width), tile);
            prop_assert!(window.row >= roi.row && window.col >= roi.col);
            prop_assert!(window.end_row() <= roi.end_row());
            prop_assert!(window.end_col() <= roi.end_col());
        }
        let replay: Vec<Window> =
            RandomSampler::new(roi, tile, length, seed).unwrap().collect();
        prop_assert_eq!(windows, replay);
    }
}
