//! Spatiotemporal tensor preparation (`geotorchai.preprocessing.grid.STManager`).
//!
//! This is the pipeline of the paper's Listing 8 and Figure 5: raw event
//! rows with latitude/longitude and timestamps are (1) turned into point
//! geometries, (2) assigned to uniform grid cells via the spatial fast
//! path, (3) sliced into fixed-length time intervals, (4) aggregated per
//! `(time_step, cell)` with the partition-parallel group-by, and (5)
//! materialised as a dense `[T, H, W, C]` tensor.

use std::collections::HashMap;

use geotorch_dataframe::spatial::{add_point_column, UniformGrid};
use geotorch_dataframe::{Column, DataFrame, Envelope};
use geotorch_tensor::Tensor;

use crate::error::{PreprocessError, PreprocessResult};
use crate::space_partition::SpacePartition;

/// Configuration for spatiotemporal grid aggregation.
#[derive(Debug, Clone)]
pub struct StGridConfig {
    /// Grid columns (the paper's `partitions_x`).
    pub partitions_x: usize,
    /// Grid rows (the paper's `partitions_y`).
    pub partitions_y: usize,
    /// Time slot length in seconds (the paper's `step_duration_sec`).
    pub step_duration_sec: i64,
    /// Spatial extent of the grid; `None` derives the tight extent of the
    /// data.
    pub extent: Option<Envelope>,
}

impl StGridConfig {
    /// Config with a derived extent.
    pub fn new(partitions_x: usize, partitions_y: usize, step_duration_sec: i64) -> Self {
        StGridConfig {
            partitions_x,
            partitions_y,
            step_duration_sec,
            extent: None,
        }
    }
}

/// The aggregated spatiotemporal grid: a sparse `(time_step, cell_id,
/// count)` DataFrame plus the metadata needed to densify it.
#[derive(Debug, Clone)]
pub struct StGridFrame {
    /// Sparse aggregation: columns `time_step (i64)`, `cell_id (i64)`,
    /// `count (i64)`.
    pub frame: DataFrame,
    /// The spatial grid.
    pub grid: UniformGrid,
    /// Number of time steps (`T`).
    pub num_steps: usize,
    /// Epoch seconds of the first time slot's start.
    pub t0: i64,
    /// Slot length in seconds.
    pub step: i64,
}

impl StGridFrame {
    /// Densify into a `[T, H, W, 1]` tensor of event counts — the paper's
    /// `get_st_grid_array`. `H` indexes grid rows (y), `W` columns (x).
    pub fn to_tensor(&self) -> PreprocessResult<Tensor> {
        let (h, w) = (self.grid.ny(), self.grid.nx());
        let mut data = vec![0.0f32; self.num_steps * h * w];
        let steps = self.frame.column("time_step")?;
        let cells = self.frame.column("cell_id")?;
        let counts = self.frame.column("count")?;
        let steps = steps.i64s()?;
        let cells = cells.i64s()?;
        let counts = counts.i64s()?;
        for ((&t, &cell), &count) in steps.iter().zip(cells).zip(counts) {
            let (t, cell) = (t as usize, cell as usize);
            if t >= self.num_steps || cell >= h * w {
                return Err(PreprocessError::InvalidInput(format!(
                    "aggregated row out of range: t={t}, cell={cell}"
                )));
            }
            data[t * h * w + cell] = count as f32;
        }
        Ok(Tensor::from_vec(data, &[self.num_steps, h, w, 1]))
    }

    /// Total events across all cells and steps.
    pub fn total_events(&self) -> PreprocessResult<i64> {
        Ok(self.frame.column("count")?.i64s()?.iter().sum())
    }
}

/// Entry points for spatiotemporal preprocessing.
pub struct StManager;

impl StManager {
    /// Append a point-geometry column built from latitude/longitude
    /// columns (Listing 8, line 3).
    pub fn add_spatial_points(
        df: &DataFrame,
        lat_column: &str,
        lon_column: &str,
        alias: &str,
    ) -> PreprocessResult<DataFrame> {
        Ok(add_point_column(df, lat_column, lon_column, alias)?)
    }

    /// Convert a DataFrame of point events into the aggregated
    /// spatiotemporal grid (Listing 8, line 6).
    ///
    /// `geometry` names a point column; `col_date` a timestamp column.
    /// Points outside the grid extent are dropped, as are rows before the
    /// observed minimum timestamp (there are none unless `extent` clips).
    pub fn get_st_grid_dataframe(
        df: &DataFrame,
        geometry: &str,
        col_date: &str,
        config: &StGridConfig,
    ) -> PreprocessResult<StGridFrame> {
        if config.step_duration_sec <= 0 {
            return Err(PreprocessError::InvalidInput(
                "step_duration_sec must be positive".into(),
            ));
        }
        if df.num_rows() == 0 {
            return Err(PreprocessError::InvalidInput(
                "cannot build a grid from an empty DataFrame".into(),
            ));
        }
        let grid = match config.extent {
            Some(extent) => {
                SpacePartition::generate_grid(extent, config.partitions_x, config.partitions_y)?
            }
            None => SpacePartition::grid_from_dataframe(
                df,
                geometry,
                config.partitions_x,
                config.partitions_y,
            )?,
        };

        // Temporal origin: the minimum timestamp across partitions.
        let t0 = min_timestamp(df, col_date)?;
        let step = config.step_duration_sec;

        // Fused operator path: spatial cell assignment, temporal slicing,
        // filtering, and partial aggregation run as one typed pass over
        // each partition (the hand-written equivalent of the whole-stage
        // fusion Spark applies to this plan), then partials merge. This
        // avoids materialising any intermediate column.
        let geom_idx = df.schema().index_of(geometry)?;
        let ts_idx = df.schema().index_of(col_date)?;
        let partials: PreprocessResult<Vec<HashMap<(i64, i64), i64>>> =
            geotorch_dataframe::exec::par_map(
                df.partitions(),
                |part| -> geotorch_dataframe::DfResult<HashMap<(i64, i64), i64>> {
                let geoms = part[geom_idx].geoms()?;
                let timestamps = part[ts_idx].i64s()?;
                let mut counts: HashMap<(i64, i64), i64> = HashMap::new();
                for (geom, &ts) in geoms.iter().zip(timestamps) {
                    let p = match geom {
                        geotorch_dataframe::Geometry::Point(p) => *p,
                        other => other.representative_point(),
                    };
                    if let Some(cell) = grid.cell_of(&p) {
                        *counts.entry(((ts - t0) / step, cell as i64)).or_insert(0) += 1;
                    }
                }
                Ok(counts)
            },
            )
            .into_iter()
            .map(|r| r.map_err(PreprocessError::from))
            .collect();
        let mut merged: HashMap<(i64, i64), i64> = HashMap::new();
        for partial in partials? {
            for (key, count) in partial {
                *merged.entry(key).or_insert(0) += count;
            }
        }
        Self::grid_frame_from_counts(merged, grid, t0, step)
    }

    /// Materialise the sparse `(time_step, cell_id, count)` DataFrame from
    /// merged aggregation results.
    fn grid_frame_from_counts(
        merged: HashMap<(i64, i64), i64>,
        grid: geotorch_dataframe::spatial::UniformGrid,
        t0: i64,
        step: i64,
    ) -> PreprocessResult<StGridFrame> {
        let mut entries: Vec<((i64, i64), i64)> = merged.into_iter().collect();
        entries.sort_unstable_by_key(|&(key, _)| key);
        let num_steps = entries
            .iter()
            .map(|&((t, _), _)| t as usize + 1)
            .max()
            .unwrap_or(0);
        let frame = DataFrame::from_columns(vec![
            (
                "time_step".to_string(),
                Column::I64(entries.iter().map(|&((t, _), _)| t).collect()),
            ),
            (
                "cell_id".to_string(),
                Column::I64(entries.iter().map(|&((_, c), _)| c).collect()),
            ),
            (
                "count".to_string(),
                Column::I64(entries.iter().map(|&(_, n)| n).collect()),
            ),
        ])?;
        Ok(StGridFrame {
            frame,
            grid,
            num_steps,
            t0,
            step,
        })
    }

    /// Convenience: run the full Listing-8 pipeline from raw lat/lon/ts
    /// columns to the dense `[T, H, W, 1]` tensor.
    ///
    /// This path fuses even the point construction away: latitude and
    /// longitude slices feed the grid kernel directly, so no geometry
    /// column is ever materialised.
    pub fn get_st_grid_array(
        df: &DataFrame,
        lat_column: &str,
        lon_column: &str,
        col_date: &str,
        config: &StGridConfig,
    ) -> PreprocessResult<(Tensor, StGridFrame)> {
        if config.step_duration_sec <= 0 {
            return Err(PreprocessError::InvalidInput(
                "step_duration_sec must be positive".into(),
            ));
        }
        if df.num_rows() == 0 {
            return Err(PreprocessError::InvalidInput(
                "cannot build a grid from an empty DataFrame".into(),
            ));
        }
        let lat_idx = df.schema().index_of(lat_column)?;
        let lon_idx = df.schema().index_of(lon_column)?;
        let ts_idx = df.schema().index_of(col_date)?;
        // Derive extent + temporal origin in one parallel scan when needed.
        let grid = match config.extent {
            Some(extent) => SpacePartition::generate_grid(
                extent,
                config.partitions_x,
                config.partitions_y,
            )?,
            None => {
                let bounds: Vec<PreprocessResult<(f64, f64, f64, f64)>> =
                    geotorch_dataframe::exec::par_map(
                        df.partitions(),
                        |part| -> geotorch_dataframe::DfResult<(f64, f64, f64, f64)> {
                        let lats = part[lat_idx].f64s()?;
                        let lons = part[lon_idx].f64s()?;
                        let mut b = (f64::INFINITY, f64::INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY);
                        for (&lat, &lon) in lats.iter().zip(lons) {
                            b.0 = b.0.min(lon);
                            b.1 = b.1.min(lat);
                            b.2 = b.2.max(lon);
                            b.3 = b.3.max(lat);
                        }
                        Ok(b)
                    },
                    )
                    .into_iter()
                    .map(|r| r.map_err(PreprocessError::from))
                    .collect();
                let mut acc = (f64::INFINITY, f64::INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY);
                for b in bounds {
                    let b = b?;
                    acc.0 = acc.0.min(b.0);
                    acc.1 = acc.1.min(b.1);
                    acc.2 = acc.2.max(b.2);
                    acc.3 = acc.3.max(b.3);
                }
                let mut extent = Envelope::new(acc.0, acc.1, acc.2, acc.3);
                if extent.width() <= 0.0 || extent.height() <= 0.0 {
                    extent = Envelope::new(
                        extent.min_x - 0.5,
                        extent.min_y - 0.5,
                        extent.max_x + 0.5,
                        extent.max_y + 0.5,
                    );
                }
                SpacePartition::generate_grid(extent, config.partitions_x, config.partitions_y)?
            }
        };
        let t0 = min_timestamp(df, col_date)?;
        let step = config.step_duration_sec;
        let partials: PreprocessResult<Vec<HashMap<(i64, i64), i64>>> =
            geotorch_dataframe::exec::par_map(
                df.partitions(),
                |part| -> geotorch_dataframe::DfResult<HashMap<(i64, i64), i64>> {
                let lats = part[lat_idx].f64s()?;
                let lons = part[lon_idx].f64s()?;
                let timestamps = part[ts_idx].i64s()?;
                let mut counts: HashMap<(i64, i64), i64> = HashMap::new();
                for ((&lat, &lon), &ts) in lats.iter().zip(lons).zip(timestamps) {
                    if let Some(cell) = grid.cell_of(&geotorch_dataframe::Point::new(lon, lat)) {
                        *counts.entry(((ts - t0) / step, cell as i64)).or_insert(0) += 1;
                    }
                }
                Ok(counts)
            },
            )
            .into_iter()
            .map(|r| r.map_err(PreprocessError::from))
            .collect();
        let mut merged: HashMap<(i64, i64), i64> = HashMap::new();
        for partial in partials? {
            for (key, count) in partial {
                *merged.entry(key).or_insert(0) += count;
            }
        }
        let grid_frame = Self::grid_frame_from_counts(merged, grid, t0, step)?;
        let tensor = grid_frame.to_tensor()?;
        Ok((tensor, grid_frame))
    }
}

fn min_timestamp(df: &DataFrame, col_date: &str) -> PreprocessResult<i64> {
    let col = df.column(col_date)?;
    let ts = col.i64s()?;
    ts.iter()
        .min()
        .copied()
        .ok_or_else(|| PreprocessError::InvalidInput("empty timestamp column".into()))
}

/// Build the canonical trip-event DataFrame used throughout tests and
/// benches: columns `lat (f64)`, `lon (f64)`, `ts (Ts)`.
pub fn trips_dataframe(
    lats: Vec<f64>,
    lons: Vec<f64>,
    timestamps: Vec<i64>,
) -> PreprocessResult<DataFrame> {
    Ok(DataFrame::from_columns(vec![
        ("lat".to_string(), Column::F64(lats)),
        ("lon".to_string(), Column::F64(lons)),
        ("ts".to_string(), Column::Ts(timestamps)),
    ])?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events() -> DataFrame {
        // 4 events: two in the same cell+slot, one in another cell, one in
        // a later slot.
        trips_dataframe(
            vec![0.25, 0.30, 0.75, 0.25],
            vec![0.25, 0.30, 0.75, 0.25],
            vec![0, 100, 200, 2000],
        )
        .unwrap()
    }

    fn config() -> StGridConfig {
        StGridConfig {
            partitions_x: 2,
            partitions_y: 2,
            step_duration_sec: 1800,
            extent: Some(Envelope::new(0.0, 0.0, 1.0, 1.0)),
        }
    }

    #[test]
    fn pipeline_counts_events_per_cell_and_step() {
        let (tensor, gf) = StManager::get_st_grid_array(&events(), "lat", "lon", "ts", &config())
            .unwrap();
        assert_eq!(tensor.shape(), &[2, 2, 2, 1]);
        // Slot 0: two events in cell (0,0), one in cell (1,1).
        assert_eq!(tensor.at(&[0, 0, 0, 0]), 2.0);
        assert_eq!(tensor.at(&[0, 1, 1, 0]), 1.0);
        assert_eq!(tensor.at(&[0, 0, 1, 0]), 0.0);
        // Slot 1: one event in cell (0,0).
        assert_eq!(tensor.at(&[1, 0, 0, 0]), 1.0);
        assert_eq!(gf.total_events().unwrap(), 4);
        assert_eq!(gf.num_steps, 2);
        assert_eq!(gf.t0, 0);
    }

    #[test]
    fn counts_conserved_under_partitioning() {
        let df = events().repartition(3).unwrap();
        let (tensor, gf) =
            StManager::get_st_grid_array(&df, "lat", "lon", "ts", &config()).unwrap();
        assert_eq!(tensor.sum(), 4.0);
        assert_eq!(gf.total_events().unwrap(), 4);
    }

    #[test]
    fn points_outside_extent_are_dropped() {
        let df = trips_dataframe(
            vec![0.5, 50.0], // second point far outside
            vec![0.5, 50.0],
            vec![0, 0],
        )
        .unwrap();
        let (tensor, gf) =
            StManager::get_st_grid_array(&df, "lat", "lon", "ts", &config()).unwrap();
        assert_eq!(tensor.sum(), 1.0);
        assert_eq!(gf.total_events().unwrap(), 1);
    }

    #[test]
    fn derived_extent_covers_all_points() {
        let df = trips_dataframe(
            vec![40.0, 41.0, 40.5, 40.7],
            vec![-74.0, -73.0, -73.5, -73.2],
            vec![0, 1800, 3600, 5400],
        )
        .unwrap();
        let mut cfg = StGridConfig::new(4, 4, 1800);
        cfg.extent = None;
        let (tensor, gf) = StManager::get_st_grid_array(&df, "lat", "lon", "ts", &cfg).unwrap();
        assert_eq!(tensor.sum(), 4.0);
        assert_eq!(gf.num_steps, 4);
    }

    #[test]
    fn timestamps_slot_correctly() {
        let df = trips_dataframe(
            vec![0.5; 3],
            vec![0.5; 3],
            vec![1000, 1000 + 1799, 1000 + 1800],
        )
        .unwrap();
        let (tensor, gf) =
            StManager::get_st_grid_array(&df, "lat", "lon", "ts", &config()).unwrap();
        // First two land in slot 0, third in slot 1 (t0 = 1000).
        assert_eq!(gf.t0, 1000);
        assert_eq!(tensor.shape()[0], 2);
        assert_eq!(tensor.index_axis(0, 0).sum(), 2.0);
        assert_eq!(tensor.index_axis(0, 1).sum(), 1.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        let empty = trips_dataframe(vec![], vec![], vec![]).unwrap();
        assert!(StManager::get_st_grid_array(&empty, "lat", "lon", "ts", &config()).is_err());
        let mut cfg = config();
        cfg.step_duration_sec = 0;
        assert!(StManager::get_st_grid_array(&events(), "lat", "lon", "ts", &cfg).is_err());
        assert!(StManager::get_st_grid_array(&events(), "nope", "lon", "ts", &config()).is_err());
    }
}
