//! # geotorch-preprocess
//!
//! The scalable data-preprocessing module of GeoTorch-RS, reproducing
//! GeoTorchAI's `geotorchai.preprocessing` package (§III-B of the paper):
//!
//! * [`st_manager::StManager`] — converts raw spatiotemporal event data
//!   (e.g. taxi trips with lat/lon/timestamp) into grid-based
//!   spatiotemporal tensors via spatial grid assignment, temporal slicing,
//!   and partition-parallel aggregation (the paper's Listing 8).
//! * [`space_partition::SpacePartition`] — uniform grid generation over a
//!   dataset's extent.
//! * [`raster_processing::RasterProcessing`] — batch raster
//!   transformation: load GTRF images, apply transform chains in parallel,
//!   write results (the paper's Listing 9; benchmarked in Table VIII).
//! * [`repartition`] — grid coarsening in space/time to trade resolution
//!   for training speed (§III-B1's re-partitioning pointer).
//! * [`geopandas_like`] — a deliberately naive single-threaded,
//!   fully-materialising pipeline standing in for the GeoPandas baseline
//!   of Figure 8. It produces identical results to `StManager` but with
//!   the join output materialised row-by-row in memory, reproducing the
//!   baseline's time and memory scaling behaviour.

#![warn(missing_docs)]

pub mod error;
pub mod geopandas_like;
pub mod raster_processing;
pub mod repartition;
pub mod space_partition;
pub mod st_manager;

pub use error::{PreprocessError, PreprocessResult};
pub use space_partition::SpacePartition;
pub use st_manager::{StGridConfig, StGridFrame, StManager};
