//! Error type for preprocessing pipelines.

use std::fmt;

use geotorch_dataframe::DfError;
use geotorch_raster::RasterError;

/// Result alias for preprocessing operations.
pub type PreprocessResult<T> = Result<T, PreprocessError>;

/// Errors surfaced by the preprocessing module.
#[derive(Debug)]
pub enum PreprocessError {
    /// DataFrame-layer failure.
    DataFrame(DfError),
    /// Raster-layer failure.
    Raster(RasterError),
    /// Pipeline-specific invalid input.
    InvalidInput(String),
}

impl fmt::Display for PreprocessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PreprocessError::DataFrame(e) => write!(f, "dataframe error: {e}"),
            PreprocessError::Raster(e) => write!(f, "raster error: {e}"),
            PreprocessError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for PreprocessError {}

impl From<DfError> for PreprocessError {
    fn from(e: DfError) -> Self {
        PreprocessError::DataFrame(e)
    }
}

impl From<RasterError> for PreprocessError {
    fn from(e: RasterError) -> Self {
        PreprocessError::Raster(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: PreprocessError = DfError::ColumnNotFound("x".into()).into();
        assert!(e.to_string().contains("column not found"));
        let e: PreprocessError = RasterError::InvalidArgument("bad".into()).into();
        assert!(e.to_string().contains("raster error"));
        assert!(PreprocessError::InvalidInput("oops".into())
            .to_string()
            .contains("oops"));
    }
}
