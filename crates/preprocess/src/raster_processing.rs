//! Batch raster processing (`geotorchai.preprocessing.raster`).
//!
//! Reproduces the paper's Listing 9: load a directory of raster images,
//! apply a transformation chain to every image in parallel, and write the
//! results back. Pre-transforming offline with this module (instead of
//! on the fly during training) is the Limitation-4 optimisation that
//! Table VIII quantifies.

use std::path::{Path, PathBuf};

use geotorch_dataframe::exec;
use geotorch_raster::gtiff;
use geotorch_raster::transforms::RasterTransform;
use geotorch_raster::Raster;

use crate::error::{PreprocessError, PreprocessResult};

/// An in-memory batch of rasters with their source names — the analogue
/// of the paper's raster DataFrame.
#[derive(Debug, Clone, Default)]
pub struct RasterBatch {
    /// Image payloads.
    pub rasters: Vec<Raster>,
    /// Source names (file stems), aligned with `rasters`.
    pub names: Vec<String>,
}

impl RasterBatch {
    /// Batch from rasters with generated names.
    pub fn from_rasters(rasters: Vec<Raster>) -> RasterBatch {
        let names = (0..rasters.len()).map(|i| format!("raster_{i}")).collect();
        RasterBatch { rasters, names }
    }

    /// Image count.
    pub fn len(&self) -> usize {
        self.rasters.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.rasters.is_empty()
    }
}

/// Batch raster-processing entry points.
pub struct RasterProcessing;

impl RasterProcessing {
    /// Load every `.gtrf` file in a directory (sorted by name) —
    /// the paper's `load_geotiff_image`.
    pub fn load_geotiff_images(dir: impl AsRef<Path>) -> PreprocessResult<RasterBatch> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir.as_ref())
            .map_err(|e| PreprocessError::Raster(e.into()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "gtrf"))
            .collect();
        paths.sort();
        let mut batch = RasterBatch::default();
        for path in paths {
            batch.rasters.push(gtiff::read_file(&path)?);
            batch.names.push(
                path.file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_default(),
            );
        }
        Ok(batch)
    }

    /// Apply a transform to every image in parallel over the worker pool.
    pub fn transform(
        batch: &RasterBatch,
        transform: &(impl RasterTransform + ?Sized),
    ) -> PreprocessResult<RasterBatch> {
        let results: Vec<PreprocessResult<Raster>> =
            exec::par_map(&batch.rasters, |r| Ok(transform.apply(r)?));
        let rasters = results.into_iter().collect::<PreprocessResult<Vec<_>>>()?;
        Ok(RasterBatch {
            rasters,
            names: batch.names.clone(),
        })
    }

    /// Write every image as `<dir>/<name>.gtrf` — the paper's
    /// `write_geotiff_image`.
    pub fn write_geotiff_images(
        batch: &RasterBatch,
        dir: impl AsRef<Path>,
    ) -> PreprocessResult<()> {
        std::fs::create_dir_all(dir.as_ref()).map_err(|e| PreprocessError::Raster(e.into()))?;
        for (raster, name) in batch.rasters.iter().zip(&batch.names) {
            let path = dir.as_ref().join(format!("{name}.gtrf"));
            gtiff::write_file(raster, &path)?;
        }
        Ok(())
    }

    /// The full Listing-9 pipeline: load → transform → write.
    pub fn process_directory(
        input_dir: impl AsRef<Path>,
        output_dir: impl AsRef<Path>,
        transform: &(impl RasterTransform + ?Sized),
    ) -> PreprocessResult<usize> {
        let batch = Self::load_geotiff_images(input_dir)?;
        let transformed = Self::transform(&batch, transform)?;
        Self::write_geotiff_images(&transformed, output_dir)?;
        Ok(transformed.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotorch_raster::transforms::{
        AppendNormalizedDifferenceIndex, Compose, NormalizeAll,
    };

    fn sample_batch(n: usize) -> RasterBatch {
        let rasters = (0..n)
            .map(|i| {
                Raster::new(
                    (0..2 * 4 * 4).map(|v| (v + i) as f32).collect(),
                    2,
                    4,
                    4,
                )
                .unwrap()
            })
            .collect();
        RasterBatch::from_rasters(rasters)
    }

    #[test]
    fn transform_applies_to_every_image() {
        let batch = sample_batch(5);
        let out = RasterProcessing::transform(&batch, &AppendNormalizedDifferenceIndex::new(0, 1))
            .unwrap();
        assert_eq!(out.len(), 5);
        assert!(out.rasters.iter().all(|r| r.bands() == 3));
        // Input untouched.
        assert!(batch.rasters.iter().all(|r| r.bands() == 2));
    }

    #[test]
    fn transform_error_propagates() {
        let batch = sample_batch(2);
        let bad = AppendNormalizedDifferenceIndex::new(0, 9);
        assert!(RasterProcessing::transform(&batch, &bad).is_err());
    }

    #[test]
    fn directory_pipeline_round_trips() {
        let base = std::env::temp_dir().join(format!("geotorch_rp_{}", std::process::id()));
        let input = base.join("in");
        let output = base.join("out");
        std::fs::create_dir_all(&input).unwrap();
        let batch = sample_batch(3);
        RasterProcessing::write_geotiff_images(&batch, &input).unwrap();

        let chain = Compose::new()
            .add(AppendNormalizedDifferenceIndex::new(0, 1))
            .add(NormalizeAll);
        let n = RasterProcessing::process_directory(&input, &output, &chain).unwrap();
        assert_eq!(n, 3);

        let reloaded = RasterProcessing::load_geotiff_images(&output).unwrap();
        assert_eq!(reloaded.len(), 3);
        assert!(reloaded.rasters.iter().all(|r| r.bands() == 3));
        // Normalised: every band within [0, 1].
        for r in &reloaded.rasters {
            for b in 0..r.bands() {
                let band = r.band(b).unwrap();
                assert!(band.iter().all(|&v| (0.0..=1.0).contains(&v)));
            }
        }
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn load_missing_directory_errors() {
        assert!(RasterProcessing::load_geotiff_images("/nonexistent/dir").is_err());
    }

    #[test]
    fn names_align_after_round_trip() {
        let base = std::env::temp_dir().join(format!("geotorch_rp_names_{}", std::process::id()));
        std::fs::create_dir_all(&base).unwrap();
        let mut batch = sample_batch(2);
        batch.names = vec!["alpha".into(), "beta".into()];
        RasterProcessing::write_geotiff_images(&batch, &base).unwrap();
        let reloaded = RasterProcessing::load_geotiff_images(&base).unwrap();
        assert_eq!(reloaded.names, vec!["alpha", "beta"]);
        std::fs::remove_dir_all(&base).ok();
    }
}
