//! A deliberately naive preprocessing baseline mirroring a GeoPandas
//! `sjoin` + `groupby` pipeline.
//!
//! Figure 8 of the paper compares GeoTorchAI's partitioned preprocessing
//! against GeoPandas on elapsed time and memory. GeoPandas is unavailable
//! here, so this module reproduces the *mechanism* behind its scaling
//! behaviour:
//!
//! 1. **Full materialisation** — the spatial join's output (one owned row
//!    per event, carrying the matched cell's polygon and all attributes)
//!    is built in memory before any aggregation, exactly as
//!    `geopandas.sjoin` returns a full joined GeoDataFrame. Memory grows
//!    with the *joined* row count.
//! 2. **Single-threaded execution** — every step runs on one thread.
//! 3. **Sort-based group-by** — the materialised table is sorted by key
//!    and scanned, as a pandas `groupby` over an unindexed frame would.
//!
//! The result is bit-identical to [`crate::StManager`]'s output, so the
//! benchmark measures purely the execution strategy.

use geotorch_dataframe::{Column, DataFrame, Geometry, Point};

use crate::error::{PreprocessError, PreprocessResult};
use crate::space_partition::SpacePartition;
use crate::st_manager::{StGridConfig, StGridFrame};

/// One materialised joined row (event × matched cell), mimicking a row of
/// a GeoPandas sjoin result: the event attributes plus the *cloned* cell
/// geometry.
struct JoinedRow {
    #[allow(dead_code)]
    lat: f64,
    #[allow(dead_code)]
    lon: f64,
    #[allow(dead_code)]
    cell_geometry: Geometry,
    cell_id: i64,
    time_step: i64,
}

/// Run the full Listing-8 pipeline with the naive strategy. Produces the
/// same [`StGridFrame`] as `StManager::get_st_grid_dataframe`.
pub fn get_st_grid_dataframe_naive(
    df: &DataFrame,
    lat_column: &str,
    lon_column: &str,
    col_date: &str,
    config: &StGridConfig,
) -> PreprocessResult<StGridFrame> {
    if config.step_duration_sec <= 0 {
        return Err(PreprocessError::InvalidInput(
            "step_duration_sec must be positive".into(),
        ));
    }
    if df.num_rows() == 0 {
        return Err(PreprocessError::InvalidInput(
            "cannot build a grid from an empty DataFrame".into(),
        ));
    }
    // Materialise the full columns up front (pandas keeps everything
    // resident).
    let merged = df.concat_partitions()?;
    let lats = merged.column(lat_column)?;
    let lons = merged.column(lon_column)?;
    let ts_col = merged.column(col_date)?;
    let lats = lats.f64s()?;
    let lons = lons.f64s()?;
    let timestamps = ts_col.i64s()?;

    let extent = match config.extent {
        Some(e) => e,
        None => {
            // Derive the extent with plain sequential scans.
            let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
            let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
            for (&lat, &lon) in lats.iter().zip(lons) {
                min_x = min_x.min(lon);
                max_x = max_x.max(lon);
                min_y = min_y.min(lat);
                max_y = max_y.max(lat);
            }
            let mut e = geotorch_dataframe::Envelope::new(min_x, min_y, max_x, max_y);
            if e.width() <= 0.0 || e.height() <= 0.0 {
                e = geotorch_dataframe::Envelope::new(
                    e.min_x - 0.5,
                    e.min_y - 0.5,
                    e.max_x + 0.5,
                    e.max_y + 0.5,
                );
            }
            e
        }
    };
    let grid = SpacePartition::generate_grid(extent, config.partitions_x, config.partitions_y)?;
    let cells = grid.cell_geometries();
    let t0 = timestamps
        .iter()
        .min()
        .copied()
        .ok_or_else(|| PreprocessError::InvalidInput("empty timestamp column".into()))?;

    // Phase 1: materialise the joined table (the memory hog).
    let mut joined: Vec<JoinedRow> = Vec::new();
    for ((&lat, &lon), &ts) in lats.iter().zip(lons).zip(timestamps) {
        let p = Point::new(lon, lat);
        if let Some(cell_id) = grid.cell_of(&p) {
            joined.push(JoinedRow {
                lat,
                lon,
                cell_geometry: cells[cell_id].clone(),
                cell_id: cell_id as i64,
                time_step: (ts - t0) / config.step_duration_sec,
            });
        }
    }

    // Phase 2: sort-based group-by over the materialised table.
    joined.sort_by_key(|r| (r.time_step, r.cell_id));
    let mut steps = Vec::new();
    let mut cell_ids = Vec::new();
    let mut counts: Vec<i64> = Vec::new();
    for row in &joined {
        match (steps.last(), cell_ids.last()) {
            (Some(&t), Some(&c)) if t == row.time_step && c == row.cell_id => {
                *counts.last_mut().expect("parallel vectors") += 1;
            }
            _ => {
                steps.push(row.time_step);
                cell_ids.push(row.cell_id);
                counts.push(1);
            }
        }
    }
    let num_steps = steps.iter().max().map_or(0, |&m| m as usize + 1);
    let frame = DataFrame::from_columns(vec![
        ("time_step".to_string(), Column::I64(steps)),
        ("cell_id".to_string(), Column::I64(cell_ids)),
        ("count".to_string(), Column::I64(counts)),
    ])?;
    Ok(StGridFrame {
        frame,
        grid,
        num_steps,
        t0,
        step: config.step_duration_sec,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::st_manager::{trips_dataframe, StManager};
    use geotorch_dataframe::Envelope;

    fn config() -> StGridConfig {
        StGridConfig {
            partitions_x: 3,
            partitions_y: 3,
            step_duration_sec: 600,
            extent: Some(Envelope::new(0.0, 0.0, 3.0, 3.0)),
        }
    }

    fn random_events(n: usize, seed: u64) -> DataFrame {
        // Simple deterministic LCG so this test has no rand dependency.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut lats = Vec::with_capacity(n);
        let mut lons = Vec::with_capacity(n);
        let mut ts = Vec::with_capacity(n);
        for _ in 0..n {
            lats.push(next() * 3.2 - 0.1); // some points fall outside
            lons.push(next() * 3.2 - 0.1);
            ts.push((next() * 7200.0) as i64);
        }
        trips_dataframe(lats, lons, ts).unwrap()
    }

    #[test]
    fn naive_matches_partitioned_engine() {
        let df = random_events(500, 42);
        let cfg = config();
        let fast = {
            let with_points =
                StManager::add_spatial_points(&df.repartition(4).unwrap(), "lat", "lon", "pt")
                    .unwrap();
            StManager::get_st_grid_dataframe(&with_points, "pt", "ts", &cfg).unwrap()
        };
        let naive = get_st_grid_dataframe_naive(&df, "lat", "lon", "ts", &cfg).unwrap();
        assert_eq!(fast.num_steps, naive.num_steps);
        assert_eq!(fast.t0, naive.t0);
        let ft = fast.to_tensor().unwrap();
        let nt = naive.to_tensor().unwrap();
        assert_eq!(ft, nt, "dense tensors must be identical");
        assert!(ft.sum() > 0.0, "some events must have landed in the grid");
    }

    #[test]
    fn naive_rejects_bad_input() {
        let empty = trips_dataframe(vec![], vec![], vec![]).unwrap();
        assert!(get_st_grid_dataframe_naive(&empty, "lat", "lon", "ts", &config()).is_err());
        let mut cfg = config();
        cfg.step_duration_sec = -5;
        let df = random_events(10, 1);
        assert!(get_st_grid_dataframe_naive(&df, "lat", "lon", "ts", &cfg).is_err());
    }

    #[test]
    fn naive_derives_extent_when_missing() {
        let df = random_events(100, 7);
        let mut cfg = config();
        cfg.extent = None;
        let out = get_st_grid_dataframe_naive(&df, "lat", "lon", "ts", &cfg).unwrap();
        // With a tight derived extent, every event is inside.
        assert_eq!(out.total_events().unwrap(), 100);
    }
}
