//! Grid re-partitioning: coarsening spatiotemporal tensors to reduce
//! data volume and training time (the paper's §III-B1 pointer to its
//! ML-aware re-partitioning work).
//!
//! Coarsening merges blocks of neighbouring cells (summing counts) or
//! consecutive time slots, producing a smaller tensor that trains faster
//! at lower spatial/temporal resolution.

use geotorch_tensor::Tensor;

use crate::error::{PreprocessError, PreprocessResult};

/// Merge `factor × factor` blocks of grid cells by summation:
/// `[T, H, W, C] → [T, H/factor, W/factor, C]`.
///
/// # Errors
/// If the tensor is not 4-D or the spatial extents are not divisible by
/// `factor`.
pub fn coarsen_space(tensor: &Tensor, factor: usize) -> PreprocessResult<Tensor> {
    if factor == 0 {
        return Err(PreprocessError::InvalidInput("factor must be positive".into()));
    }
    if tensor.ndim() != 4 {
        return Err(PreprocessError::InvalidInput(format!(
            "expected [T,H,W,C], got {:?}",
            tensor.shape()
        )));
    }
    let (t, h, w, c) = (
        tensor.shape()[0],
        tensor.shape()[1],
        tensor.shape()[2],
        tensor.shape()[3],
    );
    if h % factor != 0 || w % factor != 0 {
        return Err(PreprocessError::InvalidInput(format!(
            "grid {h}x{w} not divisible by factor {factor}"
        )));
    }
    if factor == 1 {
        return Ok(tensor.clone());
    }
    let (oh, ow) = (h / factor, w / factor);
    let src = tensor.as_slice();
    let mut out = vec![0.0f32; t * oh * ow * c];
    for ti in 0..t {
        for r in 0..h {
            for col in 0..w {
                for ch in 0..c {
                    let v = src[((ti * h + r) * w + col) * c + ch];
                    out[((ti * oh + r / factor) * ow + col / factor) * c + ch] += v;
                }
            }
        }
    }
    Ok(Tensor::from_vec(out, &[t, oh, ow, c]))
}

/// Merge `factor` consecutive time slots by summation:
/// `[T, H, W, C] → [T/factor, H, W, C]` (trailing remainder dropped).
pub fn coarsen_time(tensor: &Tensor, factor: usize) -> PreprocessResult<Tensor> {
    if factor == 0 {
        return Err(PreprocessError::InvalidInput("factor must be positive".into()));
    }
    if tensor.ndim() != 4 {
        return Err(PreprocessError::InvalidInput(format!(
            "expected [T,H,W,C], got {:?}",
            tensor.shape()
        )));
    }
    if factor == 1 {
        return Ok(tensor.clone());
    }
    let (t, h, w, c) = (
        tensor.shape()[0],
        tensor.shape()[1],
        tensor.shape()[2],
        tensor.shape()[3],
    );
    let ot = t / factor;
    if ot == 0 {
        return Err(PreprocessError::InvalidInput(format!(
            "{t} steps cannot be coarsened by {factor}"
        )));
    }
    let frame = h * w * c;
    let src = tensor.as_slice();
    let mut out = vec![0.0f32; ot * frame];
    for oti in 0..ot {
        for k in 0..factor {
            let base = (oti * factor + k) * frame;
            let dst = &mut out[oti * frame..(oti + 1) * frame];
            for (d, &v) in dst.iter_mut().zip(&src[base..base + frame]) {
                *d += v;
            }
        }
    }
    Ok(Tensor::from_vec(out, &[ot, h, w, c]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor() -> Tensor {
        // [2, 4, 4, 1] with value = flat index, easy to check sums.
        Tensor::arange(2 * 4 * 4).reshape(&[2, 4, 4, 1])
    }

    #[test]
    fn coarsen_space_sums_blocks() {
        let out = coarsen_space(&tensor(), 2).unwrap();
        assert_eq!(out.shape(), &[2, 2, 2, 1]);
        // Top-left 2x2 block of frame 0: values 0,1,4,5.
        assert_eq!(out.at(&[0, 0, 0, 0]), 10.0);
        // Mass conserved.
        assert_eq!(out.sum(), tensor().sum());
    }

    #[test]
    fn coarsen_time_sums_slots() {
        let out = coarsen_time(&tensor(), 2).unwrap();
        assert_eq!(out.shape(), &[1, 4, 4, 1]);
        assert_eq!(out.sum(), tensor().sum());
        assert_eq!(out.at(&[0, 0, 0, 0]), 0.0 + 16.0);
    }

    #[test]
    fn factor_one_is_identity() {
        assert_eq!(coarsen_space(&tensor(), 1).unwrap(), tensor());
        assert_eq!(coarsen_time(&tensor(), 1).unwrap(), tensor());
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(coarsen_space(&tensor(), 0).is_err());
        assert!(coarsen_space(&tensor(), 3).is_err()); // 4 % 3 != 0
        assert!(coarsen_time(&tensor(), 5).is_err()); // 2 / 5 == 0
        let flat = Tensor::zeros(&[4, 4]);
        assert!(coarsen_space(&flat, 2).is_err());
        assert!(coarsen_time(&flat, 2).is_err());
    }

    #[test]
    fn time_coarsening_drops_remainder() {
        let t = Tensor::ones(&[5, 2, 2, 1]);
        let out = coarsen_time(&t, 2).unwrap();
        assert_eq!(out.shape(), &[2, 2, 2, 1]);
        assert_eq!(out.sum(), 16.0); // 4 of 5 frames kept
    }
}
