//! Spatial grid generation (`geotorchai.preprocessing.grid.SpacePartition`).

use geotorch_dataframe::spatial::{column_extent, UniformGrid};
use geotorch_dataframe::{DataFrame, Envelope, Geometry};

use crate::error::{PreprocessError, PreprocessResult};

/// Generates uniform spatial grids over datasets or explicit extents.
pub struct SpacePartition;

impl SpacePartition {
    /// Grid of `partitions_x × partitions_y` cells over an explicit extent.
    pub fn generate_grid(
        extent: Envelope,
        partitions_x: usize,
        partitions_y: usize,
    ) -> PreprocessResult<UniformGrid> {
        Ok(UniformGrid::new(extent, partitions_x, partitions_y)?)
    }

    /// Grid covering the tight extent of a geometry column.
    ///
    /// # Errors
    /// If the column is missing, non-geometry, or empty.
    pub fn grid_from_dataframe(
        df: &DataFrame,
        geometry_column: &str,
        partitions_x: usize,
        partitions_y: usize,
    ) -> PreprocessResult<UniformGrid> {
        let extent = column_extent(df, geometry_column)?.ok_or_else(|| {
            PreprocessError::InvalidInput(format!(
                "cannot derive a grid from empty column {geometry_column}"
            ))
        })?;
        // A degenerate extent (all points identical) gets a tiny halo so
        // the grid still has positive area.
        let extent = if extent.width() <= 0.0 || extent.height() <= 0.0 {
            Envelope::new(
                extent.min_x - 0.5,
                extent.min_y - 0.5,
                extent.max_x + 0.5,
                extent.max_y + 0.5,
            )
        } else {
            extent
        };
        Ok(UniformGrid::new(extent, partitions_x, partitions_y)?)
    }

    /// The grid's cell polygons in cell-id order (for generic spatial
    /// joins and for exporting the partitioning).
    pub fn cell_geometries(grid: &UniformGrid) -> Vec<Geometry> {
        grid.cell_geometries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotorch_dataframe::spatial::add_point_column;
    use geotorch_dataframe::Column;

    #[test]
    fn explicit_grid() {
        let grid =
            SpacePartition::generate_grid(Envelope::new(0.0, 0.0, 12.0, 16.0), 12, 16).unwrap();
        assert_eq!(grid.num_cells(), 192);
        assert_eq!(SpacePartition::cell_geometries(&grid).len(), 192);
    }

    #[test]
    fn grid_from_dataframe_extent() {
        let df = DataFrame::from_columns(vec![
            ("lat".into(), Column::F64(vec![40.0, 41.0, 40.5])),
            ("lon".into(), Column::F64(vec![-74.0, -73.0, -73.5])),
        ])
        .unwrap();
        let df = add_point_column(&df, "lat", "lon", "pt").unwrap();
        let grid = SpacePartition::grid_from_dataframe(&df, "pt", 4, 4).unwrap();
        assert_eq!(grid.extent().min_x, -74.0);
        assert_eq!(grid.extent().max_y, 41.0);
    }

    #[test]
    fn degenerate_extent_gets_halo() {
        let df = DataFrame::from_columns(vec![
            ("lat".into(), Column::F64(vec![40.0, 40.0])),
            ("lon".into(), Column::F64(vec![-74.0, -74.0])),
        ])
        .unwrap();
        let df = add_point_column(&df, "lat", "lon", "pt").unwrap();
        let grid = SpacePartition::grid_from_dataframe(&df, "pt", 2, 2).unwrap();
        assert!(grid.extent().area() > 0.0);
        // The single point still lands in a cell.
        assert!(grid
            .cell_of(&geotorch_dataframe::Point::new(-74.0, 40.0))
            .is_some());
    }

    #[test]
    fn empty_column_errors() {
        let df = DataFrame::from_columns(vec![
            ("lat".into(), Column::F64(vec![])),
            ("lon".into(), Column::F64(vec![])),
        ])
        .unwrap();
        let df = add_point_column(&df, "lat", "lon", "pt").unwrap();
        assert!(SpacePartition::grid_from_dataframe(&df, "pt", 2, 2).is_err());
    }
}
