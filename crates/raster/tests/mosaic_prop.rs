//! Property tests for the mosaic accumulator's central invariant: after
//! `finalize`, the blend weights at every output pixel sum to exactly 1
//! (they are divided out), so a constant input field survives stitching
//! unchanged — for random overlap configurations, both blend modes, and
//! halo-trimmed cores alike.

use geotorch_raster::{core_of, BlendMode, MosaicAccumulator, Window};
use geotorch_tensor::Tensor;
use proptest::prelude::*;

/// Clamped grid starts: 0, s, 2s, … with the last start pinned to
/// `extent - tile` (mirrors the sampler's edge handling).
fn starts(extent: usize, tile: usize, stride: usize) -> Vec<usize> {
    let mut out = vec![0];
    let last = extent - tile;
    let mut s = stride;
    while s < last {
        out.push(s);
        s += stride;
    }
    if last > 0 {
        out.push(last);
    }
    out
}

/// A mosaic extent plus a tile/stride pair that covers it.
fn overlap_params() -> impl Strategy<Value = (usize, usize, (usize, usize), (usize, usize))> {
    (4usize..40, 4usize..40).prop_flat_map(|(h, w)| {
        (2..=h.min(16), 2..=w.min(16)).prop_flat_map(move |(th, tw)| {
            (1..=th, 1..=tw).prop_map(move |(sh, sw)| (h, w, (th, tw), (sh, sw)))
        })
    })
}

fn blend_modes() -> impl Strategy<Value = BlendMode> {
    any::<bool>().prop_map(|cosine| {
        if cosine {
            BlendMode::Cosine
        } else {
            BlendMode::Uniform
        }
    })
}

fn constant_pred(classes: usize, th: usize, tw: usize, value: f32) -> Tensor {
    Tensor::from_vec(vec![value; classes * th * tw], &[classes, th, tw])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Weights sum to 1 at every pixel: a constant field of `value`
    /// finalizes to `value` everywhere, however the tiles overlap.
    #[test]
    fn blend_weights_sum_to_one_at_every_pixel(
        (h, w, tile, stride) in overlap_params(),
        blend in blend_modes(),
        classes in 1usize..3,
        value in -4.0f32..4.0,
    ) {
        let mut acc = MosaicAccumulator::new(classes, h, w, blend);
        for &r in &starts(h, tile.0, stride.0) {
            for &c in &starts(w, tile.1, stride.1) {
                let window = Window::new(r, c, tile.0, tile.1);
                let pred = constant_pred(classes, tile.0, tile.1, value);
                acc.add_tile(&window, &window, &pred).unwrap();
            }
        }
        prop_assert_eq!(acc.coverage_gap(), None);
        let mosaic = acc.finalize().unwrap();
        for (i, &v) in mosaic.as_slice().iter().enumerate() {
            prop_assert!(
                (v - value).abs() <= 1e-5 * value.abs().max(1.0),
                "pixel {} diverged after blending: {} vs constant {}", i, v, value
            );
        }
    }

    /// Same invariant when each tile only contributes its halo-trimmed
    /// core — the geometry `run_mosaic` actually uses.
    #[test]
    fn halo_trimmed_cores_still_normalize_to_one(
        (h, w, tile, _) in overlap_params(),
        blend in blend_modes(),
        halo_seed in 0usize..8,
    ) {
        // Halo small enough to leave a core, stride small enough that
        // cores still cover every pixel (stride <= tile - 2*halo).
        let halo = halo_seed % ((tile.0.min(tile.1)).div_ceil(2)).max(1);
        let stride = (
            (tile.0 - 2 * halo.min((tile.0 - 1) / 2)).max(1),
            (tile.1 - 2 * halo.min((tile.1 - 1) / 2)).max(1),
        );
        let halo = halo.min((tile.0 - 1) / 2).min((tile.1 - 1) / 2);
        let bounds = Window::new(0, 0, h, w);
        let mut acc = MosaicAccumulator::new(1, h, w, blend);
        for &r in &starts(h, tile.0, stride.0) {
            for &c in &starts(w, tile.1, stride.1) {
                let window = Window::new(r, c, tile.0, tile.1);
                let core = core_of(&window, &bounds, halo);
                let pred = constant_pred(1, tile.0, tile.1, 1.0);
                acc.add_tile(&window, &core, &pred).unwrap();
            }
        }
        prop_assert_eq!(acc.coverage_gap(), None);
        let mosaic = acc.finalize().unwrap();
        for &v in mosaic.as_slice() {
            prop_assert!((v - 1.0).abs() <= 1e-5, "blend drifted: {}", v);
        }
    }

    /// Any uncovered pixel fails the whole mosaic — never a silent
    /// partial result.
    #[test]
    fn finalize_refuses_partial_coverage(
        h in 4usize..24,
        w in 4usize..24,
        blend in blend_modes(),
    ) {
        let mut acc = MosaicAccumulator::new(1, h, w, blend);
        // One tile that deliberately misses the last row and column.
        let window = Window::new(0, 0, h - 1, w - 1);
        let pred = constant_pred(1, h - 1, w - 1, 1.0);
        acc.add_tile(&window, &window, &pred).unwrap();
        prop_assert!(acc.coverage_gap().is_some());
        prop_assert!(acc.finalize().is_err());
    }
}
