//! Steady-state allocation regression for the transform pipeline,
//! mirroring the training/serving budgets in `geotorch-bench`: after a
//! warm-up pass populates the pool's size classes, a chained augment +
//! index pipeline must run entirely from recycled buffers. The small
//! budget absorbs one-off wobble; it fails loudly if a transform
//! regresses to fresh allocation per call.
//!
//! Geometry note: the raster is 3 bands of 64×64 (12288 floats) and the
//! append/delete steps briefly grow it to 4 bands (16384 floats) — both
//! sizes are served by the same pow2 size class (2^14), so the chained
//! pipeline can be literally allocation-free once warm.

use geotorch_raster::transforms::{
    AppendNormalizedDifferenceIndex, ChannelJitter, Compose, DeleteBand, HorizontalFlip,
    NormalizeAll, RasterTransform, Rotate90, VerticalFlip,
};
use geotorch_raster::Raster;
use geotorch_tensor::pool;

const MISS_BUDGET: u64 = 8;

fn scene() -> Raster {
    let (bands, h, w) = (3usize, 64usize, 64usize);
    let data: Vec<f32> = (0..bands * h * w)
        .map(|i| ((i as f32 * 0.37).sin() + 1.5) * 0.25)
        .collect();
    Raster::new(data, bands, h, w).unwrap()
}

fn pipeline() -> Compose {
    Compose::new()
        .add(AppendNormalizedDifferenceIndex::new(0, 1))
        .add(NormalizeAll)
        .add(DeleteBand::new(3))
        .add(HorizontalFlip)
        .add(VerticalFlip)
        .add(Rotate90::new(1))
        .add(Rotate90::new(3))
        .add(ChannelJitter::new(42, 0.05))
}

#[test]
fn chained_transform_pipeline_is_steady_state_allocation_free() {
    pool::set_enabled(true);
    let chain = pipeline();
    let mut raster = scene();

    // Warm-up: two passes populate every size class the chain touches
    // (band-grown raster, normalized-difference scratch, rotation
    // scratch, the clone made by `apply`).
    for _ in 0..2 {
        chain.apply_mut(&mut raster).unwrap();
        let _ = chain.apply(&raster).unwrap();
    }

    let before = pool::stats();
    for _ in 0..32 {
        chain.apply_mut(&mut raster).unwrap();
    }
    let after = pool::stats();

    let misses = after.misses - before.misses;
    let hits = after.hits - before.hits;
    eprintln!("transform steady state: {hits} pool hits, {misses} misses (budget {MISS_BUDGET})");
    assert!(
        misses <= MISS_BUDGET,
        "steady-state transform chain allocated fresh buffers {misses} times \
         (budget {MISS_BUDGET}, hits {hits}) — a transform stopped recycling"
    );
    // The budget only means something if the chain actually recycles.
    assert!(
        hits >= 32,
        "expected the chain to acquire scratch from the pool every pass, saw {hits} hits"
    );
    assert_eq!(raster.bands(), 3);
    assert_eq!((raster.height(), raster.width()), (64, 64));
}

#[test]
fn cloning_apply_path_recycles_the_clone() {
    pool::set_enabled(true);
    let chain = pipeline();
    let raster = scene();

    for _ in 0..2 {
        let _ = chain.apply(&raster).unwrap();
    }

    let before = pool::stats();
    for _ in 0..16 {
        // `apply` clones (pooled), runs the chain in place, and the
        // result's Drop shelves the buffer for the next iteration.
        let out = chain.apply(&raster).unwrap();
        assert_eq!(out.bands(), raster.bands());
    }
    let after = pool::stats();

    let misses = after.misses - before.misses;
    assert!(
        misses <= MISS_BUDGET,
        "apply() clone path allocated fresh buffers {misses} times (budget {MISS_BUDGET})"
    );
}
