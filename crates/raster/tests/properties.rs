//! Property-based tests for raster invariants.

use proptest::prelude::*;

use geotorch_raster::algebra::{
    add_bands, divide_bands, multiply_bands, normalize_band, normalized_difference,
    subtract_bands,
};
use geotorch_raster::glcm::{Glcm, GlcmDirection};
use geotorch_raster::gtiff;
use geotorch_raster::transforms::{
    AppendNormalizedDifferenceIndex, Compose, DeleteBand, NormalizeAll, RasterTransform,
};
use geotorch_raster::{GeoTransform, Raster};

fn raster_strategy(max_bands: usize, max_side: usize) -> impl Strategy<Value = Raster> {
    (1..=max_bands, 1..=max_side, 1..=max_side).prop_flat_map(|(b, h, w)| {
        prop::collection::vec(-10.0f32..10.0, b * h * w)
            .prop_map(move |data| Raster::new(data, b, h, w).unwrap())
    })
}

proptest! {
    /// GTRF encode/decode is the identity, including georeferencing.
    #[test]
    fn gtrf_round_trip(mut r in raster_strategy(4, 8), epsg in 0u32..100_000,
                       ox in -1e6f64..1e6, oy in -1e6f64..1e6) {
        r.epsg = epsg;
        r.transform = GeoTransform { origin_x: ox, origin_y: oy, pixel_width: 0.5, pixel_height: 0.25 };
        let back = gtiff::decode(&gtiff::encode(&r)).unwrap();
        prop_assert_eq!(back, r);
    }

    /// Any single corrupted byte in the sample section is detected.
    #[test]
    fn gtrf_detects_corruption(r in raster_strategy(2, 6), flip in 0usize..64) {
        let mut bytes = gtiff::encode(&r).to_vec();
        let body_start = bytes.len() - r.as_slice().len() * 4;
        if body_start >= bytes.len() { return Ok(()); }
        let idx = body_start + (flip % (bytes.len() - body_start));
        bytes[idx] ^= 0x55;
        prop_assert!(gtiff::decode(&bytes).is_err());
    }

    /// Band algebra identities: a - b = -(b - a); (a+b) - b = a;
    /// (a*b)/b = a where b ≠ 0.
    #[test]
    fn band_algebra_identities(r in raster_strategy(2, 6)) {
        prop_assume!(r.bands() >= 2);
        let ab = subtract_bands(&r, 0, 1).unwrap();
        let ba = subtract_bands(&r, 1, 0).unwrap();
        for (x, y) in ab.iter().zip(&ba) {
            prop_assert!((x + y).abs() < 1e-4);
        }
        let sum = add_bands(&r, 0, 1).unwrap();
        let band1 = r.band(1).unwrap();
        let band0 = r.band(0).unwrap();
        for ((s, b), a) in sum.iter().zip(band1).zip(band0) {
            prop_assert!((s - b - a).abs() < 1e-4);
        }
        let prod = multiply_bands(&r, 0, 1).unwrap();
        let mut with_prod = r.clone();
        with_prod.push_band(&prod).unwrap();
        let back = divide_bands(&with_prod, 2, 1).unwrap();
        for ((v, a), b) in back.iter().zip(band0).zip(band1) {
            if b.abs() > 1e-3 {
                prop_assert!((v - a).abs() < 2e-2 * (1.0 + a.abs()), "{v} vs {a}");
            }
        }
    }

    /// The normalized difference always lies in [-1, 1] for non-negative
    /// bands.
    #[test]
    fn ndi_bounded(data in prop::collection::vec(0.0f32..10.0, 2 * 9)) {
        let r = Raster::new(data, 2, 3, 3).unwrap();
        let nd = normalized_difference(&r, 0, 1).unwrap();
        prop_assert!(nd.iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    /// normalize_band output is always within [0, 1] and attains the
    /// bounds for non-constant inputs.
    #[test]
    fn normalize_band_bounds(data in prop::collection::vec(-100.0f32..100.0, 1..64)) {
        let n = normalize_band(&data);
        prop_assert!(n.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let distinct = data.iter().any(|&v| (v - data[0]).abs() > 1e-6);
        if distinct {
            prop_assert!(n.contains(&0.0));
            prop_assert!(n.contains(&1.0));
        }
    }

    /// GLCM probabilities form a symmetric distribution for any image.
    #[test]
    fn glcm_is_distribution(data in prop::collection::vec(0.0f32..1.0, 16), levels in 2usize..8) {
        let g = Glcm::compute(&data, 4, 4, levels, GlcmDirection::South).unwrap();
        let mut total = 0.0;
        for i in 0..levels {
            for j in 0..levels {
                total += g.p(i, j);
                prop_assert!((g.p(i, j) - g.p(j, i)).abs() < 1e-12);
            }
        }
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(g.homogeneity() <= 1.0 + 1e-9);
        prop_assert!(g.energy() <= 1.0 + 1e-9);
        prop_assert!(g.correlation().abs() <= 1.0 + 1e-6);
    }

    /// Append-then-delete of the appended band restores the original.
    #[test]
    fn transform_append_delete_round_trip(r in raster_strategy(3, 6)) {
        prop_assume!(r.bands() >= 2);
        let appended = AppendNormalizedDifferenceIndex::new(0, 1).apply(&r).unwrap();
        let restored = DeleteBand::new(appended.bands() - 1).apply(&appended).unwrap();
        prop_assert_eq!(restored, r);
    }

    /// Composed NormalizeAll is idempotent.
    #[test]
    fn normalize_all_idempotent(r in raster_strategy(3, 6)) {
        let once = NormalizeAll.apply(&r).unwrap();
        let twice = Compose::new().add(NormalizeAll).add(NormalizeAll).apply(&r).unwrap();
        for (a, b) in once.as_slice().iter().zip(twice.as_slice()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }
}
