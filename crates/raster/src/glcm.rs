//! Gray-Level Co-occurrence Matrix texture features (Haralick features).
//!
//! DeepSAT V2 (the paper's §II-C) fuses handcrafted texture features into
//! the CNN feature vector because CNNs cannot learn Haralick-style
//! statistics on their own. This module extracts the six features the
//! paper's evaluation uses: contrast, dissimilarity, homogeneity, ASM,
//! energy, and correlation (plus "momentum", the paper's name for the
//! angular second moment of order 2 — we expose it as an alias of ASM
//! squared).

use crate::error::{RasterError, RasterResult};

/// Pixel-pair offset direction for co-occurrence counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlcmDirection {
    /// Horizontal neighbour (0°): `(row, col+1)`.
    East,
    /// Vertical neighbour (90°): `(row+1, col)`.
    South,
    /// Diagonal neighbour (45°): `(row+1, col+1)`.
    SouthEast,
    /// Anti-diagonal neighbour (135°): `(row+1, col-1)`.
    SouthWest,
}

impl GlcmDirection {
    fn offset(self) -> (isize, isize) {
        match self {
            GlcmDirection::East => (0, 1),
            GlcmDirection::South => (1, 0),
            GlcmDirection::SouthEast => (1, 1),
            GlcmDirection::SouthWest => (1, -1),
        }
    }
}

/// A normalised, symmetric co-occurrence matrix over quantised gray
/// levels.
#[derive(Debug, Clone)]
pub struct Glcm {
    probs: Vec<f64>,
    levels: usize,
}

impl Glcm {
    /// Quantise `samples` (an `height × width` band) to `levels` gray
    /// levels and count co-occurring pairs along `direction`. The matrix
    /// is symmetrised and normalised to probabilities.
    pub fn compute(
        samples: &[f32],
        height: usize,
        width: usize,
        levels: usize,
        direction: GlcmDirection,
    ) -> RasterResult<Glcm> {
        if samples.len() != height * width {
            return Err(RasterError::DimensionMismatch(format!(
                "{} samples do not fit {height}x{width}",
                samples.len()
            )));
        }
        if levels < 2 {
            return Err(RasterError::InvalidArgument(
                "GLCM needs at least 2 gray levels".into(),
            ));
        }
        let quantised = quantise(samples, levels);
        let (dr, dc) = direction.offset();
        let mut counts = vec![0u64; levels * levels];
        let mut total = 0u64;
        for r in 0..height {
            for c in 0..width {
                let (nr, nc) = (r as isize + dr, c as isize + dc);
                if nr < 0 || nc < 0 || nr >= height as isize || nc >= width as isize {
                    continue;
                }
                let a = quantised[r * width + c];
                let b = quantised[nr as usize * width + nc as usize];
                counts[a * levels + b] += 1;
                counts[b * levels + a] += 1; // symmetric
                total += 2;
            }
        }
        let probs = counts
            .iter()
            .map(|&c| if total > 0 { c as f64 / total as f64 } else { 0.0 })
            .collect();
        Ok(Glcm { probs, levels })
    }

    /// Direction-averaged GLCM: the mean of the co-occurrence matrices
    /// over all four directions, the rotation-invariant form most texture
    /// pipelines (including DeepSAT's) use.
    pub fn compute_averaged(
        samples: &[f32],
        height: usize,
        width: usize,
        levels: usize,
    ) -> RasterResult<Glcm> {
        let directions = [
            GlcmDirection::East,
            GlcmDirection::South,
            GlcmDirection::SouthEast,
            GlcmDirection::SouthWest,
        ];
        let mut probs = vec![0.0f64; levels * levels];
        for direction in directions {
            let g = Glcm::compute(samples, height, width, levels, direction)?;
            for (acc, p) in probs.iter_mut().zip(&g.probs) {
                *acc += p / directions.len() as f64;
            }
        }
        Ok(Glcm { probs, levels })
    }

    /// Probability of the (i, j) gray-level pair.
    pub fn p(&self, i: usize, j: usize) -> f64 {
        self.probs[i * self.levels + j]
    }

    /// Number of gray levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Contrast: `Σ p(i,j) (i-j)²`.
    pub fn contrast(&self) -> f64 {
        self.weighted_sum(|i, j| ((i as f64) - (j as f64)).powi(2))
    }

    /// Dissimilarity: `Σ p(i,j) |i-j|`.
    pub fn dissimilarity(&self) -> f64 {
        self.weighted_sum(|i, j| ((i as f64) - (j as f64)).abs())
    }

    /// Homogeneity (inverse difference moment): `Σ p / (1 + (i-j)²)`.
    pub fn homogeneity(&self) -> f64 {
        self.weighted_sum_p(|p, i, j| p / (1.0 + ((i as f64) - (j as f64)).powi(2)))
    }

    /// Angular second moment: `Σ p²`.
    pub fn asm(&self) -> f64 {
        self.probs.iter().map(|&p| p * p).sum()
    }

    /// Energy: `sqrt(ASM)`.
    pub fn energy(&self) -> f64 {
        self.asm().sqrt()
    }

    /// "Momentum" — the paper's listed texture feature, the third-order
    /// moment `Σ p³`.
    pub fn momentum(&self) -> f64 {
        self.probs.iter().map(|&p| p * p * p).sum()
    }

    /// Correlation: `Σ p (i-μ)(j-μ) / σ²` (symmetric matrix, so means and
    /// variances coincide along both axes). Returns 0 for zero variance.
    pub fn correlation(&self) -> f64 {
        let mut mean = 0.0;
        for i in 0..self.levels {
            for j in 0..self.levels {
                mean += i as f64 * self.p(i, j);
            }
        }
        let mut var = 0.0;
        for i in 0..self.levels {
            for j in 0..self.levels {
                var += (i as f64 - mean).powi(2) * self.p(i, j);
            }
        }
        if var < 1e-12 {
            return 0.0;
        }
        let mut corr = 0.0;
        for i in 0..self.levels {
            for j in 0..self.levels {
                corr += self.p(i, j) * (i as f64 - mean) * (j as f64 - mean);
            }
        }
        corr / var
    }

    /// The six texture features in the paper's order:
    /// contrast, dissimilarity, correlation, homogeneity, momentum, energy.
    pub fn feature_vector(&self) -> [f64; 6] {
        [
            self.contrast(),
            self.dissimilarity(),
            self.correlation(),
            self.homogeneity(),
            self.momentum(),
            self.energy(),
        ]
    }

    fn weighted_sum(&self, w: impl Fn(usize, usize) -> f64) -> f64 {
        self.weighted_sum_p(|p, i, j| p * w(i, j))
    }

    fn weighted_sum_p(&self, f: impl Fn(f64, usize, usize) -> f64) -> f64 {
        let mut acc = 0.0;
        for i in 0..self.levels {
            for j in 0..self.levels {
                acc += f(self.p(i, j), i, j);
            }
        }
        acc
    }
}

fn quantise(samples: &[f32], levels: usize) -> Vec<usize> {
    let (lo, hi) = crate::algebra::value_range(samples);
    let span = hi - lo;
    if span.abs() < f32::EPSILON {
        return vec![0; samples.len()];
    }
    samples
        .iter()
        .map(|&v| ((((v - lo) / span) * levels as f32) as usize).min(levels - 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_image_is_maximally_homogeneous() {
        let g = Glcm::compute(&[5.0; 16], 4, 4, 8, GlcmDirection::East).unwrap();
        assert_eq!(g.contrast(), 0.0);
        assert_eq!(g.dissimilarity(), 0.0);
        assert!((g.homogeneity() - 1.0).abs() < 1e-9);
        assert!((g.asm() - 1.0).abs() < 1e-9);
        assert!((g.energy() - 1.0).abs() < 1e-9);
        assert_eq!(g.correlation(), 0.0); // zero variance convention
    }

    #[test]
    fn checkerboard_has_high_contrast() {
        // 4x4 checkerboard of 0/1.
        let mut img = vec![0.0f32; 16];
        for r in 0..4 {
            for c in 0..4 {
                img[r * 4 + c] = ((r + c) % 2) as f32;
            }
        }
        let g = Glcm::compute(&img, 4, 4, 2, GlcmDirection::East).unwrap();
        // Every horizontal pair differs: contrast = 1, homogeneity = 0.5.
        assert!((g.contrast() - 1.0).abs() < 1e-9);
        assert!((g.dissimilarity() - 1.0).abs() < 1e-9);
        assert!((g.homogeneity() - 0.5).abs() < 1e-9);
        // Perfect anti-correlation along east pairs.
        assert!(g.correlation() < -0.9);
    }

    #[test]
    fn horizontal_stripes_direction_sensitivity() {
        // Rows alternate 0 and 1: east pairs are equal, south pairs differ.
        let mut img = vec![0.0f32; 16];
        for r in 0..4 {
            for c in 0..4 {
                img[r * 4 + c] = (r % 2) as f32;
            }
        }
        let east = Glcm::compute(&img, 4, 4, 2, GlcmDirection::East).unwrap();
        let south = Glcm::compute(&img, 4, 4, 2, GlcmDirection::South).unwrap();
        assert_eq!(east.contrast(), 0.0);
        assert!(south.contrast() > 0.9);
    }

    #[test]
    fn matrix_is_normalised_and_symmetric() {
        let img: Vec<f32> = (0..36).map(|i| (i % 7) as f32).collect();
        let g = Glcm::compute(&img, 6, 6, 4, GlcmDirection::SouthEast).unwrap();
        let total: f64 = (0..4)
            .flat_map(|i| (0..4).map(move |j| (i, j)))
            .map(|(i, j)| g.p(i, j))
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
        for i in 0..4 {
            for j in 0..4 {
                assert!((g.p(i, j) - g.p(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn feature_vector_ordering() {
        let img: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let g = Glcm::compute(&img, 4, 4, 4, GlcmDirection::East).unwrap();
        let f = g.feature_vector();
        assert_eq!(f[0], g.contrast());
        assert_eq!(f[2], g.correlation());
        assert_eq!(f[5], g.energy());
        // Smooth gradient: strongly positively correlated neighbours.
        assert!(g.correlation() > 0.5);
    }

    #[test]
    fn averaged_glcm_is_rotation_fair() {
        // Horizontal stripes: single directions disagree wildly; the
        // averaged matrix blends them and stays a valid distribution.
        let mut img = vec![0.0f32; 16];
        for r in 0..4 {
            for c in 0..4 {
                img[r * 4 + c] = (r % 2) as f32;
            }
        }
        let avg = Glcm::compute_averaged(&img, 4, 4, 2).unwrap();
        let east = Glcm::compute(&img, 4, 4, 2, GlcmDirection::East).unwrap();
        let south = Glcm::compute(&img, 4, 4, 2, GlcmDirection::South).unwrap();
        assert!(avg.contrast() > east.contrast());
        assert!(avg.contrast() < south.contrast());
        let total: f64 = (0..2).flat_map(|i| (0..2).map(move |j| (i, j)))
            .map(|(i, j)| avg.p(i, j)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(Glcm::compute(&[0.0; 5], 2, 3, 4, GlcmDirection::East).is_err());
        assert!(Glcm::compute(&[0.0; 6], 2, 3, 1, GlcmDirection::East).is_err());
    }

    #[test]
    fn southwest_direction_counts_antidiagonal() {
        let img = vec![0.0, 1.0, 1.0, 0.0];
        let g = Glcm::compute(&img, 2, 2, 2, GlcmDirection::SouthWest).unwrap();
        // Only pair: (0,1)->(1,0): values 1.0 and 1.0 → equal pair.
        assert_eq!(g.contrast(), 0.0);
        assert!((g.p(1, 1) - 1.0).abs() < 1e-9);
    }
}
