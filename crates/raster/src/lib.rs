//! # geotorch-raster
//!
//! Multi-band raster imagery support for GeoTorch-RS: the raster data
//! model, map-algebra operations, transformation operations, GLCM texture
//! features, and a compact on-disk raster container (GTRF) standing in for
//! GeoTIFF.
//!
//! This crate reproduces the raster side of GeoTorchAI's preprocessing and
//! transforms modules (§III-A3 and §III-B2 of the paper): normalising
//! bands, appending normalized-difference indices (NDVI, NDWI, …),
//! inserting/deleting/masking bands, extracting spectral and GLCM texture
//! features for DeepSAT-style feature fusion, and reading/writing raster
//! files.

#![warn(missing_docs)]

pub mod algebra;
pub mod error;
pub mod glcm;
pub mod gtiff;
pub mod mosaic;
pub mod raster;
pub mod transforms;

pub use error::{RasterError, RasterResult};
pub use mosaic::{core_of, BlendMode, MosaicAccumulator, Window};
pub use raster::{GeoTransform, Raster};
