//! Map-algebra operations on raster bands (§III-B2 of the paper).
//!
//! Covers the operation families GeoTorchAI added to Apache Sedona:
//! normalized-difference indices, per-band statistics (mean/mode), band
//! arithmetic (add/subtract/multiply/divide), square root and modulo, and
//! bitwise logical operations on quantised bands.

use crate::error::{RasterError, RasterResult};
use crate::raster::Raster;
use geotorch_tensor::pool;

/// Normalized difference of two bands: `(b1 - b2) / (b1 + b2)`, with 0
/// where the denominator vanishes. This is the generic form behind NDVI,
/// NDWI, NDBI, and friends.
///
/// The returned band comes from the tensor pool; callers that consume it
/// (e.g. `push_band`) should `pool::release` it afterwards so chained
/// pipelines stay allocation-free.
pub fn normalized_difference(r: &Raster, band1: usize, band2: usize) -> RasterResult<Vec<f32>> {
    zip_bands(r, band1, band2, |x, y| {
        let denom = x + y;
        if denom.abs() < f32::EPSILON {
            0.0
        } else {
            (x - y) / denom
        }
    })
}

/// NDVI (vegetation): normalized difference of NIR and red bands.
pub fn ndvi(r: &Raster, nir: usize, red: usize) -> RasterResult<Vec<f32>> {
    normalized_difference(r, nir, red)
}

/// NDWI (water): normalized difference of green and NIR bands.
pub fn ndwi(r: &Raster, green: usize, nir: usize) -> RasterResult<Vec<f32>> {
    normalized_difference(r, green, nir)
}

/// NDBI (built-up): normalized difference of SWIR and NIR bands.
pub fn ndbi(r: &Raster, swir: usize, nir: usize) -> RasterResult<Vec<f32>> {
    normalized_difference(r, swir, nir)
}

/// Mean of a band.
pub fn band_mean(r: &Raster, band: usize) -> RasterResult<f32> {
    let b = r.band(band)?;
    Ok(b.iter().map(|&v| v as f64).sum::<f64>() as f32 / b.len() as f32)
}

/// Mode of a band after quantisation to `levels` equal bins over the
/// band's value range. Returns the representative (bin-centre) value.
pub fn band_mode(r: &Raster, band: usize, levels: usize) -> RasterResult<f32> {
    if levels == 0 {
        return Err(RasterError::InvalidArgument("levels must be positive".into()));
    }
    let b = r.band(band)?;
    let (lo, hi) = value_range(b);
    if (hi - lo).abs() < f32::EPSILON {
        return Ok(lo);
    }
    let mut counts = vec![0usize; levels];
    for &v in b {
        let bin = (((v - lo) / (hi - lo)) * levels as f32) as usize;
        counts[bin.min(levels - 1)] += 1;
    }
    let best = counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0);
    Ok(lo + (best as f32 + 0.5) / levels as f32 * (hi - lo))
}

/// Elementwise combination of two bands into a pooled output band.
fn zip_bands(
    r: &Raster,
    band1: usize,
    band2: usize,
    f: impl Fn(f32, f32) -> f32,
) -> RasterResult<Vec<f32>> {
    let a = r.band(band1)?;
    let b = r.band(band2)?;
    let mut out = pool::alloc_uninit(a.len());
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = f(x, y);
    }
    Ok(out)
}

/// Sum of two bands.
pub fn add_bands(r: &Raster, band1: usize, band2: usize) -> RasterResult<Vec<f32>> {
    zip_bands(r, band1, band2, |a, b| a + b)
}

/// Difference of two bands.
pub fn subtract_bands(r: &Raster, band1: usize, band2: usize) -> RasterResult<Vec<f32>> {
    zip_bands(r, band1, band2, |a, b| a - b)
}

/// Product of two bands.
pub fn multiply_bands(r: &Raster, band1: usize, band2: usize) -> RasterResult<Vec<f32>> {
    zip_bands(r, band1, band2, |a, b| a * b)
}

/// Quotient of two bands (0 where the divisor vanishes).
pub fn divide_bands(r: &Raster, band1: usize, band2: usize) -> RasterResult<Vec<f32>> {
    zip_bands(r, band1, band2, |a, b| if b.abs() < f32::EPSILON { 0.0 } else { a / b })
}

/// Elementwise map of one band into a pooled output band.
fn map_band(r: &Raster, band: usize, f: impl Fn(f32) -> f32) -> RasterResult<Vec<f32>> {
    let a = r.band(band)?;
    let mut out = pool::alloc_uninit(a.len());
    for (o, &x) in out.iter_mut().zip(a) {
        *o = f(x);
    }
    Ok(out)
}

/// Square root of a band (negative samples clamp to 0).
pub fn band_sqrt(r: &Raster, band: usize) -> RasterResult<Vec<f32>> {
    map_band(r, band, |v| v.max(0.0).sqrt())
}

/// Elementwise modulo of a band by a scalar divisor.
pub fn band_modulo(r: &Raster, band: usize, divisor: f32) -> RasterResult<Vec<f32>> {
    if divisor.abs() < f32::EPSILON {
        return Err(RasterError::InvalidArgument("modulo by zero".into()));
    }
    map_band(r, band, |v| v.rem_euclid(divisor))
}

/// Bitwise AND of two bands after rounding samples to `u32`.
pub fn bitwise_and(r: &Raster, band1: usize, band2: usize) -> RasterResult<Vec<f32>> {
    zip_bands(r, band1, band2, |a, b| {
        ((a.max(0.0).round() as u32) & (b.max(0.0).round() as u32)) as f32
    })
}

/// Bitwise OR of two bands after rounding samples to `u32`.
pub fn bitwise_or(r: &Raster, band1: usize, band2: usize) -> RasterResult<Vec<f32>> {
    zip_bands(r, band1, band2, |a, b| {
        ((a.max(0.0).round() as u32) | (b.max(0.0).round() as u32)) as f32
    })
}

/// Min and max of a slice (0s for empty input).
pub fn value_range(samples: &[f32]) -> (f32, f32) {
    samples.iter().fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| {
        (lo.min(v), hi.max(v))
    })
}

/// Min-max normalise a band into `[0, 1]` in place (constant bands map
/// to 0) — the allocation-free primitive behind [`normalize_band`].
pub fn normalize_band_into(samples: &mut [f32]) {
    let (lo, hi) = value_range(samples);
    let span = hi - lo;
    if span.abs() < f32::EPSILON {
        samples.fill(0.0);
        return;
    }
    for v in samples {
        *v = (*v - lo) / span;
    }
}

/// Min-max normalise a band into `[0, 1]` (constant bands map to 0).
/// Returns a pooled buffer.
pub fn normalize_band(samples: &[f32]) -> Vec<f32> {
    let mut out = pool::alloc_copy(samples);
    normalize_band_into(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r() -> Raster {
        Raster::new(
            vec![
                2.0, 4.0, 6.0, 8.0, // band 0
                1.0, 2.0, 3.0, 4.0, // band 1
            ],
            2,
            2,
            2,
        )
        .unwrap()
    }

    #[test]
    fn normalized_difference_values() {
        let nd = normalized_difference(&r(), 0, 1).unwrap();
        // (2-1)/3, (4-2)/6, ...all = 1/3
        for v in nd {
            assert!((v - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn normalized_difference_zero_denominator() {
        let raster = Raster::new(vec![1.0, 0.0, -1.0, 0.0], 2, 1, 2).unwrap();
        let nd = normalized_difference(&raster, 0, 1).unwrap();
        assert_eq!(nd, vec![0.0, 0.0]);
    }

    #[test]
    fn named_indices_are_directional() {
        // NDVI with strong NIR should be positive; NDWI then negative.
        let raster = Raster::new(vec![0.8, 0.8, 0.1, 0.1, 0.2, 0.2], 3, 1, 2).unwrap();
        assert!(ndvi(&raster, 0, 1).unwrap().iter().all(|&v| v > 0.0));
        assert!(ndwi(&raster, 2, 0).unwrap().iter().all(|&v| v < 0.0));
        assert!(ndbi(&raster, 1, 0).unwrap().iter().all(|&v| v < 0.0));
    }

    #[test]
    fn band_arithmetic() {
        let raster = r();
        assert_eq!(add_bands(&raster, 0, 1).unwrap(), vec![3.0, 6.0, 9.0, 12.0]);
        assert_eq!(subtract_bands(&raster, 0, 1).unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(multiply_bands(&raster, 0, 1).unwrap(), vec![2.0, 8.0, 18.0, 32.0]);
        assert_eq!(divide_bands(&raster, 0, 1).unwrap(), vec![2.0; 4]);
    }

    #[test]
    fn divide_by_zero_band_is_zero() {
        let raster = Raster::new(vec![5.0, 5.0, 0.0, 2.0], 2, 1, 2).unwrap();
        assert_eq!(divide_bands(&raster, 0, 1).unwrap(), vec![0.0, 2.5]);
    }

    #[test]
    fn sqrt_and_modulo() {
        let raster = Raster::new(vec![4.0, 9.0, -1.0, 16.0], 1, 2, 2).unwrap();
        assert_eq!(band_sqrt(&raster, 0).unwrap(), vec![2.0, 3.0, 0.0, 4.0]);
        assert_eq!(band_modulo(&raster, 0, 5.0).unwrap(), vec![4.0, 4.0, 4.0, 1.0]);
        assert!(band_modulo(&raster, 0, 0.0).is_err());
    }

    #[test]
    fn bitwise_ops() {
        let raster = Raster::new(vec![6.0, 12.0, 3.0, 10.0], 2, 1, 2).unwrap();
        assert_eq!(bitwise_and(&raster, 0, 1).unwrap(), vec![2.0, 8.0]);
        assert_eq!(bitwise_or(&raster, 0, 1).unwrap(), vec![7.0, 14.0]);
    }

    #[test]
    fn mean_and_mode() {
        let raster = Raster::new(vec![1.0, 1.0, 1.0, 9.0], 1, 2, 2).unwrap();
        assert_eq!(band_mean(&raster, 0).unwrap(), 3.0);
        // Mode bin should sit near 1.
        let mode = band_mode(&raster, 0, 8).unwrap();
        assert!(mode < 3.0, "mode {mode} should be near 1");
        // Constant band: mode is the constant.
        let flat = Raster::new(vec![5.0; 4], 1, 2, 2).unwrap();
        assert_eq!(band_mode(&flat, 0, 4).unwrap(), 5.0);
    }

    #[test]
    fn normalize_band_range() {
        let n = normalize_band(&[2.0, 4.0, 6.0]);
        assert_eq!(n, vec![0.0, 0.5, 1.0]);
        assert_eq!(normalize_band(&[3.0, 3.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn errors_on_bad_band() {
        assert!(normalized_difference(&r(), 0, 9).is_err());
        assert!(band_mean(&r(), 9).is_err());
    }
}
