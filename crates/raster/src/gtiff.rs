//! GTRF: a compact binary multi-band raster container.
//!
//! The paper's preprocessing module reads and writes GeoTIFF through
//! Apache Sedona. This reproduction uses GTRF, a minimal container with
//! the same responsibilities — multi-band f32 samples, georeferencing
//! (affine transform + EPSG code), and integrity checking — so the
//! load → transform → write pipeline (Listing 9) exercises the same code
//! path without a TIFF dependency.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic   [u8; 4]  = b"GTRF"
//! version u16      = 1
//! epsg    u32
//! bands   u32
//! height  u32
//! width   u32
//! transform [f64; 4]  (origin_x, origin_y, pixel_width, pixel_height)
//! checksum u64        FNV-1a over the sample section
//! samples  [f32; bands*height*width]
//! ```

use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{RasterError, RasterResult};
use crate::raster::{GeoTransform, Raster};

const MAGIC: &[u8; 4] = b"GTRF";
const VERSION: u16 = 1;
const HEADER_LEN: usize = 4 + 2 + 4 + 4 + 4 + 4 + 32 + 8;

/// Serialise a raster to the GTRF wire format.
pub fn encode(raster: &Raster) -> Bytes {
    let samples = raster.as_slice();
    let mut buf = BytesMut::with_capacity(HEADER_LEN + samples.len() * 4);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(raster.epsg);
    buf.put_u32_le(raster.bands() as u32);
    buf.put_u32_le(raster.height() as u32);
    buf.put_u32_le(raster.width() as u32);
    buf.put_f64_le(raster.transform.origin_x);
    buf.put_f64_le(raster.transform.origin_y);
    buf.put_f64_le(raster.transform.pixel_width);
    buf.put_f64_le(raster.transform.pixel_height);
    let mut body = BytesMut::with_capacity(samples.len() * 4);
    for &v in samples {
        body.put_f32_le(v);
    }
    buf.put_u64_le(fnv1a(&body));
    buf.extend_from_slice(&body);
    buf.freeze()
}

/// Parse a raster from GTRF bytes, verifying magic, version, dimensions,
/// and the sample checksum.
pub fn decode(data: &[u8]) -> RasterResult<Raster> {
    if data.len() < HEADER_LEN {
        return Err(RasterError::Corrupt(format!(
            "truncated header: {} bytes",
            data.len()
        )));
    }
    let mut buf = data;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(RasterError::Corrupt("bad magic".into()));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(RasterError::Corrupt(format!(
            "unsupported version {version}"
        )));
    }
    let epsg = buf.get_u32_le();
    let bands = buf.get_u32_le() as usize;
    let height = buf.get_u32_le() as usize;
    let width = buf.get_u32_le() as usize;
    let transform = GeoTransform {
        origin_x: buf.get_f64_le(),
        origin_y: buf.get_f64_le(),
        pixel_width: buf.get_f64_le(),
        pixel_height: buf.get_f64_le(),
    };
    let checksum = buf.get_u64_le();
    let expected = bands
        .checked_mul(height)
        .and_then(|v| v.checked_mul(width))
        .and_then(|v| v.checked_mul(4))
        .ok_or_else(|| RasterError::Corrupt("dimension overflow".into()))?;
    if buf.remaining() != expected {
        return Err(RasterError::Corrupt(format!(
            "sample section has {} bytes, header implies {}",
            buf.remaining(),
            expected
        )));
    }
    if fnv1a(buf) != checksum {
        return Err(RasterError::Corrupt("checksum mismatch".into()));
    }
    let mut samples = Vec::with_capacity(bands * height * width);
    let mut body = buf;
    while body.remaining() >= 4 {
        samples.push(body.get_f32_le());
    }
    let mut raster = Raster::new(samples, bands, height, width)?;
    raster.transform = transform;
    raster.epsg = epsg;
    Ok(raster)
}

/// Write a raster to a GTRF file.
pub fn write_file(raster: &Raster, path: impl AsRef<Path>) -> RasterResult<()> {
    std::fs::write(path, encode(raster))?;
    Ok(())
}

/// Read a raster from a GTRF file.
pub fn read_file(path: impl AsRef<Path>) -> RasterResult<Raster> {
    let data = std::fs::read(path)?;
    decode(&data)
}

fn fnv1a(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Raster {
        let mut r = Raster::new((0..24).map(|v| v as f32 * 0.5).collect(), 2, 3, 4).unwrap();
        r.epsg = 4326;
        r.transform = GeoTransform {
            origin_x: -74.05,
            origin_y: 40.9,
            pixel_width: 0.01,
            pixel_height: 0.01,
        };
        r
    }

    #[test]
    fn encode_decode_round_trip() {
        let r = sample();
        let bytes = encode(&r);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.epsg, 4326);
        assert_eq!(back.transform, r.transform);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("geotorch_gtrf_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.gtrf");
        let r = sample();
        write_file(&r, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back, r);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode(&sample()).to_vec();
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(RasterError::Corrupt(_))));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = encode(&sample()).to_vec();
        bytes[4] = 99;
        assert!(matches!(decode(&bytes), Err(RasterError::Corrupt(_))));
    }

    #[test]
    fn rejects_truncated_body() {
        let bytes = encode(&sample());
        let cut = &bytes[..bytes.len() - 4];
        assert!(matches!(decode(cut), Err(RasterError::Corrupt(_))));
    }

    #[test]
    fn rejects_truncated_header() {
        assert!(matches!(decode(&[0u8; 10]), Err(RasterError::Corrupt(_))));
    }

    #[test]
    fn detects_flipped_sample_bits() {
        let mut bytes = encode(&sample()).to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        match decode(&bytes) {
            Err(RasterError::Corrupt(msg)) => assert!(msg.contains("checksum")),
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            read_file("/nonexistent/raster.gtrf"),
            Err(RasterError::Io(_))
        ));
    }
}
