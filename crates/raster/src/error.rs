//! Error type for raster operations.

use std::fmt;

/// Result alias for raster operations.
pub type RasterResult<T> = Result<T, RasterError>;

/// Errors surfaced by raster processing.
#[derive(Debug)]
pub enum RasterError {
    /// Band index outside `0..bands`.
    BandOutOfRange {
        /// Requested band.
        band: usize,
        /// Available band count.
        bands: usize,
    },
    /// Two rasters (or bands) had incompatible dimensions.
    DimensionMismatch(String),
    /// Operation-specific invalid argument.
    InvalidArgument(String),
    /// Malformed GTRF container data.
    Corrupt(String),
    /// Underlying file I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for RasterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RasterError::BandOutOfRange { band, bands } => {
                write!(f, "band {band} out of range (raster has {bands})")
            }
            RasterError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            RasterError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            RasterError::Corrupt(msg) => write!(f, "corrupt raster data: {msg}"),
            RasterError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for RasterError {}

impl From<std::io::Error> for RasterError {
    fn from(e: std::io::Error) -> Self {
        RasterError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = RasterError::BandOutOfRange { band: 5, bands: 3 };
        assert_eq!(e.to_string(), "band 5 out of range (raster has 3)");
        assert!(RasterError::Corrupt("bad magic".into())
            .to_string()
            .contains("bad magic"));
    }

    #[test]
    fn io_conversion() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: RasterError = io.into();
        assert!(matches!(e, RasterError::Io(_)));
    }
}
