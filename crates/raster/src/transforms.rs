//! Raster transformation operations (the `geotorchai.transforms.raster`
//! package of the paper, Listing 7) plus the augmentation family used by
//! windowed sampling (flips, quarter-turn rotation, affine normalize,
//! channel jitter).
//!
//! Each operation implements [`RasterTransform`] and can be chained with
//! [`Compose`], mirroring `torchvision.transforms.Compose`. The
//! *primitive* is [`RasterTransform::apply_mut`], which rewrites a
//! raster in place on pooled storage; [`RasterTransform::apply`] is the
//! pure `Raster → Raster` convenience built on one clone + `apply_mut`.
//! [`Compose`] clones once and then chains `apply_mut`, so an N-stage
//! pipeline performs one pooled allocation instead of N — the property
//! the alloc-regression suite (`raster/tests/transform_alloc.rs`) pins
//! down.

use crate::algebra::{normalize_band_into, normalized_difference};
use crate::error::{RasterError, RasterResult};
use crate::raster::Raster;
use geotorch_tensor::pool;

/// A raster-to-raster operation.
///
/// Implementors provide [`apply_mut`]; [`apply`] (clone + `apply_mut`)
/// comes for free and keeps the pure call-site ergonomics of Listing 7.
///
/// [`apply_mut`]: RasterTransform::apply_mut
/// [`apply`]: RasterTransform::apply
pub trait RasterTransform: Send + Sync {
    /// Apply the transform in place. On error the raster may be left
    /// partially transformed; callers wanting transactional semantics
    /// use [`apply`](RasterTransform::apply).
    fn apply_mut(&self, raster: &mut Raster) -> RasterResult<()>;

    /// Apply the transform to a copy (clone + [`apply_mut`]).
    ///
    /// [`apply_mut`]: RasterTransform::apply_mut
    fn apply(&self, raster: &Raster) -> RasterResult<Raster> {
        let mut out = raster.clone();
        self.apply_mut(&mut out)?;
        Ok(out)
    }

    /// Short name for diagnostics.
    fn name(&self) -> &'static str;
}

/// Append the normalized difference of two bands as a new last band
/// (Listing 7's `AppendNormalizedDifferenceIndex`).
pub struct AppendNormalizedDifferenceIndex {
    band1: usize,
    band2: usize,
}

impl AppendNormalizedDifferenceIndex {
    /// Index of the two source bands.
    pub fn new(band1: usize, band2: usize) -> Self {
        AppendNormalizedDifferenceIndex { band1, band2 }
    }
}

impl RasterTransform for AppendNormalizedDifferenceIndex {
    fn apply_mut(&self, raster: &mut Raster) -> RasterResult<()> {
        let nd = normalized_difference(raster, self.band1, self.band2)?;
        raster.push_band(&nd)?;
        pool::release(nd);
        Ok(())
    }

    fn name(&self) -> &'static str {
        "AppendNormalizedDifferenceIndex"
    }
}

/// Min-max normalise one band into `[0, 1]`.
pub struct NormalizeBand {
    band: usize,
}

impl NormalizeBand {
    /// Band to normalise.
    pub fn new(band: usize) -> Self {
        NormalizeBand { band }
    }
}

impl RasterTransform for NormalizeBand {
    fn apply_mut(&self, raster: &mut Raster) -> RasterResult<()> {
        normalize_band_into(raster.band_mut(self.band)?);
        Ok(())
    }

    fn name(&self) -> &'static str {
        "NormalizeBand"
    }
}

/// Min-max normalise every band independently.
pub struct NormalizeAll;

impl RasterTransform for NormalizeAll {
    fn apply_mut(&self, raster: &mut Raster) -> RasterResult<()> {
        for b in 0..raster.bands() {
            normalize_band_into(raster.band_mut(b)?);
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "NormalizeAll"
    }
}

/// Remove a band.
pub struct DeleteBand {
    band: usize,
}

impl DeleteBand {
    /// Band to remove.
    pub fn new(band: usize) -> Self {
        DeleteBand { band }
    }
}

impl RasterTransform for DeleteBand {
    fn apply_mut(&self, raster: &mut Raster) -> RasterResult<()> {
        raster.remove_band(self.band)
    }

    fn name(&self) -> &'static str {
        "DeleteBand"
    }
}

/// Insert a constant-valued band at an index.
pub struct InsertConstantBand {
    at: usize,
    value: f32,
}

impl InsertConstantBand {
    /// Insert before band `at` with every sample equal to `value`.
    pub fn new(at: usize, value: f32) -> Self {
        InsertConstantBand { at, value }
    }
}

impl RasterTransform for InsertConstantBand {
    fn apply_mut(&self, raster: &mut Raster) -> RasterResult<()> {
        let band = pool::alloc_filled(raster.band_len(), self.value);
        let result = raster.insert_band(self.at, &band);
        pool::release(band);
        result
    }

    fn name(&self) -> &'static str {
        "InsertConstantBand"
    }
}

/// Threshold masking: samples of a band outside the kept side of the
/// threshold are replaced with `fill`.
pub struct MaskOnThreshold {
    band: usize,
    threshold: f32,
    keep_above: bool,
    fill: f32,
}

impl MaskOnThreshold {
    /// Keep samples `> threshold` (when `keep_above`) or `< threshold`;
    /// others become `fill`.
    pub fn new(band: usize, threshold: f32, keep_above: bool, fill: f32) -> Self {
        MaskOnThreshold {
            band,
            threshold,
            keep_above,
            fill,
        }
    }
}

impl RasterTransform for MaskOnThreshold {
    fn apply_mut(&self, raster: &mut Raster) -> RasterResult<()> {
        let threshold = self.threshold;
        let keep_above = self.keep_above;
        let fill = self.fill;
        for v in raster.band_mut(self.band)? {
            let keep = if keep_above { *v > threshold } else { *v < threshold };
            if !keep {
                *v = fill;
            }
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "MaskOnThreshold"
    }
}

/// Append the ratio of two bands (`b1 / b2`, 0 on zero denominator) as a
/// new band.
pub struct AppendRatioIndex {
    band1: usize,
    band2: usize,
}

impl AppendRatioIndex {
    /// Numerator and denominator bands.
    pub fn new(band1: usize, band2: usize) -> Self {
        AppendRatioIndex { band1, band2 }
    }
}

impl RasterTransform for AppendRatioIndex {
    fn apply_mut(&self, raster: &mut Raster) -> RasterResult<()> {
        let ratio = crate::algebra::divide_bands(raster, self.band1, self.band2)?;
        raster.push_band(&ratio)?;
        pool::release(ratio);
        Ok(())
    }

    fn name(&self) -> &'static str {
        "AppendRatioIndex"
    }
}

/// Mirror every band left↔right (augmentation).
pub struct HorizontalFlip;

impl RasterTransform for HorizontalFlip {
    fn apply_mut(&self, raster: &mut Raster) -> RasterResult<()> {
        raster.flip_horizontal_();
        Ok(())
    }

    fn name(&self) -> &'static str {
        "HorizontalFlip"
    }
}

/// Mirror every band top↕bottom (augmentation).
pub struct VerticalFlip;

impl RasterTransform for VerticalFlip {
    fn apply_mut(&self, raster: &mut Raster) -> RasterResult<()> {
        raster.flip_vertical_();
        Ok(())
    }

    fn name(&self) -> &'static str {
        "VerticalFlip"
    }
}

/// Rotate every band by `turns × 90°` clockwise (augmentation). Odd
/// turn counts swap the raster's height and width.
pub struct Rotate90 {
    turns: usize,
}

impl Rotate90 {
    /// Number of clockwise quarter turns (taken modulo 4).
    pub fn new(turns: usize) -> Self {
        Rotate90 { turns }
    }
}

impl RasterTransform for Rotate90 {
    fn apply_mut(&self, raster: &mut Raster) -> RasterResult<()> {
        raster.rotate90_(self.turns);
        Ok(())
    }

    fn name(&self) -> &'static str {
        "Rotate90"
    }
}

/// Affine per-band standardisation: `v ← (v − mean[b]) / std[b]` — the
/// dataset-statistics normalisation used before inference (as opposed to
/// [`NormalizeBand`]'s per-image min-max).
pub struct Normalize {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Normalize {
    /// Per-band means and standard deviations. Lengths must match the
    /// raster's band count at apply time; stds must be non-zero.
    pub fn new(mean: Vec<f32>, std: Vec<f32>) -> Self {
        Normalize { mean, std }
    }
}

impl RasterTransform for Normalize {
    fn apply_mut(&self, raster: &mut Raster) -> RasterResult<()> {
        if self.mean.len() != raster.bands() || self.std.len() != raster.bands() {
            return Err(RasterError::DimensionMismatch(format!(
                "normalize stats for {} bands applied to {}-band raster",
                self.mean.len(),
                raster.bands()
            )));
        }
        if let Some(b) = self.std.iter().position(|&s| s.abs() < f32::EPSILON) {
            return Err(RasterError::InvalidArgument(format!(
                "normalize std for band {b} is zero"
            )));
        }
        for b in 0..raster.bands() {
            let (mean, inv_std) = (self.mean[b], 1.0 / self.std[b]);
            for v in raster.band_mut(b)? {
                *v = (*v - mean) * inv_std;
            }
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "Normalize"
    }
}

/// Deterministic per-band brightness jitter (augmentation): each band is
/// scaled by a factor drawn uniformly from `[1 − amplitude, 1 +
/// amplitude]`, derived from the seed and band index with a splitmix64
/// hash so the same seed always produces the same jitter.
pub struct ChannelJitter {
    seed: u64,
    amplitude: f32,
}

impl ChannelJitter {
    /// Jitter with the given seed and relative amplitude (e.g. `0.1` for
    /// ±10% per-band gain).
    pub fn new(seed: u64, amplitude: f32) -> Self {
        ChannelJitter { seed, amplitude }
    }

    /// The gain applied to `band` (exposed for tests).
    pub fn gain(&self, band: usize) -> f32 {
        // splitmix64: decorrelates consecutive band indices.
        let mut z = self.seed.wrapping_add((band as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f32 / (1u64 << 53) as f32; // [0, 1)
        1.0 + self.amplitude * (2.0 * unit - 1.0)
    }
}

impl RasterTransform for ChannelJitter {
    fn apply_mut(&self, raster: &mut Raster) -> RasterResult<()> {
        for b in 0..raster.bands() {
            let gain = self.gain(b);
            for v in raster.band_mut(b)? {
                *v *= gain;
            }
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "ChannelJitter"
    }
}

/// A chain of transforms applied left to right
/// (`torchvision.transforms.Compose`). `apply` clones the input once and
/// then runs every stage in place.
#[derive(Default)]
pub struct Compose {
    transforms: Vec<Box<dyn RasterTransform>>,
}

impl Compose {
    /// An empty chain (identity).
    pub fn new() -> Self {
        Compose {
            transforms: Vec::new(),
        }
    }

    /// Append a transform (builder style).
    #[allow(clippy::should_implement_trait)] // builder-style append, not arithmetic
    pub fn add(mut self, t: impl RasterTransform + 'static) -> Self {
        self.transforms.push(Box::new(t));
        self
    }

    /// Number of chained transforms.
    pub fn len(&self) -> usize {
        self.transforms.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.transforms.is_empty()
    }
}

impl RasterTransform for Compose {
    fn apply_mut(&self, raster: &mut Raster) -> RasterResult<()> {
        for t in &self.transforms {
            t.apply_mut(raster)?;
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "Compose"
    }
}

/// Validate a band index against a raster (helper for callers building
/// transform chains from user input).
pub fn check_band(raster: &Raster, band: usize) -> RasterResult<()> {
    if band >= raster.bands() {
        Err(RasterError::BandOutOfRange {
            band,
            bands: raster.bands(),
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r() -> Raster {
        Raster::new(
            vec![
                2.0, 4.0, 6.0, 8.0, // band 0
                1.0, 2.0, 3.0, 4.0, // band 1
            ],
            2,
            2,
            2,
        )
        .unwrap()
    }

    #[test]
    fn append_ndi_adds_band() {
        let out = AppendNormalizedDifferenceIndex::new(0, 1).apply(&r()).unwrap();
        assert_eq!(out.bands(), 3);
        assert!((out.get(2, 0, 0).unwrap() - 1.0 / 3.0).abs() < 1e-6);
        // Source raster untouched.
        assert_eq!(r().bands(), 2);
    }

    #[test]
    fn normalize_band_and_all() {
        let out = NormalizeBand::new(0).apply(&r()).unwrap();
        assert_eq!(out.band(0).unwrap(), &[0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0]);
        assert_eq!(out.band(1).unwrap(), r().band(1).unwrap());
        let all = NormalizeAll.apply(&r()).unwrap();
        assert_eq!(all.band(1).unwrap(), &[0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0]);
    }

    #[test]
    fn delete_and_insert() {
        let out = DeleteBand::new(0).apply(&r()).unwrap();
        assert_eq!(out.bands(), 1);
        assert_eq!(out.get(0, 0, 0).unwrap(), 1.0);
        let ins = InsertConstantBand::new(1, 9.0).apply(&r()).unwrap();
        assert_eq!(ins.bands(), 3);
        assert_eq!(ins.get(1, 1, 1).unwrap(), 9.0);
    }

    #[test]
    fn mask_threshold_both_directions() {
        let above = MaskOnThreshold::new(0, 5.0, true, 0.0).apply(&r()).unwrap();
        assert_eq!(above.band(0).unwrap(), &[0.0, 0.0, 6.0, 8.0]);
        let below = MaskOnThreshold::new(0, 5.0, false, -1.0).apply(&r()).unwrap();
        assert_eq!(below.band(0).unwrap(), &[2.0, 4.0, -1.0, -1.0]);
    }

    #[test]
    fn ratio_index() {
        let out = AppendRatioIndex::new(0, 1).apply(&r()).unwrap();
        assert_eq!(out.band(2).unwrap(), &[2.0; 4]);
    }

    #[test]
    fn apply_mut_transforms_in_place() {
        let mut raster = r();
        NormalizeAll.apply_mut(&mut raster).unwrap();
        assert_eq!(raster.band(0).unwrap(), &[0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0]);
    }

    #[test]
    fn flips_and_rotation_as_transforms() {
        let out = HorizontalFlip.apply(&r()).unwrap();
        assert_eq!(out.band(0).unwrap(), &[4.0, 2.0, 8.0, 6.0]);
        let out = VerticalFlip.apply(&r()).unwrap();
        assert_eq!(out.band(0).unwrap(), &[6.0, 8.0, 2.0, 4.0]);
        let out = Rotate90::new(1).apply(&r()).unwrap();
        assert_eq!(out.band(0).unwrap(), &[6.0, 2.0, 8.0, 4.0]);
        // Four quarter turns are the identity.
        let out = Rotate90::new(4).apply(&r()).unwrap();
        assert_eq!(out, r());
    }

    #[test]
    fn normalize_affine_stats() {
        let out = Normalize::new(vec![5.0, 2.5], vec![2.0, 0.5]).apply(&r()).unwrap();
        assert_eq!(out.band(0).unwrap(), &[-1.5, -0.5, 0.5, 1.5]);
        assert_eq!(out.band(1).unwrap(), &[-3.0, -1.0, 1.0, 3.0]);
        assert!(Normalize::new(vec![0.0], vec![1.0]).apply(&r()).is_err());
        assert!(Normalize::new(vec![0.0, 0.0], vec![1.0, 0.0]).apply(&r()).is_err());
    }

    #[test]
    fn channel_jitter_is_deterministic_and_bounded() {
        let jitter = ChannelJitter::new(7, 0.1);
        let a = jitter.apply(&r()).unwrap();
        let b = jitter.apply(&r()).unwrap();
        assert_eq!(a, b, "same seed must produce identical jitter");
        for band in 0..2 {
            let gain = jitter.gain(band);
            assert!((0.9..=1.1).contains(&gain), "gain {gain} outside ±10%");
            let expect: Vec<f32> = r().band(band).unwrap().iter().map(|&v| v * gain).collect();
            assert_eq!(a.band(band).unwrap(), &expect[..]);
        }
        // Different seeds decorrelate.
        let other = ChannelJitter::new(8, 0.1);
        assert_ne!(jitter.gain(0), other.gain(0));
        // Different bands decorrelate.
        assert_ne!(jitter.gain(0), jitter.gain(1));
    }

    #[test]
    fn compose_chains_in_order() {
        let chain = Compose::new()
            .add(AppendNormalizedDifferenceIndex::new(0, 1))
            .add(DeleteBand::new(0))
            .add(NormalizeAll);
        assert_eq!(chain.len(), 3);
        let out = chain.apply(&r()).unwrap();
        // 2 bands: old band 1 (normalised) and the NDI band (constant → 0).
        assert_eq!(out.bands(), 2);
        assert_eq!(out.band(1).unwrap(), &[0.0; 4]);
    }

    #[test]
    fn empty_compose_is_identity() {
        let out = Compose::new().apply(&r()).unwrap();
        assert_eq!(out, r());
    }

    #[test]
    fn transform_errors_propagate() {
        assert!(AppendNormalizedDifferenceIndex::new(0, 9).apply(&r()).is_err());
        assert!(DeleteBand::new(9).apply(&r()).is_err());
        assert!(check_band(&r(), 2).is_err());
        assert!(check_band(&r(), 1).is_ok());
    }
}
