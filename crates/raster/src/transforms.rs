//! Raster transformation operations (the `geotorchai.transforms.raster`
//! package of the paper, Listing 7).
//!
//! Each operation implements [`RasterTransform`] and can be chained with
//! [`Compose`], mirroring `torchvision.transforms.Compose`. Transforms are
//! pure (`Raster → Raster`) so they are usable both on-the-fly during
//! training and offline in the preprocessing module — the distinction
//! Table VIII of the paper benchmarks.

use crate::algebra::{normalize_band, normalized_difference};
use crate::error::{RasterError, RasterResult};
use crate::raster::Raster;

/// A pure raster-to-raster operation.
pub trait RasterTransform: Send + Sync {
    /// Apply the transform.
    fn apply(&self, raster: &Raster) -> RasterResult<Raster>;

    /// Short name for diagnostics.
    fn name(&self) -> &'static str;
}

/// Append the normalized difference of two bands as a new last band
/// (Listing 7's `AppendNormalizedDifferenceIndex`).
pub struct AppendNormalizedDifferenceIndex {
    band1: usize,
    band2: usize,
}

impl AppendNormalizedDifferenceIndex {
    /// Index of the two source bands.
    pub fn new(band1: usize, band2: usize) -> Self {
        AppendNormalizedDifferenceIndex { band1, band2 }
    }
}

impl RasterTransform for AppendNormalizedDifferenceIndex {
    fn apply(&self, raster: &Raster) -> RasterResult<Raster> {
        let nd = normalized_difference(raster, self.band1, self.band2)?;
        let mut out = raster.clone();
        out.push_band(&nd)?;
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "AppendNormalizedDifferenceIndex"
    }
}

/// Min-max normalise one band into `[0, 1]`.
pub struct NormalizeBand {
    band: usize,
}

impl NormalizeBand {
    /// Band to normalise.
    pub fn new(band: usize) -> Self {
        NormalizeBand { band }
    }
}

impl RasterTransform for NormalizeBand {
    fn apply(&self, raster: &Raster) -> RasterResult<Raster> {
        let normalised = normalize_band(raster.band(self.band)?);
        let mut out = raster.clone();
        out.band_mut(self.band)?.copy_from_slice(&normalised);
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "NormalizeBand"
    }
}

/// Min-max normalise every band independently.
pub struct NormalizeAll;

impl RasterTransform for NormalizeAll {
    fn apply(&self, raster: &Raster) -> RasterResult<Raster> {
        let mut out = raster.clone();
        for b in 0..raster.bands() {
            let normalised = normalize_band(raster.band(b)?);
            out.band_mut(b)?.copy_from_slice(&normalised);
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "NormalizeAll"
    }
}

/// Remove a band.
pub struct DeleteBand {
    band: usize,
}

impl DeleteBand {
    /// Band to remove.
    pub fn new(band: usize) -> Self {
        DeleteBand { band }
    }
}

impl RasterTransform for DeleteBand {
    fn apply(&self, raster: &Raster) -> RasterResult<Raster> {
        let mut out = raster.clone();
        out.remove_band(self.band)?;
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "DeleteBand"
    }
}

/// Insert a constant-valued band at an index.
pub struct InsertConstantBand {
    at: usize,
    value: f32,
}

impl InsertConstantBand {
    /// Insert before band `at` with every sample equal to `value`.
    pub fn new(at: usize, value: f32) -> Self {
        InsertConstantBand { at, value }
    }
}

impl RasterTransform for InsertConstantBand {
    fn apply(&self, raster: &Raster) -> RasterResult<Raster> {
        let mut out = raster.clone();
        let band = vec![self.value; raster.band_len()];
        out.insert_band(self.at, &band)?;
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "InsertConstantBand"
    }
}

/// Threshold masking: samples of a band outside the kept side of the
/// threshold are replaced with `fill`.
pub struct MaskOnThreshold {
    band: usize,
    threshold: f32,
    keep_above: bool,
    fill: f32,
}

impl MaskOnThreshold {
    /// Keep samples `> threshold` (when `keep_above`) or `< threshold`;
    /// others become `fill`.
    pub fn new(band: usize, threshold: f32, keep_above: bool, fill: f32) -> Self {
        MaskOnThreshold {
            band,
            threshold,
            keep_above,
            fill,
        }
    }
}

impl RasterTransform for MaskOnThreshold {
    fn apply(&self, raster: &Raster) -> RasterResult<Raster> {
        let mut out = raster.clone();
        let threshold = self.threshold;
        let keep_above = self.keep_above;
        let fill = self.fill;
        for v in out.band_mut(self.band)? {
            let keep = if keep_above { *v > threshold } else { *v < threshold };
            if !keep {
                *v = fill;
            }
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "MaskOnThreshold"
    }
}

/// Append the ratio of two bands (`b1 / b2`, 0 on zero denominator) as a
/// new band.
pub struct AppendRatioIndex {
    band1: usize,
    band2: usize,
}

impl AppendRatioIndex {
    /// Numerator and denominator bands.
    pub fn new(band1: usize, band2: usize) -> Self {
        AppendRatioIndex { band1, band2 }
    }
}

impl RasterTransform for AppendRatioIndex {
    fn apply(&self, raster: &Raster) -> RasterResult<Raster> {
        let ratio = crate::algebra::divide_bands(raster, self.band1, self.band2)?;
        let mut out = raster.clone();
        out.push_band(&ratio)?;
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "AppendRatioIndex"
    }
}

/// A chain of transforms applied left to right
/// (`torchvision.transforms.Compose`).
#[derive(Default)]
pub struct Compose {
    transforms: Vec<Box<dyn RasterTransform>>,
}

impl Compose {
    /// An empty chain (identity).
    pub fn new() -> Self {
        Compose {
            transforms: Vec::new(),
        }
    }

    /// Append a transform (builder style).
    #[allow(clippy::should_implement_trait)] // builder-style append, not arithmetic
    pub fn add(mut self, t: impl RasterTransform + 'static) -> Self {
        self.transforms.push(Box::new(t));
        self
    }

    /// Number of chained transforms.
    pub fn len(&self) -> usize {
        self.transforms.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.transforms.is_empty()
    }
}

impl RasterTransform for Compose {
    fn apply(&self, raster: &Raster) -> RasterResult<Raster> {
        let mut current = raster.clone();
        for t in &self.transforms {
            current = t.apply(&current)?;
        }
        Ok(current)
    }

    fn name(&self) -> &'static str {
        "Compose"
    }
}

/// Validate a band index against a raster (helper for callers building
/// transform chains from user input).
pub fn check_band(raster: &Raster, band: usize) -> RasterResult<()> {
    if band >= raster.bands() {
        Err(RasterError::BandOutOfRange {
            band,
            bands: raster.bands(),
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r() -> Raster {
        Raster::new(
            vec![
                2.0, 4.0, 6.0, 8.0, // band 0
                1.0, 2.0, 3.0, 4.0, // band 1
            ],
            2,
            2,
            2,
        )
        .unwrap()
    }

    #[test]
    fn append_ndi_adds_band() {
        let out = AppendNormalizedDifferenceIndex::new(0, 1).apply(&r()).unwrap();
        assert_eq!(out.bands(), 3);
        assert!((out.get(2, 0, 0).unwrap() - 1.0 / 3.0).abs() < 1e-6);
        // Source raster untouched.
        assert_eq!(r().bands(), 2);
    }

    #[test]
    fn normalize_band_and_all() {
        let out = NormalizeBand::new(0).apply(&r()).unwrap();
        assert_eq!(out.band(0).unwrap(), &[0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0]);
        assert_eq!(out.band(1).unwrap(), r().band(1).unwrap());
        let all = NormalizeAll.apply(&r()).unwrap();
        assert_eq!(all.band(1).unwrap(), &[0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0]);
    }

    #[test]
    fn delete_and_insert() {
        let out = DeleteBand::new(0).apply(&r()).unwrap();
        assert_eq!(out.bands(), 1);
        assert_eq!(out.get(0, 0, 0).unwrap(), 1.0);
        let ins = InsertConstantBand::new(1, 9.0).apply(&r()).unwrap();
        assert_eq!(ins.bands(), 3);
        assert_eq!(ins.get(1, 1, 1).unwrap(), 9.0);
    }

    #[test]
    fn mask_threshold_both_directions() {
        let above = MaskOnThreshold::new(0, 5.0, true, 0.0).apply(&r()).unwrap();
        assert_eq!(above.band(0).unwrap(), &[0.0, 0.0, 6.0, 8.0]);
        let below = MaskOnThreshold::new(0, 5.0, false, -1.0).apply(&r()).unwrap();
        assert_eq!(below.band(0).unwrap(), &[2.0, 4.0, -1.0, -1.0]);
    }

    #[test]
    fn ratio_index() {
        let out = AppendRatioIndex::new(0, 1).apply(&r()).unwrap();
        assert_eq!(out.band(2).unwrap(), &[2.0; 4]);
    }

    #[test]
    fn compose_chains_in_order() {
        let chain = Compose::new()
            .add(AppendNormalizedDifferenceIndex::new(0, 1))
            .add(DeleteBand::new(0))
            .add(NormalizeAll);
        assert_eq!(chain.len(), 3);
        let out = chain.apply(&r()).unwrap();
        // 2 bands: old band 1 (normalised) and the NDI band (constant → 0).
        assert_eq!(out.bands(), 2);
        assert_eq!(out.band(1).unwrap(), &[0.0; 4]);
    }

    #[test]
    fn empty_compose_is_identity() {
        let out = Compose::new().apply(&r()).unwrap();
        assert_eq!(out, r());
    }

    #[test]
    fn transform_errors_propagate() {
        assert!(AppendNormalizedDifferenceIndex::new(0, 9).apply(&r()).is_err());
        assert!(DeleteBand::new(9).apply(&r()).is_err());
        assert!(check_band(&r(), 2).is_err());
        assert!(check_band(&r(), 1).is_ok());
    }
}
