//! Prediction-mosaic stitching with overlap blending — the scene-scale
//! half of tiled inference.
//!
//! Large-scene inference runs a model over overlapping tile windows and
//! must reassemble the per-tile outputs into one seamless prediction
//! raster. The stitcher here is a *weighted accumulate + coverage
//! normalization* scheme:
//!
//! ```text
//!   mosaic(p) = Σ_i w_i(p) · pred_i(p)  /  Σ_i w_i(p)
//! ```
//!
//! where the sum ranges over every tile whose *core* region covers pixel
//! `p` and `w_i` is the blend weight ([`BlendMode`]). Because the
//! accumulated weight is divided out at the end, the effective weights
//! sum to exactly 1 at every covered pixel *by construction* — for any
//! weight function and any overlap configuration. [`MosaicAccumulator::
//! finalize`] refuses to produce a mosaic with uncovered pixels, so a
//! gap in the sampler geometry is an error, never a silent black hole.
//!
//! The *core* of a tile is the region whose prediction the stitcher
//! trusts: [`core_of`] trims `halo` pixels from each tile edge, except
//! where the tile is flush with the scene (or region-of-interest)
//! boundary — there the whole-scene forward pass sees the same padding
//! the tile does, so nothing needs trimming. With a halo at least the
//! model's receptive-field radius and tile offsets aligned to the
//! model's total downsampling factor, every core pixel of a tiled
//! forward is computed from exactly the same inputs as the unsplit
//! forward — which is what makes seam-consistency testable down to
//! floating-point rounding.

use geotorch_tensor::{pool, Tensor};

use crate::error::{RasterError, RasterResult};
use crate::raster::{GeoTransform, Raster};

/// A rectangular pixel window: `height × width` pixels anchored at
/// `(row, col)`. Used for sampler geometry, tile extraction, and mosaic
/// stitching. Coordinates are in whatever frame the producer chose
/// (scene or region-local); the window itself is frame-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Window {
    /// Top row (inclusive).
    pub row: usize,
    /// Left column (inclusive).
    pub col: usize,
    /// Number of rows.
    pub height: usize,
    /// Number of columns.
    pub width: usize,
}

impl Window {
    /// A window anchored at `(row, col)` spanning `height × width`.
    pub fn new(row: usize, col: usize, height: usize, width: usize) -> Window {
        Window {
            row,
            col,
            height,
            width,
        }
    }

    /// One past the last row.
    pub fn end_row(&self) -> usize {
        self.row + self.height
    }

    /// One past the last column.
    pub fn end_col(&self) -> usize {
        self.col + self.width
    }

    /// Pixel count.
    pub fn area(&self) -> usize {
        self.height * self.width
    }

    /// Whether `other` lies entirely inside this window.
    pub fn contains(&self, other: &Window) -> bool {
        other.row >= self.row
            && other.col >= self.col
            && other.end_row() <= self.end_row()
            && other.end_col() <= self.end_col()
    }

    /// The overlapping region, if any.
    pub fn intersect(&self, other: &Window) -> Option<Window> {
        let row = self.row.max(other.row);
        let col = self.col.max(other.col);
        let end_row = self.end_row().min(other.end_row());
        let end_col = self.end_col().min(other.end_col());
        if row < end_row && col < end_col {
            Some(Window::new(row, col, end_row - row, end_col - col))
        } else {
            None
        }
    }

    /// The same extent shifted by `(drow, dcol)`.
    pub fn offset(&self, drow: usize, dcol: usize) -> Window {
        Window::new(self.row + drow, self.col + dcol, self.height, self.width)
    }

    /// This window re-expressed relative to `outer`'s origin.
    ///
    /// # Panics
    /// If the window is not contained in `outer`.
    pub fn relative_to(&self, outer: &Window) -> Window {
        assert!(
            outer.contains(self),
            "window {self:?} not inside {outer:?}"
        );
        Window::new(
            self.row - outer.row,
            self.col - outer.col,
            self.height,
            self.width,
        )
    }
}

/// The trusted core of a tile window: `halo` pixels trimmed from every
/// side, except sides flush with `bounds` (the scene or ROI edge) —
/// border tiles keep their border pixels, because the unsplit forward
/// pass pads there exactly like the tiled one does.
///
/// # Panics
/// If the tile is not inside `bounds` or the trim consumes the tile
/// (callers must keep `2 · halo < tile extent`).
pub fn core_of(tile: &Window, bounds: &Window, halo: usize) -> Window {
    assert!(bounds.contains(tile), "tile {tile:?} outside bounds {bounds:?}");
    let top = if tile.row > bounds.row {
        tile.row + halo
    } else {
        tile.row
    };
    let left = if tile.col > bounds.col {
        tile.col + halo
    } else {
        tile.col
    };
    let bottom = if tile.end_row() < bounds.end_row() {
        tile.end_row() - halo
    } else {
        tile.end_row()
    };
    let right = if tile.end_col() < bounds.end_col() {
        tile.end_col() - halo
    } else {
        tile.end_col()
    };
    assert!(
        top < bottom && left < right,
        "halo {halo} consumes the whole tile {tile:?}"
    );
    Window::new(top, left, bottom - top, right - left)
}

/// How overlapping core regions are weighted before coverage
/// normalization. Both modes produce effective weights summing to 1 at
/// every pixel (the normalization divides the accumulated weight out);
/// they differ in how a pixel covered by several tiles mixes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlendMode {
    /// Every core pixel weighs 1 — overlaps average uniformly. The mode
    /// to use when tile predictions are expected to agree bit-for-bit
    /// (halo ≥ receptive field): averaging near-identical values keeps
    /// the result within a few ulp of either.
    Uniform,
    /// Separable raised-cosine (Hann) taper over the tile extent:
    /// pixels near a tile's centre dominate pixels near its edge.
    /// Softens seams when the halo is smaller than the receptive field
    /// and tile predictions genuinely disagree near their borders.
    Cosine,
}

impl BlendMode {
    /// The (unnormalized) weight of pixel `(r, c)` of a tile. `r`/`c`
    /// are scene coordinates; the tile supplies the extent the taper is
    /// shaped over. Strictly positive, so accumulated coverage is
    /// detectable by a zero test.
    fn weight(&self, tile: &Window, r: usize, c: usize) -> f32 {
        match self {
            BlendMode::Uniform => 1.0,
            BlendMode::Cosine => {
                let taper = |i: usize, n: usize| -> f32 {
                    let phase =
                        std::f32::consts::TAU * (i as f32 + 0.5) / n as f32;
                    0.5 - 0.5 * phase.cos()
                };
                let w = taper(r - tile.row, tile.height) * taper(c - tile.col, tile.width);
                w.max(1e-3)
            }
        }
    }
}

/// Streaming mosaic builder: tiles arrive in any order, each contributes
/// its core region weighted by the blend mode, and [`finalize`]
/// normalizes by accumulated coverage. Accumulator planes come from the
/// tensor pool, so repeated mosaics recycle their buffers.
///
/// [`finalize`]: MosaicAccumulator::finalize
pub struct MosaicAccumulator {
    classes: usize,
    height: usize,
    width: usize,
    blend: BlendMode,
    /// `classes × height × width` weighted prediction sum.
    acc: Vec<f32>,
    /// `height × width` weight sum (coverage).
    weight: Vec<f32>,
    tiles: usize,
    transform: GeoTransform,
    epsg: u32,
}

impl MosaicAccumulator {
    /// An empty accumulator for a `classes`-plane mosaic over a
    /// `height × width` region.
    pub fn new(classes: usize, height: usize, width: usize, blend: BlendMode) -> MosaicAccumulator {
        assert!(
            classes > 0 && height > 0 && width > 0,
            "mosaic dimensions must be positive"
        );
        MosaicAccumulator {
            classes,
            height,
            width,
            blend,
            acc: pool::alloc_zeroed(classes * height * width),
            weight: pool::alloc_zeroed(height * width),
            tiles: 0,
            transform: GeoTransform::identity(),
            epsg: 0,
        }
    }

    /// Georeference the finished mosaic (e.g. the scene transform
    /// translated to the region-of-interest origin).
    pub fn set_georeference(&mut self, transform: GeoTransform, epsg: u32) {
        self.transform = transform;
        self.epsg = epsg;
    }

    /// Mosaic plane count.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Mosaic height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Mosaic width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of tiles accumulated so far.
    pub fn tiles(&self) -> usize {
        self.tiles
    }

    /// The raw coverage (weight-sum) plane, row-major.
    pub fn weights(&self) -> &[f32] {
        &self.weight
    }

    /// First pixel with zero accumulated weight, if any — a hole no
    /// tile's core covered. `None` means full coverage.
    pub fn coverage_gap(&self) -> Option<(usize, usize)> {
        self.weight
            .iter()
            .position(|&w| w == 0.0)
            .map(|i| (i / self.width, i % self.width))
    }

    /// Accumulate one tile prediction. `tile` and `core` are in mosaic
    /// coordinates (`core` from [`core_of`], contained in both the tile
    /// and the mosaic); `pred` must be shaped `[classes, tile.height,
    /// tile.width]`. Only core pixels contribute.
    pub fn add_tile(&mut self, tile: &Window, core: &Window, pred: &Tensor) -> RasterResult<()> {
        let bounds = Window::new(0, 0, self.height, self.width);
        if !bounds.contains(tile) {
            return Err(RasterError::InvalidArgument(format!(
                "tile {tile:?} outside mosaic {}x{}",
                self.height, self.width
            )));
        }
        if !tile.contains(core) {
            return Err(RasterError::InvalidArgument(format!(
                "core {core:?} not inside tile {tile:?}"
            )));
        }
        let want = [self.classes, tile.height, tile.width];
        if pred.shape() != want {
            return Err(RasterError::DimensionMismatch(format!(
                "tile prediction shaped {:?}, expected {:?}",
                pred.shape(),
                want
            )));
        }
        let data = pred.as_slice();
        let tile_plane = tile.height * tile.width;
        for r in core.row..core.end_row() {
            let tr = r - tile.row;
            let out_row = r * self.width;
            let in_row = tr * tile.width;
            for c in core.col..core.end_col() {
                let w = self.blend.weight(tile, r, c);
                let tc = c - tile.col;
                self.weight[out_row + c] += w;
                for k in 0..self.classes {
                    self.acc[k * self.height * self.width + out_row + c] +=
                        w * data[k * tile_plane + in_row + tc];
                }
            }
        }
        self.tiles += 1;
        Ok(())
    }

    /// Normalize by accumulated coverage and return the mosaic raster
    /// (`classes` bands). Fails if any pixel was never covered by a
    /// tile core — a partial mosaic is never silently returned.
    pub fn finalize(mut self) -> RasterResult<Raster> {
        if let Some((r, c)) = self.coverage_gap() {
            return Err(RasterError::InvalidArgument(format!(
                "mosaic has no tile coverage at pixel ({r}, {c}) — \
                 sampler stride/halo leave gaps"
            )));
        }
        let mut acc = std::mem::take(&mut self.acc);
        let plane = self.height * self.width;
        for k in 0..self.classes {
            let band = &mut acc[k * plane..(k + 1) * plane];
            for (v, &w) in band.iter_mut().zip(self.weight.iter()) {
                *v /= w;
            }
        }
        let mut out = Raster::new(acc, self.classes, self.height, self.width)?;
        out.transform = self.transform;
        out.epsg = self.epsg;
        Ok(out)
    }
}

impl Drop for MosaicAccumulator {
    fn drop(&mut self) {
        pool::release(std::mem::take(&mut self.acc));
        pool::release(std::mem::take(&mut self.weight));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant_pred(classes: usize, tile: &Window, value: f32) -> Tensor {
        Tensor::full(&[classes, tile.height, tile.width], value)
    }

    #[test]
    fn window_geometry() {
        let w = Window::new(2, 3, 4, 5);
        assert_eq!((w.end_row(), w.end_col(), w.area()), (6, 8, 20));
        let outer = Window::new(0, 0, 10, 10);
        assert!(outer.contains(&w));
        assert!(!w.contains(&outer));
        let other = Window::new(4, 6, 4, 4);
        assert_eq!(w.intersect(&other), Some(Window::new(4, 6, 2, 2)));
        assert_eq!(w.intersect(&Window::new(8, 8, 2, 2)), None);
        assert_eq!(w.relative_to(&Window::new(1, 1, 9, 9)), Window::new(1, 2, 4, 5));
    }

    #[test]
    fn core_trims_interior_sides_only() {
        let bounds = Window::new(0, 0, 100, 100);
        // Interior tile: trimmed on all four sides.
        let t = Window::new(20, 30, 32, 32);
        assert_eq!(core_of(&t, &bounds, 4), Window::new(24, 34, 24, 24));
        // Corner tile: flush sides keep their border pixels.
        let t = Window::new(0, 0, 32, 32);
        assert_eq!(core_of(&t, &bounds, 4), Window::new(0, 0, 28, 28));
        // Bottom-right clamped tile.
        let t = Window::new(68, 68, 32, 32);
        assert_eq!(core_of(&t, &bounds, 4), Window::new(72, 72, 28, 28));
        // halo 0 is the identity.
        assert_eq!(core_of(&t, &bounds, 0), t);
    }

    #[test]
    #[should_panic(expected = "consumes the whole tile")]
    fn core_rejects_oversized_halo() {
        let bounds = Window::new(0, 0, 100, 100);
        core_of(&Window::new(30, 30, 8, 8), &bounds, 4);
    }

    #[test]
    fn constant_tiles_reconstruct_constant_field() {
        for blend in [BlendMode::Uniform, BlendMode::Cosine] {
            let mut acc = MosaicAccumulator::new(2, 8, 8, blend);
            let bounds = Window::new(0, 0, 8, 8);
            // 2x2 overlapping tiles of 6x6 at stride 2 (clamped).
            for &(r, c) in &[(0usize, 0usize), (0, 2), (2, 0), (2, 2)] {
                let tile = Window::new(r, c, 6, 6);
                let core = core_of(&tile, &bounds, 1);
                acc.add_tile(&tile, &core, &constant_pred(2, &tile, 3.5)).unwrap();
            }
            assert_eq!(acc.tiles(), 4);
            assert_eq!(acc.coverage_gap(), None);
            let mosaic = acc.finalize().unwrap();
            assert_eq!((mosaic.bands(), mosaic.height(), mosaic.width()), (2, 8, 8));
            for &v in mosaic.as_slice() {
                assert!(
                    (v - 3.5).abs() < 1e-5,
                    "normalized blend must preserve constants, got {v} ({blend:?})"
                );
            }
        }
    }

    #[test]
    fn uncovered_pixel_fails_finalize() {
        let mut acc = MosaicAccumulator::new(1, 8, 8, BlendMode::Uniform);
        let tile = Window::new(0, 0, 4, 4);
        acc.add_tile(&tile, &tile.clone(), &constant_pred(1, &tile, 1.0)).unwrap();
        assert_eq!(acc.coverage_gap(), Some((0, 4)));
        let err = acc.finalize().unwrap_err();
        assert!(err.to_string().contains("no tile coverage"));
    }

    #[test]
    fn add_tile_validates_geometry_and_shape() {
        let mut acc = MosaicAccumulator::new(1, 8, 8, BlendMode::Uniform);
        let oversized = Window::new(4, 4, 8, 8);
        assert!(acc
            .add_tile(&oversized, &oversized.clone(), &constant_pred(1, &oversized, 0.0))
            .is_err());
        let tile = Window::new(0, 0, 4, 4);
        let stray_core = Window::new(2, 2, 4, 4);
        assert!(acc
            .add_tile(&tile, &stray_core, &constant_pred(1, &tile, 0.0))
            .is_err());
        let bad_shape = Tensor::zeros(&[2, 4, 4]);
        assert!(acc.add_tile(&tile, &tile.clone(), &bad_shape).is_err());
    }

    #[test]
    fn overlap_averages_disagreeing_tiles() {
        // Two tiles disagree on the overlap; uniform blending averages.
        let mut acc = MosaicAccumulator::new(1, 4, 6, BlendMode::Uniform);
        let left = Window::new(0, 0, 4, 4);
        let right = Window::new(0, 2, 4, 4);
        acc.add_tile(&left, &left.clone(), &constant_pred(1, &left, 1.0)).unwrap();
        acc.add_tile(&right, &right.clone(), &constant_pred(1, &right, 3.0)).unwrap();
        let mosaic = acc.finalize().unwrap();
        assert_eq!(mosaic.get(0, 0, 0).unwrap(), 1.0);
        assert_eq!(mosaic.get(0, 0, 3).unwrap(), 2.0); // overlap: (1+3)/2
        assert_eq!(mosaic.get(0, 0, 5).unwrap(), 3.0);
    }

    #[test]
    fn cosine_weights_favour_tile_centres() {
        let tile = Window::new(0, 0, 16, 16);
        let centre = BlendMode::Cosine.weight(&tile, 8, 8);
        let edge = BlendMode::Cosine.weight(&tile, 0, 0);
        assert!(centre > 0.9 && edge < 0.01 && edge > 0.0);
    }
}
