//! The multi-band raster data model.

use geotorch_tensor::Tensor;

use crate::error::{RasterError, RasterResult};

/// Affine mapping from pixel coordinates to world coordinates:
/// `world_x = origin_x + col * pixel_width`,
/// `world_y = origin_y - row * pixel_height` (north-up convention).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoTransform {
    /// World x of the top-left corner.
    pub origin_x: f64,
    /// World y of the top-left corner.
    pub origin_y: f64,
    /// Pixel width in world units.
    pub pixel_width: f64,
    /// Pixel height in world units (positive; rows go south).
    pub pixel_height: f64,
}

impl GeoTransform {
    /// The identity transform (pixel space = world space).
    pub fn identity() -> Self {
        GeoTransform {
            origin_x: 0.0,
            origin_y: 0.0,
            pixel_width: 1.0,
            pixel_height: 1.0,
        }
    }

    /// World coordinates of a pixel's centre.
    pub fn pixel_to_world(&self, row: usize, col: usize) -> (f64, f64) {
        (
            self.origin_x + (col as f64 + 0.5) * self.pixel_width,
            self.origin_y - (row as f64 + 0.5) * self.pixel_height,
        )
    }
}

/// A multi-band raster image: `bands × height × width` of `f32` samples
/// plus georeferencing metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Raster {
    data: Vec<f32>,
    bands: usize,
    height: usize,
    width: usize,
    /// Pixel-to-world transform.
    pub transform: GeoTransform,
    /// Coordinate reference system as an EPSG code (0 = unspecified).
    pub epsg: u32,
}

impl Raster {
    /// Build from a flat `[bands][height][width]` buffer.
    ///
    /// # Errors
    /// If the buffer length does not match the dimensions, or any
    /// dimension is zero.
    pub fn new(data: Vec<f32>, bands: usize, height: usize, width: usize) -> RasterResult<Raster> {
        if bands == 0 || height == 0 || width == 0 {
            return Err(RasterError::InvalidArgument(
                "raster dimensions must be positive".into(),
            ));
        }
        if data.len() != bands * height * width {
            return Err(RasterError::DimensionMismatch(format!(
                "buffer of {} samples does not fit {}x{}x{}",
                data.len(),
                bands,
                height,
                width
            )));
        }
        Ok(Raster {
            data,
            bands,
            height,
            width,
            transform: GeoTransform::identity(),
            epsg: 0,
        })
    }

    /// A zero-filled raster.
    pub fn zeros(bands: usize, height: usize, width: usize) -> RasterResult<Raster> {
        Raster::new(vec![0.0; bands * height * width], bands, height, width)
    }

    /// Number of spectral bands.
    pub fn bands(&self) -> usize {
        self.bands
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Samples per band.
    pub fn band_len(&self) -> usize {
        self.height * self.width
    }

    /// The full sample buffer, band-major.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable sample buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow one band's samples.
    pub fn band(&self, band: usize) -> RasterResult<&[f32]> {
        self.check_band(band)?;
        let n = self.band_len();
        Ok(&self.data[band * n..(band + 1) * n])
    }

    /// Mutably borrow one band's samples.
    pub fn band_mut(&mut self, band: usize) -> RasterResult<&mut [f32]> {
        self.check_band(band)?;
        let n = self.band_len();
        Ok(&mut self.data[band * n..(band + 1) * n])
    }

    /// Sample at `(band, row, col)`.
    pub fn get(&self, band: usize, row: usize, col: usize) -> RasterResult<f32> {
        self.check_pixel(band, row, col)?;
        Ok(self.data[(band * self.height + row) * self.width + col])
    }

    /// Write a sample at `(band, row, col)`.
    pub fn set(&mut self, band: usize, row: usize, col: usize, value: f32) -> RasterResult<()> {
        self.check_pixel(band, row, col)?;
        self.data[(band * self.height + row) * self.width + col] = value;
        Ok(())
    }

    /// Append a band (samples must match `band_len`).
    pub fn push_band(&mut self, samples: &[f32]) -> RasterResult<()> {
        if samples.len() != self.band_len() {
            return Err(RasterError::DimensionMismatch(format!(
                "band of {} samples does not fit {}x{}",
                samples.len(),
                self.height,
                self.width
            )));
        }
        self.data.extend_from_slice(samples);
        self.bands += 1;
        Ok(())
    }

    /// Remove a band.
    pub fn remove_band(&mut self, band: usize) -> RasterResult<()> {
        self.check_band(band)?;
        if self.bands == 1 {
            return Err(RasterError::InvalidArgument(
                "cannot remove the only band".into(),
            ));
        }
        let n = self.band_len();
        self.data.drain(band * n..(band + 1) * n);
        self.bands -= 1;
        Ok(())
    }

    /// Insert a band before index `at` (`at == bands` appends).
    pub fn insert_band(&mut self, at: usize, samples: &[f32]) -> RasterResult<()> {
        if at > self.bands {
            return Err(RasterError::BandOutOfRange {
                band: at,
                bands: self.bands,
            });
        }
        if samples.len() != self.band_len() {
            return Err(RasterError::DimensionMismatch(
                "inserted band has wrong sample count".into(),
            ));
        }
        let n = self.band_len();
        let mut new_data = Vec::with_capacity(self.data.len() + n);
        new_data.extend_from_slice(&self.data[..at * n]);
        new_data.extend_from_slice(samples);
        new_data.extend_from_slice(&self.data[at * n..]);
        self.data = new_data;
        self.bands += 1;
        Ok(())
    }

    /// Select a subset of bands into a new raster, in the given order.
    pub fn select_bands(&self, bands: &[usize]) -> RasterResult<Raster> {
        if bands.is_empty() {
            return Err(RasterError::InvalidArgument(
                "select_bands of zero bands".into(),
            ));
        }
        let n = self.band_len();
        let mut data = Vec::with_capacity(bands.len() * n);
        for &b in bands {
            data.extend_from_slice(self.band(b)?);
        }
        let mut out = Raster::new(data, bands.len(), self.height, self.width)?;
        out.transform = self.transform;
        out.epsg = self.epsg;
        Ok(out)
    }

    /// View as a `[C, H, W]` tensor (copies the buffer).
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(
            self.data.clone(),
            &[self.bands, self.height, self.width],
        )
    }

    /// Build from a `[C, H, W]` tensor.
    pub fn from_tensor(t: &Tensor) -> RasterResult<Raster> {
        if t.ndim() != 3 {
            return Err(RasterError::DimensionMismatch(format!(
                "expected [C,H,W] tensor, got {:?}",
                t.shape()
            )));
        }
        Raster::new(
            t.as_slice().to_vec(),
            t.shape()[0],
            t.shape()[1],
            t.shape()[2],
        )
    }

    fn check_band(&self, band: usize) -> RasterResult<()> {
        if band >= self.bands {
            Err(RasterError::BandOutOfRange {
                band,
                bands: self.bands,
            })
        } else {
            Ok(())
        }
    }

    fn check_pixel(&self, band: usize, row: usize, col: usize) -> RasterResult<()> {
        self.check_band(band)?;
        if row >= self.height || col >= self.width {
            return Err(RasterError::InvalidArgument(format!(
                "pixel ({row}, {col}) outside {}x{}",
                self.height, self.width
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Raster {
        // 2 bands, 2x3
        Raster::new(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, // band 0
                10.0, 20.0, 30.0, 40.0, 50.0, 60.0, // band 1
            ],
            2,
            2,
            3,
        )
        .unwrap()
    }

    #[test]
    fn construction_and_access() {
        let r = sample();
        assert_eq!((r.bands(), r.height(), r.width()), (2, 2, 3));
        assert_eq!(r.get(0, 0, 0).unwrap(), 1.0);
        assert_eq!(r.get(1, 1, 2).unwrap(), 60.0);
        assert_eq!(r.band(1).unwrap()[0], 10.0);
        assert!(r.get(2, 0, 0).is_err());
        assert!(r.get(0, 2, 0).is_err());
    }

    #[test]
    fn rejects_bad_dimensions() {
        assert!(Raster::new(vec![0.0; 5], 1, 2, 3).is_err());
        assert!(Raster::new(vec![], 0, 1, 1).is_err());
    }

    #[test]
    fn push_remove_insert_band() {
        let mut r = sample();
        r.push_band(&[0.0; 6]).unwrap();
        assert_eq!(r.bands(), 3);
        r.remove_band(0).unwrap();
        assert_eq!(r.bands(), 2);
        assert_eq!(r.get(0, 0, 0).unwrap(), 10.0);
        r.insert_band(1, &[7.0; 6]).unwrap();
        assert_eq!(r.bands(), 3);
        assert_eq!(r.get(1, 0, 0).unwrap(), 7.0);
        assert_eq!(r.get(2, 0, 0).unwrap(), 0.0);
        assert!(r.push_band(&[0.0; 5]).is_err());
    }

    #[test]
    fn cannot_remove_last_band() {
        let mut r = Raster::zeros(1, 2, 2).unwrap();
        assert!(r.remove_band(0).is_err());
    }

    #[test]
    fn select_bands_reorders() {
        let r = sample();
        let sel = r.select_bands(&[1, 0]).unwrap();
        assert_eq!(sel.get(0, 0, 0).unwrap(), 10.0);
        assert_eq!(sel.get(1, 0, 0).unwrap(), 1.0);
        assert!(r.select_bands(&[5]).is_err());
        assert!(r.select_bands(&[]).is_err());
    }

    #[test]
    fn tensor_round_trip() {
        let r = sample();
        let t = r.to_tensor();
        assert_eq!(t.shape(), &[2, 2, 3]);
        let back = Raster::from_tensor(&t).unwrap();
        assert_eq!(back.as_slice(), r.as_slice());
    }

    #[test]
    fn geotransform_pixel_to_world() {
        let gt = GeoTransform {
            origin_x: 100.0,
            origin_y: 50.0,
            pixel_width: 2.0,
            pixel_height: 1.0,
        };
        let (x, y) = gt.pixel_to_world(0, 0);
        assert_eq!((x, y), (101.0, 49.5));
        let (x, y) = gt.pixel_to_world(2, 3);
        assert_eq!((x, y), (107.0, 47.5));
    }
}
