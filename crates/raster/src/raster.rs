//! The multi-band raster data model.
//!
//! Raster sample buffers live on the tensor pool: `clone`, `zeros`,
//! window reads, and band inserts draw from recycled size-class shelves
//! and `Drop` returns the buffer, so chip-scale augmentation loops and
//! scene-scale tile extraction run allocation-free at steady state.

use geotorch_tensor::{pool, Tensor};

use crate::error::{RasterError, RasterResult};
use crate::mosaic::Window;

/// Affine mapping from pixel coordinates to world coordinates:
/// `world_x = origin_x + col * pixel_width`,
/// `world_y = origin_y - row * pixel_height` (north-up convention).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoTransform {
    /// World x of the top-left corner.
    pub origin_x: f64,
    /// World y of the top-left corner.
    pub origin_y: f64,
    /// Pixel width in world units.
    pub pixel_width: f64,
    /// Pixel height in world units (positive; rows go south).
    pub pixel_height: f64,
}

impl GeoTransform {
    /// The identity transform (pixel space = world space).
    pub fn identity() -> Self {
        GeoTransform {
            origin_x: 0.0,
            origin_y: 0.0,
            pixel_width: 1.0,
            pixel_height: 1.0,
        }
    }

    /// World coordinates of a pixel's centre.
    pub fn pixel_to_world(&self, row: usize, col: usize) -> (f64, f64) {
        (
            self.origin_x + (col as f64 + 0.5) * self.pixel_width,
            self.origin_y - (row as f64 + 0.5) * self.pixel_height,
        )
    }

    /// The transform of a sub-window anchored at pixel `(row, col)` of
    /// this raster: same scale, origin moved to the window corner.
    pub fn for_window(&self, row: usize, col: usize) -> GeoTransform {
        GeoTransform {
            origin_x: self.origin_x + col as f64 * self.pixel_width,
            origin_y: self.origin_y - row as f64 * self.pixel_height,
            pixel_width: self.pixel_width,
            pixel_height: self.pixel_height,
        }
    }
}

/// A multi-band raster image: `bands × height × width` of `f32` samples
/// plus georeferencing metadata. Storage is pooled (see module docs).
#[derive(Debug, PartialEq)]
pub struct Raster {
    data: Vec<f32>,
    bands: usize,
    height: usize,
    width: usize,
    /// Pixel-to-world transform.
    pub transform: GeoTransform,
    /// Coordinate reference system as an EPSG code (0 = unspecified).
    pub epsg: u32,
}

impl Clone for Raster {
    fn clone(&self) -> Raster {
        Raster {
            data: pool::alloc_copy(&self.data),
            bands: self.bands,
            height: self.height,
            width: self.width,
            transform: self.transform,
            epsg: self.epsg,
        }
    }
}

impl Drop for Raster {
    fn drop(&mut self) {
        pool::release(std::mem::take(&mut self.data));
    }
}

impl Raster {
    /// Build from a flat `[bands][height][width]` buffer.
    ///
    /// # Errors
    /// If the buffer length does not match the dimensions, or any
    /// dimension is zero.
    pub fn new(data: Vec<f32>, bands: usize, height: usize, width: usize) -> RasterResult<Raster> {
        if bands == 0 || height == 0 || width == 0 {
            return Err(RasterError::InvalidArgument(
                "raster dimensions must be positive".into(),
            ));
        }
        if data.len() != bands * height * width {
            return Err(RasterError::DimensionMismatch(format!(
                "buffer of {} samples does not fit {}x{}x{}",
                data.len(),
                bands,
                height,
                width
            )));
        }
        Ok(Raster {
            data,
            bands,
            height,
            width,
            transform: GeoTransform::identity(),
            epsg: 0,
        })
    }

    /// A zero-filled raster (pooled allocation).
    pub fn zeros(bands: usize, height: usize, width: usize) -> RasterResult<Raster> {
        Raster::new(
            pool::alloc_zeroed(bands * height * width),
            bands,
            height,
            width,
        )
    }

    /// Number of spectral bands.
    pub fn bands(&self) -> usize {
        self.bands
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Samples per band.
    pub fn band_len(&self) -> usize {
        self.height * self.width
    }

    /// The full extent as a window anchored at the origin.
    pub fn extent(&self) -> Window {
        Window::new(0, 0, self.height, self.width)
    }

    /// The full sample buffer, band-major.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable sample buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the raster, handing its (pooled) buffer to the caller.
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// Borrow one band's samples.
    pub fn band(&self, band: usize) -> RasterResult<&[f32]> {
        self.check_band(band)?;
        let n = self.band_len();
        Ok(&self.data[band * n..(band + 1) * n])
    }

    /// Mutably borrow one band's samples.
    pub fn band_mut(&mut self, band: usize) -> RasterResult<&mut [f32]> {
        self.check_band(band)?;
        let n = self.band_len();
        Ok(&mut self.data[band * n..(band + 1) * n])
    }

    /// Zero-copy view of `nrows` full-width rows of one band starting at
    /// `row` — the contiguous fast path for full-width windows.
    pub fn band_rows(&self, band: usize, row: usize, nrows: usize) -> RasterResult<&[f32]> {
        self.check_band(band)?;
        if row + nrows > self.height {
            return Err(RasterError::InvalidArgument(format!(
                "rows {row}..{} outside height {}",
                row + nrows,
                self.height
            )));
        }
        let start = (band * self.height + row) * self.width;
        Ok(&self.data[start..start + nrows * self.width])
    }

    /// Sample at `(band, row, col)`.
    pub fn get(&self, band: usize, row: usize, col: usize) -> RasterResult<f32> {
        self.check_pixel(band, row, col)?;
        Ok(self.data[(band * self.height + row) * self.width + col])
    }

    /// Write a sample at `(band, row, col)`.
    pub fn set(&mut self, band: usize, row: usize, col: usize, value: f32) -> RasterResult<()> {
        self.check_pixel(band, row, col)?;
        self.data[(band * self.height + row) * self.width + col] = value;
        Ok(())
    }

    /// Append a band (samples must match `band_len`).
    pub fn push_band(&mut self, samples: &[f32]) -> RasterResult<()> {
        if samples.len() != self.band_len() {
            return Err(RasterError::DimensionMismatch(format!(
                "band of {} samples does not fit {}x{}",
                samples.len(),
                self.height,
                self.width
            )));
        }
        self.data.extend_from_slice(samples);
        self.bands += 1;
        Ok(())
    }

    /// Remove a band.
    pub fn remove_band(&mut self, band: usize) -> RasterResult<()> {
        self.check_band(band)?;
        if self.bands == 1 {
            return Err(RasterError::InvalidArgument(
                "cannot remove the only band".into(),
            ));
        }
        let n = self.band_len();
        self.data.drain(band * n..(band + 1) * n);
        self.bands -= 1;
        Ok(())
    }

    /// Insert a band before index `at` (`at == bands` appends). The
    /// rebuilt buffer is pooled; the old one is recycled.
    pub fn insert_band(&mut self, at: usize, samples: &[f32]) -> RasterResult<()> {
        if at > self.bands {
            return Err(RasterError::BandOutOfRange {
                band: at,
                bands: self.bands,
            });
        }
        if samples.len() != self.band_len() {
            return Err(RasterError::DimensionMismatch(
                "inserted band has wrong sample count".into(),
            ));
        }
        let n = self.band_len();
        let mut new_data = pool::alloc_uninit(self.data.len() + n);
        new_data[..at * n].copy_from_slice(&self.data[..at * n]);
        new_data[at * n..(at + 1) * n].copy_from_slice(samples);
        new_data[(at + 1) * n..].copy_from_slice(&self.data[at * n..]);
        pool::release(std::mem::replace(&mut self.data, new_data));
        self.bands += 1;
        Ok(())
    }

    /// Select a subset of bands into a new raster, in the given order.
    pub fn select_bands(&self, bands: &[usize]) -> RasterResult<Raster> {
        if bands.is_empty() {
            return Err(RasterError::InvalidArgument(
                "select_bands of zero bands".into(),
            ));
        }
        let n = self.band_len();
        let mut data = pool::alloc_uninit(bands.len() * n);
        for (i, &b) in bands.iter().enumerate() {
            data[i * n..(i + 1) * n].copy_from_slice(self.band(b)?);
        }
        let mut out = Raster::new(data, bands.len(), self.height, self.width)?;
        out.transform = self.transform;
        out.epsg = self.epsg;
        Ok(out)
    }

    /// Copy a pixel window (all bands) into a new raster. The result is
    /// georeferenced to the window corner. Windows never extend past the
    /// raster — out-of-bounds reads are an error, not silent zero-fill;
    /// samplers clamp their windows instead (see `datasets::samplers`).
    pub fn read_window(&self, w: &Window) -> RasterResult<Raster> {
        let mut data = pool::alloc_uninit(self.bands * w.area());
        self.read_window_into(w, &mut data)?;
        let mut out = Raster::new(data, self.bands, w.height, w.width)?;
        out.transform = self.transform.for_window(w.row, w.col);
        out.epsg = self.epsg;
        Ok(out)
    }

    /// Copy a pixel window (all bands) into a `[bands, h, w]` tensor on
    /// pooled storage — the tile-extraction path of tiled inference.
    pub fn read_window_tensor(&self, w: &Window) -> RasterResult<Tensor> {
        let mut data = pool::alloc_uninit(self.bands * w.area());
        self.read_window_into(w, &mut data)?;
        let t = Tensor::from_slice(&data, &[self.bands, w.height, w.width]);
        pool::release(data);
        Ok(t)
    }

    /// Copy a window's samples (band-major) into `out`, which must hold
    /// exactly `bands × window area` elements.
    pub fn read_window_into(&self, w: &Window, out: &mut [f32]) -> RasterResult<()> {
        if !self.extent().contains(w) {
            return Err(RasterError::InvalidArgument(format!(
                "window {w:?} outside raster {}x{}",
                self.height, self.width
            )));
        }
        if out.len() != self.bands * w.area() {
            return Err(RasterError::DimensionMismatch(format!(
                "window buffer of {} samples does not fit {}x{}x{}",
                out.len(),
                self.bands,
                w.height,
                w.width
            )));
        }
        for b in 0..self.bands {
            let band = self.band(b)?;
            for r in 0..w.height {
                let src = (w.row + r) * self.width + w.col;
                let dst = (b * w.height + r) * w.width;
                out[dst..dst + w.width].copy_from_slice(&band[src..src + w.width]);
            }
        }
        Ok(())
    }

    /// Mirror every band left↔right, in place.
    pub fn flip_horizontal_(&mut self) {
        for row in self.data.chunks_exact_mut(self.width) {
            row.reverse();
        }
    }

    /// Mirror every band top↕bottom, in place.
    pub fn flip_vertical_(&mut self) {
        let (h, w) = (self.height, self.width);
        for band in self.data.chunks_exact_mut(h * w) {
            for r in 0..h / 2 {
                let (top, rest) = band.split_at_mut((h - 1 - r) * w);
                top[r * w..(r + 1) * w].swap_with_slice(&mut rest[..w]);
            }
        }
    }

    /// Rotate every band by `turns × 90°` clockwise, in place. Odd turn
    /// counts swap height and width; the quarter-turn path stages one
    /// band at a time through a pooled scratch buffer, so steady-state
    /// augmentation loops stay allocation-free. The geotransform is kept
    /// as-is — rotation is an augmentation op, not a reprojection.
    pub fn rotate90_(&mut self, turns: usize) {
        match turns % 4 {
            0 => {}
            2 => {
                self.flip_vertical_();
                self.flip_horizontal_();
            }
            t => {
                let (h, w) = (self.height, self.width);
                let n = h * w;
                let mut scratch = pool::alloc_uninit(n);
                for band in self.data.chunks_exact_mut(n) {
                    scratch.copy_from_slice(band);
                    for r in 0..h {
                        for c in 0..w {
                            // CW: (r, c) → (c, h-1-r); CCW: (r, c) → (w-1-c, r).
                            // Rotated rows have stride h (the new width).
                            let (nr, nc) = if t == 1 { (c, h - 1 - r) } else { (w - 1 - c, r) };
                            band[nr * h + nc] = scratch[r * w + c];
                        }
                    }
                }
                pool::release(scratch);
                std::mem::swap(&mut self.height, &mut self.width);
            }
        }
    }

    /// View as a `[C, H, W]` tensor (pooled copy of the buffer).
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_slice(&self.data, &[self.bands, self.height, self.width])
    }

    /// Build from a `[C, H, W]` tensor (pooled copy).
    pub fn from_tensor(t: &Tensor) -> RasterResult<Raster> {
        if t.ndim() != 3 {
            return Err(RasterError::DimensionMismatch(format!(
                "expected [C,H,W] tensor, got {:?}",
                t.shape()
            )));
        }
        Raster::new(
            pool::alloc_copy(t.as_slice()),
            t.shape()[0],
            t.shape()[1],
            t.shape()[2],
        )
    }

    fn check_band(&self, band: usize) -> RasterResult<()> {
        if band >= self.bands {
            Err(RasterError::BandOutOfRange {
                band,
                bands: self.bands,
            })
        } else {
            Ok(())
        }
    }

    fn check_pixel(&self, band: usize, row: usize, col: usize) -> RasterResult<()> {
        self.check_band(band)?;
        if row >= self.height || col >= self.width {
            return Err(RasterError::InvalidArgument(format!(
                "pixel ({row}, {col}) outside {}x{}",
                self.height, self.width
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Raster {
        // 2 bands, 2x3
        Raster::new(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, // band 0
                10.0, 20.0, 30.0, 40.0, 50.0, 60.0, // band 1
            ],
            2,
            2,
            3,
        )
        .unwrap()
    }

    #[test]
    fn construction_and_access() {
        let r = sample();
        assert_eq!((r.bands(), r.height(), r.width()), (2, 2, 3));
        assert_eq!(r.get(0, 0, 0).unwrap(), 1.0);
        assert_eq!(r.get(1, 1, 2).unwrap(), 60.0);
        assert_eq!(r.band(1).unwrap()[0], 10.0);
        assert!(r.get(2, 0, 0).is_err());
        assert!(r.get(0, 2, 0).is_err());
    }

    #[test]
    fn rejects_bad_dimensions() {
        assert!(Raster::new(vec![0.0; 5], 1, 2, 3).is_err());
        assert!(Raster::new(vec![], 0, 1, 1).is_err());
    }

    #[test]
    fn push_remove_insert_band() {
        let mut r = sample();
        r.push_band(&[0.0; 6]).unwrap();
        assert_eq!(r.bands(), 3);
        r.remove_band(0).unwrap();
        assert_eq!(r.bands(), 2);
        assert_eq!(r.get(0, 0, 0).unwrap(), 10.0);
        r.insert_band(1, &[7.0; 6]).unwrap();
        assert_eq!(r.bands(), 3);
        assert_eq!(r.get(1, 0, 0).unwrap(), 7.0);
        assert_eq!(r.get(2, 0, 0).unwrap(), 0.0);
        assert!(r.push_band(&[0.0; 5]).is_err());
    }

    #[test]
    fn cannot_remove_last_band() {
        let mut r = Raster::zeros(1, 2, 2).unwrap();
        assert!(r.remove_band(0).is_err());
    }

    #[test]
    fn select_bands_reorders() {
        let r = sample();
        let sel = r.select_bands(&[1, 0]).unwrap();
        assert_eq!(sel.get(0, 0, 0).unwrap(), 10.0);
        assert_eq!(sel.get(1, 0, 0).unwrap(), 1.0);
        assert!(r.select_bands(&[5]).is_err());
        assert!(r.select_bands(&[]).is_err());
    }

    #[test]
    fn tensor_round_trip() {
        let r = sample();
        let t = r.to_tensor();
        assert_eq!(t.shape(), &[2, 2, 3]);
        let back = Raster::from_tensor(&t).unwrap();
        assert_eq!(back.as_slice(), r.as_slice());
    }

    #[test]
    fn geotransform_pixel_to_world() {
        let gt = GeoTransform {
            origin_x: 100.0,
            origin_y: 50.0,
            pixel_width: 2.0,
            pixel_height: 1.0,
        };
        let (x, y) = gt.pixel_to_world(0, 0);
        assert_eq!((x, y), (101.0, 49.5));
        let (x, y) = gt.pixel_to_world(2, 3);
        assert_eq!((x, y), (107.0, 47.5));
    }

    #[test]
    fn read_window_copies_and_georeferences() {
        let mut r = sample();
        r.transform = GeoTransform {
            origin_x: 100.0,
            origin_y: 50.0,
            pixel_width: 2.0,
            pixel_height: 1.0,
        };
        r.epsg = 4326;
        let w = Window::new(1, 1, 1, 2);
        let crop = r.read_window(&w).unwrap();
        assert_eq!((crop.bands(), crop.height(), crop.width()), (2, 1, 2));
        assert_eq!(crop.as_slice(), &[5.0, 6.0, 50.0, 60.0]);
        assert_eq!(crop.transform.origin_x, 102.0);
        assert_eq!(crop.transform.origin_y, 49.0);
        assert_eq!(crop.epsg, 4326);
        // Out-of-bounds windows error instead of zero-padding.
        assert!(r.read_window(&Window::new(1, 1, 2, 3)).is_err());
    }

    #[test]
    fn read_window_tensor_matches_read_window() {
        let r = sample();
        let w = Window::new(0, 1, 2, 2);
        let t = r.read_window_tensor(&w).unwrap();
        assert_eq!(t.shape(), &[2, 2, 2]);
        assert_eq!(t.as_slice(), r.read_window(&w).unwrap().as_slice());
    }

    #[test]
    fn band_rows_is_contiguous_view() {
        let r = sample();
        assert_eq!(r.band_rows(1, 1, 1).unwrap(), &[40.0, 50.0, 60.0]);
        assert_eq!(r.band_rows(0, 0, 2).unwrap(), r.band(0).unwrap());
        assert!(r.band_rows(0, 1, 2).is_err());
    }

    #[test]
    fn flips_are_involutions() {
        let mut r = sample();
        r.flip_horizontal_();
        assert_eq!(r.band(0).unwrap(), &[3.0, 2.0, 1.0, 6.0, 5.0, 4.0]);
        r.flip_horizontal_();
        assert_eq!(&r, &sample());
        r.flip_vertical_();
        assert_eq!(r.band(1).unwrap(), &[40.0, 50.0, 60.0, 10.0, 20.0, 30.0]);
        r.flip_vertical_();
        assert_eq!(&r, &sample());
    }

    #[test]
    fn rotate90_quarter_turns() {
        let mut r = sample();
        r.rotate90_(1); // clockwise
        assert_eq!((r.height(), r.width()), (3, 2));
        assert_eq!(r.band(0).unwrap(), &[4.0, 1.0, 5.0, 2.0, 6.0, 3.0]);
        r.rotate90_(3); // three more turns: back to start
        assert_eq!(&r, &sample());
        r.rotate90_(2); // half turn = both flips
        let mut flipped = sample();
        flipped.flip_vertical_();
        flipped.flip_horizontal_();
        assert_eq!(r, flipped);
        r.rotate90_(0);
        assert_eq!(r, flipped);
        // CCW is the inverse of CW.
        let mut q = sample();
        q.rotate90_(1);
        q.rotate90_(7); // 7 % 4 = 3 = CCW once
        assert_eq!(&q, &sample());
    }
}
