//! Model checkpointing: JSON serialisation of a module's state dict.

use std::path::Path;

use geotorch_nn::Module;
use geotorch_tensor::Tensor;

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed checkpoint contents.
    Format(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Format(msg) => write!(f, "checkpoint format error: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Save a module's parameters to a JSON file.
///
/// The write is atomic with respect to the destination: the bytes go to
/// a `.tmp` sibling first and are `rename`d into place, so a crash (or
/// full disk) mid-write never leaves a truncated checkpoint where a
/// previously valid one existed.
pub fn save(model: &dyn Module, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let path = path.as_ref();
    let state = model.state_dict();
    let json = serde_json::to_string(&state)
        .map_err(|e| CheckpointError::Format(e.to_string()))?;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    if let Err(e) = std::fs::write(&tmp, json) {
        std::fs::remove_file(&tmp).ok();
        return Err(CheckpointError::Io(e));
    }
    std::fs::rename(&tmp, path).map_err(|e| {
        std::fs::remove_file(&tmp).ok();
        CheckpointError::Io(e)
    })
}

/// Load parameters saved by [`save`] into a structurally identical model.
pub fn load(model: &dyn Module, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let json = std::fs::read_to_string(path).map_err(CheckpointError::Io)?;
    let state: Vec<Tensor> =
        serde_json::from_str(&json).map_err(|e| CheckpointError::Format(e.to_string()))?;
    let params = model.parameters();
    if params.len() != state.len() {
        return Err(CheckpointError::Format(format!(
            "checkpoint has {} tensors, model has {} parameters",
            state.len(),
            params.len()
        )));
    }
    for (p, t) in params.iter().zip(&state) {
        if p.shape() != t.shape() {
            return Err(CheckpointError::Format(format!(
                "parameter shape {:?} does not match checkpoint shape {:?}",
                p.shape(),
                t.shape()
            )));
        }
    }
    model.load_state_dict(&state);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotorch_models::raster::SatCnn;
    use geotorch_models::RasterClassifier;
    use geotorch_nn::Var;
    use rand::SeedableRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("geotorch_ckpt_{}_{name}.json", std::process::id()))
    }

    #[test]
    fn save_load_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let model = SatCnn::new(2, 8, 8, 3, &mut rng);
        let x = Var::constant(Tensor::rand_uniform(&[1, 2, 8, 8], 0.0, 1.0, &mut rng));
        let before = model.forward(&x, None).value();
        let path = tmp("round_trip");
        save(&model, &path).unwrap();

        // Fresh model with different init must differ, then match after load.
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(99);
        let model2 = SatCnn::new(2, 8, 8, 3, &mut rng2);
        assert!(!model2.forward(&x, None).value().allclose(&before, 1e-6));
        load(&model2, &path).unwrap();
        assert!(model2.forward(&x, None).value().allclose(&before, 1e-6));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_structural_mismatch() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let small = SatCnn::new(2, 8, 8, 3, &mut rng);
        let big = SatCnn::new(4, 8, 8, 3, &mut rng);
        let path = tmp("mismatch");
        save(&small, &path).unwrap();
        assert!(matches!(load(&big, &path), Err(CheckpointError::Format(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_is_atomic() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let model = SatCnn::new(1, 8, 8, 2, &mut rng);
        let path = tmp("atomic");
        let tmp_sibling = {
            let mut s = path.as_os_str().to_owned();
            s.push(".tmp");
            std::path::PathBuf::from(s)
        };
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&tmp_sibling).ok();

        // A good checkpoint exists...
        save(&model, &path).unwrap();
        assert!(!tmp_sibling.exists(), "tmp sibling must not outlive save");
        let good = std::fs::read_to_string(&path).unwrap();

        // ...then a save whose staging write fails (a directory squats on
        // the .tmp path) must error without touching the real file.
        std::fs::create_dir(&tmp_sibling).unwrap();
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(7);
        let other = SatCnn::new(1, 8, 8, 2, &mut rng2);
        assert!(matches!(save(&other, &path), Err(CheckpointError::Io(_))));
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            good,
            "failed save must leave the previous checkpoint intact"
        );
        load(&model, &path).unwrap();

        std::fs::remove_dir(&tmp_sibling).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let model = SatCnn::new(1, 8, 8, 2, &mut rng);
        assert!(matches!(
            load(&model, "/nonexistent/ckpt.json"),
            Err(CheckpointError::Io(_))
        ));
    }
}
