//! Model checkpointing: JSON serialisation of a module's state dict.
//!
//! Format version 1 wraps the tensors in a header that records the model
//! name (when known) and every tensor's shape, so a checkpoint can be
//! validated against a target architecture — or rejected with an error —
//! *before* any parameter is overwritten:
//!
//! ```json
//! {"format":"geotorch.checkpoint","version":1,"model":"SatCNN",
//!  "shapes":[[16,2,3,3], ...],
//!  "tensors":[{"shape":[16,2,3,3],"data":[...]}, ...]}
//! ```
//!
//! Legacy headerless files (a bare JSON array of tensors, the pre-v1
//! format) are still readable by [`load`] and [`load_named`].
//!
//! Format version 2 is the *manifest* form used by the replicated
//! registry (see [`crate::delta`]): the file holds per-tensor
//! `(version, content-hash)` entries and DAG parents instead of inline
//! tensors, with payloads in sibling files. [`peek`] reads a manifest
//! without touching any payload; [`load`]/[`load_named`] resolve the
//! payloads from the manifest's directory.

use std::path::Path;

use geotorch_nn::Module;
use geotorch_tensor::Tensor;
use serde::{Deserialize, Serialize, Value};

/// The `format` marker written into every v1+ checkpoint.
pub const FORMAT_MARKER: &str = "geotorch.checkpoint";

/// The newest checkpoint format version this build writes and reads.
pub const FORMAT_VERSION: u64 = 1;

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed checkpoint contents.
    Format(String),
    /// The checkpoint header names a different model than the caller
    /// expects (e.g. loading a UNet checkpoint into a SatCNN slot).
    WrongModel {
        /// Model name recorded in the checkpoint header.
        saved: String,
        /// Model name the caller asked for.
        expected: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Format(msg) => write!(f, "checkpoint format error: {msg}"),
            CheckpointError::WrongModel { saved, expected } => write!(
                f,
                "checkpoint was saved for model `{saved}`, expected `{expected}`"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Save a module's parameters under the v1 header, without a model name.
///
/// The write is atomic with respect to the destination: the bytes go to
/// a `.tmp` sibling first and are `rename`d into place, so a crash (or
/// full disk) mid-write never leaves a truncated checkpoint where a
/// previously valid one existed.
pub fn save(model: &dyn Module, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    save_impl(model, None, path.as_ref())
}

/// Save a module's parameters with the model name recorded in the header,
/// so [`load_named`] can refuse to deserialise it into a different
/// architecture.
pub fn save_named(
    model: &dyn Module,
    name: &str,
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    save_impl(model, Some(name), path.as_ref())
}

fn save_impl(
    model: &dyn Module,
    name: Option<&str>,
    path: &Path,
) -> Result<(), CheckpointError> {
    let state = model.state_dict();
    let shapes: Vec<Vec<usize>> = state.iter().map(|t| t.shape().to_vec()).collect();
    let header = Value::Object(vec![
        ("format".to_string(), FORMAT_MARKER.to_value()),
        ("version".to_string(), FORMAT_VERSION.to_value()),
        (
            "model".to_string(),
            name.map_or(Value::Null, |n| n.to_value()),
        ),
        ("shapes".to_string(), shapes.to_value()),
        ("tensors".to_string(), state.to_value()),
    ]);
    let json = serde_json::to_string(&header)
        .map_err(|e| CheckpointError::Format(e.to_string()))?;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    if let Err(e) = std::fs::write(&tmp, json) {
        std::fs::remove_file(&tmp).ok();
        return Err(CheckpointError::Io(e));
    }
    // Chaos hook for the crash window the tmp+rename dance exists for:
    // a fault injected here (error or panic) must leave any previous
    // checkpoint at `path` untouched and loadable.
    if let Err(msg) = geotorch_telemetry::fault_point!("core.checkpoint.rename") {
        std::fs::remove_file(&tmp).ok();
        return Err(CheckpointError::Format(format!(
            "injected fault between staging write and rename: {msg}"
        )));
    }
    std::fs::rename(&tmp, path).map_err(|e| {
        std::fs::remove_file(&tmp).ok();
        CheckpointError::Io(e)
    })
}

/// What a checkpoint file declares about itself, readable without
/// touching any model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Format version (`0` for legacy headerless files).
    pub version: u64,
    /// Model name recorded at save time, if any.
    pub model: Option<String>,
    /// Shape of every tensor in the state dict, in parameter order.
    pub shapes: Vec<Vec<usize>>,
}

/// What a checkpoint file turned out to hold.
enum ParsedFile {
    /// Legacy array or v1 header: tensors inline.
    Inline(CheckpointMeta, Vec<Tensor>),
    /// v2 manifest: per-tensor versions, payloads in sibling files.
    Manifest(crate::delta::Manifest),
}

fn parse_file(path: &Path) -> Result<ParsedFile, CheckpointError> {
    if let Err(msg) = geotorch_telemetry::fault_point!("core.checkpoint.load") {
        return Err(CheckpointError::Format(format!(
            "injected load fault: {msg}"
        )));
    }
    let json = std::fs::read_to_string(path).map_err(CheckpointError::Io)?;
    let value: Value =
        serde_json::from_str(&json).map_err(|e| CheckpointError::Format(e.to_string()))?;
    if value.get("version").and_then(Value::as_f64) == Some(crate::delta::MANIFEST_VERSION as f64)
    {
        return crate::delta::Manifest::from_value(&value).map(ParsedFile::Manifest);
    }
    parse_inline(&value).map(|(meta, tensors)| ParsedFile::Inline(meta, tensors))
}

/// Parse an *inline* checkpoint (legacy headerless array or the v1
/// header format) from already-read JSON text. Manifest files carry no
/// tensor data and are rejected here — load them through a
/// [`crate::delta::DeltaStore`] or by path via [`load`].
pub fn parse_bytes(json: &str) -> Result<(CheckpointMeta, Vec<Tensor>), CheckpointError> {
    let value: Value =
        serde_json::from_str(json).map_err(|e| CheckpointError::Format(e.to_string()))?;
    if value.get("version").and_then(Value::as_f64) == Some(crate::delta::MANIFEST_VERSION as f64)
    {
        return Err(CheckpointError::Format(
            "a manifest carries no tensor payloads; load it through its store".to_string(),
        ));
    }
    parse_inline(&value)
}

/// Parse an inline checkpoint value, accepting both the v1 header
/// format and legacy headerless arrays.
fn parse_inline(value: &Value) -> Result<(CheckpointMeta, Vec<Tensor>), CheckpointError> {
    match value {
        // Legacy: a bare array of tensors, no metadata.
        Value::Array(_) => {
            let tensors = Vec::<Tensor>::from_value(value)
                .map_err(|e| CheckpointError::Format(e.to_string()))?;
            let shapes = tensors.iter().map(|t| t.shape().to_vec()).collect();
            Ok((
                CheckpointMeta {
                    version: 0,
                    model: None,
                    shapes,
                },
                tensors,
            ))
        }
        Value::Object(_) => {
            let marker = value
                .get("format")
                .and_then(Value::as_str)
                .ok_or_else(|| {
                    CheckpointError::Format("missing `format` marker".to_string())
                })?;
            if marker != FORMAT_MARKER {
                return Err(CheckpointError::Format(format!(
                    "unknown format marker `{marker}`"
                )));
            }
            let version = value
                .get("version")
                .and_then(Value::as_f64)
                .ok_or_else(|| CheckpointError::Format("missing `version`".to_string()))?
                as u64;
            if version == 0 || version > FORMAT_VERSION {
                return Err(CheckpointError::Format(format!(
                    "unsupported checkpoint version {version} (this build reads ≤ {FORMAT_VERSION})"
                )));
            }
            let model = match value.get("model") {
                None | Some(Value::Null) => None,
                Some(v) => Some(
                    v.as_str()
                        .ok_or_else(|| {
                            CheckpointError::Format("`model` must be a string".to_string())
                        })?
                        .to_string(),
                ),
            };
            let shapes: Vec<Vec<usize>> = value
                .get("shapes")
                .map(Vec::<Vec<usize>>::from_value)
                .transpose()
                .map_err(|e| CheckpointError::Format(e.to_string()))?
                .ok_or_else(|| CheckpointError::Format("missing `shapes`".to_string()))?;
            let tensors = value
                .get("tensors")
                .map(Vec::<Tensor>::from_value)
                .transpose()
                .map_err(|e| CheckpointError::Format(e.to_string()))?
                .ok_or_else(|| CheckpointError::Format("missing `tensors`".to_string()))?;
            if shapes.len() != tensors.len() {
                return Err(CheckpointError::Format(format!(
                    "header lists {} shapes but file holds {} tensors",
                    shapes.len(),
                    tensors.len()
                )));
            }
            for (i, (shape, t)) in shapes.iter().zip(&tensors).enumerate() {
                if shape.as_slice() != t.shape() {
                    return Err(CheckpointError::Format(format!(
                        "tensor {i}: header shape {:?} disagrees with payload shape {:?}",
                        shape,
                        t.shape()
                    )));
                }
            }
            Ok((
                CheckpointMeta {
                    version,
                    model,
                    shapes,
                },
                tensors,
            ))
        }
        other => Err(CheckpointError::Format(format!(
            "expected a checkpoint object or legacy array, found {other:?}"
        ))),
    }
}

/// Read only a checkpoint's metadata (version, model name, shapes).
///
/// For a v2 manifest this reads *just* the manifest file — no tensor
/// payload is touched, so peeking a multi-hundred-MB checkpoint stays
/// O(header).
pub fn peek(path: impl AsRef<Path>) -> Result<CheckpointMeta, CheckpointError> {
    match parse_file(path.as_ref())? {
        ParsedFile::Inline(meta, _) => Ok(meta),
        ParsedFile::Manifest(manifest) => Ok(CheckpointMeta {
            version: crate::delta::MANIFEST_VERSION,
            model: manifest.model,
            shapes: manifest.shapes,
        }),
    }
}

/// Load parameters saved by [`save`]/[`save_named`] (or a legacy file)
/// into a structurally identical model. Shape mismatches are reported as
/// errors before any parameter is touched.
pub fn load(model: &dyn Module, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    load_impl(model, None, path.as_ref())
}

/// Like [`load`], but additionally require the checkpoint header to name
/// `expected` (legacy headerless files, which carry no name, are
/// accepted as long as the shapes match).
pub fn load_named(
    model: &dyn Module,
    expected: &str,
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    load_impl(model, Some(expected), path.as_ref())
}

fn load_impl(
    model: &dyn Module,
    expected: Option<&str>,
    path: &Path,
) -> Result<(), CheckpointError> {
    let (meta, state) = match parse_file(path)? {
        ParsedFile::Inline(meta, tensors) => (meta, tensors),
        ParsedFile::Manifest(manifest) => {
            // Payloads live next to the manifest file (the store root).
            let dir = path.parent().unwrap_or_else(|| Path::new("."));
            let tensors = crate::delta::manifest_tensors(dir, &manifest)?;
            (
                CheckpointMeta {
                    version: crate::delta::MANIFEST_VERSION,
                    model: manifest.model,
                    shapes: manifest.shapes,
                },
                tensors,
            )
        }
    };
    if let (Some(expected), Some(saved)) = (expected, meta.model.as_deref()) {
        if expected != saved {
            return Err(CheckpointError::WrongModel {
                saved: saved.to_string(),
                expected: expected.to_string(),
            });
        }
    }
    model
        .load_state_dict(&state)
        .map_err(|e| CheckpointError::Format(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotorch_models::raster::{SatCnn, UNet};
    use geotorch_models::RasterClassifier;
    use geotorch_nn::Var;
    use rand::SeedableRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("geotorch_ckpt_{}_{name}.json", std::process::id()))
    }

    #[test]
    fn save_load_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let model = SatCnn::new(2, 8, 8, 3, &mut rng);
        let x = Var::constant(Tensor::rand_uniform(&[1, 2, 8, 8], 0.0, 1.0, &mut rng));
        let before = model.forward(&x, None).value();
        let path = tmp("round_trip");
        save(&model, &path).unwrap();

        // Fresh model with different init must differ, then match after load.
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(99);
        let model2 = SatCnn::new(2, 8, 8, 3, &mut rng2);
        assert!(!model2.forward(&x, None).value().allclose(&before, 1e-6));
        load(&model2, &path).unwrap();
        assert!(model2.forward(&x, None).value().allclose(&before, 1e-6));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_records_name_version_and_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let model = SatCnn::new(2, 8, 8, 3, &mut rng);
        let path = tmp("header");
        save_named(&model, "satcnn", &path).unwrap();
        let meta = peek(&path).unwrap();
        assert_eq!(meta.version, FORMAT_VERSION);
        assert_eq!(meta.model.as_deref(), Some("satcnn"));
        let expected: Vec<Vec<usize>> = model
            .state_dict()
            .iter()
            .map(|t| t.shape().to_vec())
            .collect();
        assert_eq!(meta.shapes, expected);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_headerless_files_still_load() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let model = SatCnn::new(2, 8, 8, 3, &mut rng);
        let x = Var::constant(Tensor::rand_uniform(&[1, 2, 8, 8], 0.0, 1.0, &mut rng));
        let before = model.forward(&x, None).value();
        // Write the pre-v1 format by hand: a bare array of tensors.
        let path = tmp("legacy");
        let json = serde_json::to_string(&model.state_dict()).unwrap();
        assert!(json.starts_with('['), "legacy format is a bare array");
        std::fs::write(&path, json).unwrap();

        let meta = peek(&path).unwrap();
        assert_eq!(meta.version, 0, "legacy files report version 0");
        assert_eq!(meta.model, None);

        let mut rng2 = rand::rngs::StdRng::seed_from_u64(77);
        let model2 = SatCnn::new(2, 8, 8, 3, &mut rng2);
        load(&model2, &path).unwrap();
        assert!(model2.forward(&x, None).value().allclose(&before, 1e-6));
        // A named load accepts legacy files too — there is no name to check.
        load_named(&model2, "whatever", &path).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_structural_mismatch() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let small = SatCnn::new(2, 8, 8, 3, &mut rng);
        let big = SatCnn::new(4, 8, 8, 3, &mut rng);
        let path = tmp("mismatch");
        save(&small, &path).unwrap();
        assert!(matches!(load(&big, &path), Err(CheckpointError::Format(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_architecture_errors_without_mutating() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(15);
        let unet = UNet::new(3, 1, 4, &mut rng);
        let path = tmp("wrong_arch");
        save_named(&unet, "unet", &path).unwrap();

        let satcnn = SatCnn::new(2, 8, 8, 3, &mut rng);
        let before = satcnn.state_dict();
        // Name check fires first on named loads...
        assert!(matches!(
            load_named(&satcnn, "satcnn", &path),
            Err(CheckpointError::WrongModel { .. })
        ));
        // ...and the shape check still protects anonymous loads.
        assert!(matches!(load(&satcnn, &path), Err(CheckpointError::Format(_))));
        for (p, b) in satcnn.state_dict().iter().zip(&before) {
            assert_eq!(p, b, "failed load must not mutate the target model");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unsupported_version_errors() {
        let path = tmp("future_version");
        std::fs::write(
            &path,
            format!(
                "{{\"format\":\"{FORMAT_MARKER}\",\"version\":999,\"model\":null,\"shapes\":[],\"tensors\":[]}}"
            ),
        )
        .unwrap();
        let err = peek(&path).expect_err("future versions must be rejected");
        assert!(matches!(err, CheckpointError::Format(_)), "got {err:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_is_atomic() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let model = SatCnn::new(1, 8, 8, 2, &mut rng);
        let path = tmp("atomic");
        let tmp_sibling = {
            let mut s = path.as_os_str().to_owned();
            s.push(".tmp");
            std::path::PathBuf::from(s)
        };
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&tmp_sibling).ok();

        // A good checkpoint exists...
        save(&model, &path).unwrap();
        assert!(!tmp_sibling.exists(), "tmp sibling must not outlive save");
        let good = std::fs::read_to_string(&path).unwrap();

        // ...then a save whose staging write fails (a directory squats on
        // the .tmp path) must error without touching the real file.
        std::fs::create_dir(&tmp_sibling).unwrap();
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(7);
        let other = SatCnn::new(1, 8, 8, 2, &mut rng2);
        assert!(matches!(save(&other, &path), Err(CheckpointError::Io(_))));
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            good,
            "failed save must leave the previous checkpoint intact"
        );
        load(&model, &path).unwrap();

        std::fs::remove_dir(&tmp_sibling).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let model = SatCnn::new(1, 8, 8, 2, &mut rng);
        assert!(matches!(
            load(&model, "/nonexistent/ckpt.json"),
            Err(CheckpointError::Io(_))
        ));
    }
}
