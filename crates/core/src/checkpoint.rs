//! Model checkpointing: JSON serialisation of a module's state dict.

use std::path::Path;

use geotorch_nn::Module;
use geotorch_tensor::Tensor;

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed checkpoint contents.
    Format(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Format(msg) => write!(f, "checkpoint format error: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Save a module's parameters to a JSON file.
pub fn save(model: &dyn Module, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let state = model.state_dict();
    let json = serde_json::to_string(&state)
        .map_err(|e| CheckpointError::Format(e.to_string()))?;
    std::fs::write(path, json).map_err(CheckpointError::Io)
}

/// Load parameters saved by [`save`] into a structurally identical model.
pub fn load(model: &dyn Module, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let json = std::fs::read_to_string(path).map_err(CheckpointError::Io)?;
    let state: Vec<Tensor> =
        serde_json::from_str(&json).map_err(|e| CheckpointError::Format(e.to_string()))?;
    let params = model.parameters();
    if params.len() != state.len() {
        return Err(CheckpointError::Format(format!(
            "checkpoint has {} tensors, model has {} parameters",
            state.len(),
            params.len()
        )));
    }
    for (p, t) in params.iter().zip(&state) {
        if p.shape() != t.shape() {
            return Err(CheckpointError::Format(format!(
                "parameter shape {:?} does not match checkpoint shape {:?}",
                p.shape(),
                t.shape()
            )));
        }
    }
    model.load_state_dict(&state);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotorch_models::raster::SatCnn;
    use geotorch_models::RasterClassifier;
    use geotorch_nn::Var;
    use rand::SeedableRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("geotorch_ckpt_{}_{name}.json", std::process::id()))
    }

    #[test]
    fn save_load_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let model = SatCnn::new(2, 8, 8, 3, &mut rng);
        let x = Var::constant(Tensor::rand_uniform(&[1, 2, 8, 8], 0.0, 1.0, &mut rng));
        let before = model.forward(&x, None).value();
        let path = tmp("round_trip");
        save(&model, &path).unwrap();

        // Fresh model with different init must differ, then match after load.
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(99);
        let model2 = SatCnn::new(2, 8, 8, 3, &mut rng2);
        assert!(!model2.forward(&x, None).value().allclose(&before, 1e-6));
        load(&model2, &path).unwrap();
        assert!(model2.forward(&x, None).value().allclose(&before, 1e-6));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_structural_mismatch() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let small = SatCnn::new(2, 8, 8, 3, &mut rng);
        let big = SatCnn::new(4, 8, 8, 3, &mut rng);
        let path = tmp("mismatch");
        save(&small, &path).unwrap();
        assert!(matches!(load(&big, &path), Err(CheckpointError::Format(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let model = SatCnn::new(1, 8, 8, 2, &mut rng);
        assert!(matches!(
            load(&model, "/nonexistent/ckpt.json"),
            Err(CheckpointError::Io(_))
        ));
    }
}
