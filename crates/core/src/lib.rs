//! # geotorch-core
//!
//! Training infrastructure for GeoTorch-RS: the evaluation-protocol glue
//! the paper's §V experiments run on — metrics (MAE, RMSE, accuracy),
//! a [`trainer::Trainer`] with MSE/cross-entropy losses, Adam, early
//! stopping on the validation metric, incremental or cumulative weight
//! updates (§III-A2), and JSON checkpointing of model parameters.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod delta;
pub mod metrics;
pub mod replica;
pub mod trainer;

pub use delta::{DeltaStore, IntegrateReport, Manifest, PublishReport, TensorVersion};
pub use replica::{IndexStepSource, StepSource, StreamStepSource, TrainError};
pub use trainer::{StopReason, TrainConfig, TrainReport, Trainer, UpdateMode};
