//! Evaluation metrics (§V-A3 of the paper).

use geotorch_tensor::Tensor;

/// Mean absolute error between two same-shaped tensors.
///
/// # Panics
/// If shapes differ or tensors are empty.
pub fn mae(pred: &Tensor, target: &Tensor) -> f32 {
    assert_eq!(pred.shape(), target.shape(), "mae shape mismatch");
    assert!(!pred.is_empty(), "mae on empty tensors");
    pred.sub(target).abs().mean()
}

/// Root mean square error between two same-shaped tensors.
pub fn rmse(pred: &Tensor, target: &Tensor) -> f32 {
    assert_eq!(pred.shape(), target.shape(), "rmse shape mismatch");
    assert!(!pred.is_empty(), "rmse on empty tensors");
    pred.sub(target).square().mean().sqrt()
}

/// Classification accuracy of row-wise logits `[B, K]` against class
/// indices.
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> f32 {
    assert_eq!(logits.shape()[0], targets.len(), "accuracy batch mismatch");
    if targets.is_empty() {
        return f32::NAN;
    }
    correct_count(logits, targets) as f32 / targets.len() as f32
}

/// Number of rows of `[B, K]` logits whose argmax equals the target
/// class. Exact integer count — use this when summing over batches so no
/// precision is lost reconstructing counts from per-batch accuracies.
pub fn correct_count(logits: &Tensor, targets: &[usize]) -> usize {
    assert_eq!(
        logits.shape()[0],
        targets.len(),
        "correct_count batch mismatch"
    );
    logits
        .argmax_rows()
        .iter()
        .zip(targets)
        .filter(|(p, t)| p == t)
        .count()
}

/// Number of pixels where the binary prediction (logit > 0) matches the
/// mask (> 0.5). Exact integer count for pixel-weighted aggregation
/// across batches of differing size.
pub fn pixel_correct_count(logits: &Tensor, mask: &Tensor) -> usize {
    assert_eq!(
        logits.shape(),
        mask.shape(),
        "pixel_correct_count shape mismatch"
    );
    logits
        .as_slice()
        .iter()
        .zip(mask.as_slice())
        .filter(|(&l, &m)| (l > 0.0) == (m > 0.5))
        .count()
}

/// Pixel accuracy of segmentation logits against a binary mask
/// (prediction = logit > 0).
pub fn pixel_accuracy(logits: &Tensor, mask: &Tensor) -> f32 {
    assert_eq!(logits.shape(), mask.shape(), "pixel_accuracy shape mismatch");
    assert!(!logits.is_empty(), "pixel_accuracy on empty tensors");
    pixel_correct_count(logits, mask) as f32 / logits.len() as f32
}

/// Intersection-over-union of a binary segmentation (logit > 0 vs mask).
pub fn iou(logits: &Tensor, mask: &Tensor) -> f32 {
    assert_eq!(logits.shape(), mask.shape(), "iou shape mismatch");
    let mut intersection = 0usize;
    let mut union = 0usize;
    for (&l, &m) in logits.as_slice().iter().zip(mask.as_slice()) {
        let p = l > 0.0;
        let t = m > 0.5;
        if p && t {
            intersection += 1;
        }
        if p || t {
            union += 1;
        }
    }
    if union == 0 {
        1.0
    } else {
        intersection as f32 / union as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_rmse_known_values() {
        let p = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let t = Tensor::from_vec(vec![2.0, 2.0, 5.0], &[3]);
        assert_eq!(mae(&p, &t), 1.0);
        assert!((rmse(&p, &t) - (5.0f32 / 3.0).sqrt()).abs() < 1e-6);
        assert_eq!(mae(&p, &p), 0.0);
        assert_eq!(rmse(&p, &p), 0.0);
    }

    #[test]
    fn rmse_upper_bounds_mae() {
        let p = Tensor::from_vec(vec![0.0, 0.0, 0.0, 0.0], &[4]);
        let t = Tensor::from_vec(vec![1.0, 3.0, 0.5, 2.0], &[4]);
        assert!(rmse(&p, &t) >= mae(&p, &t));
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(
            vec![
                2.0, 0.0, 0.0, // → 0
                0.0, 3.0, 0.0, // → 1
                0.0, 0.0, 1.0, // → 2
            ],
            &[3, 3],
        );
        assert_eq!(accuracy(&logits, &[0, 1, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&logits, &[0, 1, 2]), 1.0);
    }

    #[test]
    fn pixel_accuracy_and_iou() {
        let logits = Tensor::from_vec(vec![1.0, -1.0, 1.0, -1.0], &[1, 1, 2, 2]);
        let mask = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0], &[1, 1, 2, 2]);
        assert_eq!(pixel_accuracy(&logits, &mask), 0.75);
        // Predicted {0,2}, truth {0}: intersection 1, union 2.
        assert_eq!(iou(&logits, &mask), 0.5);
        // Perfectly empty prediction and mask.
        let empty = Tensor::from_vec(vec![-1.0, -1.0], &[2]);
        let none = Tensor::zeros(&[2]);
        assert_eq!(iou(&empty, &none), 1.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_shapes_panic() {
        mae(&Tensor::zeros(&[2]), &Tensor::zeros(&[3]));
    }
}
