//! Data-parallel training: K model replicas, per-step gradient
//! averaging, one shared optimizer — the trainer layer of the
//! `DataSource → Loader → Trainer` seam (DESIGN.md §14).
//!
//! # Architecture
//!
//! The master thread owns the canonical model, the optimizer, early
//! stopping, and validation. K replica worker threads each own a private
//! model instance (the autograd tape is `Rc`-based and cannot cross
//! threads, so models are built *on* their threads by a `Sync` factory —
//! the same pattern as the serving batcher's model-owner threads). One
//! training step is:
//!
//! 1. master broadcasts its state dict (O(1) `Arc` clones per tensor)
//!    and deals each replica `r` a shard of `n_r` samples with weight
//!    `w_r = n_r / N`;
//! 2. replica `r` forwards its shard, runs `backward` seeded with `w_r`
//!    (so its gradients arrive pre-scaled), and ships the gradients
//!    back;
//! 3. master sums the shard gradients **in replica order**, seeds them
//!    onto the canonical parameters, and takes one pooled in-place Adam
//!    step.
//!
//! # K = 1 bit-identity
//!
//! With one replica, `w = n/n = 1.0` exactly, so the seeded backward is
//! bit-identical to the classic `loss.backward()`; the merge is a
//! single-term sum; the optimizer sees byte-identical gradients in the
//! same order. The whole data-parallel machinery therefore reproduces
//! [`Trainer::fit_loop`]'s trajectory bit-for-bit (asserted in
//! `tests/replica_parity.rs` down to checkpoint bytes).
//!
//! # Shard-assignment determinism
//!
//! Shards are contiguous slices of the shuffled batch (index path) or
//! consecutive stream batches (stream path), dealt to replicas in slot
//! order. No work stealing: the assignment is a pure function of
//! `(seed, epoch, step, K)`, so reruns are reproducible.
//!
//! Non-trainable parameters (batch-norm running statistics) produce no
//! gradients; the master adopts their post-forward values from the
//! lowest-numbered replica that ran, which for K = 1 is exactly the
//! classic trainer's in-place statistics update.

use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::time::Instant;

use geotorch_converter::{BatchStream, LoaderError};
use geotorch_datasets::BatchIndices;
use geotorch_nn::loss::mse_loss;
use geotorch_nn::optim::{Adam, Optimizer};
use geotorch_nn::{Module, Var};
use geotorch_tensor::{with_device, Device, Tensor};

use crate::trainer::{
    empty_report, scale_grads, stamp_host, TrainConfig, TrainReport, Trainer, UpdateMode,
};
use crate::StopReason;

/// Why a data-parallel fit failed.
#[derive(Debug)]
pub enum TrainError {
    /// The batch source failed (spill read, prefetch fault, …).
    Loader(LoaderError),
    /// A replica worker failed (panic in the loss, bad state dict, …).
    Replica {
        /// Which replica slot failed.
        replica: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Loader(e) => write!(f, "loader: {e}"),
            TrainError::Replica { replica, message } => {
                write!(f, "replica {replica}: {message}")
            }
        }
    }
}

impl std::error::Error for TrainError {}

impl From<LoaderError> for TrainError {
    fn from(e: LoaderError) -> TrainError {
        TrainError::Loader(e)
    }
}

/// Per-step work source: deals each step's payloads (one per replica,
/// with sample counts) until the epoch is exhausted.
pub trait StepSource<P> {
    /// Reset for epoch `epoch` (rebuild streams, reshuffle indices).
    fn begin_epoch(&mut self, epoch: usize) -> Result<(), TrainError>;

    /// The next step's shards as `(payload, sample_count)` — at most one
    /// per replica slot, dealt in slot order — or `None` at epoch end.
    fn next_step(&mut self) -> Result<Option<Vec<(P, usize)>>, TrainError>;
}

/// Shards each shuffled batch of sample indices contiguously across
/// replicas — the data-parallel twin of the classic trainer's
/// `BatchIndices::shuffled` loop.
pub struct IndexStepSource<'a> {
    train_idx: &'a [usize],
    batch_size: usize,
    seed: u64,
    replicas: usize,
    iter: Option<BatchIndices>,
}

impl<'a> IndexStepSource<'a> {
    /// Steps over `train_idx` with `config`'s batch size, seed, and
    /// replica count.
    pub fn new(train_idx: &'a [usize], config: &TrainConfig) -> IndexStepSource<'a> {
        IndexStepSource {
            train_idx,
            batch_size: config.batch_size,
            seed: config.seed,
            replicas: config.replicas.max(1),
            iter: None,
        }
    }
}

impl StepSource<Vec<usize>> for IndexStepSource<'_> {
    fn begin_epoch(&mut self, epoch: usize) -> Result<(), TrainError> {
        self.iter = Some(BatchIndices::shuffled(
            self.train_idx,
            self.batch_size,
            self.seed.wrapping_add(epoch as u64),
        ));
        Ok(())
    }

    fn next_step(&mut self) -> Result<Option<Vec<(Vec<usize>, usize)>>, TrainError> {
        let Some(iter) = self.iter.as_mut() else {
            return Ok(None);
        };
        let Some(batch) = iter.next() else {
            self.iter = None;
            return Ok(None);
        };
        // Contiguous balanced split: the first `rem` shards get one
        // extra sample. Deterministic in (batch, K); empty shards are
        // never dealt (a ragged batch smaller than K uses fewer
        // replicas).
        let k = self.replicas.min(batch.len()).max(1);
        let base = batch.len() / k;
        let rem = batch.len() % k;
        let mut shards = Vec::with_capacity(k);
        let mut start = 0;
        for r in 0..k {
            let len = base + usize::from(r < rem);
            let shard = batch[start..start + len].to_vec();
            start += len;
            shards.push((shard, len));
        }
        Ok(Some(shards))
    }
}

/// Deals consecutive [`BatchStream`] batches to replica slots: step =
/// up to K stream batches, one per replica.
pub struct StreamStepSource<'a> {
    make: &'a mut dyn FnMut(usize) -> Result<Box<dyn BatchStream>, LoaderError>,
    stream: Option<Box<dyn BatchStream>>,
    replicas: usize,
}

impl<'a> StreamStepSource<'a> {
    /// A source that rebuilds its stream via `make` at each epoch.
    pub fn new(
        make: &'a mut dyn FnMut(usize) -> Result<Box<dyn BatchStream>, LoaderError>,
        config: &TrainConfig,
    ) -> StreamStepSource<'a> {
        StreamStepSource {
            make,
            stream: None,
            replicas: config.replicas.max(1),
        }
    }
}

impl StepSource<(Tensor, Tensor)> for StreamStepSource<'_> {
    fn begin_epoch(&mut self, epoch: usize) -> Result<(), TrainError> {
        self.stream = Some((self.make)(epoch)?);
        Ok(())
    }

    fn next_step(&mut self) -> Result<Option<Vec<((Tensor, Tensor), usize)>>, TrainError> {
        let Some(stream) = self.stream.as_mut() else {
            return Ok(None);
        };
        let mut shards = Vec::with_capacity(self.replicas);
        for _ in 0..self.replicas {
            match stream.next_batch() {
                Ok(Some(batch)) => {
                    let n = batch.0.shape()[0];
                    shards.push((batch, n));
                }
                Ok(None) => {
                    self.stream = None;
                    break;
                }
                Err(e) => {
                    // Sticky failure: drop the stream so the epoch ends
                    // here either way.
                    self.stream = None;
                    return Err(e.into());
                }
            }
        }
        if shards.is_empty() {
            Ok(None)
        } else {
            Ok(Some(shards))
        }
    }
}

/// One dispatched shard of work.
struct Job<P> {
    state: Vec<Tensor>,
    payload: P,
    weight: f32,
}

/// What a replica returns per job.
struct StepOut {
    loss: f32,
    grads: Vec<Option<Tensor>>,
    state: Vec<Tensor>,
}

struct RepResult {
    replica: usize,
    outcome: Result<StepOut, String>,
}

/// The data-parallel epoch driver. See the module docs for the step
/// protocol and the K = 1 bit-identity argument.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fit_replicated<M, P>(
    config: &TrainConfig,
    model: &M,
    factory: &(dyn Fn(usize) -> Box<M> + Sync),
    loss_fn: &(dyn Fn(&M, &P) -> Var + Sync),
    source: &mut dyn StepSource<P>,
    validate: &mut dyn FnMut() -> f32,
    mut on_improve: Option<&mut dyn FnMut(usize, f32)>,
) -> Result<TrainReport, TrainError>
where
    M: Module + ?Sized,
    P: Send,
{
    let k = config.replicas.max(1);
    let mut optimizer = Adam::new(model.parameters(), config.learning_rate);
    let params = model.parameters();
    let mut report = empty_report();
    let mut best = f32::INFINITY;
    let mut best_state: Option<Vec<Tensor>> = None;
    let mut stale = 0usize;
    let run: Result<(), TrainError> = std::thread::scope(|scope| {
        let (res_tx, res_rx) = mpsc::channel::<RepResult>();
        let mut job_txs = Vec::with_capacity(k);
        for r in 0..k {
            let (tx, rx) = mpsc::channel::<Job<P>>();
            job_txs.push(tx);
            let res_tx = res_tx.clone();
            let device = config.device;
            scope.spawn(move || replica_worker(r, device, factory, loss_fn, &rx, &res_tx));
        }
        drop(res_tx);
        for epoch in 0..config.epochs {
            model.set_training(true);
            let start = Instant::now();
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            let mut samples = 0usize;
            {
                let _epoch_t = geotorch_telemetry::scope!("core.trainer.epoch");
                source.begin_epoch(epoch)?;
                while let Some(shards) = source.next_step()? {
                    let n_total: usize = shards.iter().map(|(_, n)| *n).sum();
                    if n_total == 0 {
                        continue;
                    }
                    let state = model.state_dict();
                    let mut dealt: Vec<(usize, f32)> = Vec::with_capacity(shards.len());
                    for (slot, (payload, n)) in shards.into_iter().enumerate() {
                        let weight = n as f32 / n_total as f32;
                        job_txs[slot]
                            .send(Job {
                                state: state.clone(),
                                payload,
                                weight,
                            })
                            .map_err(|_| TrainError::Replica {
                                replica: slot,
                                message: "replica worker exited before dispatch".into(),
                            })?;
                        dealt.push((slot, weight));
                    }
                    let mut outs: Vec<Option<StepOut>> = (0..k).map(|_| None).collect();
                    for _ in 0..dealt.len() {
                        let res = res_rx.recv().map_err(|_| TrainError::Replica {
                            replica: 0,
                            message: "all replica workers exited mid-step".into(),
                        })?;
                        match res.outcome {
                            Ok(out) => outs[res.replica] = Some(out),
                            Err(message) => {
                                return Err(TrainError::Replica {
                                    replica: res.replica,
                                    message,
                                })
                            }
                        }
                    }
                    // Weighted step loss: Σ (n_r/N)·loss_r is the
                    // N-sample mean for mean-style losses; with K = 1
                    // the weight is exactly 1.0.
                    for (slot, weight) in &dealt {
                        epoch_loss += weight * outs[*slot].as_ref().expect("recorded").loss;
                    }
                    batches += 1;
                    samples += n_total;
                    merge_step(&params, &outs, &dealt);
                    if config.update_mode == UpdateMode::Incremental {
                        clip_and_step(config, &mut optimizer);
                    }
                }
                if config.update_mode == UpdateMode::Cumulative && batches > 0 {
                    scale_grads(optimizer.parameters(), 1.0 / batches as f32);
                    clip_and_step(config, &mut optimizer);
                }
            }
            let secs = start.elapsed().as_secs_f64();
            report.epoch_seconds.push(secs);
            report
                .samples_per_sec
                .push(if secs > 0.0 { samples as f64 / secs } else { 0.0 });
            report
                .train_losses
                .push(if batches > 0 { epoch_loss / batches as f32 } else { 0.0 });
            report.epochs_run = epoch + 1;
            geotorch_telemetry::count!("core.trainer.epochs", 1);
            geotorch_telemetry::count!("core.trainer.samples", samples);

            let val = validate();
            report.val_metrics.push(val);
            if val + 1e-6 < best {
                best = val;
                best_state = Some(model.state_dict());
                stale = 0;
                // The canonical model holds the post-average, post-step
                // weights here — the hook point for atomic checkpoints.
                if let Some(hook) = on_improve.as_deref_mut() {
                    hook(epoch + 1, val);
                }
            } else {
                stale += 1;
                if let Some(patience) = config.early_stopping_patience {
                    if stale >= patience {
                        report.stop_reason = StopReason::EarlyStopped {
                            epoch: epoch + 1,
                            patience,
                        };
                        break;
                    }
                }
            }
        }
        Ok(())
        // Scope exit drops every job sender; replica workers drain and
        // join here — on the error path too, so a failed epoch never
        // leaks threads or deadlocks.
    });
    run?;
    if let Some(state) = best_state {
        model
            .load_state_dict(&state)
            .expect("state dict snapshot of the same model always matches");
    }
    stamp_host(&mut report);
    Ok(report)
}

/// Merge one step's replica results into the canonical parameters:
/// gradients summed in replica order (they arrive pre-scaled by
/// `n_r/N`), gradient-less parameters (running statistics) adopted from
/// the lowest dispatched replica.
fn merge_step(params: &[Var], outs: &[Option<StepOut>], dealt: &[(usize, f32)]) {
    let first = dealt[0].0;
    for (i, p) in params.iter().enumerate() {
        let mut total: Option<Tensor> = None;
        for (slot, _) in dealt {
            let out = outs[*slot].as_ref().expect("recorded");
            if let Some(g) = &out.grads[i] {
                match &mut total {
                    None => total = Some(g.clone()),
                    Some(t) => t.add_(g),
                }
            }
        }
        match total {
            Some(t) => p.seed_grad(t),
            None => p.assign(outs[first].as_ref().expect("recorded").state[i].clone()),
        }
    }
}

/// Clip (if configured), step, and clear gradients — the classic
/// trainer's cadence, verbatim.
fn clip_and_step(config: &TrainConfig, optimizer: &mut Adam) {
    if let Some(max_norm) = config.gradient_clip {
        geotorch_nn::schedule::clip_grad_norm(optimizer.parameters(), max_norm);
    }
    optimizer.step();
    optimizer.zero_grad();
}

/// A replica worker: build the private model once, then serve jobs until
/// the master hangs up. Exactly one result is sent per job — panics in
/// the factory or the loss surface as `Err` results, never a hang.
fn replica_worker<M, P>(
    replica: usize,
    device: Device,
    factory: &(dyn Fn(usize) -> Box<M> + Sync),
    loss_fn: &(dyn Fn(&M, &P) -> Var + Sync),
    jobs: &mpsc::Receiver<Job<P>>,
    results: &mpsc::Sender<RepResult>,
) where
    M: Module + ?Sized,
    P: Send,
{
    let built = std::panic::catch_unwind(AssertUnwindSafe(|| factory(replica)));
    let model: Option<Box<M>> = match built {
        Ok(m) => Some(m),
        Err(panic) => {
            let _ = results.send(RepResult {
                replica,
                outcome: Err(format!(
                    "replica factory panicked: {}",
                    panic_message(&panic)
                )),
            });
            None
        }
    };
    for job in jobs.iter() {
        let outcome = match &model {
            None => Err("replica model was never built".to_string()),
            Some(model) => {
                std::panic::catch_unwind(AssertUnwindSafe(|| run_job(&**model, loss_fn, device, &job)))
                    .unwrap_or_else(|panic| {
                        Err(format!("replica step panicked: {}", panic_message(&panic)))
                    })
            }
        };
        if results.send(RepResult { replica, outcome }).is_err() {
            break;
        }
    }
}

fn run_job<M, P>(
    model: &M,
    loss_fn: &(dyn Fn(&M, &P) -> Var + Sync),
    device: Device,
    job: &Job<P>,
) -> Result<StepOut, String>
where
    M: Module + ?Sized,
    P: Send,
{
    with_device(device, || {
        model
            .load_state_dict(&job.state)
            .map_err(|e| format!("broadcast state rejected: {e}"))?;
        model.set_training(true);
        let params = model.parameters();
        let loss = loss_fn(model, &job.payload);
        let value = loss.value();
        let item = value.item();
        // Seeding backward with w_r scales every gradient by n_r/N at
        // the source, so the master's merge is a plain sum. w = 1.0 for
        // K = 1 makes this bit-identical to `loss.backward()`.
        let seed = Tensor::from_vec(vec![job.weight; value.len()], value.shape());
        loss.backward_with(seed);
        drop(loss);
        let grads: Vec<Option<Tensor>> = params.iter().map(Var::grad).collect();
        for p in &params {
            p.zero_grad();
        }
        Ok(StepOut {
            loss: item,
            grads,
            state: model.state_dict(),
        })
    })
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

// ------------------------------------------------- Trainer entry points

/// [`IndexStepSource`] with a master-side materializer: index shards
/// become batch payloads *before* dispatch, so replica workers never
/// touch the (non-`Sync`) dataset.
type Materializer<'a, P> = Box<dyn FnMut(&[usize]) -> P + 'a>;

struct MaterializedSource<'a, P> {
    inner: IndexStepSource<'a>,
    materialize: Materializer<'a, P>,
}

impl<P> StepSource<P> for MaterializedSource<'_, P> {
    fn begin_epoch(&mut self, epoch: usize) -> Result<(), TrainError> {
        self.inner.begin_epoch(epoch)
    }

    fn next_step(&mut self) -> Result<Option<Vec<(P, usize)>>, TrainError> {
        Ok(self.inner.next_step()?.map(|shards| {
            shards
                .into_iter()
                .map(|(idx, n)| ((self.materialize)(&idx), n))
                .collect()
        }))
    }
}

fn classifier_loss(
    m: &(dyn geotorch_models::RasterClassifier + 'static),
    batch: &geotorch_datasets::RasterBatchData,
) -> Var {
    let x = Var::constant(batch.x.clone());
    let features = batch.features.clone().map(Var::constant);
    let logits = m.forward(&x, features.as_ref());
    geotorch_nn::loss::cross_entropy_loss(&logits, &batch.labels)
}

fn grid_loss(
    m: &(dyn geotorch_models::GridModel + 'static),
    batch: &geotorch_datasets::StBatch,
) -> Var {
    let (input, target) = crate::trainer::grid_io(batch);
    mse_loss(&m.forward(&input), &target)
}

impl Trainer {
    /// Data-parallel [`Trainer::fit_classifier`]: `config.replicas`
    /// model replicas (built per worker thread by `factory`), each batch
    /// sharded contiguously across them, gradients averaged per step.
    /// `model` stays canonical — validation, early stopping, and the
    /// returned weights all live on it. With `replicas = 1` the result
    /// is bit-identical to [`Trainer::fit_classifier`].
    ///
    /// # Errors
    /// If a replica worker fails (panic in the model's forward, state
    /// broadcast rejected).
    pub fn fit_classifier_replicated(
        &self,
        model: &(dyn geotorch_models::RasterClassifier + 'static),
        factory: &(dyn Fn(usize) -> Box<dyn geotorch_models::RasterClassifier> + Sync),
        dataset: &geotorch_datasets::RasterDataset,
        train_idx: &[usize],
        val_idx: &[usize],
    ) -> Result<TrainReport, TrainError> {
        let mut source = MaterializedSource {
            inner: IndexStepSource::new(train_idx, self.config()),
            materialize: Box::new(|idx| dataset.batch(idx)),
        };
        with_device(self.config().device, || {
            fit_replicated(
                self.config(),
                model,
                factory,
                &classifier_loss,
                &mut source,
                &mut || 1.0 - self.evaluate_classifier(model, dataset, val_idx),
                None,
            )
        })
    }

    /// Data-parallel [`Trainer::fit_grid`] — see
    /// [`Trainer::fit_classifier_replicated`] for the protocol.
    ///
    /// # Errors
    /// If a replica worker fails.
    pub fn fit_grid_replicated(
        &self,
        model: &(dyn geotorch_models::GridModel + 'static),
        factory: &(dyn Fn(usize) -> Box<dyn geotorch_models::GridModel> + Sync),
        dataset: &geotorch_datasets::StGridDataset,
        train_idx: &[usize],
        val_idx: &[usize],
    ) -> Result<TrainReport, TrainError> {
        let mut source = MaterializedSource {
            inner: IndexStepSource::new(train_idx, self.config()),
            materialize: Box::new(|idx| dataset.batch(idx)),
        };
        with_device(self.config().device, || {
            fit_replicated(
                self.config(),
                model,
                factory,
                &grid_loss,
                &mut source,
                &mut || self.evaluate_grid(model, dataset, val_idx).0,
                None,
            )
        })
    }

    /// Train on a [`BatchStream`] with MSE loss and K data-parallel
    /// replicas: each step deals up to K consecutive stream batches, one
    /// per replica. `make_stream` rebuilds the stream per epoch (wrap it
    /// in a `PrefetchLoader` to overlap formatting with training);
    /// `forward` maps a feature batch through the model; `on_improve`
    /// fires while the canonical model holds the post-average weights of
    /// the best epoch so far — the place to take atomic checkpoints.
    ///
    /// # Errors
    /// If the stream fails mid-epoch (spill read, injected prefetch
    /// fault) or a replica worker fails. The epoch is abandoned cleanly:
    /// workers are joined and no partial optimizer step is taken.
    pub fn fit_stream<M: Module + ?Sized>(
        &self,
        model: &M,
        factory: &(dyn Fn(usize) -> Box<M> + Sync),
        forward: &(dyn Fn(&M, &Var) -> Var + Sync),
        make_stream: &mut dyn FnMut(usize) -> Result<Box<dyn BatchStream>, LoaderError>,
        validate: &mut dyn FnMut() -> f32,
        on_improve: Option<&mut dyn FnMut(usize, f32)>,
    ) -> Result<TrainReport, TrainError> {
        let loss = |m: &M, batch: &(Tensor, Tensor)| {
            let pred = forward(m, &Var::constant(batch.0.clone()));
            mse_loss(&pred, &Var::constant(batch.1.clone()))
        };
        let mut source = StreamStepSource::new(make_stream, self.config());
        with_device(self.config().device, || {
            fit_replicated(
                self.config(),
                model,
                factory,
                &loss,
                &mut source,
                validate,
                on_improve,
            )
        })
    }
}
