//! Delta-versioned checkpoint store: per-tensor content versions, a
//! checkpoint-history DAG, and coordination-free GC.
//!
//! A [`DeltaStore`] is a directory holding three kinds of files:
//!
//! * `head.json` — the current head [`Manifest`], replaced atomically
//!   (tmp + rename) on every publish/integrate.
//! * `m-<id>.json` — one immutable file per manifest ever adopted, the
//!   checkpoint-history DAG ([`Manifest::parents`] are manifest ids).
//! * `t<idx>@<ver>-<hash>.json` — one tensor payload per *version* of a
//!   parameter, in the same JSON encoding the classic single-file
//!   checkpoint uses for each tensor.
//!
//! [`DeltaStore::publish`] diffs a new full state dict against the head:
//! unchanged tensors (same content hash) keep their `(version, hash)`
//! entry and write **nothing**; changed tensors get `version + 1` and a
//! new payload file. A fine-tune that touches only head tensors
//! therefore costs O(changed tensors) bytes on disk and on the wire —
//! the column-versioned replication idea, applied to parameters.
//!
//! # Convergence
//!
//! Two nodes that publish concurrently resolve deterministically and
//! symmetrically, with no coordinator:
//!
//! * per tensor, the higher version wins; equal versions with different
//!   content tie-break to the **lexicographically smaller hash**;
//! * if the merged entries equal one side's, that manifest is adopted
//!   verbatim (fast-forward) — both nodes end on the same manifest id;
//! * a true conflict creates a merge manifest whose parents are the two
//!   head ids, sorted; since the id is a pure function of
//!   `(model, parents, shapes, entries)`, both nodes derive the *same*
//!   merge manifest independently;
//! * equal entries under different ids (same content reached by
//!   different histories) tie-break to the lexicographically smaller
//!   manifest id.
//!
//! Any interleaving of publishes and pairwise syncs therefore converges
//! to one head id and one set of payload bytes on every node.
//!
//! # GC safety
//!
//! [`DeltaStore::gc`] deletes payload files *strictly dominated* by the
//! head: older versions of a tensor, or same-version conflict losers.
//! It never touches the head's own payloads, and versions `>=` the head
//! (e.g. fetched mid-sync before the head flips) survive, so a node can
//! GC on its own schedule without coordinating with peers — the worst
//! case is a peer re-fetching a payload this node no longer serves,
//! which the sync protocol treats as a retryable failure.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use geotorch_nn::Module;
use geotorch_tensor::Tensor;
use serde::{Deserialize, Serialize, Value};

use crate::checkpoint::{CheckpointError, FORMAT_MARKER};

/// The checkpoint format version used by manifest files (version 1 is
/// the classic inline single-file format).
pub const MANIFEST_VERSION: u64 = 2;

/// Payload files currently retained by open stores, exported as the
/// `registry.tensor_versions` gauge.
static RETAINED: AtomicU64 = AtomicU64::new(0);

fn register_gauge() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        geotorch_telemetry::register_gauge("registry.tensor_versions", || {
            RETAINED.load(Ordering::Relaxed)
        });
    });
}

/// FNV-1a over a byte stream; cheap, dependency-free, and identical on
/// every node — content hashes only need to *detect change*, not resist
/// an adversary.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

/// Content hash of one tensor: shape dims then element bit patterns.
pub fn tensor_hash(t: &Tensor) -> String {
    let mut h = Fnv::new();
    h.write(&(t.shape().len() as u64).to_le_bytes());
    for &d in t.shape() {
        h.write(&(d as u64).to_le_bytes());
    }
    for &x in t.as_slice() {
        h.write(&x.to_bits().to_le_bytes());
    }
    h.hex()
}

/// One tensor's version coordinates within a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorVersion {
    /// Monotonic per-tensor counter: bumped every time the content hash
    /// changes in a publish.
    pub ver: u64,
    /// Content hash (16 hex chars) of the payload.
    pub hash: String,
}

impl TensorVersion {
    /// Whether `self` supersedes `other` under the symmetric order:
    /// higher version, or equal version with equal hash (identical).
    fn dominates(&self, other: &TensorVersion) -> bool {
        self.ver > other.ver || (self.ver == other.ver && self.hash == other.hash)
    }

    /// The deterministic winner of two entries for the same tensor:
    /// higher version; equal versions tie-break to the lexicographic
    /// minimum hash. Symmetric: `winner(a, b) == winner(b, a)`.
    fn winner<'a>(a: &'a TensorVersion, b: &'a TensorVersion) -> &'a TensorVersion {
        match a.ver.cmp(&b.ver) {
            std::cmp::Ordering::Greater => a,
            std::cmp::Ordering::Less => b,
            std::cmp::Ordering::Equal => {
                if a.hash <= b.hash {
                    a
                } else {
                    b
                }
            }
        }
    }
}

/// A versioned checkpoint manifest: what the model *is* (shapes, model
/// name) plus per-tensor `(version, hash)` coordinates and the DAG
/// edges to the manifests it was derived from. Carries no tensor data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Content-derived id (16 hex chars): a pure function of model,
    /// parents, shapes, and entries — equal manifests built on
    /// different nodes get equal ids.
    pub id: String,
    /// Model name the tensors belong to, if known.
    pub model: Option<String>,
    /// Manifest ids this one was derived from: one parent for a plain
    /// publish, two (sorted) for a merge, none for the first publish.
    pub parents: Vec<String>,
    /// Shape of every tensor, in parameter order.
    pub shapes: Vec<Vec<usize>>,
    /// Per-tensor version coordinates, in parameter order.
    pub entries: Vec<TensorVersion>,
}

impl Manifest {
    fn compute_id(
        model: Option<&str>,
        parents: &[String],
        shapes: &[Vec<usize>],
        entries: &[TensorVersion],
    ) -> String {
        let mut h = Fnv::new();
        h.write(model.unwrap_or("").as_bytes());
        h.write(b"\0");
        for p in parents {
            h.write(p.as_bytes());
            h.write(b"\0");
        }
        for (shape, e) in shapes.iter().zip(entries) {
            for &d in shape {
                h.write(&(d as u64).to_le_bytes());
            }
            h.write(&e.ver.to_le_bytes());
            h.write(e.hash.as_bytes());
            h.write(b"\0");
        }
        h.hex()
    }

    fn build(
        model: Option<String>,
        parents: Vec<String>,
        shapes: Vec<Vec<usize>>,
        entries: Vec<TensorVersion>,
    ) -> Manifest {
        let id = Manifest::compute_id(model.as_deref(), &parents, &shapes, &entries);
        Manifest {
            id,
            model,
            parents,
            shapes,
            entries,
        }
    }

    /// Serialise to the on-disk / on-wire JSON form. The header fields
    /// (`format`, `version`, `model`, `shapes`) match the classic
    /// checkpoint header so [`crate::checkpoint::peek`] reads a manifest
    /// without touching any payload.
    pub fn to_json(&self) -> String {
        let entries = Value::Array(
            self.entries
                .iter()
                .map(|e| {
                    Value::Object(vec![
                        ("ver".to_string(), e.ver.to_value()),
                        ("hash".to_string(), e.hash.to_value()),
                    ])
                })
                .collect(),
        );
        let value = Value::Object(vec![
            ("format".to_string(), FORMAT_MARKER.to_value()),
            ("version".to_string(), MANIFEST_VERSION.to_value()),
            (
                "model".to_string(),
                self.model
                    .as_deref()
                    .map_or(Value::Null, |m| m.to_value()),
            ),
            ("id".to_string(), self.id.to_value()),
            ("parents".to_string(), self.parents.to_value()),
            ("shapes".to_string(), self.shapes.to_value()),
            ("entries".to_string(), entries),
        ]);
        serde_json::to_string(&value).expect("manifest serialisation is infallible")
    }

    /// Parse a manifest from its JSON form, re-deriving and verifying
    /// the content id (a corrupted or tampered manifest is rejected).
    pub fn from_json(json: &str) -> Result<Manifest, CheckpointError> {
        let value: Value = serde_json::from_str(json)
            .map_err(|e| CheckpointError::Format(format!("manifest: {e}")))?;
        Manifest::from_value(&value)
    }

    /// Parse a manifest from an already-decoded JSON value.
    pub fn from_value(value: &Value) -> Result<Manifest, CheckpointError> {
        let bad = |msg: &str| CheckpointError::Format(format!("manifest: {msg}"));
        let marker = value.get("format").and_then(Value::as_str);
        if marker != Some(FORMAT_MARKER) {
            return Err(bad("missing or wrong `format` marker"));
        }
        let version = value.get("version").and_then(Value::as_f64).unwrap_or(0.0) as u64;
        if version != MANIFEST_VERSION {
            return Err(bad(&format!(
                "version {version} is not a manifest (expected {MANIFEST_VERSION})"
            )));
        }
        let model = match value.get("model") {
            None | Some(Value::Null) => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| bad("`model` must be a string"))?
                    .to_string(),
            ),
        };
        let id = value
            .get("id")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("missing `id`"))?
            .to_string();
        let parents = value
            .get("parents")
            .map(Vec::<String>::from_value)
            .transpose()
            .map_err(|e| bad(&e.to_string()))?
            .ok_or_else(|| bad("missing `parents`"))?;
        let shapes = value
            .get("shapes")
            .map(Vec::<Vec<usize>>::from_value)
            .transpose()
            .map_err(|e| bad(&e.to_string()))?
            .ok_or_else(|| bad("missing `shapes`"))?;
        let raw_entries = match value.get("entries") {
            Some(Value::Array(items)) => items,
            _ => return Err(bad("missing `entries`")),
        };
        if raw_entries.len() != shapes.len() {
            return Err(bad(&format!(
                "{} entries but {} shapes",
                raw_entries.len(),
                shapes.len()
            )));
        }
        let mut entries = Vec::with_capacity(raw_entries.len());
        for item in raw_entries {
            let ver = item
                .get("ver")
                .and_then(Value::as_f64)
                .ok_or_else(|| bad("entry missing `ver`"))? as u64;
            let hash = item
                .get("hash")
                .and_then(Value::as_str)
                .ok_or_else(|| bad("entry missing `hash`"))?
                .to_string();
            entries.push(TensorVersion { ver, hash });
        }
        let expected = Manifest::compute_id(model.as_deref(), &parents, &shapes, &entries);
        if expected != id {
            return Err(bad(&format!(
                "content id mismatch: manifest claims {id}, content hashes to {expected}"
            )));
        }
        Ok(Manifest {
            id,
            model,
            parents,
            shapes,
            entries,
        })
    }

    /// Whether every entry of `self` supersedes-or-equals the matching
    /// entry of `other` (the entrywise partial order behind
    /// fast-forward detection).
    pub fn dominates(&self, other: &Manifest) -> bool {
        self.entries.len() == other.entries.len()
            && self
                .entries
                .iter()
                .zip(&other.entries)
                .all(|(a, b)| a.dominates(b))
    }
}

/// What one publish did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishReport {
    /// The new head manifest id.
    pub id: String,
    /// Indices of the tensors whose content changed (payloads written).
    pub changed: Vec<usize>,
    /// Payload bytes written (manifest bytes excluded).
    pub delta_bytes: u64,
}

/// What one integrate (sync apply) did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegrateReport {
    /// The head manifest id after integration.
    pub id: String,
    /// Indices whose winning entry came from the remote manifest.
    pub changed: Vec<usize>,
    /// Indices whose payloads had to be fetched (not already local).
    pub fetched: Vec<usize>,
    /// Payload bytes fetched through the callback.
    pub fetched_bytes: u64,
    /// Whether the head manifest id changed.
    pub advanced: bool,
}

/// A directory of versioned tensor payloads plus a manifest DAG.
pub struct DeltaStore {
    root: PathBuf,
    model: Option<String>,
    head: Option<Manifest>,
    /// Payload files currently on disk (mirrors the gauge contribution).
    retained: u64,
}

impl DeltaStore {
    /// Open (creating if needed) a store rooted at `root`. `model` is
    /// recorded in every manifest published here and validated against
    /// manifests integrated from peers.
    pub fn open(root: impl AsRef<Path>, model: Option<&str>) -> Result<DeltaStore, CheckpointError> {
        register_gauge();
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root).map_err(CheckpointError::Io)?;
        let head_path = root.join("head.json");
        let head = if head_path.exists() {
            let json = std::fs::read_to_string(&head_path).map_err(CheckpointError::Io)?;
            Some(Manifest::from_json(&json)?)
        } else {
            None
        };
        if let (Some(expected), Some(saved)) =
            (model, head.as_ref().and_then(|h| h.model.as_deref()))
        {
            if expected != saved {
                return Err(CheckpointError::WrongModel {
                    saved: saved.to_string(),
                    expected: expected.to_string(),
                });
            }
        }
        let mut store = DeltaStore {
            root,
            model: model.map(str::to_string),
            head,
            retained: 0,
        };
        store.retained = store.payload_files()?.len() as u64;
        RETAINED.fetch_add(store.retained, Ordering::Relaxed);
        Ok(store)
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The current head manifest, if anything was ever published.
    pub fn head(&self) -> Option<&Manifest> {
        self.head.as_ref()
    }

    /// Path of the head manifest file — usable directly as a checkpoint
    /// path for [`crate::checkpoint::load_named`]/[`crate::checkpoint::peek`].
    pub fn head_path(&self) -> PathBuf {
        self.root.join("head.json")
    }

    fn payload_name(idx: usize, entry: &TensorVersion) -> String {
        format!("t{idx}@{}-{}.json", entry.ver, entry.hash)
    }

    fn payload_path(&self, idx: usize, entry: &TensorVersion) -> PathBuf {
        self.root.join(Self::payload_name(idx, entry))
    }

    /// Whether the payload for `(idx, entry)` is on disk locally.
    pub fn has_payload(&self, idx: usize, entry: &TensorVersion) -> bool {
        self.payload_path(idx, entry).exists()
    }

    /// Raw bytes of a stored payload (what the sync wire protocol
    /// ships verbatim, so payload files stay byte-identical on every
    /// node that holds them).
    pub fn payload_bytes(
        &self,
        idx: usize,
        entry: &TensorVersion,
    ) -> Result<Vec<u8>, CheckpointError> {
        std::fs::read(self.payload_path(idx, entry)).map_err(CheckpointError::Io)
    }

    fn write_payload(
        &mut self,
        idx: usize,
        entry: &TensorVersion,
        bytes: &[u8],
    ) -> Result<(), CheckpointError> {
        let path = self.payload_path(idx, entry);
        if path.exists() {
            return Ok(());
        }
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, bytes).map_err(|e| {
            std::fs::remove_file(&tmp).ok();
            CheckpointError::Io(e)
        })?;
        std::fs::rename(&tmp, &path).map_err(|e| {
            std::fs::remove_file(&tmp).ok();
            CheckpointError::Io(e)
        })?;
        self.retained += 1;
        RETAINED.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Adopt `manifest` as the new head: record it in the DAG, then flip
    /// `head.json` atomically (same tmp + rename dance — and the same
    /// `core.checkpoint.rename` fault point — as the classic save, so a
    /// crash never leaves a store without a loadable head).
    fn adopt(&mut self, manifest: Manifest) -> Result<(), CheckpointError> {
        let json = manifest.to_json();
        let dag_path = self.root.join(format!("m-{}.json", manifest.id));
        if !dag_path.exists() {
            std::fs::write(&dag_path, &json).map_err(CheckpointError::Io)?;
        }
        let head_path = self.head_path();
        let tmp = self.root.join("head.json.tmp");
        if let Err(e) = std::fs::write(&tmp, &json) {
            std::fs::remove_file(&tmp).ok();
            return Err(CheckpointError::Io(e));
        }
        if let Err(msg) = geotorch_telemetry::fault_point!("core.checkpoint.rename") {
            std::fs::remove_file(&tmp).ok();
            return Err(CheckpointError::Format(format!(
                "injected fault between staging write and head flip: {msg}"
            )));
        }
        std::fs::rename(&tmp, &head_path).map_err(|e| {
            std::fs::remove_file(&tmp).ok();
            CheckpointError::Io(e)
        })?;
        self.head = Some(manifest);
        Ok(())
    }

    /// Publish a full state dict: hash every tensor, bump the version of
    /// (and write payloads for) only the tensors whose content changed,
    /// and adopt the new manifest as head. The first publish writes
    /// everything.
    pub fn publish(&mut self, state: &[Tensor]) -> Result<PublishReport, CheckpointError> {
        if let Some(head) = &self.head {
            if head.entries.len() != state.len() {
                return Err(CheckpointError::Format(format!(
                    "publish of {} tensors against a head of {}",
                    state.len(),
                    head.entries.len()
                )));
            }
            for (i, (shape, t)) in head.shapes.iter().zip(state).enumerate() {
                if shape.as_slice() != t.shape() {
                    return Err(CheckpointError::Format(format!(
                        "tensor {i}: publish shape {:?} does not match head shape {shape:?}",
                        t.shape()
                    )));
                }
            }
        }
        let mut entries = Vec::with_capacity(state.len());
        let mut changed = Vec::new();
        for (i, t) in state.iter().enumerate() {
            let hash = tensor_hash(t);
            let prev = self.head.as_ref().map(|h| &h.entries[i]);
            match prev {
                Some(p) if p.hash == hash => entries.push(p.clone()),
                _ => {
                    let ver = prev.map_or(1, |p| p.ver + 1);
                    entries.push(TensorVersion { ver, hash });
                    changed.push(i);
                }
            }
        }
        let mut delta_bytes = 0u64;
        for &i in &changed {
            let bytes = serde_json::to_string(&state[i])
                .map_err(|e| CheckpointError::Format(e.to_string()))?;
            delta_bytes += bytes.len() as u64;
            self.write_payload(i, &entries[i], bytes.as_bytes())?;
        }
        let shapes: Vec<Vec<usize>> = state.iter().map(|t| t.shape().to_vec()).collect();
        let parents = self.head.as_ref().map(|h| vec![h.id.clone()]).unwrap_or_default();
        let manifest = Manifest::build(self.model.clone(), parents, shapes, entries);
        let unchanged_head = self.head.as_ref().is_some_and(|h| {
            h.entries == manifest.entries && changed.is_empty()
        });
        if unchanged_head {
            // Republishing identical content is a no-op: the head
            // already describes these exact bytes.
            return Ok(PublishReport {
                id: self.head.as_ref().unwrap().id.clone(),
                changed,
                delta_bytes: 0,
            });
        }
        let id = manifest.id.clone();
        self.adopt(manifest)?;
        geotorch_telemetry::count!("registry.publish", 1);
        Ok(PublishReport {
            id,
            changed,
            delta_bytes,
        })
    }

    /// [`DeltaStore::publish`] of a module's current state dict.
    pub fn publish_module(&mut self, model: &dyn Module) -> Result<PublishReport, CheckpointError> {
        self.publish(&model.state_dict())
    }

    /// Integrate a peer's manifest. `fetch` is called for every winning
    /// entry whose payload is not already local and must return the
    /// payload bytes as stored on the peer; fetched payloads are
    /// verified against the entry's content hash before anything is
    /// adopted. On any error the head is untouched.
    pub fn integrate<F>(
        &mut self,
        remote: &Manifest,
        mut fetch: F,
    ) -> Result<IntegrateReport, CheckpointError>
    where
        F: FnMut(usize, &TensorVersion) -> Result<Vec<u8>, CheckpointError>,
    {
        if let (Some(expected), Some(saved)) = (self.model.as_deref(), remote.model.as_deref()) {
            if expected != saved {
                return Err(CheckpointError::WrongModel {
                    saved: saved.to_string(),
                    expected: expected.to_string(),
                });
            }
        }
        if let Some(head) = &self.head {
            if head.shapes != remote.shapes {
                return Err(CheckpointError::Format(
                    "remote manifest has different tensor shapes".to_string(),
                ));
            }
        }
        // Entrywise winners under the symmetric order.
        let merged: Vec<TensorVersion> = match &self.head {
            None => remote.entries.clone(),
            Some(head) => head
                .entries
                .iter()
                .zip(&remote.entries)
                .map(|(a, b)| TensorVersion::winner(a, b).clone())
                .collect(),
        };
        let changed: Vec<usize> = match &self.head {
            None => (0..merged.len()).collect(),
            Some(head) => merged
                .iter()
                .enumerate()
                .filter(|(i, e)| head.entries[*i] != **e)
                .map(|(i, _)| i)
                .collect(),
        };
        // Fetch (and verify) every winning payload we do not hold.
        let mut fetched = Vec::new();
        let mut fetched_bytes = 0u64;
        let mut pending: Vec<(usize, Vec<u8>)> = Vec::new();
        for (i, entry) in merged.iter().enumerate() {
            if self.has_payload(i, entry) {
                continue;
            }
            let bytes = fetch(i, entry)?;
            let text = std::str::from_utf8(&bytes).map_err(|e| {
                CheckpointError::Format(format!("fetched tensor {i} is not utf-8: {e}"))
            })?;
            let tensor: Tensor = serde_json::from_str(text)
                .map_err(|e| CheckpointError::Format(format!("fetched tensor {i}: {e}")))?;
            let hash = tensor_hash(&tensor);
            if hash != entry.hash {
                return Err(CheckpointError::Format(format!(
                    "fetched tensor {i}@{} hashes to {hash}, manifest says {}",
                    entry.ver, entry.hash
                )));
            }
            if tensor.shape() != remote.shapes[i].as_slice() {
                return Err(CheckpointError::Format(format!(
                    "fetched tensor {i} has shape {:?}, manifest says {:?}",
                    tensor.shape(),
                    remote.shapes[i]
                )));
            }
            fetched_bytes += bytes.len() as u64;
            fetched.push(i);
            pending.push((i, bytes));
        }
        let entries_for = |i: usize| &merged[i];
        for (i, bytes) in &pending {
            self.write_payload(*i, entries_for(*i), bytes)?;
        }
        // Decide the new head.
        let report = |store: &DeltaStore, advanced: bool, changed: Vec<usize>| IntegrateReport {
            id: store.head.as_ref().expect("head exists after integrate").id.clone(),
            changed,
            fetched: fetched.clone(),
            fetched_bytes,
            advanced,
        };
        match &self.head {
            None => {
                self.adopt(remote.clone())?;
                return Ok(report(self, true, changed));
            }
            Some(head) if merged == head.entries => {
                if merged == remote.entries && remote.id < head.id {
                    // Same content reached through a different history:
                    // tie-break to the lexicographically smaller id so
                    // both sides settle on one manifest.
                    self.adopt(remote.clone())?;
                    return Ok(report(self, true, changed));
                }
                return Ok(report(self, false, changed));
            }
            Some(_) if merged == remote.entries => {
                // Fast-forward: adopt the remote manifest verbatim.
                self.adopt(remote.clone())?;
                return Ok(report(self, true, changed));
            }
            Some(head) => {
                // True conflict: build the deterministic merge node.
                let mut parents = vec![head.id.clone(), remote.id.clone()];
                parents.sort();
                parents.dedup();
                let manifest = Manifest::build(
                    self.model.clone().or_else(|| remote.model.clone()),
                    parents,
                    remote.shapes.clone(),
                    merged,
                );
                self.adopt(manifest)?;
            }
        }
        Ok(report(self, true, changed))
    }

    /// Read the head's full state dict from payload files.
    pub fn materialize(&self) -> Result<Vec<Tensor>, CheckpointError> {
        let head = self.head.as_ref().ok_or_else(|| {
            CheckpointError::Format("store has no head manifest".to_string())
        })?;
        manifest_tensors(&self.root, head)
    }

    /// Load the head state into a structurally identical model.
    pub fn load_into(&self, model: &dyn Module) -> Result<(), CheckpointError> {
        let state = self.materialize()?;
        model
            .load_state_dict(&state)
            .map_err(|e| CheckpointError::Format(e.to_string()))
    }

    fn payload_files(&self) -> Result<Vec<(PathBuf, usize, TensorVersion)>, CheckpointError> {
        let mut files = Vec::new();
        for entry in std::fs::read_dir(&self.root).map_err(CheckpointError::Io)? {
            let entry = entry.map_err(CheckpointError::Io)?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(parsed) = parse_payload_name(name) else {
                continue;
            };
            files.push((entry.path(), parsed.0, parsed.1));
        }
        Ok(files)
    }

    /// Delete payload files strictly dominated by the head (older
    /// versions, or same-version conflict losers) and manifest DAG
    /// nodes no longer reachable from the head. Safe to run any time on
    /// any node: the head's own payloads are never candidates, and
    /// not-yet-adopted fetches carry versions `>=` the head's, which
    /// also survive.
    pub fn gc(&mut self) -> Result<u64, CheckpointError> {
        let Some(head) = self.head.clone() else {
            return Ok(0);
        };
        let mut removed = 0u64;
        for (path, idx, entry) in self.payload_files()? {
            let dominated = match head.entries.get(idx) {
                // A payload for an index the model does not have (e.g.
                // left over from a differently sized past architecture).
                None => true,
                Some(h) => entry.ver < h.ver || (entry.ver == h.ver && entry.hash != h.hash),
            };
            if dominated && std::fs::remove_file(&path).is_ok() {
                removed += 1;
                self.retained = self.retained.saturating_sub(1);
                RETAINED.fetch_sub(1, Ordering::Relaxed);
            }
        }
        // Prune DAG nodes unreachable from the head so history stays
        // proportional to the head's ancestry, not to everything ever
        // seen.
        let reachable = self.reachable_ids(&head);
        for entry in std::fs::read_dir(&self.root).map_err(CheckpointError::Io)? {
            let entry = entry.map_err(CheckpointError::Io)?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(id) = name.strip_prefix("m-").and_then(|n| n.strip_suffix(".json")) else {
                continue;
            };
            if !reachable.contains(id) {
                std::fs::remove_file(entry.path()).ok();
            }
        }
        Ok(removed)
    }

    fn reachable_ids(&self, head: &Manifest) -> BTreeSet<String> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![head.clone()];
        seen.insert(head.id.clone());
        while let Some(m) = stack.pop() {
            for parent in &m.parents {
                if seen.insert(parent.clone()) {
                    if let Ok(pm) = self.manifest_by_id(parent) {
                        stack.push(pm);
                    }
                }
            }
        }
        seen
    }

    /// Read one manifest out of the DAG by id.
    pub fn manifest_by_id(&self, id: &str) -> Result<Manifest, CheckpointError> {
        let json = std::fs::read_to_string(self.root.join(format!("m-{id}.json")))
            .map_err(CheckpointError::Io)?;
        Manifest::from_json(&json)
    }

    /// The head's ancestry (head first, then parents breadth-first, as
    /// far as the local DAG reaches).
    pub fn history(&self) -> Vec<Manifest> {
        let Some(head) = self.head.clone() else {
            return Vec::new();
        };
        let mut out = vec![head.clone()];
        let mut seen: BTreeSet<String> = [head.id.clone()].into();
        let mut queue = std::collections::VecDeque::from([head]);
        while let Some(m) = queue.pop_front() {
            for parent in &m.parents {
                if seen.insert(parent.clone()) {
                    if let Ok(pm) = self.manifest_by_id(parent) {
                        out.push(pm.clone());
                        queue.push_back(pm);
                    }
                }
            }
        }
        out
    }

    /// Number of payload files this store currently retains.
    pub fn retained_payloads(&self) -> u64 {
        self.retained
    }
}

impl Drop for DeltaStore {
    fn drop(&mut self) {
        RETAINED.fetch_sub(self.retained, Ordering::Relaxed);
    }
}

/// Parse `t<idx>@<ver>-<hash>.json` back into its coordinates.
fn parse_payload_name(name: &str) -> Option<(usize, TensorVersion)> {
    let rest = name.strip_prefix('t')?.strip_suffix(".json")?;
    let (idx, rest) = rest.split_once('@')?;
    let (ver, hash) = rest.split_once('-')?;
    Some((
        idx.parse().ok()?,
        TensorVersion {
            ver: ver.parse().ok()?,
            hash: hash.to_string(),
        },
    ))
}

/// Load the tensors a manifest references from payload files in `dir`,
/// verifying shapes (hash verification happens at fetch time; local
/// payloads were verified when written).
pub(crate) fn manifest_tensors(
    dir: &Path,
    manifest: &Manifest,
) -> Result<Vec<Tensor>, CheckpointError> {
    let mut tensors = Vec::with_capacity(manifest.entries.len());
    for (i, entry) in manifest.entries.iter().enumerate() {
        let path = dir.join(DeltaStore::payload_name(i, entry));
        let json = std::fs::read_to_string(&path).map_err(CheckpointError::Io)?;
        let tensor: Tensor = serde_json::from_str(&json)
            .map_err(|e| CheckpointError::Format(format!("payload {i}: {e}")))?;
        if tensor.shape() != manifest.shapes[i].as_slice() {
            return Err(CheckpointError::Format(format!(
                "payload {i} has shape {:?}, manifest says {:?}",
                tensor.shape(),
                manifest.shapes[i]
            )));
        }
        tensors.push(tensor);
    }
    Ok(tensors)
}
