//! The training loop: batching, optimisation, validation-based early
//! stopping, and evaluation — implementing the paper's §V-C protocol.
//!
//! The three model families (grid, classifier, segmenter) share one
//! epoch driver, [`Trainer::fit_loop`], so optimizer cadence, gradient
//! clipping, early stopping, and telemetry behave identically across
//! them; each `fit_*` front-end only supplies the per-batch loss and the
//! validation metric.

use std::time::Instant;

use geotorch_datasets::{BatchIndices, RasterDataset, StBatch, StGridDataset};
use geotorch_models::{GridInput, GridModel, RasterClassifier, Segmenter};
use geotorch_nn::loss::{bce_with_logits_loss, cross_entropy_loss, mse_loss};
use geotorch_nn::optim::{Adam, Optimizer};
use geotorch_nn::{Module, Var};
use geotorch_tensor::{with_device, Device, Tensor};

use crate::metrics;

/// When weights update (§III-A2): after every batch (incremental) or once
/// per epoch with accumulated gradients (cumulative).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateMode {
    /// Step the optimizer after every batch (the paper's default).
    Incremental,
    /// Accumulate gradients across the epoch, step once. The accumulated
    /// sum is scaled by `1/batches` before the step, so the effective
    /// learning rate matches Incremental's per-batch-mean gradients and
    /// does not grow with dataset size.
    Cumulative,
}

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Maximum epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Stop when the validation metric has not improved for this many
    /// epochs (`None` disables early stopping).
    pub early_stopping_patience: Option<usize>,
    /// Weight-update cadence.
    pub update_mode: UpdateMode,
    /// Clip the global gradient L2 norm to this value before each step
    /// (`None` disables). Useful for recurrent models.
    pub gradient_clip: Option<f32>,
    /// Shuffling seed.
    pub seed: u64,
    /// Compute device every `fit_*`/`evaluate_*` call runs under.
    /// `Device::parallel()` routes the hot kernels through the persistent
    /// worker pool; the default `Device::Cpu` stays serial.
    pub device: Device,
    /// Data-parallel model replicas for the `fit_*_replicated` /
    /// `fit_stream` entry points (see [`crate::replica`]). Each step is
    /// sharded across this many replicas and their gradients averaged
    /// before one optimizer step; `1` reproduces the classic trainer
    /// bit-for-bit. The classic `fit_*` entry points ignore this field.
    pub replicas: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 16,
            learning_rate: 1e-3,
            early_stopping_patience: Some(3),
            update_mode: UpdateMode::Incremental,
            gradient_clip: None,
            seed: 0,
            device: Device::Cpu,
            replicas: 1,
        }
    }
}

/// Why a training run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Every configured epoch ran.
    MaxEpochs,
    /// The validation metric failed to improve for `patience` consecutive
    /// epochs; training stopped after `epoch` epochs.
    EarlyStopped {
        /// 1-based number of epochs that had run when training stopped.
        epoch: usize,
        /// The configured patience that fired.
        patience: usize,
    },
}

/// What a training run produced.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub train_losses: Vec<f32>,
    /// Validation metric per epoch (loss-like: lower is better).
    pub val_metrics: Vec<f32>,
    /// Epochs actually run (≤ configured when early stopping fires).
    pub epochs_run: usize,
    /// Wall-clock seconds per epoch (training only; validation excluded).
    pub epoch_seconds: Vec<f64>,
    /// Training samples processed per second, per epoch.
    pub samples_per_sec: Vec<f64>,
    /// Why the run ended.
    pub stop_reason: StopReason,
    /// CPU cores the host exposed during the run. Throughput numbers
    /// from single-core containers are not comparable to multi-core
    /// hosts; stamping the core count makes every artifact
    /// self-describing.
    pub host_cores: usize,
    /// Tensor-pool high-water mark (bytes) when the run finished — the
    /// peak pooled working set, the figure the out-of-core pipeline
    /// bounds.
    pub pool_high_water_bytes: u64,
}

impl TrainReport {
    /// Mean seconds per epoch.
    pub fn mean_epoch_seconds(&self) -> f64 {
        if self.epoch_seconds.is_empty() {
            0.0
        } else {
            self.epoch_seconds.iter().sum::<f64>() / self.epoch_seconds.len() as f64
        }
    }

    /// Best (minimum) validation metric.
    pub fn best_val(&self) -> f32 {
        self.val_metrics.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Mean training throughput in samples per second.
    pub fn mean_samples_per_sec(&self) -> f64 {
        if self.samples_per_sec.is_empty() {
            0.0
        } else {
            self.samples_per_sec.iter().sum::<f64>() / self.samples_per_sec.len() as f64
        }
    }
}

/// Drives training and evaluation for the three model families.
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Trainer {
        Trainer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Run `f` under the configured compute device.
    fn on_device<T>(&self, f: impl FnOnce() -> T) -> T {
        with_device(self.config.device, f)
    }

    // --------------------------------------------------- shared driver

    /// Clip (if configured), step, and clear gradients.
    fn clip_and_step(&self, optimizer: &mut Adam) {
        if let Some(max_norm) = self.config.gradient_clip {
            geotorch_nn::schedule::clip_grad_norm(optimizer.parameters(), max_norm);
        }
        optimizer.step();
        optimizer.zero_grad();
    }

    /// The epoch driver shared by all three `fit_*` entry points.
    ///
    /// `forward_loss` maps one batch's sample indices to the loss node
    /// (the driver runs `backward` and the optimizer cadence);
    /// `validate` produces the per-epoch validation metric, lower better.
    fn fit_loop<M: Module + ?Sized>(
        &self,
        model: &M,
        train_idx: &[usize],
        forward_loss: &mut dyn FnMut(&[usize]) -> Var,
        validate: &mut dyn FnMut() -> f32,
    ) -> TrainReport {
        let mut optimizer = Adam::new(model.parameters(), self.config.learning_rate);
        let mut report = empty_report();
        let mut best = f32::INFINITY;
        let mut best_state: Option<Vec<Tensor>> = None;
        let mut stale = 0usize;
        for epoch in 0..self.config.epochs {
            model.set_training(true);
            let start = Instant::now();
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            let mut samples = 0usize;
            {
                let _epoch_t = geotorch_telemetry::scope!("core.trainer.epoch");
                let iter = BatchIndices::shuffled(
                    train_idx,
                    self.config.batch_size,
                    self.config.seed.wrapping_add(epoch as u64),
                );
                for batch_idx in iter {
                    let loss = forward_loss(&batch_idx);
                    epoch_loss += loss.value().item();
                    batches += 1;
                    samples += batch_idx.len();
                    loss.backward();
                    // Release the tape before stepping: graph nodes hold
                    // clones of the parameter values, and while those are
                    // alive the optimizer's in-place update has to
                    // copy-on-write every parameter buffer.
                    drop(loss);
                    if self.config.update_mode == UpdateMode::Incremental {
                        self.clip_and_step(&mut optimizer);
                    }
                }
                if self.config.update_mode == UpdateMode::Cumulative && batches > 0 {
                    // The tape accumulated a gradient *sum* over all batches;
                    // average it so the single step matches the magnitude of
                    // an Incremental step instead of scaling with the number
                    // of batches in the epoch.
                    scale_grads(optimizer.parameters(), 1.0 / batches as f32);
                    self.clip_and_step(&mut optimizer);
                }
            }
            let secs = start.elapsed().as_secs_f64();
            report.epoch_seconds.push(secs);
            report
                .samples_per_sec
                .push(if secs > 0.0 { samples as f64 / secs } else { 0.0 });
            report
                .train_losses
                .push(if batches > 0 { epoch_loss / batches as f32 } else { 0.0 });
            report.epochs_run = epoch + 1;
            geotorch_telemetry::count!("core.trainer.epochs", 1);
            geotorch_telemetry::count!("core.trainer.samples", samples);

            let val = validate();
            report.val_metrics.push(val);
            if val + 1e-6 < best {
                best = val;
                best_state = Some(model.state_dict());
                stale = 0;
            } else {
                stale += 1;
                if let Some(patience) = self.config.early_stopping_patience {
                    if stale >= patience {
                        report.stop_reason = StopReason::EarlyStopped {
                            epoch: epoch + 1,
                            patience,
                        };
                        break;
                    }
                }
            }
        }
        // Restore the best-on-validation weights (the paper's protocol
        // evaluates the converged model, not the last epoch).
        if let Some(state) = best_state {
            model
                .load_state_dict(&state)
                .expect("state dict snapshot of the same model always matches");
        }
        stamp_host(&mut report);
        report
    }

    // --------------------------------------------------------- grid

    /// Train a grid model on chronological train/val splits of `dataset`
    /// (which must already carry the representation the model expects).
    pub fn fit_grid(
        &self,
        model: &dyn GridModel,
        dataset: &StGridDataset,
        train_idx: &[usize],
        val_idx: &[usize],
    ) -> TrainReport {
        self.on_device(|| {
            self.fit_loop(
                model,
                train_idx,
                &mut |batch_idx| {
                    let batch = dataset.batch(batch_idx);
                    let (input, target) = grid_io(&batch);
                    mse_loss(&model.forward(&input), &target)
                },
                &mut || self.evaluate_grid_inner(model, dataset, val_idx).0,
            )
        })
    }

    /// `(MAE, RMSE)` of a grid model over the given samples (normalised
    /// units).
    pub fn evaluate_grid(
        &self,
        model: &dyn GridModel,
        dataset: &StGridDataset,
        indices: &[usize],
    ) -> (f32, f32) {
        self.on_device(|| self.evaluate_grid_inner(model, dataset, indices))
    }

    fn evaluate_grid_inner(
        &self,
        model: &dyn GridModel,
        dataset: &StGridDataset,
        indices: &[usize],
    ) -> (f32, f32) {
        model.set_training(false);
        let mut preds = Vec::new();
        let mut targets = Vec::new();
        for batch_idx in BatchIndices::new(indices, self.config.batch_size) {
            let batch = dataset.batch(&batch_idx);
            let (input, target) = grid_io(&batch);
            // Evaluation never calls backward; skip building the tape.
            preds.push(geotorch_nn::no_grad(|| model.forward(&input).value()));
            targets.push(target.value());
        }
        if preds.is_empty() {
            return (f32::NAN, f32::NAN);
        }
        let p_refs: Vec<&Tensor> = preds.iter().collect();
        let t_refs: Vec<&Tensor> = targets.iter().collect();
        let p = Tensor::concat(&p_refs, 0);
        let t = Tensor::concat(&t_refs, 0);
        (metrics::mae(&p, &t), metrics::rmse(&p, &t))
    }

    // ------------------------------------------------- classification

    /// Train a raster classifier with cross-entropy.
    pub fn fit_classifier(
        &self,
        model: &dyn RasterClassifier,
        dataset: &RasterDataset,
        train_idx: &[usize],
        val_idx: &[usize],
    ) -> TrainReport {
        self.on_device(|| {
            self.fit_loop(
                model,
                train_idx,
                &mut |batch_idx| {
                    let batch = dataset.batch(batch_idx);
                    let x = Var::constant(batch.x);
                    let features = batch.features.map(Var::constant);
                    let logits = model.forward(&x, features.as_ref());
                    cross_entropy_loss(&logits, &batch.labels)
                },
                // Validation metric: 1 - accuracy (lower is better).
                &mut || 1.0 - self.evaluate_classifier_inner(model, dataset, val_idx),
            )
        })
    }

    /// Accuracy of a classifier over the given samples.
    pub fn evaluate_classifier(
        &self,
        model: &dyn RasterClassifier,
        dataset: &RasterDataset,
        indices: &[usize],
    ) -> f32 {
        self.on_device(|| self.evaluate_classifier_inner(model, dataset, indices))
    }

    fn evaluate_classifier_inner(
        &self,
        model: &dyn RasterClassifier,
        dataset: &RasterDataset,
        indices: &[usize],
    ) -> f32 {
        model.set_training(false);
        let mut correct = 0usize;
        let mut total = 0usize;
        for batch_idx in BatchIndices::new(indices, self.config.batch_size) {
            let batch = dataset.batch(&batch_idx);
            let x = Var::constant(batch.x);
            let features = batch.features.map(Var::constant);
            let logits =
                geotorch_nn::no_grad(|| model.forward(&x, features.as_ref()).value());
            // Exact integer counts — reconstructing them from a per-batch
            // accuracy float loses precision on large batches.
            correct += metrics::correct_count(&logits, &batch.labels);
            total += batch.labels.len();
        }
        if total == 0 {
            f32::NAN
        } else {
            correct as f32 / total as f32
        }
    }

    // --------------------------------------------------- segmentation

    /// Train a segmentation model with BCE-with-logits on the masks.
    pub fn fit_segmenter(
        &self,
        model: &dyn Segmenter,
        dataset: &RasterDataset,
        train_idx: &[usize],
        val_idx: &[usize],
    ) -> TrainReport {
        self.on_device(|| {
            self.fit_loop(
                model,
                train_idx,
                &mut |batch_idx| {
                    let batch = dataset.batch(batch_idx);
                    let x = Var::constant(batch.x);
                    let masks = Var::constant(batch.masks.expect("segmentation dataset"));
                    bce_with_logits_loss(&model.forward(&x), &masks)
                },
                &mut || 1.0 - self.evaluate_segmenter_inner(model, dataset, val_idx),
            )
        })
    }

    /// Pixel accuracy of a segmenter over the given samples.
    pub fn evaluate_segmenter(
        &self,
        model: &dyn Segmenter,
        dataset: &RasterDataset,
        indices: &[usize],
    ) -> f32 {
        self.on_device(|| self.evaluate_segmenter_inner(model, dataset, indices))
    }

    fn evaluate_segmenter_inner(
        &self,
        model: &dyn Segmenter,
        dataset: &RasterDataset,
        indices: &[usize],
    ) -> f32 {
        model.set_training(false);
        let mut correct = 0usize;
        let mut total = 0usize;
        for batch_idx in BatchIndices::new(indices, self.config.batch_size) {
            let batch = dataset.batch(&batch_idx);
            let x = Var::constant(batch.x);
            let masks = batch.masks.expect("segmentation dataset");
            let logits = geotorch_nn::no_grad(|| model.forward(&x).value());
            // Weight by pixel count: averaging per-batch accuracies
            // unweighted over-weights a ragged final batch.
            correct += metrics::pixel_correct_count(&logits, &masks);
            total += logits.len();
        }
        if total == 0 {
            f32::NAN
        } else {
            correct as f32 / total as f32
        }
    }
}

/// An all-zero [`TrainReport`] for an about-to-run fit.
pub(crate) fn empty_report() -> TrainReport {
    TrainReport {
        train_losses: Vec::new(),
        val_metrics: Vec::new(),
        epochs_run: 0,
        epoch_seconds: Vec::new(),
        samples_per_sec: Vec::new(),
        stop_reason: StopReason::MaxEpochs,
        host_cores: 0,
        pool_high_water_bytes: 0,
    }
}

/// Stamp the host core count and the tensor-pool high-water mark into a
/// finished report.
pub(crate) fn stamp_host(report: &mut TrainReport) {
    report.host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    report.pool_high_water_bytes = geotorch_tensor::pool::stats().high_water_bytes;
}

/// Replace each parameter's accumulated gradient with `grad * scale`.
pub(crate) fn scale_grads(params: &[Var], scale: f32) {
    for p in params {
        if let Some(g) = p.grad() {
            let scaled = g.mul_scalar(scale);
            p.zero_grad();
            p.seed_grad(scaled);
        }
    }
}

/// Map a dataset batch to the model input and the `[B, C, H, W]` target.
pub fn grid_io(batch: &StBatch) -> (GridInput, Var) {
    match batch {
        StBatch::Basic { x, y } => (
            GridInput::Basic(Var::constant(x.clone())),
            Var::constant(y.clone()),
        ),
        StBatch::Sequential { x, y } => {
            // Target = first predicted frame.
            let s = y.shape();
            let first = y.narrow(1, 0, 1).reshape(&[s[0], s[2], s[3], s[4]]);
            (
                GridInput::Sequence(Var::constant(x.clone())),
                Var::constant(first),
            )
        }
        StBatch::Periodical {
            x_closeness,
            x_period,
            x_trend,
            y,
        } => (
            GridInput::Periodical {
                closeness: Var::constant(x_closeness.clone()),
                period: Var::constant(x_period.clone()),
                trend: Var::constant(x_trend.clone()),
            },
            Var::constant(y.clone()),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotorch_datasets::chronological_split;
    use geotorch_models::grid::PeriodicalCnn;
    use geotorch_models::raster::{SatCnn, UNet};
    use rand::SeedableRng;

    fn quick_config(epochs: usize) -> TrainConfig {
        TrainConfig {
            epochs,
            batch_size: 8,
            learning_rate: 3e-3,
            early_stopping_patience: None,
            update_mode: UpdateMode::Incremental,
            gradient_clip: None,
            seed: 0,
            device: Device::Cpu,
            replicas: 1,
        }
    }

    #[test]
    fn grid_training_reduces_loss() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut ds = StGridDataset::bike_nyc_deepstn(10, 3);
        ds.set_periodical_representation(2, 1, 1);
        let model = PeriodicalCnn::new(2, (2, 1, 1), 8, &mut rng);
        let (train, val, _) = chronological_split(ds.len());
        let trainer = Trainer::new(quick_config(3));
        let report = trainer.fit_grid(&model, &ds, &train[..64.min(train.len())], &val);
        assert_eq!(report.epochs_run, 3);
        assert!(
            report.train_losses.last().unwrap() < report.train_losses.first().unwrap(),
            "loss should drop: {:?}",
            report.train_losses
        );
        assert!(report.mean_epoch_seconds() > 0.0);
        assert_eq!(report.stop_reason, StopReason::MaxEpochs);
        assert_eq!(report.samples_per_sec.len(), 3);
        assert!(
            report.mean_samples_per_sec() > 0.0,
            "throughput must be recorded: {:?}",
            report.samples_per_sec
        );
    }

    #[test]
    fn parallel_device_trains_like_cpu() {
        let run = |device: Device| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(9);
            let mut ds = StGridDataset::bike_nyc_deepstn(8, 3);
            ds.set_periodical_representation(2, 1, 1);
            let model = PeriodicalCnn::new(2, (2, 1, 1), 8, &mut rng);
            let (train, val, _) = chronological_split(ds.len());
            let mut config = quick_config(2);
            config.device = device;
            let trainer = Trainer::new(config);
            trainer
                .fit_grid(&model, &ds, &train[..32.min(train.len())], &val)
                .train_losses
        };
        let cpu = run(Device::Cpu);
        let par = run(Device::Parallel(4));
        assert_eq!(cpu.len(), par.len());
        for (c, p) in cpu.iter().zip(&par) {
            assert!(
                (c - p).abs() <= 1e-5 * c.abs().max(1.0),
                "device-dependent training: cpu {cpu:?} vs parallel {par:?}"
            );
        }
    }

    #[test]
    fn grid_evaluation_returns_finite_metrics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut ds = StGridDataset::taxi_nyc_stdn(3, 4);
        ds.set_periodical_representation(2, 1, 0);
        let model = PeriodicalCnn::new(2, (2, 1, 0), 4, &mut rng);
        let trainer = Trainer::new(quick_config(1));
        let (mae, rmse) = trainer.evaluate_grid(&model, &ds, &[0, 1, 2, 3]);
        assert!(mae.is_finite() && rmse.is_finite());
        assert!(rmse >= mae * 0.99);
    }

    #[test]
    fn classifier_learns_synthetic_classes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let ds = RasterDataset::classification("tiny", 3, 8, 8, 3, 20, 5);
        let model = SatCnn::new(3, 8, 8, 3, &mut rng);
        let (train, val, test) = geotorch_datasets::shuffled_split(ds.len(), 7);
        let trainer = Trainer::new(quick_config(6));
        trainer.fit_classifier(&model, &ds, &train, &val);
        let acc = trainer.evaluate_classifier(&model, &ds, &test);
        assert!(acc > 0.6, "classifier should beat chance by a margin, got {acc}");
    }

    #[test]
    fn early_stopping_halts_training() {
        let mut ds = StGridDataset::taxi_nyc_stdn(3, 4);
        ds.set_basic_representation(1);
        // Untrainable learning rate 0-ish → no improvement → stop early.
        let config = TrainConfig {
            epochs: 10,
            batch_size: 8,
            learning_rate: 1e-12,
            early_stopping_patience: Some(2),
            update_mode: UpdateMode::Incremental,
            gradient_clip: None,
            seed: 0,
            device: Device::Cpu,
            replicas: 1,
        };
        struct Identity;
        impl geotorch_nn::Module for Identity {
            fn parameters(&self) -> Vec<Var> {
                vec![Var::parameter(Tensor::zeros(&[1]))]
            }
        }
        impl GridModel for Identity {
            fn forward(&self, input: &GridInput) -> Var {
                match input {
                    GridInput::Basic(x) => x.clone(),
                    _ => panic!(),
                }
            }
            fn representation(&self) -> geotorch_models::RepresentationKind {
                geotorch_models::RepresentationKind::Basic
            }
            fn name(&self) -> &'static str {
                "identity"
            }
        }
        let trainer = Trainer::new(config);
        let report = trainer.fit_grid(&Identity, &ds, &[0, 1, 2, 3], &[4, 5]);
        assert!(report.epochs_run <= 4, "expected early stop, ran {}", report.epochs_run);
        match report.stop_reason {
            StopReason::EarlyStopped { epoch, patience } => {
                assert_eq!(epoch, report.epochs_run);
                assert_eq!(patience, 2);
            }
            other => panic!("expected EarlyStopped, got {other:?}"),
        }
    }

    #[test]
    fn gradient_clipping_trains_stably() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let ds = {
            let mut ds = StGridDataset::taxi_nyc_stdn(3, 11);
            ds.set_periodical_representation(1, 1, 0);
            ds
        };
        let model = PeriodicalCnn::new(2, (1, 1, 0), 4, &mut rng);
        let config = TrainConfig {
            gradient_clip: Some(0.5),
            learning_rate: 5e-2, // aggressively high; clipping keeps it sane
            ..quick_config(3)
        };
        let trainer = Trainer::new(config);
        let report = trainer.fit_grid(&model, &ds, &[0, 1, 2, 3, 4, 5, 6, 7], &[8, 9]);
        assert!(report.train_losses.iter().all(|l| l.is_finite()));
        use geotorch_nn::Module as _;
        for p in model.parameters() {
            assert!(p.value().as_slice().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn cumulative_mode_trains() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut ds = StGridDataset::taxi_nyc_stdn(3, 9);
        ds.set_periodical_representation(1, 1, 0);
        let model = PeriodicalCnn::new(2, (1, 1, 0), 4, &mut rng);
        let config = TrainConfig {
            update_mode: UpdateMode::Cumulative,
            ..quick_config(2)
        };
        let trainer = Trainer::new(config);
        let report = trainer.fit_grid(&model, &ds, &[0, 1, 2, 3, 4, 5, 6, 7], &[8, 9]);
        assert_eq!(report.epochs_run, 2);
        assert!(report.train_losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn cumulative_matches_incremental_on_single_batch_epochs() {
        // With one batch per epoch the accumulated gradient equals the
        // batch gradient (scaled by 1/1), so both cadences must walk the
        // identical optimisation trajectory.
        let run = |mode: UpdateMode| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(21);
            let mut ds = StGridDataset::taxi_nyc_stdn(3, 9);
            ds.set_periodical_representation(1, 1, 0);
            let model = PeriodicalCnn::new(2, (1, 1, 0), 4, &mut rng);
            let config = TrainConfig {
                update_mode: mode,
                batch_size: 8, // == train set size → exactly one batch/epoch
                ..quick_config(4)
            };
            let trainer = Trainer::new(config);
            trainer
                .fit_grid(&model, &ds, &[0, 1, 2, 3, 4, 5, 6, 7], &[8, 9])
                .train_losses
        };
        let inc = run(UpdateMode::Incremental);
        let cum = run(UpdateMode::Cumulative);
        assert_eq!(inc.len(), cum.len());
        for (i, c) in inc.iter().zip(&cum) {
            assert!(
                (i - c).abs() <= 1e-6 * i.abs().max(1.0),
                "1-batch epochs must match: incremental {inc:?} vs cumulative {cum:?}"
            );
        }
    }

    #[test]
    fn scale_grads_averages_accumulated_sum() {
        let p = Var::parameter(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        p.seed_grad(Tensor::from_vec(vec![4.0, -8.0], &[2]));
        scale_grads(std::slice::from_ref(&p), 0.25);
        let g = p.grad().expect("gradient survives scaling");
        assert_eq!(g.as_slice(), &[1.0, -2.0]);
        // Parameters without a gradient are left untouched.
        let q = Var::parameter(Tensor::zeros(&[2]));
        scale_grads(std::slice::from_ref(&q), 0.5);
        assert!(q.grad().is_none());
    }

    #[test]
    fn classifier_eval_counts_exactly_with_ragged_batches() {
        // A constant model that always predicts class 0: accuracy must be
        // exactly (#labels == 0) / total, summed with integer counts over
        // batches — including a ragged final batch (7 samples with
        // batch_size 4 → batches of 4 and 3).
        struct AlwaysZero {
            classes: usize,
        }
        impl geotorch_nn::Module for AlwaysZero {
            fn parameters(&self) -> Vec<Var> {
                vec![Var::parameter(Tensor::zeros(&[1]))]
            }
        }
        impl RasterClassifier for AlwaysZero {
            fn forward(&self, images: &Var, _features: Option<&Var>) -> Var {
                let b = images.shape()[0];
                let mut logits = vec![0.0f32; b * self.classes];
                for r in 0..b {
                    logits[r * self.classes] = 1.0;
                }
                Var::constant(Tensor::from_vec(logits, &[b, self.classes]))
            }
            fn name(&self) -> &'static str {
                "always-zero"
            }
        }
        let ds = RasterDataset::classification("fixture", 1, 4, 4, 3, 10, 0);
        let indices: Vec<usize> = (0..7).collect();
        let expected = indices.iter().filter(|&&i| ds.label(i) == 0).count() as f32 / 7.0;
        let mut config = quick_config(1);
        config.batch_size = 4;
        let trainer = Trainer::new(config);
        let model = AlwaysZero { classes: 3 };
        let acc = trainer.evaluate_classifier(&model, &ds, &indices);
        assert_eq!(acc, expected, "exact count mismatch");
    }

    #[test]
    fn segmenter_eval_weights_batches_by_pixel_count() {
        // A constant all-positive segmenter: pixel accuracy must equal the
        // overall fraction of positive mask pixels, regardless of how the
        // samples split into batches. The old unweighted per-batch average
        // over-weighted the ragged final batch.
        struct AllPositive;
        impl geotorch_nn::Module for AllPositive {
            fn parameters(&self) -> Vec<Var> {
                vec![Var::parameter(Tensor::zeros(&[1]))]
            }
        }
        impl Segmenter for AllPositive {
            fn forward(&self, images: &Var) -> Var {
                let s = images.shape();
                Var::constant(Tensor::ones(&[s[0], 1, s[2], s[3]]))
            }
            fn name(&self) -> &'static str {
                "all-positive"
            }
        }
        let ds = RasterDataset::cloud38(7, 16, 3);
        let indices: Vec<usize> = (0..7).collect();
        // Hand-computed expectation: positive mask pixels over all pixels.
        let mut positive = 0usize;
        let mut total = 0usize;
        for batch_idx in BatchIndices::new(&indices, 4) {
            let batch = ds.batch(&batch_idx);
            let mask = batch.masks.expect("segmentation dataset");
            positive += mask.as_slice().iter().filter(|&&m| m > 0.5).count();
            total += mask.len();
        }
        let expected = positive as f32 / total as f32;
        let mut config = quick_config(1);
        config.batch_size = 4; // 7 samples → batches of 4 and 3 (ragged)
        let trainer = Trainer::new(config);
        let acc = trainer.evaluate_segmenter(&AllPositive, &ds, &indices);
        assert!(
            (acc - expected).abs() < 1e-6,
            "pixel-weighted accuracy {acc} != expected {expected}"
        );
    }

    #[test]
    fn segmenter_learns_bright_clouds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let ds = RasterDataset::cloud38(32, 16, 3);
        let model = UNet::new(4, 1, 4, &mut rng);
        let (train, val, test) = chronological_split(ds.len());
        let config = TrainConfig {
            batch_size: 4,
            learning_rate: 1e-2,
            ..quick_config(15)
        };
        let trainer = Trainer::new(config);
        trainer.fit_segmenter(&model, &ds, &train, &val);
        let acc = trainer.evaluate_segmenter(&model, &ds, &test);
        assert!(acc > 0.9, "segmentation accuracy too low: {acc}");
    }
}
