//! The training loop: batching, optimisation, validation-based early
//! stopping, and evaluation — implementing the paper's §V-C protocol.

use std::time::Instant;

use geotorch_datasets::{BatchIndices, RasterDataset, StBatch, StGridDataset};
use geotorch_models::{GridInput, GridModel, RasterClassifier, Segmenter};
use geotorch_nn::loss::{bce_with_logits_loss, cross_entropy_loss, mse_loss};
use geotorch_nn::optim::{Adam, Optimizer};
use geotorch_nn::Var;
use geotorch_tensor::{with_device, Device, Tensor};

use crate::metrics;

/// When weights update (§III-A2): after every batch (incremental) or once
/// per epoch with accumulated gradients (cumulative).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateMode {
    /// Step the optimizer after every batch (the paper's default).
    Incremental,
    /// Accumulate gradients across the epoch, step once.
    Cumulative,
}

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Maximum epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Stop when the validation metric has not improved for this many
    /// epochs (`None` disables early stopping).
    pub early_stopping_patience: Option<usize>,
    /// Weight-update cadence.
    pub update_mode: UpdateMode,
    /// Clip the global gradient L2 norm to this value before each step
    /// (`None` disables). Useful for recurrent models.
    pub gradient_clip: Option<f32>,
    /// Shuffling seed.
    pub seed: u64,
    /// Compute device every `fit_*`/`evaluate_*` call runs under.
    /// `Device::parallel()` routes the hot kernels through the persistent
    /// worker pool; the default `Device::Cpu` stays serial.
    pub device: Device,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 16,
            learning_rate: 1e-3,
            early_stopping_patience: Some(3),
            update_mode: UpdateMode::Incremental,
            gradient_clip: None,
            seed: 0,
            device: Device::Cpu,
        }
    }
}

/// What a training run produced.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub train_losses: Vec<f32>,
    /// Validation metric per epoch (loss-like: lower is better).
    pub val_metrics: Vec<f32>,
    /// Epochs actually run (≤ configured when early stopping fires).
    pub epochs_run: usize,
    /// Wall-clock seconds per epoch.
    pub epoch_seconds: Vec<f64>,
}

impl TrainReport {
    /// Mean seconds per epoch.
    pub fn mean_epoch_seconds(&self) -> f64 {
        if self.epoch_seconds.is_empty() {
            0.0
        } else {
            self.epoch_seconds.iter().sum::<f64>() / self.epoch_seconds.len() as f64
        }
    }

    /// Best (minimum) validation metric.
    pub fn best_val(&self) -> f32 {
        self.val_metrics.iter().copied().fold(f32::INFINITY, f32::min)
    }
}

/// Drives training and evaluation for the three model families.
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Trainer {
        Trainer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    // --------------------------------------------------------- grid

    /// Run `f` under the configured compute device.
    fn on_device<T>(&self, f: impl FnOnce() -> T) -> T {
        with_device(self.config.device, f)
    }

    /// Train a grid model on chronological train/val splits of `dataset`
    /// (which must already carry the representation the model expects).
    pub fn fit_grid(
        &self,
        model: &dyn GridModel,
        dataset: &StGridDataset,
        train_idx: &[usize],
        val_idx: &[usize],
    ) -> TrainReport {
        self.on_device(|| self.fit_grid_inner(model, dataset, train_idx, val_idx))
    }

    fn fit_grid_inner(
        &self,
        model: &dyn GridModel,
        dataset: &StGridDataset,
        train_idx: &[usize],
        val_idx: &[usize],
    ) -> TrainReport {
        let mut optimizer = Adam::new(model.parameters(), self.config.learning_rate);
        let mut report = TrainReport {
            train_losses: Vec::new(),
            val_metrics: Vec::new(),
            epochs_run: 0,
            epoch_seconds: Vec::new(),
        };
        let mut best = f32::INFINITY;
        let mut best_state: Option<Vec<Tensor>> = None;
        let mut stale = 0usize;
        for epoch in 0..self.config.epochs {
            model.set_training(true);
            let start = Instant::now();
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            let iter = BatchIndices::shuffled(
                train_idx,
                self.config.batch_size,
                self.config.seed.wrapping_add(epoch as u64),
            );
            for batch_idx in iter {
                let batch = dataset.batch(&batch_idx);
                let (input, target) = grid_io(&batch);
                let pred = model.forward(&input);
                let loss = mse_loss(&pred, &target);
                epoch_loss += loss.value().item();
                batches += 1;
                loss.backward();
                if self.config.update_mode == UpdateMode::Incremental {
                    if let Some(max_norm) = self.config.gradient_clip {
                        geotorch_nn::schedule::clip_grad_norm(optimizer.parameters(), max_norm);
                    }
                    optimizer.step();
                    optimizer.zero_grad();
                }
            }
            if self.config.update_mode == UpdateMode::Cumulative {
                if let Some(max_norm) = self.config.gradient_clip {
                    geotorch_nn::schedule::clip_grad_norm(optimizer.parameters(), max_norm);
                }
                optimizer.step();
                optimizer.zero_grad();
            }
            report.epoch_seconds.push(start.elapsed().as_secs_f64());
            report
                .train_losses
                .push(if batches > 0 { epoch_loss / batches as f32 } else { 0.0 });
            report.epochs_run = epoch + 1;

            let (val_mae, _) = self.evaluate_grid(model, dataset, val_idx);
            report.val_metrics.push(val_mae);
            if val_mae + 1e-6 < best {
                best = val_mae;
                best_state = Some(model.state_dict());
                stale = 0;
            } else {
                stale += 1;
                if let Some(patience) = self.config.early_stopping_patience {
                    if stale >= patience {
                        break;
                    }
                }
            }
        }
        // Restore the best-on-validation weights (the paper's protocol
        // evaluates the converged model, not the last epoch).
        if let Some(state) = best_state {
            model.load_state_dict(&state);
        }
        report
    }

    /// `(MAE, RMSE)` of a grid model over the given samples (normalised
    /// units).
    pub fn evaluate_grid(
        &self,
        model: &dyn GridModel,
        dataset: &StGridDataset,
        indices: &[usize],
    ) -> (f32, f32) {
        self.on_device(|| self.evaluate_grid_inner(model, dataset, indices))
    }

    fn evaluate_grid_inner(
        &self,
        model: &dyn GridModel,
        dataset: &StGridDataset,
        indices: &[usize],
    ) -> (f32, f32) {
        model.set_training(false);
        let mut preds = Vec::new();
        let mut targets = Vec::new();
        for batch_idx in BatchIndices::new(indices, self.config.batch_size) {
            let batch = dataset.batch(&batch_idx);
            let (input, target) = grid_io(&batch);
            preds.push(model.forward(&input).value());
            targets.push(target.value());
        }
        if preds.is_empty() {
            return (f32::NAN, f32::NAN);
        }
        let p_refs: Vec<&Tensor> = preds.iter().collect();
        let t_refs: Vec<&Tensor> = targets.iter().collect();
        let p = Tensor::concat(&p_refs, 0);
        let t = Tensor::concat(&t_refs, 0);
        (metrics::mae(&p, &t), metrics::rmse(&p, &t))
    }

    // ------------------------------------------------- classification

    /// Train a raster classifier with cross-entropy.
    pub fn fit_classifier(
        &self,
        model: &dyn RasterClassifier,
        dataset: &RasterDataset,
        train_idx: &[usize],
        val_idx: &[usize],
    ) -> TrainReport {
        self.on_device(|| self.fit_classifier_inner(model, dataset, train_idx, val_idx))
    }

    fn fit_classifier_inner(
        &self,
        model: &dyn RasterClassifier,
        dataset: &RasterDataset,
        train_idx: &[usize],
        val_idx: &[usize],
    ) -> TrainReport {
        let mut optimizer = Adam::new(model.parameters(), self.config.learning_rate);
        let mut report = TrainReport {
            train_losses: Vec::new(),
            val_metrics: Vec::new(),
            epochs_run: 0,
            epoch_seconds: Vec::new(),
        };
        let mut best = f32::INFINITY;
        let mut best_state: Option<Vec<Tensor>> = None;
        let mut stale = 0usize;
        for epoch in 0..self.config.epochs {
            model.set_training(true);
            let start = Instant::now();
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            let iter = BatchIndices::shuffled(
                train_idx,
                self.config.batch_size,
                self.config.seed.wrapping_add(epoch as u64),
            );
            for batch_idx in iter {
                let batch = dataset.batch(&batch_idx);
                let x = Var::constant(batch.x);
                let features = batch.features.map(Var::constant);
                let logits = model.forward(&x, features.as_ref());
                let loss = cross_entropy_loss(&logits, &batch.labels);
                epoch_loss += loss.value().item();
                batches += 1;
                loss.backward();
                if self.config.update_mode == UpdateMode::Incremental {
                    if let Some(max_norm) = self.config.gradient_clip {
                        geotorch_nn::schedule::clip_grad_norm(optimizer.parameters(), max_norm);
                    }
                    optimizer.step();
                    optimizer.zero_grad();
                }
            }
            if self.config.update_mode == UpdateMode::Cumulative {
                if let Some(max_norm) = self.config.gradient_clip {
                    geotorch_nn::schedule::clip_grad_norm(optimizer.parameters(), max_norm);
                }
                optimizer.step();
                optimizer.zero_grad();
            }
            report.epoch_seconds.push(start.elapsed().as_secs_f64());
            report
                .train_losses
                .push(if batches > 0 { epoch_loss / batches as f32 } else { 0.0 });
            report.epochs_run = epoch + 1;

            // Validation metric: 1 - accuracy (lower is better).
            let val_err = 1.0 - self.evaluate_classifier(model, dataset, val_idx);
            report.val_metrics.push(val_err);
            if val_err + 1e-6 < best {
                best = val_err;
                best_state = Some(model.state_dict());
                stale = 0;
            } else {
                stale += 1;
                if let Some(patience) = self.config.early_stopping_patience {
                    if stale >= patience {
                        break;
                    }
                }
            }
        }
        if let Some(state) = best_state {
            model.load_state_dict(&state);
        }
        report
    }

    /// Accuracy of a classifier over the given samples.
    pub fn evaluate_classifier(
        &self,
        model: &dyn RasterClassifier,
        dataset: &RasterDataset,
        indices: &[usize],
    ) -> f32 {
        self.on_device(|| self.evaluate_classifier_inner(model, dataset, indices))
    }

    fn evaluate_classifier_inner(
        &self,
        model: &dyn RasterClassifier,
        dataset: &RasterDataset,
        indices: &[usize],
    ) -> f32 {
        model.set_training(false);
        let mut correct = 0usize;
        let mut total = 0usize;
        for batch_idx in BatchIndices::new(indices, self.config.batch_size) {
            let batch = dataset.batch(&batch_idx);
            let x = Var::constant(batch.x);
            let features = batch.features.map(Var::constant);
            let logits = model.forward(&x, features.as_ref()).value();
            let acc = metrics::accuracy(&logits, &batch.labels);
            correct += (acc * batch.labels.len() as f32).round() as usize;
            total += batch.labels.len();
        }
        if total == 0 {
            f32::NAN
        } else {
            correct as f32 / total as f32
        }
    }

    // --------------------------------------------------- segmentation

    /// Train a segmentation model with BCE-with-logits on the masks.
    pub fn fit_segmenter(
        &self,
        model: &dyn Segmenter,
        dataset: &RasterDataset,
        train_idx: &[usize],
        val_idx: &[usize],
    ) -> TrainReport {
        self.on_device(|| self.fit_segmenter_inner(model, dataset, train_idx, val_idx))
    }

    fn fit_segmenter_inner(
        &self,
        model: &dyn Segmenter,
        dataset: &RasterDataset,
        train_idx: &[usize],
        val_idx: &[usize],
    ) -> TrainReport {
        let mut optimizer = Adam::new(model.parameters(), self.config.learning_rate);
        let mut report = TrainReport {
            train_losses: Vec::new(),
            val_metrics: Vec::new(),
            epochs_run: 0,
            epoch_seconds: Vec::new(),
        };
        let mut best = f32::INFINITY;
        let mut best_state: Option<Vec<Tensor>> = None;
        let mut stale = 0usize;
        for epoch in 0..self.config.epochs {
            model.set_training(true);
            let start = Instant::now();
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            let iter = BatchIndices::shuffled(
                train_idx,
                self.config.batch_size,
                self.config.seed.wrapping_add(epoch as u64),
            );
            for batch_idx in iter {
                let batch = dataset.batch(&batch_idx);
                let x = Var::constant(batch.x);
                let masks = Var::constant(batch.masks.expect("segmentation dataset"));
                let logits = model.forward(&x);
                let loss = bce_with_logits_loss(&logits, &masks);
                epoch_loss += loss.value().item();
                batches += 1;
                loss.backward();
                if self.config.update_mode == UpdateMode::Incremental {
                    if let Some(max_norm) = self.config.gradient_clip {
                        geotorch_nn::schedule::clip_grad_norm(optimizer.parameters(), max_norm);
                    }
                    optimizer.step();
                    optimizer.zero_grad();
                }
            }
            if self.config.update_mode == UpdateMode::Cumulative {
                if let Some(max_norm) = self.config.gradient_clip {
                    geotorch_nn::schedule::clip_grad_norm(optimizer.parameters(), max_norm);
                }
                optimizer.step();
                optimizer.zero_grad();
            }
            report.epoch_seconds.push(start.elapsed().as_secs_f64());
            report
                .train_losses
                .push(if batches > 0 { epoch_loss / batches as f32 } else { 0.0 });
            report.epochs_run = epoch + 1;

            let val_err = 1.0 - self.evaluate_segmenter(model, dataset, val_idx);
            report.val_metrics.push(val_err);
            if val_err + 1e-6 < best {
                best = val_err;
                best_state = Some(model.state_dict());
                stale = 0;
            } else {
                stale += 1;
                if let Some(patience) = self.config.early_stopping_patience {
                    if stale >= patience {
                        break;
                    }
                }
            }
        }
        if let Some(state) = best_state {
            model.load_state_dict(&state);
        }
        report
    }

    /// Pixel accuracy of a segmenter over the given samples.
    pub fn evaluate_segmenter(
        &self,
        model: &dyn Segmenter,
        dataset: &RasterDataset,
        indices: &[usize],
    ) -> f32 {
        self.on_device(|| self.evaluate_segmenter_inner(model, dataset, indices))
    }

    fn evaluate_segmenter_inner(
        &self,
        model: &dyn Segmenter,
        dataset: &RasterDataset,
        indices: &[usize],
    ) -> f32 {
        model.set_training(false);
        let mut acc_sum = 0.0;
        let mut batches = 0;
        for batch_idx in BatchIndices::new(indices, self.config.batch_size) {
            let batch = dataset.batch(&batch_idx);
            let x = Var::constant(batch.x);
            let masks = batch.masks.expect("segmentation dataset");
            let logits = model.forward(&x).value();
            acc_sum += metrics::pixel_accuracy(&logits, &masks);
            batches += 1;
        }
        if batches == 0 {
            f32::NAN
        } else {
            acc_sum / batches as f32
        }
    }
}

/// Map a dataset batch to the model input and the `[B, C, H, W]` target.
pub fn grid_io(batch: &StBatch) -> (GridInput, Var) {
    match batch {
        StBatch::Basic { x, y } => (
            GridInput::Basic(Var::constant(x.clone())),
            Var::constant(y.clone()),
        ),
        StBatch::Sequential { x, y } => {
            // Target = first predicted frame.
            let s = y.shape();
            let first = y.narrow(1, 0, 1).reshape(&[s[0], s[2], s[3], s[4]]);
            (
                GridInput::Sequence(Var::constant(x.clone())),
                Var::constant(first),
            )
        }
        StBatch::Periodical {
            x_closeness,
            x_period,
            x_trend,
            y,
        } => (
            GridInput::Periodical {
                closeness: Var::constant(x_closeness.clone()),
                period: Var::constant(x_period.clone()),
                trend: Var::constant(x_trend.clone()),
            },
            Var::constant(y.clone()),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotorch_datasets::chronological_split;
    use geotorch_models::grid::PeriodicalCnn;
    use geotorch_models::raster::{SatCnn, UNet};
    use rand::SeedableRng;

    fn quick_config(epochs: usize) -> TrainConfig {
        TrainConfig {
            epochs,
            batch_size: 8,
            learning_rate: 3e-3,
            early_stopping_patience: None,
            update_mode: UpdateMode::Incremental,
            gradient_clip: None,
            seed: 0,
            device: Device::Cpu,
        }
    }

    #[test]
    fn grid_training_reduces_loss() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut ds = StGridDataset::bike_nyc_deepstn(10, 3);
        ds.set_periodical_representation(2, 1, 1);
        let model = PeriodicalCnn::new(2, (2, 1, 1), 8, &mut rng);
        let (train, val, _) = chronological_split(ds.len());
        let trainer = Trainer::new(quick_config(3));
        let report = trainer.fit_grid(&model, &ds, &train[..64.min(train.len())], &val);
        assert_eq!(report.epochs_run, 3);
        assert!(
            report.train_losses.last().unwrap() < report.train_losses.first().unwrap(),
            "loss should drop: {:?}",
            report.train_losses
        );
        assert!(report.mean_epoch_seconds() > 0.0);
    }

    #[test]
    fn parallel_device_trains_like_cpu() {
        let run = |device: Device| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(9);
            let mut ds = StGridDataset::bike_nyc_deepstn(8, 3);
            ds.set_periodical_representation(2, 1, 1);
            let model = PeriodicalCnn::new(2, (2, 1, 1), 8, &mut rng);
            let (train, val, _) = chronological_split(ds.len());
            let mut config = quick_config(2);
            config.device = device;
            let trainer = Trainer::new(config);
            trainer
                .fit_grid(&model, &ds, &train[..32.min(train.len())], &val)
                .train_losses
        };
        let cpu = run(Device::Cpu);
        let par = run(Device::Parallel(4));
        assert_eq!(cpu.len(), par.len());
        for (c, p) in cpu.iter().zip(&par) {
            assert!(
                (c - p).abs() <= 1e-5 * c.abs().max(1.0),
                "device-dependent training: cpu {cpu:?} vs parallel {par:?}"
            );
        }
    }

    #[test]
    fn grid_evaluation_returns_finite_metrics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut ds = StGridDataset::taxi_nyc_stdn(3, 4);
        ds.set_periodical_representation(2, 1, 0);
        let model = PeriodicalCnn::new(2, (2, 1, 0), 4, &mut rng);
        let trainer = Trainer::new(quick_config(1));
        let (mae, rmse) = trainer.evaluate_grid(&model, &ds, &[0, 1, 2, 3]);
        assert!(mae.is_finite() && rmse.is_finite());
        assert!(rmse >= mae * 0.99);
    }

    #[test]
    fn classifier_learns_synthetic_classes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let ds = RasterDataset::classification("tiny", 3, 8, 8, 3, 20, 5);
        let model = SatCnn::new(3, 8, 8, 3, &mut rng);
        let (train, val, test) = geotorch_datasets::shuffled_split(ds.len(), 7);
        let trainer = Trainer::new(quick_config(6));
        trainer.fit_classifier(&model, &ds, &train, &val);
        let acc = trainer.evaluate_classifier(&model, &ds, &test);
        assert!(acc > 0.6, "classifier should beat chance by a margin, got {acc}");
    }

    #[test]
    fn early_stopping_halts_training() {
        let mut ds = StGridDataset::taxi_nyc_stdn(3, 4);
        ds.set_basic_representation(1);
        // Untrainable learning rate 0-ish → no improvement → stop early.
        let config = TrainConfig {
            epochs: 10,
            batch_size: 8,
            learning_rate: 1e-12,
            early_stopping_patience: Some(2),
            update_mode: UpdateMode::Incremental,
            gradient_clip: None,
            seed: 0,
            device: Device::Cpu,
        };
        struct Identity;
        impl geotorch_nn::Module for Identity {
            fn parameters(&self) -> Vec<Var> {
                vec![Var::parameter(Tensor::zeros(&[1]))]
            }
        }
        impl GridModel for Identity {
            fn forward(&self, input: &GridInput) -> Var {
                match input {
                    GridInput::Basic(x) => x.clone(),
                    _ => panic!(),
                }
            }
            fn representation(&self) -> geotorch_models::RepresentationKind {
                geotorch_models::RepresentationKind::Basic
            }
            fn name(&self) -> &'static str {
                "identity"
            }
        }
        let trainer = Trainer::new(config);
        let report = trainer.fit_grid(&Identity, &ds, &[0, 1, 2, 3], &[4, 5]);
        assert!(report.epochs_run <= 4, "expected early stop, ran {}", report.epochs_run);
    }

    #[test]
    fn gradient_clipping_trains_stably() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let ds = {
            let mut ds = StGridDataset::taxi_nyc_stdn(3, 11);
            ds.set_periodical_representation(1, 1, 0);
            ds
        };
        let model = PeriodicalCnn::new(2, (1, 1, 0), 4, &mut rng);
        let config = TrainConfig {
            gradient_clip: Some(0.5),
            learning_rate: 5e-2, // aggressively high; clipping keeps it sane
            ..quick_config(3)
        };
        let trainer = Trainer::new(config);
        let report = trainer.fit_grid(&model, &ds, &[0, 1, 2, 3, 4, 5, 6, 7], &[8, 9]);
        assert!(report.train_losses.iter().all(|l| l.is_finite()));
        use geotorch_nn::Module as _;
        for p in model.parameters() {
            assert!(p.value().as_slice().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn cumulative_mode_trains() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut ds = StGridDataset::taxi_nyc_stdn(3, 9);
        ds.set_periodical_representation(1, 1, 0);
        let model = PeriodicalCnn::new(2, (1, 1, 0), 4, &mut rng);
        let config = TrainConfig {
            update_mode: UpdateMode::Cumulative,
            ..quick_config(2)
        };
        let trainer = Trainer::new(config);
        let report = trainer.fit_grid(&model, &ds, &[0, 1, 2, 3, 4, 5, 6, 7], &[8, 9]);
        assert_eq!(report.epochs_run, 2);
        assert!(report.train_losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn segmenter_learns_bright_clouds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let ds = RasterDataset::cloud38(32, 16, 3);
        let model = UNet::new(4, 1, 4, &mut rng);
        let (train, val, test) = chronological_split(ds.len());
        let config = TrainConfig {
            batch_size: 4,
            learning_rate: 1e-2,
            ..quick_config(15)
        };
        let trainer = Trainer::new(config);
        trainer.fit_segmenter(&model, &ds, &train, &val);
        let acc = trainer.evaluate_segmenter(&model, &ds, &test);
        assert!(acc > 0.9, "segmentation accuracy too low: {acc}");
    }
}
