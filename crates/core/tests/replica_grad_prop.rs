//! Property: the K-replica averaged gradient step bit-equals the
//! single-replica full-batch step.
//!
//! On *lattice* inputs — every value a multiple of 1/16, magnitudes
//! bounded — every intermediate sum, mean, and `n_r/N` shard weight is
//! exactly representable in f32 (all scale factors are powers of two),
//! so the sharded computation and the full-batch computation must agree
//! bit-for-bit, not just approximately. Any weighting bug, reordering
//! hazard, or lost shard in the merge shows up as a hard mismatch.
//!
//! Covers K ∈ {2, 3, 4}, including a ragged final step where the stream
//! yields fewer batches than replicas.

use geotorch_converter::{BatchStream, LoaderError};
use geotorch_core::{TrainConfig, Trainer, UpdateMode};
use geotorch_nn::layers::Linear;
use geotorch_nn::{Layer, Module, Var};
use geotorch_tensor::{Device, Tensor};
use proptest::prelude::*;
use rand::SeedableRng;

const N: usize = 16; // total samples per epoch; power of two
const D: usize = 2; // feature width

fn lattice(vals: &[i32], shape: &[usize]) -> Tensor {
    Tensor::from_vec(vals.iter().map(|v| *v as f32 / 16.0).collect(), shape)
}

/// A canned stream over pre-built batches.
struct VecStream {
    batches: std::vec::IntoIter<(Tensor, Tensor)>,
}

impl BatchStream for VecStream {
    fn next_batch(&mut self) -> Result<Option<(Tensor, Tensor)>, LoaderError> {
        Ok(self.batches.next())
    }
}

fn fresh_linear(seed: u64) -> Linear {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Linear::new(D, 1, &mut rng)
}

/// Train one epoch (one optimizer step) on `xs/ys` split into `split`
/// row-chunks dealt to `replicas` workers; returns the epoch losses and
/// the post-step weights.
fn run(
    xs: &[i32],
    ys: &[i32],
    ws: &[i32],
    b: i32,
    split: &[usize],
    replicas: usize,
) -> (Vec<f32>, Vec<Tensor>) {
    assert_eq!(split.iter().sum::<usize>(), N);
    let model = fresh_linear(0);
    let params = model.parameters();
    params[0].assign(lattice(ws, &[1, D]));
    params[1].assign(lattice(&[b], &[1]));

    let config = TrainConfig {
        epochs: 1,
        batch_size: N,
        learning_rate: 0.5,
        early_stopping_patience: None,
        update_mode: UpdateMode::Incremental,
        gradient_clip: None,
        seed: 0,
        device: Device::Cpu,
        replicas,
    };
    let trainer = Trainer::new(config);

    let mut batches = Vec::with_capacity(split.len());
    let mut row = 0;
    for &n in split {
        batches.push((
            lattice(&xs[row * D..(row + n) * D], &[n, D]),
            lattice(&ys[row..row + n], &[n, 1]),
        ));
        row += n;
    }

    let mut make = move |_epoch: usize| -> Result<Box<dyn BatchStream>, LoaderError> {
        Ok(Box::new(VecStream {
            batches: batches.clone().into_iter(),
        }))
    };
    let report = trainer
        .fit_stream(
            &model,
            &|r| Box::new(fresh_linear(100 + r as u64)),
            &|m: &Linear, x: &Var| m.forward(x),
            &mut make,
            &mut || 0.0,
            None,
        )
        .expect("stream fit succeeds");
    (report.train_losses, model.state_dict())
}

fn assert_bit_equal(single: &(Vec<f32>, Vec<Tensor>), sharded: &(Vec<f32>, Vec<Tensor>), k: usize) {
    assert_eq!(
        single.0, sharded.0,
        "K={k}: epoch losses diverged from the full-batch run"
    );
    for (i, (a, b)) in single.1.iter().zip(&sharded.1).enumerate() {
        assert_eq!(
            a.as_slice(),
            b.as_slice(),
            "K={k}: parameter {i} diverged bit-wise after one averaged step"
        );
    }
}

/// Guard against a vacuous property: one step on a clearly non-optimal
/// model must actually move the weights.
#[test]
fn one_step_moves_the_weights() {
    let xs = [8i32; N * D];
    let ys = [16i32; N];
    let ws = [0i32; D];
    let (losses, state) = run(&xs, &ys, &ws, 0, &[N], 1);
    assert_eq!(losses.len(), 1);
    assert!(losses[0] > 0.0, "nonzero residual expected");
    let initial = lattice(&ws, &[1, D]);
    assert_ne!(
        state[0].as_slice(),
        initial.as_slice(),
        "the optimizer step must change the weights"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_gradient_average_bit_equals_full_batch(
        xs in prop::collection::vec(-16i32..=16, N * D),
        ys in prop::collection::vec(-16i32..=16, N),
        ws in prop::collection::vec(-16i32..=16, D),
        b in -16i32..=16,
    ) {
        let single = run(&xs, &ys, &ws, b, &[N], 1);
        // K=2 and K=4: even power-of-two shards.
        assert_bit_equal(&single, &run(&xs, &ys, &ws, b, &[8, 8], 2), 2);
        assert_bit_equal(&single, &run(&xs, &ys, &ws, b, &[4, 4, 4, 4], 4), 4);
        // K=3: uneven shard weights (1/2, 1/4, 1/4).
        assert_bit_equal(&single, &run(&xs, &ys, &ws, b, &[8, 4, 4], 3), 3);
        // Ragged final step: 4 replicas but only 3 batches arrive —
        // the step must still weight by n_r over the *dealt* total.
        assert_bit_equal(&single, &run(&xs, &ys, &ws, b, &[8, 4, 4], 4), 4);
    }
}
