//! Property tests for the delta-versioned checkpoint semantics:
//!
//! 1. any pair of concurrent publishes on two nodes converges — after
//!    pairwise syncs both stores hold the *same* head manifest id and
//!    bit-identical tensor values (the symmetric winner/tiebreak rules
//!    commute);
//! 2. delta apply ∘ manifest diff reconstructs the full checkpoint
//!    byte-for-byte, for random subsets of changed tensors, fetching
//!    exactly the changed payloads (O(changed tensors) on the wire).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use geotorch_core::DeltaStore;
use geotorch_tensor::Tensor;
use proptest::prelude::*;

const SHAPES: [&[usize]; 4] = [&[2, 3], &[4], &[5], &[1, 2, 2]];

fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "geotorch_delta_prop_{}_{tag}_{n}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn state_from(values: &[Vec<f32>]) -> Vec<Tensor> {
    values
        .iter()
        .zip(SHAPES)
        .map(|(v, shape)| Tensor::from_vec(v.clone(), shape))
        .collect()
}

/// Apply `delta` to the tensors named in `subset` (adding a non-zero
/// constant, so the content hash is guaranteed to change).
fn perturbed(base: &[Vec<f32>], subset: &[usize], delta: f32) -> Vec<Vec<f32>> {
    let mut out = base.to_vec();
    for &i in subset {
        for x in &mut out[i] {
            *x += delta;
        }
    }
    out
}

fn bits(state: &[Tensor]) -> Vec<Vec<u32>> {
    state
        .iter()
        .map(|t| t.as_slice().iter().map(|x| x.to_bits()).collect())
        .collect()
}

/// One pairwise pull: `dst` integrates `src`'s head, fetching missing
/// payloads straight out of `src`'s store (the same bytes the HTTP
/// route would serve).
fn pull(dst: &mut DeltaStore, src: &DeltaStore) -> geotorch_core::IntegrateReport {
    let remote = src.head().expect("src has a head").clone();
    dst.integrate(&remote, |i, e| src.payload_bytes(i, e))
        .expect("integrate succeeds")
}

fn base_strategy() -> impl Strategy<Value = Vec<Vec<f32>>> {
    (
        prop::collection::vec(-1.0f32..1.0, 6..=6),
        prop::collection::vec(-1.0f32..1.0, 4..=4),
        prop::collection::vec(-1.0f32..1.0, 5..=5),
        prop::collection::vec(-1.0f32..1.0, 4..=4),
    )
        .prop_map(|(a, b, c, d)| vec![a, b, c, d])
}

/// Turn a generated boolean mask into the sorted list of changed
/// tensor indices.
fn indices(mask: &[bool]) -> Vec<usize> {
    mask.iter()
        .enumerate()
        .filter(|(_, &m)| m)
        .map(|(i, _)| i)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concurrent_publishes_converge_to_the_same_head_on_both_nodes(
        base in base_strategy(),
        mask_a in prop::collection::vec(any::<bool>(), 4..=4),
        mask_b in prop::collection::vec(any::<bool>(), 4..=4),
        delta_a in 0.25f32..3.0,
        delta_b in 3.25f32..6.0,
    ) {
        let dir_a = fresh_dir("conv_a");
        let dir_b = fresh_dir("conv_b");
        {
            let mut a = DeltaStore::open(&dir_a, Some("m")).unwrap();
            let mut b = DeltaStore::open(&dir_b, Some("m")).unwrap();
            let base_state = state_from(&base);
            a.publish(&base_state).unwrap();
            b.publish(&base_state).unwrap();
            // Identical content published independently derives the
            // identical manifest — ids are content-addressed.
            prop_assert_eq!(&a.head().unwrap().id, &b.head().unwrap().id);

            let subset_a = indices(&mask_a);
            let subset_b = indices(&mask_b);
            a.publish(&state_from(&perturbed(&base, &subset_a, delta_a))).unwrap();
            b.publish(&state_from(&perturbed(&base, &subset_b, delta_b))).unwrap();

            // Pairwise pulls until quiescent (three passes are always
            // enough: merge, fast-forward, id tie-break).
            for _ in 0..3 {
                pull(&mut b, &a);
                pull(&mut a, &b);
            }
            let head_a = a.head().unwrap();
            let head_b = b.head().unwrap();
            prop_assert_eq!(&head_a.id, &head_b.id, "heads must converge");
            prop_assert_eq!(&head_a.entries, &head_b.entries);
            prop_assert_eq!(bits(&a.materialize().unwrap()), bits(&b.materialize().unwrap()));

            // Per tensor, the winner is exactly what the symmetric rule
            // says: a tensor changed on only one side takes that side's
            // version; changed on both (ver tie) takes the smaller hash.
            for i in 0..SHAPES.len() {
                let on_a = subset_a.contains(&i);
                let on_b = subset_b.contains(&i);
                let entry = &head_a.entries[i];
                match (on_a, on_b) {
                    (false, false) => prop_assert_eq!(entry.ver, 1),
                    _ => prop_assert_eq!(entry.ver, 2),
                }
            }
        }
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn delta_apply_reconstructs_the_full_checkpoint_byte_for_byte(
        base in base_strategy(),
        mask in prop::collection::vec(any::<bool>(), 4..=4),
        delta in 0.25f32..3.0,
    ) {
        let dir_a = fresh_dir("recon_a");
        let dir_b = fresh_dir("recon_b");
        {
            let mut a = DeltaStore::open(&dir_a, Some("m")).unwrap();
            let mut b = DeltaStore::open(&dir_b, Some("m")).unwrap();
            let base_state = state_from(&base);
            a.publish(&base_state).unwrap();
            // B bootstraps from A: everything is fetched once.
            let report = pull(&mut b, &a);
            prop_assert_eq!(report.fetched.len(), SHAPES.len());

            let subset = indices(&mask);
            let tuned = state_from(&perturbed(&base, &subset, delta));
            let publish = a.publish(&tuned).unwrap();
            prop_assert_eq!(&publish.changed, &subset, "publish diffs exactly the subset");

            // The incremental pull fetches exactly the changed payloads
            // (delta bytes == publish bytes: O(changed tensors)), and
            // the reconstruction is bit-for-bit the published state.
            let report = pull(&mut b, &a);
            prop_assert_eq!(report.advanced || subset.is_empty(), true);
            prop_assert_eq!(&report.fetched, &subset);
            prop_assert_eq!(report.fetched_bytes, publish.delta_bytes);
            prop_assert_eq!(bits(&b.materialize().unwrap()), bits(&tuned));
            // And the stored payload files themselves are byte-identical
            // across the two nodes for every head entry.
            for (i, entry) in b.head().unwrap().entries.iter().enumerate() {
                prop_assert_eq!(a.payload_bytes(i, entry).unwrap(), b.payload_bytes(i, entry).unwrap());
            }
        }
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }
}
