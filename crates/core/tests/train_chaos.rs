//! Chaos tests for the streaming training pipeline: inject faults into
//! the prefetch thread and into the spill writer, and prove the trainer
//! fails the epoch *cleanly* — no deadlock, no half-written spill
//! consumed on retry, and every pooled buffer slot returned.
//!
//! The fault registry is process-global; every test takes `serial()`.

use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

use geotorch_converter::{
    BatchStream, DfFormatter, LoaderError, PrefetchLoader, RowTransformer, SpillBatchStream,
};
use geotorch_core::{TrainConfig, TrainError, Trainer, UpdateMode};
use geotorch_dataframe::{Column, DataFrame, SpillStore};
use geotorch_nn::layers::Linear;
use geotorch_nn::{Layer, Var};
use geotorch_tensor::{pool, Device};
use geotorch_telemetry::fault::{self, FaultAction, FaultPlan};
use rand::SeedableRng;

fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn chaos_seed() -> u64 {
    std::env::var("GEOTORCH_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn tmp_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("geotorch_train_chaos_{}_{name}", std::process::id()))
}

fn trips(rows: usize, parts: usize) -> DataFrame {
    let a: Vec<f64> = (0..rows).map(|i| (i % 17) as f64 * 0.25).collect();
    let b: Vec<f64> = (0..rows).map(|i| (i % 11) as f64 * 0.5).collect();
    let y: Vec<f64> = (0..rows).map(|i| (i % 5) as f64).collect();
    DataFrame::from_columns(vec![
        ("a".into(), Column::F64(a)),
        ("b".into(), Column::F64(b)),
        ("y".into(), Column::F64(y)),
    ])
    .unwrap()
    .repartition(parts)
    .unwrap()
}

fn pipeline_parts(dir: &PathBuf) -> (Arc<SpillStore>, DfFormatter, Arc<RowTransformer>) {
    let _ = std::fs::remove_dir_all(dir);
    let df = trips(96, 6);
    let store = Arc::new(SpillStore::from_frame(dir, &df).unwrap());
    let fmt = DfFormatter::for_prediction(&["a", "b"], &[2], &["y"], &[1]).unwrap();
    (store, fmt, Arc::new(RowTransformer::new(16)))
}

fn quick_config(replicas: usize) -> TrainConfig {
    TrainConfig {
        epochs: 2,
        batch_size: 16,
        learning_rate: 1e-3,
        early_stopping_patience: None,
        update_mode: UpdateMode::Incremental,
        gradient_clip: None,
        seed: 0,
        device: Device::Cpu,
        replicas,
    }
}

fn fit_over(
    trainer: &Trainer,
    store: &Arc<SpillStore>,
    fmt: &DfFormatter,
    rt: &Arc<RowTransformer>,
) -> Result<geotorch_core::TrainReport, TrainError> {
    let model = Linear::new(2, 1, &mut rand::rngs::StdRng::seed_from_u64(0));
    let store = Arc::clone(store);
    let fmt = fmt.clone();
    let rt = Arc::clone(rt);
    let mut make = move |_epoch: usize| -> Result<Box<dyn BatchStream>, LoaderError> {
        let inner = SpillBatchStream::new(Arc::clone(&store), fmt.clone(), Arc::clone(&rt));
        Ok(Box::new(PrefetchLoader::new(Box::new(inner), 2)))
    };
    trainer.fit_stream(
        &model,
        &|r| Box::new(Linear::new(2, 1, &mut rand::rngs::StdRng::seed_from_u64(r as u64))),
        &|m: &Linear, x: &Var| m.forward(x),
        &mut make,
        &mut || 0.0,
        None,
    )
}

fn prefetch_depth() -> u64 {
    geotorch_telemetry::snapshot()
        .into_iter()
        .find(|s| s.name == "loader.prefetch_depth")
        .map_or(0, |s| s.count)
}

#[test]
fn prefetch_fault_fails_the_epoch_cleanly_and_returns_pool_slots() {
    let _g = serial();
    let dir = tmp_dir("prefetch");
    let (store, fmt, rt) = pipeline_parts(&dir);
    let trainer = Trainer::new(quick_config(2));

    // Healthy baseline proves the pipeline itself trains.
    let ok = fit_over(&trainer, &store, &fmt, &rt).expect("healthy run succeeds");
    assert_eq!(ok.epochs_run, 2);
    assert!(ok.train_losses.iter().all(|l| l.is_finite()));

    fault::install(FaultPlan::new(chaos_seed()).on_nth(
        "loader.prefetch",
        3,
        FaultAction::Error("prefetch thread lost its disk".into()),
    ));
    let err = fit_over(&trainer, &store, &fmt, &rt).expect_err("injected fault must fail the fit");
    fault::clear();
    assert!(
        matches!(
            &err,
            TrainError::Loader(LoaderError::Prefetch(msg)) if msg.contains("lost its disk")
        ),
        "unexpected error: {err}"
    );

    // The failed epoch drained its prefetch queue: the depth gauge is
    // back to zero and repeated failed runs do not leak pooled buffers.
    assert_eq!(prefetch_depth(), 0, "prefetch queue must drain on failure");
    let baseline = pool::stats().bytes_in_use;
    for _ in 0..3 {
        fault::install(FaultPlan::new(chaos_seed()).on_nth(
            "loader.prefetch",
            2,
            FaultAction::Error("flaky again".into()),
        ));
        let _ = fit_over(&trainer, &store, &fmt, &rt).expect_err("fault fires each run");
        fault::clear();
    }
    assert_eq!(prefetch_depth(), 0);
    assert_eq!(
        pool::stats().bytes_in_use,
        baseline,
        "failed epochs must return every pooled buffer slot"
    );

    // After the fault clears, the same pipeline trains again.
    fit_over(&trainer, &store, &fmt, &rt).expect("recovery run succeeds");
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn spill_write_fault_leaves_no_half_written_partition_for_retry() {
    let _g = serial();
    let dir = tmp_dir("spill_write");
    let _ = std::fs::remove_dir_all(&dir);
    let df = trips(64, 4);
    let schema = df.schema().clone();
    let mut store = SpillStore::create(&dir, schema).unwrap();
    store.spill(&df.partitions()[0]).expect("first spill ok");

    // Fail the second spill between file creation and the payload write
    // — the crash window a torn partition would come from.
    fault::install(FaultPlan::new(chaos_seed()).always(
        "dataframe.spill.write",
        FaultAction::Error("power cut mid-write".into()),
    ));
    let err = store
        .spill(&df.partitions()[1])
        .expect_err("injected fault must fail the spill");
    fault::clear();
    assert!(format!("{err}").contains("power cut"), "unexpected error: {err}");

    // Nothing half-written is registered or left on disk.
    assert_eq!(store.len(), 1, "failed spill must register no partition");
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().into_string().unwrap())
        .filter(|n| n.ends_with(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "staging files left behind: {leftovers:?}");

    // The retry lands in a clean slot, and a full training run over the
    // store consumes only complete partitions.
    store.spill(&df.partitions()[1]).expect("retry succeeds");
    store.spill(&df.partitions()[2]).unwrap();
    store.spill(&df.partitions()[3]).unwrap();
    assert_eq!(store.total_rows(), 64);

    let store = Arc::new(store);
    let fmt = DfFormatter::for_prediction(&["a", "b"], &[2], &["y"], &[1]).unwrap();
    let rt = Arc::new(RowTransformer::new(16));
    let trainer = Trainer::new(quick_config(1));
    let report = fit_over(&trainer, &store, &fmt, &rt).expect("training over retried store");
    assert_eq!(report.epochs_run, 2);
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn prefetch_panic_surfaces_as_clean_error_not_deadlock() {
    let _g = serial();
    let dir = tmp_dir("prefetch_panic");
    let (store, fmt, rt) = pipeline_parts(&dir);
    let trainer = Trainer::new(quick_config(3));

    fault::install(FaultPlan::new(chaos_seed()).on_nth(
        "loader.prefetch",
        2,
        FaultAction::Panic("prefetch thread crashed".into()),
    ));
    let err = fit_over(&trainer, &store, &fmt, &rt).expect_err("panic must fail the fit");
    fault::clear();
    assert!(
        matches!(&err, TrainError::Loader(LoaderError::Prefetch(_))),
        "unexpected error: {err}"
    );
    assert_eq!(prefetch_depth(), 0);

    fit_over(&trainer, &store, &fmt, &rt).expect("pipeline recovers after the panic");
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}
