//! K = 1 bit-identity: the data-parallel trainer with one replica must
//! reproduce the classic `fit_*` loops exactly — same per-epoch losses,
//! same validation metrics, same stop reason, and byte-identical
//! checkpoints of the final weights. This is the invariant that lets
//! `replicas > 1` be adopted without re-validating any paper figure.

use std::path::PathBuf;

use geotorch_core::{checkpoint, StopReason, TrainConfig, Trainer, UpdateMode};
use geotorch_datasets::{shuffled_split, RasterDataset, StGridDataset};
use geotorch_models::grid::PeriodicalCnn;
use geotorch_models::raster::SatCnn;
use geotorch_models::{GridModel, RasterClassifier};
use geotorch_tensor::Device;
use rand::SeedableRng;

fn config(epochs: usize, update_mode: UpdateMode) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 8,
        learning_rate: 3e-3,
        early_stopping_patience: None,
        update_mode,
        gradient_clip: None,
        seed: 0,
        device: Device::Cpu,
        replicas: 1,
    }
}

fn satcnn() -> SatCnn {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    SatCnn::new(3, 16, 16, 3, &mut rng)
}

fn satcnn_factory(_replica: usize) -> Box<dyn RasterClassifier> {
    Box::new(satcnn())
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "geotorch_replica_parity_{}_{name}.json",
        std::process::id()
    ))
}

#[test]
fn k1_classifier_bit_identical_to_classic_fit() {
    let dataset = RasterDataset::classification("parity", 3, 16, 16, 3, 24, 0);
    let (train, val, _) = shuffled_split(dataset.len(), 0);

    let classic_model = satcnn();
    let trainer = Trainer::new(config(3, UpdateMode::Incremental));
    let classic = trainer.fit_classifier(&classic_model, &dataset, &train, &val);

    let rep_model = satcnn();
    let rep = trainer
        .fit_classifier_replicated(&rep_model, &satcnn_factory, &dataset, &train, &val)
        .expect("replicated fit succeeds");

    // Exact f32 equality — not approximate. Any reordering of float ops
    // in the replicated path would show up here.
    assert_eq!(classic.train_losses, rep.train_losses);
    assert_eq!(classic.val_metrics, rep.val_metrics);
    assert_eq!(classic.epochs_run, rep.epochs_run);
    assert_eq!(classic.stop_reason, rep.stop_reason);

    // The final weights must agree down to the serialized bytes.
    let classic_path = tmp("classic");
    let rep_path = tmp("replicated");
    checkpoint::save(&classic_model, &classic_path).expect("save classic");
    checkpoint::save(&rep_model, &rep_path).expect("save replicated");
    let classic_bytes = std::fs::read(&classic_path).expect("read classic");
    let rep_bytes = std::fs::read(&rep_path).expect("read replicated");
    assert_eq!(
        classic_bytes, rep_bytes,
        "K=1 replicated training must produce byte-identical checkpoints"
    );
    std::fs::remove_file(&classic_path).ok();
    std::fs::remove_file(&rep_path).ok();

    // The report is stamped with the host shape (satellite telemetry).
    assert!(rep.host_cores >= 1);
}

#[test]
fn k1_classifier_matches_under_cumulative_updates() {
    let dataset = RasterDataset::classification("parity_cum", 3, 16, 16, 3, 16, 1);
    let (train, val, _) = shuffled_split(dataset.len(), 1);

    let classic_model = satcnn();
    let trainer = Trainer::new(config(2, UpdateMode::Cumulative));
    let classic = trainer.fit_classifier(&classic_model, &dataset, &train, &val);

    let rep_model = satcnn();
    let rep = trainer
        .fit_classifier_replicated(&rep_model, &satcnn_factory, &dataset, &train, &val)
        .expect("replicated fit succeeds");

    assert_eq!(classic.train_losses, rep.train_losses);
    assert_eq!(classic.val_metrics, rep.val_metrics);
}

#[test]
fn k1_grid_bit_identical_including_early_stopping() {
    let mut ds = StGridDataset::bike_nyc_deepstn(10, 3);
    ds.set_periodical_representation(2, 1, 1);
    let n = ds.len();
    let (train, val, _) = geotorch_datasets::chronological_split(n);

    let mk = || {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        PeriodicalCnn::new(2, (2, 1, 1), 8, &mut rng)
    };
    let factory = move |_replica: usize| -> Box<dyn GridModel> { Box::new(mk()) };

    let mut cfg = config(4, UpdateMode::Incremental);
    cfg.early_stopping_patience = Some(2);
    let trainer = Trainer::new(cfg);

    let classic_model = mk();
    let classic = trainer.fit_grid(&classic_model, &ds, &train, &val);

    let rep_model = mk();
    let rep = trainer
        .fit_grid_replicated(&rep_model, &factory, &ds, &train, &val)
        .expect("replicated fit succeeds");

    assert_eq!(classic.train_losses, rep.train_losses);
    assert_eq!(classic.val_metrics, rep.val_metrics);
    assert_eq!(classic.epochs_run, rep.epochs_run);
    match (&classic.stop_reason, &rep.stop_reason) {
        (StopReason::MaxEpochs, StopReason::MaxEpochs) => {}
        (
            StopReason::EarlyStopped { epoch: a, .. },
            StopReason::EarlyStopped { epoch: b, .. },
        ) => assert_eq!(a, b),
        (a, b) => panic!("stop reasons diverged: {a:?} vs {b:?}"),
    }
}
