//! Chaos tests for checkpoint durability: inject failures (errors and
//! panics) into the window between the staging write and the atomic
//! rename, and into the load path, and prove the previously valid
//! checkpoint always survives byte-for-byte and stays loadable.
//!
//! The fault registry is process-global; every test takes `serial()`.

use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

use geotorch_core::checkpoint::{self, CheckpointError};
use geotorch_models::raster::SatCnn;
use geotorch_models::RasterClassifier;
use geotorch_nn::{Module, Var};
use geotorch_tensor::Tensor;
use geotorch_telemetry::fault::{self, FaultAction, FaultPlan};
use rand::SeedableRng;

fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn chaos_seed() -> u64 {
    std::env::var("GEOTORCH_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("geotorch_chaos_{}_{name}.json", std::process::id()))
}

fn model(seed: u64) -> SatCnn {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    SatCnn::new(2, 8, 8, 3, &mut rng)
}

fn logits(m: &SatCnn) -> Tensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let x = Var::constant(Tensor::rand_uniform(&[1, 2, 8, 8], 0.0, 1.0, &mut rng));
    geotorch_nn::no_grad(|| m.forward(&x, None).value())
}

fn staging_path(path: &Path) -> PathBuf {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    PathBuf::from(tmp)
}

#[test]
fn injected_error_before_rename_preserves_the_prior_checkpoint() {
    let _g = serial();
    let path = tmp("rename_error");
    let donor = model(0);
    checkpoint::save_named(&donor, "satcnn", &path).expect("initial save");
    let golden_bytes = std::fs::read(&path).expect("read prior checkpoint");
    let golden_logits = logits(&donor);

    // Change the weights, then fail the second save in the crash window.
    for p in donor.parameters() {
        p.assign(p.value().mul_scalar(3.0));
    }
    fault::install(FaultPlan::new(chaos_seed()).always(
        "core.checkpoint.rename",
        FaultAction::Error("disk pulled".into()),
    ));
    let err = checkpoint::save_named(&donor, "satcnn", &path)
        .expect_err("the injected fault must fail the save");
    fault::clear();
    assert!(
        matches!(&err, CheckpointError::Format(msg) if msg.contains("injected")),
        "unexpected error: {err}"
    );

    // The prior checkpoint is untouched, the staging file is gone, and
    // load_named still round-trips the original weights.
    assert_eq!(
        std::fs::read(&path).expect("checkpoint still exists"),
        golden_bytes,
        "a failed save must not disturb the previous checkpoint"
    );
    assert!(
        !staging_path(&path).exists(),
        "the staging .tmp file must be cleaned up on a failed save"
    );
    let restored = model(99);
    checkpoint::load_named(&restored, "satcnn", &path).expect("prior checkpoint loads");
    assert_eq!(
        logits(&restored).as_slice(),
        golden_logits.as_slice(),
        "the restored weights must be the pre-fault weights"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn injected_panic_before_rename_preserves_the_prior_checkpoint() {
    let _g = serial();
    let path = tmp("rename_panic");
    let donor = model(1);
    checkpoint::save_named(&donor, "satcnn", &path).expect("initial save");
    let golden_bytes = std::fs::read(&path).expect("read prior checkpoint");

    fault::install(FaultPlan::new(chaos_seed()).always(
        "core.checkpoint.rename",
        FaultAction::Panic("process crashed mid-save".into()),
    ));
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        checkpoint::save_named(&donor, "satcnn", &path)
    }));
    fault::clear();
    assert!(outcome.is_err(), "the injected panic must escape the save");

    // A crash between staging write and rename is exactly what the
    // tmp+rename dance defends against: the destination is intact.
    assert_eq!(
        std::fs::read(&path).expect("checkpoint still exists"),
        golden_bytes,
        "a crash mid-save must not disturb the previous checkpoint"
    );
    let restored = model(98);
    checkpoint::load_named(&restored, "satcnn", &path).expect("prior checkpoint loads");
    // The simulated crash leaves the staging file behind, as a real
    // crash would; it must not confuse later saves.
    checkpoint::save_named(&donor, "satcnn", &path).expect("the next save succeeds");
    assert!(!staging_path(&path).exists());
    std::fs::remove_file(&path).ok();
}

#[test]
fn injected_load_fault_fails_cleanly_then_recovers() {
    let _g = serial();
    let path = tmp("load_fault");
    let donor = model(2);
    checkpoint::save_named(&donor, "satcnn", &path).expect("save");

    fault::install(FaultPlan::new(chaos_seed()).always(
        "core.checkpoint.load",
        FaultAction::Error("torn page".into()),
    ));
    let restored = model(97);
    let err = checkpoint::load_named(&restored, "satcnn", &path)
        .expect_err("the injected fault must fail the load");
    assert!(
        matches!(&err, CheckpointError::Format(msg) if msg.contains("injected")),
        "unexpected error: {err}"
    );
    fault::clear();

    // With the plan cleared the very same file loads fine — the fault
    // was in the injected environment, not the data.
    checkpoint::load_named(&restored, "satcnn", &path).expect("load recovers");
    assert_eq!(logits(&restored).as_slice(), logits(&donor).as_slice());
    std::fs::remove_file(&path).ok();
}

#[test]
fn probabilistic_save_faults_are_deterministic_per_seed() {
    let _g = serial();
    let path = tmp("prob_determinism");
    let donor = model(3);
    let run = |seed: u64| -> (Vec<bool>, Vec<fault::FaultRecord>) {
        fault::install(FaultPlan::new(seed).with_probability(
            "core.checkpoint.rename",
            0.5,
            FaultAction::Error("flaky disk".into()),
        ));
        let failures: Vec<bool> = (0..20)
            .map(|_| checkpoint::save_named(&donor, "satcnn", &path).is_err())
            .collect();
        (failures, fault::clear())
    };
    let seed = chaos_seed();
    let (fail_a, log_a) = run(seed);
    let (fail_b, log_b) = run(seed);
    assert_eq!(fail_a, fail_b, "same seed must fail the same saves");
    assert_eq!(log_a, log_b, "same seed must record the same injections");
    assert!(
        fail_a.iter().any(|&f| f) && fail_a.iter().any(|&f| !f),
        "p=0.5 over 20 saves should fail some and pass some: {fail_a:?}"
    );
    // Whatever the injected failure pattern, the file on disk is always
    // a complete, loadable checkpoint — never a torn write.
    checkpoint::load_named(&model(96), "satcnn", &path).expect("survivor loads");
    std::fs::remove_file(&path).ok();
}
