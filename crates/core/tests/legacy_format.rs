//! Regression tests for checkpoint format compatibility: the v2
//! versioned manifest must not break anything that loaded before it —
//! bare-array (v0) files, v1 named headers — and a manifest must
//! round-trip through `peek` from its header fields alone, without
//! reading a single tensor payload.

use std::path::PathBuf;

use geotorch_core::checkpoint::{self, CheckpointError};
use geotorch_core::{DeltaStore, Manifest};
use geotorch_models::raster::SatCnn;
use geotorch_models::RasterClassifier;
use geotorch_nn::{Module, Var};
use geotorch_tensor::Tensor;
use rand::SeedableRng;
use serde::Serialize;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("geotorch_legacy_{}_{name}", std::process::id()))
}

fn model(seed: u64) -> SatCnn {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    SatCnn::new(2, 8, 8, 3, &mut rng)
}

fn logits(m: &SatCnn) -> Vec<f32> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let x = Var::constant(Tensor::rand_uniform(&[1, 2, 8, 8], 0.0, 1.0, &mut rng));
    geotorch_nn::no_grad(|| m.forward(&x, None).value())
        .as_slice()
        .to_vec()
}

#[test]
fn bare_array_checkpoints_still_load() {
    // The original format: a JSON array of tensors, no header at all.
    let path = tmp("bare.json");
    let donor = model(0);
    let json = serde_json::to_string(&donor.state_dict().to_value()).expect("serialise");
    std::fs::write(&path, json).expect("write");

    let meta = checkpoint::peek(&path).expect("peek");
    assert_eq!(meta.version, 0, "bare arrays are version 0");
    assert_eq!(meta.model, None);

    let restored = model(9);
    checkpoint::load(&restored, &path).expect("bare array loads");
    assert_eq!(logits(&restored), logits(&donor));
    // load_named accepts a nameless file (nothing to validate against).
    checkpoint::load_named(&model(8), "satcnn", &path).expect("load_named tolerates no name");
    std::fs::remove_file(&path).ok();
}

#[test]
fn v1_named_checkpoints_still_load() {
    let path = tmp("named.json");
    let donor = model(1);
    checkpoint::save_named(&donor, "satcnn", &path).expect("save");

    let meta = checkpoint::peek(&path).expect("peek");
    assert_eq!(meta.version, checkpoint::FORMAT_VERSION);
    assert_eq!(meta.model.as_deref(), Some("satcnn"));

    let restored = model(9);
    checkpoint::load_named(&restored, "satcnn", &path).expect("v1 loads");
    assert_eq!(logits(&restored), logits(&donor));
    // The name check still bites.
    let err = checkpoint::load_named(&model(8), "other", &path).expect_err("wrong name");
    assert!(matches!(err, CheckpointError::WrongModel { .. }));
    std::fs::remove_file(&path).ok();
}

#[test]
fn manifest_peeks_without_reading_payloads_and_loads_through_the_store() {
    let dir = tmp("store");
    std::fs::remove_dir_all(&dir).ok();
    let donor = model(2);
    let mut store = DeltaStore::open(&dir, Some("satcnn")).expect("open");
    store.publish_module(&donor).expect("publish");

    // The head manifest file is itself a loadable checkpoint path…
    let restored = model(9);
    checkpoint::load_named(&restored, "satcnn", store.head_path()).expect("manifest loads");
    assert_eq!(logits(&restored), logits(&donor));

    // …and `peek` reads its header without touching any payload: after
    // deleting every payload file, peek still answers from the manifest
    // alone while a full load (which needs the tensors) now fails.
    let head = store.head().expect("head").clone();
    for entry in std::fs::read_dir(&dir).expect("read dir") {
        let entry = entry.expect("dir entry");
        if entry.file_name().to_string_lossy().starts_with('t') {
            std::fs::remove_file(entry.path()).expect("remove payload");
        }
    }
    let meta = checkpoint::peek(store.head_path()).expect("peek needs no payloads");
    assert_eq!(meta.version, 2, "manifests are format version 2");
    assert_eq!(meta.model.as_deref(), Some("satcnn"));
    assert_eq!(meta.shapes, head.shapes);
    assert!(
        checkpoint::load_named(&model(8), "satcnn", store.head_path()).is_err(),
        "a full load without payloads must fail, proving peek never read them"
    );

    // The manifest JSON itself round-trips exactly (content id verified
    // on parse).
    let json = std::fs::read_to_string(store.head_path()).expect("read head");
    let parsed = Manifest::from_json(&json).expect("parse");
    assert_eq!(parsed, head);
    assert_eq!(parsed.to_json(), json, "manifest JSON round-trips byte-for-byte");

    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}
