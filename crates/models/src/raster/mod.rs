//! Raster imagery models.

mod deepsat;
mod fcn;
mod sat_cnn;
mod unet;
mod unet_pp;

pub use deepsat::{DeepSat, DeepSatV2};
pub use fcn::Fcn;
pub use sat_cnn::SatCnn;
pub use unet::UNet;
pub use unet_pp::UNetPlusPlus;
