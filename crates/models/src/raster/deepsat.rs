//! DeepSAT (Basu et al., 2015) and DeepSAT V2 (Liu et al., 2019).
//!
//! DeepSAT classifies from a normalised handcrafted feature vector with a
//! deep fully connected network; DeepSAT V2 fuses a (shallower-than-
//! SatCNN) convolutional branch with the handcrafted features — the
//! feature-fusion idea the paper's §V-E evaluates.

use rand::Rng;

use geotorch_nn::layers::{BatchNorm2d, Conv2d, Linear, MaxPool2d, Relu, Sequential};
use geotorch_nn::{Layer, Module, Var};

use crate::RasterClassifier;

/// DeepSAT: a fully connected network over handcrafted features only.
pub struct DeepSat {
    net: Sequential,
}

impl DeepSat {
    /// `num_features` handcrafted inputs → `num_classes` logits.
    pub fn new<R: Rng>(num_features: usize, num_classes: usize, rng: &mut R) -> Self {
        assert!(num_features > 0, "DeepSat needs at least one feature");
        let net = Sequential::new()
            .add(Linear::new(num_features, 64, rng))
            .add(Relu)
            .add(Linear::new(64, 32, rng))
            .add(Relu)
            .add(Linear::new(32, num_classes, rng));
        DeepSat { net }
    }
}

impl Module for DeepSat {
    fn parameters(&self) -> Vec<Var> {
        self.net.parameters()
    }
}

impl RasterClassifier for DeepSat {
    fn forward(&self, _images: &Var, features: Option<&Var>) -> Var {
        let features = features.expect("DeepSat requires handcrafted features");
        self.net.forward(features)
    }

    fn name(&self) -> &'static str {
        "DeepSAT"
    }
}

/// DeepSAT V2: a compact CNN branch fused with the handcrafted feature
/// vector before the classification head (Listing 6's
/// `num_filtered_features` corresponds to `num_features` here).
pub struct DeepSatV2 {
    conv: Sequential,
    bn: BatchNorm2d,
    fuse: Linear,
    head: Linear,
    num_features: usize,
}

impl DeepSatV2 {
    /// Build for `in_channels × height × width` inputs, fusing
    /// `num_features` handcrafted features, producing `num_classes`
    /// logits.
    pub fn new<R: Rng>(
        in_channels: usize,
        height: usize,
        width: usize,
        num_classes: usize,
        num_features: usize,
        rng: &mut R,
    ) -> Self {
        assert!(
            height >= 4 && width >= 4,
            "DeepSatV2 needs inputs of at least 4x4"
        );
        let conv = Sequential::new()
            .add(Conv2d::same(in_channels, 16, 3, rng))
            .add(Relu)
            .add(MaxPool2d::new(2, 2));
        let (fh, fw) = (height / 2, width / 2);
        DeepSatV2 {
            conv,
            bn: BatchNorm2d::new(16),
            fuse: Linear::new(16 * fh * fw + num_features, 64, rng),
            head: Linear::new(64, num_classes, rng),
            num_features,
        }
    }

    /// Number of handcrafted features the model fuses.
    pub fn num_features(&self) -> usize {
        self.num_features
    }
}

impl Module for DeepSatV2 {
    fn parameters(&self) -> Vec<Var> {
        let mut p = self.conv.parameters();
        p.extend(self.bn.parameters());
        p.extend(self.fuse.parameters());
        p.extend(self.head.parameters());
        p
    }

    fn set_training(&self, training: bool) {
        self.conv.set_training(training);
        self.bn.set_training(training);
    }
}

impl RasterClassifier for DeepSatV2 {
    fn forward(&self, images: &Var, features: Option<&Var>) -> Var {
        let features = features.expect("DeepSatV2 requires handcrafted features");
        assert_eq!(
            features.shape()[1],
            self.num_features,
            "DeepSatV2 expected {} features, got {}",
            self.num_features,
            features.shape()[1]
        );
        let conv = self.bn.forward(&self.conv.forward(images)).flatten_batch();
        let fused = Var::concat(&[&conv, features], 1);
        self.head.forward(&self.fuse.forward(&fused).relu())
    }

    fn name(&self) -> &'static str {
        "DeepSAT V2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotorch_tensor::Tensor;
    use rand::SeedableRng;

    #[test]
    fn deepsat_forward_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let m = DeepSat::new(9, 6, &mut rng);
        let f = Var::constant(Tensor::ones(&[4, 9]));
        let dummy = Var::constant(Tensor::zeros(&[4, 1, 1, 1]));
        assert_eq!(m.forward(&dummy, Some(&f)).shape(), vec![4, 6]);
    }

    #[test]
    #[should_panic(expected = "requires handcrafted features")]
    fn deepsat_requires_features() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let m = DeepSat::new(3, 2, &mut rng);
        m.forward(&Var::constant(Tensor::zeros(&[1, 1, 1, 1])), None);
    }

    #[test]
    fn deepsatv2_forward_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let m = DeepSatV2::new(4, 28, 28, 6, 9, &mut rng);
        let x = Var::constant(Tensor::ones(&[2, 4, 28, 28]));
        let f = Var::constant(Tensor::ones(&[2, 9]));
        assert_eq!(m.forward(&x, Some(&f)).shape(), vec![2, 6]);
        assert_eq!(m.num_features(), 9);
    }

    #[test]
    fn deepsatv2_is_smaller_than_satcnn() {
        // The paper notes DeepSAT V2 has fewer conv layers than SatCNN yet
        // comparable accuracy; verify the parameter-count relationship on
        // a same-geometry pair.
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let v2 = DeepSatV2::new(13, 64, 64, 10, 13, &mut rng);
        let sat = crate::raster::SatCnn::new(13, 64, 64, 10, &mut rng);
        // Count *conv* layers indirectly: compare 4-D parameters.
        let convs = |params: Vec<Var>| params.iter().filter(|p| p.shape().len() == 4).count();
        assert!(convs(v2.parameters()) < convs(sat.parameters()));
    }

    #[test]
    fn deepsatv2_features_change_prediction() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let m = DeepSatV2::new(2, 8, 8, 3, 4, &mut rng);
        m.set_training(false);
        let x = Var::constant(Tensor::rand_uniform(&[1, 2, 8, 8], 0.0, 1.0, &mut rng));
        let f1 = Var::constant(Tensor::zeros(&[1, 4]));
        let f2 = Var::constant(Tensor::ones(&[1, 4]));
        let a = m.forward(&x, Some(&f1)).value();
        let b = m.forward(&x, Some(&f2)).value();
        assert!(!a.allclose(&b, 1e-6), "features must influence logits");
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let m = DeepSatV2::new(1, 8, 8, 2, 3, &mut rng);
        let x = Var::constant(Tensor::rand_uniform(&[2, 1, 8, 8], 0.0, 1.0, &mut rng));
        let f = Var::constant(Tensor::rand_uniform(&[2, 3], 0.0, 1.0, &mut rng));
        let logits = m.forward(&x, Some(&f));
        geotorch_nn::loss::cross_entropy_loss(&logits, &[0, 1]).backward();
        let missing = m.parameters().iter().filter(|p| p.grad().is_none()).count();
        // Only the two batch-norm buffers (running mean/var) may lack
        // gradients.
        assert_eq!(missing, 2, "unexpected gradient-less parameters");
    }
}
