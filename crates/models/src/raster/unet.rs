//! U-Net (Ronneberger et al., 2015): encoder-decoder segmentation with
//! skip connections.

use rand::Rng;

use geotorch_nn::layers::{Conv2d, MaxPool2d, Relu, Sequential, Upsample2d};
use geotorch_nn::{Layer, Module, Var};

use crate::Segmenter;

/// Double 3×3 convolution block.
pub(crate) struct DoubleConv {
    net: Sequential,
}

impl DoubleConv {
    pub(crate) fn new<R: Rng>(in_c: usize, out_c: usize, rng: &mut R) -> Self {
        DoubleConv {
            net: Sequential::new()
                .add(Conv2d::same(in_c, out_c, 3, rng))
                .add(Relu)
                .add(Conv2d::same(out_c, out_c, 3, rng))
                .add(Relu),
        }
    }

    pub(crate) fn forward(&self, x: &Var) -> Var {
        self.net.forward(x)
    }

    pub(crate) fn parameters(&self) -> Vec<Var> {
        self.net.parameters()
    }
}

/// Two-level U-Net: enc1 → enc2 → bottleneck → dec2 (skip enc2) → dec1
/// (skip enc1) → 1×1 head. Input extent must be divisible by 4.
pub struct UNet {
    enc1: DoubleConv,
    enc2: DoubleConv,
    bottleneck: DoubleConv,
    dec2: DoubleConv,
    dec1: DoubleConv,
    pool: MaxPool2d,
    up: Upsample2d,
    head: Conv2d,
}

impl UNet {
    /// Build for `in_channels` inputs, `out_channels` logit maps, `base`
    /// encoder width.
    pub fn new<R: Rng>(in_channels: usize, out_channels: usize, base: usize, rng: &mut R) -> Self {
        UNet {
            enc1: DoubleConv::new(in_channels, base, rng),
            enc2: DoubleConv::new(base, base * 2, rng),
            bottleneck: DoubleConv::new(base * 2, base * 4, rng),
            dec2: DoubleConv::new(base * 4 + base * 2, base * 2, rng),
            dec1: DoubleConv::new(base * 2 + base, base, rng),
            pool: MaxPool2d::new(2, 2),
            up: Upsample2d::new(2),
            head: Conv2d::new(base, out_channels, 1, 1, 0, rng),
        }
    }
}

impl Module for UNet {
    fn parameters(&self) -> Vec<Var> {
        let mut p = self.enc1.parameters();
        p.extend(self.enc2.parameters());
        p.extend(self.bottleneck.parameters());
        p.extend(self.dec2.parameters());
        p.extend(self.dec1.parameters());
        p.extend(self.head.parameters());
        p
    }
}

impl Segmenter for UNet {
    fn forward(&self, images: &Var) -> Var {
        let shape = images.shape();
        assert!(
            shape[2].is_multiple_of(4) && shape[3].is_multiple_of(4),
            "UNet input extent must be divisible by 4, got {}x{}",
            shape[2],
            shape[3]
        );
        let e1 = self.enc1.forward(images);
        let e2 = self.enc2.forward(&self.pool.forward(&e1));
        let b = self.bottleneck.forward(&self.pool.forward(&e2));
        let d2 = self
            .dec2
            .forward(&Var::concat(&[&self.up.forward(&b), &e2], 1));
        let d1 = self
            .dec1
            .forward(&Var::concat(&[&self.up.forward(&d2), &e1], 1));
        self.head.forward(&d1)
    }

    fn name(&self) -> &'static str {
        "UNet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotorch_tensor::Tensor;
    use rand::SeedableRng;

    #[test]
    fn forward_preserves_resolution() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let m = UNet::new(4, 1, 4, &mut rng);
        let x = Var::constant(Tensor::ones(&[1, 4, 32, 32]));
        assert_eq!(m.forward(&x).shape(), vec![1, 1, 32, 32]);
    }

    #[test]
    fn skip_connections_carry_high_resolution_detail() {
        // Zeroing the bottleneck parameters must NOT reduce the output to
        // a constant — encoder-level skips still feed the decoder.
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let m = UNet::new(1, 1, 2, &mut rng);
        for p in m.bottleneck.parameters() {
            p.assign(Tensor::zeros(&p.shape()));
        }
        let x = Var::constant(Tensor::rand_uniform(&[1, 1, 8, 8], 0.0, 1.0, &mut rng));
        let y = m.forward(&x).value();
        assert!(y.variance() > 0.0, "skips must keep spatial variation alive");
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let m = UNet::new(2, 1, 2, &mut rng);
        let x = Var::constant(Tensor::rand_uniform(&[1, 2, 8, 8], 0.0, 1.0, &mut rng));
        m.forward(&x).square().mean_all().backward();
        for p in m.parameters() {
            assert!(p.grad().is_some());
        }
    }

    #[test]
    #[should_panic(expected = "divisible by 4")]
    fn rejects_misaligned_extent() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let m = UNet::new(1, 1, 2, &mut rng);
        m.forward(&Var::constant(Tensor::zeros(&[1, 1, 6, 6])));
    }
}
