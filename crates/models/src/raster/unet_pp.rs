//! UNet++ (Zhou et al., 2018): a nested U-Net whose dense skip pathways
//! re-process encoder features at every resolution — the most accurate
//! (and slowest) segmentation model in the paper's Tables VI and VII.

use rand::Rng;

use geotorch_nn::layers::{Conv2d, MaxPool2d, Upsample2d};
use geotorch_nn::{Layer, Module, Var};

use super::unet::DoubleConv;
use crate::Segmenter;

/// Depth-2 UNet++ (backbone nodes X00, X10, X20; nested nodes X01, X11,
/// X02) with deep supervision head on the final nested node.
pub struct UNetPlusPlus {
    x00: DoubleConv,
    x10: DoubleConv,
    x20: DoubleConv,
    x01: DoubleConv,
    x11: DoubleConv,
    x02: DoubleConv,
    pool: MaxPool2d,
    up: Upsample2d,
    head: Conv2d,
}

impl UNetPlusPlus {
    /// Build for `in_channels` inputs, `out_channels` logit maps, `base`
    /// width.
    pub fn new<R: Rng>(in_channels: usize, out_channels: usize, base: usize, rng: &mut R) -> Self {
        let (c0, c1, c2) = (base, base * 2, base * 4);
        UNetPlusPlus {
            x00: DoubleConv::new(in_channels, c0, rng),
            x10: DoubleConv::new(c0, c1, rng),
            x20: DoubleConv::new(c1, c2, rng),
            // X01 sees X00 + up(X10)
            x01: DoubleConv::new(c0 + c1, c0, rng),
            // X11 sees X10 + up(X20)
            x11: DoubleConv::new(c1 + c2, c1, rng),
            // X02 sees X00 + X01 + up(X11) — the dense skip.
            x02: DoubleConv::new(c0 + c0 + c1, c0, rng),
            pool: MaxPool2d::new(2, 2),
            up: Upsample2d::new(2),
            head: Conv2d::new(c0, out_channels, 1, 1, 0, rng),
        }
    }
}

impl Module for UNetPlusPlus {
    fn parameters(&self) -> Vec<Var> {
        let mut p = self.x00.parameters();
        p.extend(self.x10.parameters());
        p.extend(self.x20.parameters());
        p.extend(self.x01.parameters());
        p.extend(self.x11.parameters());
        p.extend(self.x02.parameters());
        p.extend(self.head.parameters());
        p
    }
}

impl Segmenter for UNetPlusPlus {
    fn forward(&self, images: &Var) -> Var {
        let shape = images.shape();
        assert!(
            shape[2].is_multiple_of(4) && shape[3].is_multiple_of(4),
            "UNetPlusPlus input extent must be divisible by 4, got {}x{}",
            shape[2],
            shape[3]
        );
        let x00 = self.x00.forward(images);
        let x10 = self.x10.forward(&self.pool.forward(&x00));
        let x20 = self.x20.forward(&self.pool.forward(&x10));
        let x01 = self
            .x01
            .forward(&Var::concat(&[&x00, &self.up.forward(&x10)], 1));
        let x11 = self
            .x11
            .forward(&Var::concat(&[&x10, &self.up.forward(&x20)], 1));
        let x02 = self
            .x02
            .forward(&Var::concat(&[&x00, &x01, &self.up.forward(&x11)], 1));
        self.head.forward(&x02)
    }

    fn name(&self) -> &'static str {
        "UNet++"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raster::UNet;
    use geotorch_tensor::Tensor;
    use rand::SeedableRng;

    #[test]
    fn forward_preserves_resolution() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let m = UNetPlusPlus::new(4, 1, 4, &mut rng);
        let x = Var::constant(Tensor::ones(&[1, 4, 16, 16]));
        assert_eq!(m.forward(&x).shape(), vec![1, 1, 16, 16]);
    }

    #[test]
    fn has_more_parameters_than_unet() {
        // Table VII: UNet++ is the slowest segmentation model; its nested
        // decoder must be strictly larger than UNet at equal base width.
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let pp = UNetPlusPlus::new(4, 1, 4, &mut rng);
        let plain = UNet::new(4, 1, 4, &mut rng);
        assert!(pp.num_parameters() > plain.num_parameters());
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let m = UNetPlusPlus::new(1, 1, 2, &mut rng);
        let x = Var::constant(Tensor::rand_uniform(&[1, 1, 8, 8], 0.0, 1.0, &mut rng));
        m.forward(&x).square().mean_all().backward();
        for p in m.parameters() {
            assert!(p.grad().is_some());
        }
    }
}
