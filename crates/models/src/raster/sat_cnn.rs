//! SatCNN (Zhong et al., 2017): an "agile" convolutional network for
//! satellite image classification.

use rand::Rng;

use geotorch_nn::layers::{Conv2d, Linear, MaxPool2d, Relu, Sequential};
use geotorch_nn::{Layer, Module, Var};

use crate::RasterClassifier;

/// Conv-pool × 2 → conv → flatten → two fully connected layers.
pub struct SatCnn {
    features: Sequential,
    fc1: Linear,
    fc2: Linear,
}

impl SatCnn {
    /// Build for `in_channels × height × width` inputs and `num_classes`
    /// outputs.
    pub fn new<R: Rng>(
        in_channels: usize,
        height: usize,
        width: usize,
        num_classes: usize,
        rng: &mut R,
    ) -> Self {
        assert!(
            height >= 8 && width >= 8,
            "SatCnn needs inputs of at least 8x8, got {height}x{width}"
        );
        let features = Sequential::new()
            .add(Conv2d::same(in_channels, 16, 3, rng))
            .add(Relu)
            .add(MaxPool2d::new(2, 2))
            .add(Conv2d::same(16, 32, 3, rng))
            .add(Relu)
            .add(MaxPool2d::new(2, 2))
            .add(Conv2d::same(32, 32, 3, rng))
            .add(Relu);
        let (fh, fw) = (height / 4, width / 4);
        SatCnn {
            features,
            fc1: Linear::new(32 * fh * fw, 128, rng),
            fc2: Linear::new(128, num_classes, rng),
        }
    }
}

impl Module for SatCnn {
    fn parameters(&self) -> Vec<Var> {
        let mut p = self.features.parameters();
        p.extend(self.fc1.parameters());
        p.extend(self.fc2.parameters());
        p
    }

    fn set_training(&self, training: bool) {
        self.features.set_training(training);
    }
}

impl RasterClassifier for SatCnn {
    fn forward(&self, images: &Var, _features: Option<&Var>) -> Var {
        let h = self.features.forward(images).flatten_batch();
        self.fc2.forward(&self.fc1.forward(&h).relu())
    }

    fn name(&self) -> &'static str {
        "SatCNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotorch_tensor::Tensor;
    use rand::SeedableRng;

    #[test]
    fn forward_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let m = SatCnn::new(4, 28, 28, 6, &mut rng);
        let x = Var::constant(Tensor::ones(&[3, 4, 28, 28]));
        let y = m.forward(&x, None);
        assert_eq!(y.shape(), vec![3, 6]);
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let m = SatCnn::new(2, 16, 16, 3, &mut rng);
        let x = Var::constant(Tensor::rand_uniform(&[2, 2, 16, 16], 0.0, 1.0, &mut rng));
        let logits = m.forward(&x, None);
        geotorch_nn::loss::cross_entropy_loss(&logits, &[0, 2]).backward();
        for p in m.parameters() {
            assert!(p.grad().is_some());
        }
    }

    #[test]
    #[should_panic(expected = "at least 8x8")]
    fn rejects_tiny_inputs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        SatCnn::new(1, 4, 4, 2, &mut rng);
    }
}
