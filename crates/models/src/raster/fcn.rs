//! Fully Convolutional Network, FCN-8s style (Shelhamer et al., 2017):
//! a downsampling conv backbone whose per-stage score maps are fused
//! through learned transposed-convolution upsampling, recovering detail
//! that a single ×8 upsample would lose.

use rand::Rng;

use geotorch_nn::layers::{Conv2d, ConvTranspose2d, MaxPool2d, Relu, Sequential};
use geotorch_nn::{Layer, Module, Var};

use crate::Segmenter;

/// One backbone stage: conv → ReLU → 2× max-pool.
struct Stage {
    net: Sequential,
}

impl Stage {
    fn new<R: Rng>(in_c: usize, out_c: usize, rng: &mut R) -> Self {
        Stage {
            net: Sequential::new()
                .add(Conv2d::same(in_c, out_c, 3, rng))
                .add(Relu)
                .add(MaxPool2d::new(2, 2)),
        }
    }
}

/// FCN-8s: three pooling stages (to 1/2, 1/4, 1/8 resolution), per-stage
/// 1×1 score layers, and stepwise ×2 learned upsampling with skip
/// fusion back to full resolution.
pub struct Fcn {
    stage1: Stage,
    stage2: Stage,
    stage3: Stage,
    score1: Conv2d,
    score2: Conv2d,
    score3: Conv2d,
    up3: ConvTranspose2d,
    up2: ConvTranspose2d,
    up1: ConvTranspose2d,
}

impl Fcn {
    /// Build for `in_channels` inputs and `out_channels` per-pixel logit
    /// maps (1 for binary cloud masks). Input extent must be divisible by
    /// 8.
    pub fn new<R: Rng>(in_channels: usize, out_channels: usize, base: usize, rng: &mut R) -> Self {
        Fcn {
            stage1: Stage::new(in_channels, base, rng),
            stage2: Stage::new(base, base * 2, rng),
            stage3: Stage::new(base * 2, base * 4, rng),
            score1: Conv2d::new(base, out_channels, 1, 1, 0, rng),
            score2: Conv2d::new(base * 2, out_channels, 1, 1, 0, rng),
            score3: Conv2d::new(base * 4, out_channels, 1, 1, 0, rng),
            up3: ConvTranspose2d::new(out_channels, out_channels, 2, 2, 0, rng),
            up2: ConvTranspose2d::new(out_channels, out_channels, 2, 2, 0, rng),
            up1: ConvTranspose2d::new(out_channels, out_channels, 2, 2, 0, rng),
        }
    }
}

impl Module for Fcn {
    fn parameters(&self) -> Vec<Var> {
        let mut p = self.stage1.net.parameters();
        p.extend(self.stage2.net.parameters());
        p.extend(self.stage3.net.parameters());
        p.extend(self.score1.parameters());
        p.extend(self.score2.parameters());
        p.extend(self.score3.parameters());
        p.extend(self.up3.parameters());
        p.extend(self.up2.parameters());
        p.extend(self.up1.parameters());
        p
    }

    fn set_training(&self, training: bool) {
        self.stage1.net.set_training(training);
        self.stage2.net.set_training(training);
        self.stage3.net.set_training(training);
    }
}

impl Segmenter for Fcn {
    fn forward(&self, images: &Var) -> Var {
        let shape = images.shape();
        assert!(
            shape[2].is_multiple_of(8) && shape[3].is_multiple_of(8),
            "Fcn input extent must be divisible by 8, got {}x{}",
            shape[2],
            shape[3]
        );
        let s1 = self.stage1.net.forward(images); // 1/2
        let s2 = self.stage2.net.forward(&s1); // 1/4
        let s3 = self.stage3.net.forward(&s2); // 1/8
        // Fuse scores coarse → fine, FCN-8s style.
        let fused2 = self.up3.forward(&self.score3.forward(&s3)).add(&self.score2.forward(&s2));
        let fused1 = self.up2.forward(&fused2).add(&self.score1.forward(&s1));
        self.up1.forward(&fused1)
    }

    fn name(&self) -> &'static str {
        "FCN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotorch_tensor::Tensor;
    use rand::SeedableRng;

    #[test]
    fn forward_restores_resolution() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let m = Fcn::new(4, 1, 4, &mut rng);
        let x = Var::constant(Tensor::ones(&[2, 4, 32, 32]));
        assert_eq!(m.forward(&x).shape(), vec![2, 1, 32, 32]);
    }

    #[test]
    fn skip_fusion_preserves_fine_detail_pathway() {
        // Zero the deepest stage's parameters: the shallow skips must
        // still carry spatial variation to the output.
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let m = Fcn::new(2, 1, 2, &mut rng);
        for p in m.stage3.net.parameters().iter().chain(m.score3.parameters().iter()) {
            p.assign(Tensor::zeros(&p.shape()));
        }
        let x = Var::constant(Tensor::rand_uniform(&[1, 2, 16, 16], 0.0, 1.0, &mut rng));
        let y = m.forward(&x).value();
        assert!(y.variance() > 0.0, "skips must keep variation alive");
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let m = Fcn::new(2, 1, 2, &mut rng);
        let x = Var::constant(Tensor::rand_uniform(&[1, 2, 16, 16], 0.0, 1.0, &mut rng));
        let y = Var::constant(Tensor::zeros(&[1, 1, 16, 16]));
        geotorch_nn::loss::bce_with_logits_loss(&m.forward(&x), &y).backward();
        for p in m.parameters() {
            assert!(p.grad().is_some());
        }
    }

    #[test]
    #[should_panic(expected = "divisible by 8")]
    fn rejects_misaligned_extent() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let m = Fcn::new(1, 1, 2, &mut rng);
        m.forward(&Var::constant(Tensor::zeros(&[1, 1, 20, 20])));
    }
}
