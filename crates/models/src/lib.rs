//! # geotorch-models
//!
//! State-of-the-art neural-network models for raster imagery and
//! grid-based spatiotemporal prediction — the `geotorchai.models` module
//! of the paper (§III-A2).
//!
//! Grid-based spatiotemporal models (all predict the next frame
//! `[B, C, H, W]`):
//!
//! | Model | Representation | Paper reference |
//! |---|---|---|
//! | [`grid::PeriodicalCnn`] | periodical | baseline CNN over stacked lags |
//! | [`grid::ConvLstm`] | sequential | Shi et al. 2015 |
//! | [`grid::StResNet`] | periodical | Zhang et al. 2017 |
//! | [`grid::DeepStnPlus`] | periodical | Lin et al. 2019 |
//!
//! Raster models:
//!
//! | Model | Task | Paper reference |
//! |---|---|---|
//! | [`raster::SatCnn`] | classification | Zhong et al. 2017 |
//! | [`raster::DeepSat`] | classification (features) | Basu et al. 2015 |
//! | [`raster::DeepSatV2`] | classification (fusion) | Liu et al. 2019 |
//! | [`raster::Fcn`] | segmentation | Shelhamer et al. 2017 |
//! | [`raster::UNet`] | segmentation | Ronneberger et al. 2015 |
//! | [`raster::UNetPlusPlus`] | segmentation | Zhou et al. 2018 |

#![warn(missing_docs)]

pub mod grid;
pub mod raster;

use geotorch_nn::{Module, Var};

/// Input to a grid-based spatiotemporal model, mirroring the dataset
/// representations.
#[derive(Debug, Clone)]
pub enum GridInput {
    /// A single frame `[B, C, H, W]` (basic representation).
    Basic(Var),
    /// A frame sequence `[B, T, C, H, W]` (sequential representation).
    Sequence(Var),
    /// Channel-stacked lag features (periodical representation), each
    /// `[B, len*C, H, W]`.
    Periodical {
        /// Most recent frames.
        closeness: Var,
        /// Daily-lagged frames.
        period: Var,
        /// Weekly-lagged frames.
        trend: Var,
    },
}

/// Which representation a model consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepresentationKind {
    /// Basic (single-frame) input.
    Basic,
    /// Sequential input.
    Sequential,
    /// Periodical (closeness/period/trend) input.
    Periodical,
}

/// A spatiotemporal predictor over grid tensors.
pub trait GridModel: Module {
    /// Predict the next frame `[B, C, H, W]`.
    fn forward(&self, input: &GridInput) -> Var;

    /// The representation this model expects.
    fn representation(&self) -> RepresentationKind;

    /// Model name for reports.
    fn name(&self) -> &'static str;
}

/// A raster image classifier (logits `[B, num_classes]`), optionally
/// fusing handcrafted features `[B, F]`.
pub trait RasterClassifier: Module {
    /// Compute class logits.
    fn forward(&self, images: &Var, features: Option<&Var>) -> Var;

    /// Model name for reports.
    fn name(&self) -> &'static str;
}

/// A raster segmentation model (per-pixel logits `[B, 1, H, W]`).
pub trait Segmenter: Module {
    /// Compute per-pixel logits.
    fn forward(&self, images: &Var) -> Var;

    /// Model name for reports.
    fn name(&self) -> &'static str;
}
