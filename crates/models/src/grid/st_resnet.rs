//! ST-ResNet (Zhang et al., 2017): three residual-CNN branches over
//! closeness, period, and trend features with learned parametric fusion.

use rand::Rng;

use geotorch_nn::layers::Conv2d;
use geotorch_nn::{Layer, Module, Var};

use crate::{GridInput, GridModel, RepresentationKind};

/// One residual unit: `x + conv(relu(conv(relu(x))))`.
pub(crate) struct ResidualUnit {
    conv1: Conv2d,
    conv2: Conv2d,
}

impl ResidualUnit {
    fn new<R: Rng>(channels: usize, rng: &mut R) -> Self {
        ResidualUnit {
            conv1: Conv2d::same(channels, channels, 3, rng),
            conv2: Conv2d::same(channels, channels, 3, rng),
        }
    }

    fn forward(&self, x: &Var) -> Var {
        let inner = self.conv2.forward(&self.conv1.forward(&x.relu()).relu());
        x.add(&inner)
    }

    fn parameters(&self) -> Vec<Var> {
        let mut p = self.conv1.parameters();
        p.extend(self.conv2.parameters());
        p
    }
}

/// One branch: input conv → residual units → output conv to `C` channels.
pub(crate) struct Branch {
    conv_in: Conv2d,
    units: Vec<ResidualUnit>,
    conv_out: Conv2d,
}

impl Branch {
    fn new<R: Rng>(in_channels: usize, hidden: usize, out_channels: usize, depth: usize, rng: &mut R) -> Self {
        Branch {
            conv_in: Conv2d::same(in_channels, hidden, 3, rng),
            units: (0..depth).map(|_| ResidualUnit::new(hidden, rng)).collect(),
            conv_out: Conv2d::same(hidden, out_channels, 3, rng),
        }
    }

    fn forward(&self, x: &Var) -> Var {
        let mut h = self.conv_in.forward(x);
        for unit in &self.units {
            h = unit.forward(&h);
        }
        self.conv_out.forward(&h.relu())
    }

    fn parameters(&self) -> Vec<Var> {
        let mut p = self.conv_in.parameters();
        for u in &self.units {
            p.extend(u.parameters());
        }
        p.extend(self.conv_out.parameters());
        p
    }
}

/// ST-ResNet with parametric elementwise fusion. Constructed for a fixed
/// grid geometry (the fusion weights have shape `[C, H, W]`, as in the
/// original). `external_dim = None` in the paper's Listing 5 corresponds
/// to this implementation, which has no external component.
pub struct StResNet {
    closeness: Branch,
    period: Branch,
    trend: Branch,
    w_closeness: Var,
    w_period: Var,
    w_trend: Var,
    channels: usize,
}

impl StResNet {
    /// `lens = (len_closeness, len_period, len_trend)`; `(h, w)` is the
    /// grid shape; `depth` residual units per branch.
    pub fn new<R: Rng>(
        channels: usize,
        lens: (usize, usize, usize),
        h: usize,
        w: usize,
        hidden: usize,
        depth: usize,
        rng: &mut R,
    ) -> Self {
        let fusion = |rng: &mut R| {
            Var::parameter(geotorch_tensor::Tensor::rand_uniform(
                &[channels, h, w],
                0.5,
                1.0,
                rng,
            ))
        };
        StResNet {
            closeness: Branch::new(channels * lens.0.max(1), hidden, channels, depth, rng),
            period: Branch::new(channels * lens.1.max(1), hidden, channels, depth, rng),
            trend: Branch::new(channels * lens.2.max(1), hidden, channels, depth, rng),
            w_closeness: fusion(rng),
            w_period: fusion(rng),
            w_trend: fusion(rng),
            channels,
        }
    }

    /// Per-frame channel count of the prediction.
    pub fn out_channels(&self) -> usize {
        self.channels
    }
}

impl Module for StResNet {
    fn parameters(&self) -> Vec<Var> {
        let mut p = self.closeness.parameters();
        p.extend(self.period.parameters());
        p.extend(self.trend.parameters());
        p.push(self.w_closeness.clone());
        p.push(self.w_period.clone());
        p.push(self.w_trend.clone());
        p
    }
}

impl GridModel for StResNet {
    fn forward(&self, input: &GridInput) -> Var {
        let GridInput::Periodical {
            closeness,
            period,
            trend,
        } = input
        else {
            panic!("StResNet expects periodical input");
        };
        let c = self.closeness.forward(closeness).mul(&self.w_closeness);
        let p = self.period.forward(period).mul(&self.w_period);
        let t = self.trend.forward(trend).mul(&self.w_trend);
        c.add(&p).add(&t)
    }

    fn representation(&self) -> RepresentationKind {
        RepresentationKind::Periodical
    }

    fn name(&self) -> &'static str {
        "ST-ResNet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotorch_tensor::Tensor;
    use rand::SeedableRng;

    fn input(b: usize, c: usize, lens: (usize, usize, usize), h: usize, w: usize) -> GridInput {
        GridInput::Periodical {
            closeness: Var::constant(Tensor::ones(&[b, lens.0 * c, h, w])),
            period: Var::constant(Tensor::ones(&[b, lens.1 * c, h, w])),
            trend: Var::constant(Tensor::ones(&[b, lens.2 * c, h, w])),
        }
    }

    #[test]
    fn forward_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let m = StResNet::new(2, (3, 2, 1), 8, 6, 8, 2, &mut rng);
        let y = m.forward(&input(2, 2, (3, 2, 1), 8, 6));
        assert_eq!(y.shape(), vec![2, 2, 8, 6]);
    }

    #[test]
    fn fusion_weights_are_trainable() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let m = StResNet::new(1, (1, 1, 1), 4, 4, 4, 1, &mut rng);
        let y = m.forward(&input(1, 1, (1, 1, 1), 4, 4));
        y.square().mean_all().backward();
        for p in m.parameters() {
            assert!(p.grad().is_some(), "parameter missing gradient");
        }
        // Fusion weights included: 3 branch params + 3 weights counted.
        assert!(m.parameters().len() >= 3);
    }

    #[test]
    fn residual_units_propagate_identity_at_zero_weights() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let unit = ResidualUnit::new(2, &mut rng);
        // Zero the convolution weights: output must equal input.
        for p in unit.parameters() {
            p.assign(geotorch_tensor::Tensor::zeros(&p.shape()));
        }
        let x = Var::constant(Tensor::rand_uniform(&[1, 2, 4, 4], -1.0, 1.0, &mut rng));
        let y = unit.forward(&x);
        assert!(y.value().allclose(&x.value(), 1e-6));
    }
}
