//! ConvLSTM (Shi et al., 2015): a convolutional-recurrent encoder over a
//! frame sequence with a convolutional prediction head.

use rand::Rng;

use geotorch_nn::layers::{Conv2d, ConvLstmCell};
use geotorch_nn::{Layer, Module, Var};

use crate::{GridInput, GridModel, RepresentationKind};

/// Stacked ConvLSTM encoder + 1×1 conv head. Consumes the sequential
/// representation `[B, T, C, H, W]` and predicts the next frame.
pub struct ConvLstm {
    cells: Vec<ConvLstmCell>,
    head: Conv2d,
    channels: usize,
}

impl ConvLstm {
    /// `layers` stacked cells with `hidden` feature maps each.
    pub fn new<R: Rng>(
        channels: usize,
        hidden: usize,
        kernel: usize,
        layers: usize,
        rng: &mut R,
    ) -> Self {
        assert!(layers > 0, "ConvLstm needs at least one layer");
        let mut cells = Vec::with_capacity(layers);
        for l in 0..layers {
            let in_c = if l == 0 { channels } else { hidden };
            cells.push(ConvLstmCell::new(in_c, hidden, kernel, rng));
        }
        ConvLstm {
            cells,
            head: Conv2d::new(hidden, channels, 1, 1, 0, rng),
            channels,
        }
    }

    /// Per-frame channel count of the prediction.
    pub fn out_channels(&self) -> usize {
        self.channels
    }
}

impl Module for ConvLstm {
    fn parameters(&self) -> Vec<Var> {
        let mut params: Vec<Var> = self.cells.iter().flat_map(|c| c.parameters()).collect();
        params.extend(self.head.parameters());
        params
    }
}

impl GridModel for ConvLstm {
    fn forward(&self, input: &GridInput) -> Var {
        let GridInput::Sequence(x) = input else {
            panic!("ConvLstm expects sequential input");
        };
        let shape = x.shape();
        assert_eq!(shape.len(), 5, "ConvLstm input must be [B,T,C,H,W]");
        let (b, t, c, h, w) = (shape[0], shape[1], shape[2], shape[3], shape[4]);
        assert!(t > 0, "empty sequence");

        let mut states: Vec<(Var, Var)> = self
            .cells
            .iter()
            .map(|cell| cell.zero_state(b, h, w))
            .collect();
        for step in 0..t {
            let mut layer_in = x.narrow(1, step, step + 1).reshape(&[b, c, h, w]);
            for (cell, state) in self.cells.iter().zip(&mut states) {
                let (h_new, c_new) = cell.step(&layer_in, (&state.0, &state.1));
                layer_in = h_new.clone();
                *state = (h_new, c_new);
            }
        }
        let final_h = &states.last().expect("at least one layer").0;
        self.head.forward(final_h)
    }

    fn representation(&self) -> RepresentationKind {
        RepresentationKind::Sequential
    }

    fn name(&self) -> &'static str {
        "ConvLSTM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotorch_tensor::Tensor;
    use rand::SeedableRng;

    #[test]
    fn forward_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let m = ConvLstm::new(2, 4, 3, 2, &mut rng);
        let x = GridInput::Sequence(Var::constant(Tensor::ones(&[3, 5, 2, 8, 6])));
        let y = m.forward(&x);
        assert_eq!(y.shape(), vec![3, 2, 8, 6]);
    }

    #[test]
    fn sequence_order_matters() {
        // Reversing the sequence should change the prediction — the model
        // is genuinely recurrent, not a frame average.
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let m = ConvLstm::new(1, 3, 3, 1, &mut rng);
        let frames: Vec<Tensor> = (0..4)
            .map(|i| Tensor::full(&[1, 1, 1, 4, 4], i as f32 / 4.0))
            .collect();
        let refs: Vec<&Tensor> = frames.iter().collect();
        let forward_seq = Tensor::concat(&refs, 1);
        let rev_refs: Vec<&Tensor> = frames.iter().rev().collect();
        let reversed_seq = Tensor::concat(&rev_refs, 1);
        let a = m.forward(&GridInput::Sequence(Var::constant(forward_seq)));
        let b = m.forward(&GridInput::Sequence(Var::constant(reversed_seq)));
        assert!(!a.value().allclose(&b.value(), 1e-6));
    }

    #[test]
    fn gradients_flow_through_time_and_layers() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let m = ConvLstm::new(1, 2, 3, 2, &mut rng);
        let x = GridInput::Sequence(Var::constant(Tensor::rand_uniform(
            &[1, 3, 1, 4, 4],
            0.0,
            1.0,
            &mut rng,
        )));
        m.forward(&x).square().mean_all().backward();
        for p in m.parameters() {
            assert!(p.grad().is_some(), "parameter missing gradient");
        }
    }

    #[test]
    #[should_panic(expected = "expects sequential input")]
    fn rejects_wrong_representation() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let m = ConvLstm::new(1, 2, 3, 1, &mut rng);
        m.forward(&GridInput::Basic(Var::constant(Tensor::zeros(&[1, 1, 4, 4]))));
    }
}
