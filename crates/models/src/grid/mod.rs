//! Grid-based spatiotemporal models.

mod conv_lstm;
mod deepstn;
mod periodical_cnn;
mod st_resnet;

pub use conv_lstm::ConvLstm;
pub use deepstn::DeepStnPlus;
pub use periodical_cnn::PeriodicalCnn;
pub use st_resnet::StResNet;
