//! DeepSTN+ (Lin et al., 2019): the ST-ResNet lineage extended with
//! ConvPlus blocks whose global (fully connected) pathway captures
//! long-range spatial dependence beyond a CNN's receptive field.
//!
//! This implementation keeps the lineage explicit: an ST-ResNet core
//! (three residual branches with parametric fusion) produces the base
//! prediction, and a ConvPlus correction stage over the early-fused lag
//! stack adds the globally-informed adjustment. The correction is
//! initialised near zero, so optimisation starts from the well-behaved
//! ST-ResNet regime and the Plus pathway learns the residual — mirroring
//! how the original paper grafts ResPlus units onto the residual design.

use rand::Rng;

use geotorch_nn::layers::{Conv2d, Linear};
use geotorch_nn::{Layer, Module, Var};

use super::st_resnet::StResNet;
use crate::{GridInput, GridModel, RepresentationKind};

/// ConvPlus block: a local 3×3 convolution plus a global pathway that
/// flattens the map through a low-rank bottleneck (`in·H·W → r → out·H·W`)
/// and redistributes it spatially. The bottleneck keeps the global
/// pathway's parameter count proportional to `H·W`, as the original
/// DeepSTN+ does by pooling before its fully connected stage.
struct ConvPlus {
    conv: Conv2d,
    squeeze: Linear,
    expand: Linear,
    out_channels: usize,
    h: usize,
    w: usize,
}

impl ConvPlus {
    const BOTTLENECK: usize = 16;

    fn new<R: Rng>(in_c: usize, out_c: usize, h: usize, w: usize, rng: &mut R) -> Self {
        let expand = Linear::new(Self::BOTTLENECK, out_c * h * w, rng);
        // Fan-in init of the expand layer (fan_in = 16) produces global
        // activations an order of magnitude above the local conv output,
        // which drowns the local pathway early in training. Rescale so
        // both pathways start balanced.
        for p in expand.parameters() {
            p.assign(p.value().mul_scalar(0.1));
        }
        ConvPlus {
            conv: Conv2d::same(in_c, out_c, 3, rng),
            squeeze: Linear::new(in_c * h * w, Self::BOTTLENECK, rng),
            expand,
            out_channels: out_c,
            h,
            w,
        }
    }

    fn forward(&self, x: &Var) -> Var {
        let b = x.shape()[0];
        let local = self.conv.forward(x);
        let latent = self.squeeze.forward(&x.flatten_batch()).leaky_relu(0.1);
        let global = self
            .expand
            .forward(&latent)
            .reshape(&[b, self.out_channels, self.h, self.w]);
        local.add(&global).leaky_relu(0.1)
    }

    fn parameters(&self) -> Vec<Var> {
        let mut p = self.conv.parameters();
        p.extend(self.squeeze.parameters());
        p.extend(self.expand.parameters());
        p
    }
}

/// DeepSTN+ for a fixed grid geometry: an ST-ResNet core plus a ConvPlus
/// global-correction stage over the early-fused lag stack.
pub struct DeepStnPlus {
    core: StResNet,
    plus: ConvPlus,
    correction: Conv2d,
    channels: usize,
}

impl DeepStnPlus {
    /// `lens = (len_closeness, len_period, len_trend)`; `(h, w)` grid
    /// shape; `hidden` ConvPlus / core width.
    pub fn new<R: Rng>(
        channels: usize,
        lens: (usize, usize, usize),
        h: usize,
        w: usize,
        hidden: usize,
        rng: &mut R,
    ) -> Self {
        let in_channels = channels * (lens.0 + lens.1 + lens.2);
        assert!(in_channels > 0, "DeepStnPlus needs at least one lag frame");
        let correction = Conv2d::same(hidden, channels, 3, rng);
        // Start the correction near zero: the model begins as ST-ResNet
        // and learns the globally-informed residual on top.
        for p in correction.parameters() {
            p.assign(p.value().mul_scalar(0.1));
        }
        DeepStnPlus {
            core: StResNet::new(channels, lens, h, w, hidden, 2, rng),
            plus: ConvPlus::new(in_channels, hidden, h, w, rng),
            correction,
            channels,
        }
    }

    /// Per-frame channel count of the prediction.
    pub fn out_channels(&self) -> usize {
        self.channels
    }
}

impl Module for DeepStnPlus {
    fn parameters(&self) -> Vec<Var> {
        let mut p = self.core.parameters();
        p.extend(self.plus.parameters());
        p.extend(self.correction.parameters());
        p
    }
}

impl GridModel for DeepStnPlus {
    fn forward(&self, input: &GridInput) -> Var {
        let GridInput::Periodical {
            closeness,
            period,
            trend,
        } = input
        else {
            panic!("DeepStnPlus expects periodical input");
        };
        let base = self.core.forward(input);
        let fused = Var::concat(&[closeness, period, trend], 1);
        let corr = self.correction.forward(&self.plus.forward(&fused));
        base.add(&corr)
    }

    fn representation(&self) -> RepresentationKind {
        RepresentationKind::Periodical
    }

    fn name(&self) -> &'static str {
        "DeepSTN+"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotorch_tensor::Tensor;
    use rand::SeedableRng;

    fn input(b: usize, c: usize, lens: (usize, usize, usize), h: usize, w: usize) -> GridInput {
        GridInput::Periodical {
            closeness: Var::constant(Tensor::rand_uniform(
                &[b, lens.0 * c, h, w],
                0.0,
                1.0,
                &mut rand::rngs::StdRng::seed_from_u64(5),
            )),
            period: Var::constant(Tensor::ones(&[b, lens.1 * c, h, w])),
            trend: Var::constant(Tensor::ones(&[b, lens.2 * c, h, w])),
        }
    }

    #[test]
    fn forward_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let m = DeepStnPlus::new(2, (3, 2, 1), 6, 8, 8, &mut rng);
        let y = m.forward(&input(2, 2, (3, 2, 1), 6, 8));
        assert_eq!(y.shape(), vec![2, 2, 6, 8]);
        assert_eq!(m.out_channels(), 2);
    }

    #[test]
    fn strictly_extends_st_resnet_capacity() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let dsp = DeepStnPlus::new(2, (3, 2, 1), 6, 8, 8, &mut rng);
        let core = StResNet::new(2, (3, 2, 1), 6, 8, 8, 2, &mut rng);
        assert!(dsp.num_parameters() > core.num_parameters());
    }

    #[test]
    fn global_pathway_gives_full_receptive_field() {
        // Perturbing a far-away input pixel must change the output at a
        // fixed pixel in one forward pass — impossible for the local conv
        // stack alone on a large grid, possible through ConvPlus.
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let m = DeepStnPlus::new(1, (1, 1, 1), 24, 24, 4, &mut rng);
        let zeros = Tensor::zeros(&[1, 1, 24, 24]);
        let base = Tensor::zeros(&[1, 1, 24, 24]);
        let mut perturbed = base.clone();
        perturbed.set(&[0, 0, 23, 23], 1.0);
        let out = |x: Tensor| {
            m.forward(&GridInput::Periodical {
                closeness: Var::constant(x),
                period: Var::constant(zeros.clone()),
                trend: Var::constant(zeros.clone()),
            })
            .value()
        };
        let a = out(base);
        let b = out(perturbed);
        let delta = (a.at(&[0, 0, 0, 0]) - b.at(&[0, 0, 0, 0])).abs();
        assert!(delta > 0.0, "corner perturbation must reach the opposite corner");
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let m = DeepStnPlus::new(1, (2, 1, 1), 4, 4, 4, &mut rng);
        m.forward(&input(2, 1, (2, 1, 1), 4, 4))
            .square()
            .mean_all()
            .backward();
        let missing = m.parameters().iter().filter(|p| p.grad().is_none()).count();
        assert_eq!(missing, 0, "every DeepSTN+ parameter must receive a gradient");
    }
}
