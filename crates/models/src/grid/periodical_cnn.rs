//! Periodical CNN: the paper's baseline grid model — a plain CNN over the
//! channel-stacked closeness/period/trend features.

use rand::Rng;

use geotorch_nn::layers::{Conv2d, Relu, Sequential};
use geotorch_nn::{Layer, Module, Var};

use crate::{GridInput, GridModel, RepresentationKind};

/// A convolutional stack over concatenated periodical features, with no
/// residual learning or per-branch modelling — the weakest of the four
/// grid models in the paper's Tables IV and V.
pub struct PeriodicalCnn {
    net: Sequential,
    out_channels: usize,
}

impl PeriodicalCnn {
    /// `lens = (len_closeness, len_period, len_trend)`, `channels` is the
    /// per-frame channel count `C`; predicts `[B, C, H, W]`.
    pub fn new<R: Rng>(
        channels: usize,
        lens: (usize, usize, usize),
        hidden: usize,
        rng: &mut R,
    ) -> Self {
        let in_channels = channels * (lens.0 + lens.1 + lens.2);
        assert!(in_channels > 0, "PeriodicalCnn needs at least one lag frame");
        // A deliberately *basic* network — the paper's weakest baseline:
        // two plain convolutions, no residual learning, no fusion.
        let net = Sequential::new()
            .add(Conv2d::same(in_channels, hidden, 3, rng))
            .add(Relu)
            .add(Conv2d::same(hidden, channels, 3, rng));
        PeriodicalCnn {
            net,
            out_channels: channels,
        }
    }

    /// Per-frame channel count of the prediction.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }
}

impl Module for PeriodicalCnn {
    fn parameters(&self) -> Vec<Var> {
        self.net.parameters()
    }

    fn set_training(&self, training: bool) {
        self.net.set_training(training);
    }
}

impl GridModel for PeriodicalCnn {
    fn forward(&self, input: &GridInput) -> Var {
        let GridInput::Periodical {
            closeness,
            period,
            trend,
        } = input
        else {
            panic!("PeriodicalCnn expects periodical input");
        };
        let stacked = Var::concat(&[closeness, period, trend], 1);
        self.net.forward(&stacked)
    }

    fn representation(&self) -> RepresentationKind {
        RepresentationKind::Periodical
    }

    fn name(&self) -> &'static str {
        "PeriodicalCNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotorch_tensor::Tensor;
    use rand::SeedableRng;

    fn input(b: usize, c: usize, lens: (usize, usize, usize), h: usize, w: usize) -> GridInput {
        GridInput::Periodical {
            closeness: Var::constant(Tensor::ones(&[b, lens.0 * c, h, w])),
            period: Var::constant(Tensor::ones(&[b, lens.1 * c, h, w])),
            trend: Var::constant(Tensor::ones(&[b, lens.2 * c, h, w])),
        }
    }

    #[test]
    fn forward_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let m = PeriodicalCnn::new(2, (3, 2, 1), 8, &mut rng);
        let y = m.forward(&input(4, 2, (3, 2, 1), 10, 12));
        assert_eq!(y.shape(), vec![4, 2, 10, 12]);
        assert_eq!(m.out_channels(), 2);
        assert!(m.num_parameters() > 0);
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let m = PeriodicalCnn::new(1, (2, 1, 1), 4, &mut rng);
        let y = m.forward(&input(1, 1, (2, 1, 1), 6, 6));
        y.square().mean_all().backward();
        for p in m.parameters() {
            assert!(p.grad().is_some(), "parameter missing gradient");
        }
    }

    #[test]
    #[should_panic(expected = "expects periodical input")]
    fn rejects_wrong_representation() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let m = PeriodicalCnn::new(1, (1, 1, 1), 4, &mut rng);
        m.forward(&GridInput::Basic(Var::constant(Tensor::zeros(&[1, 1, 4, 4]))));
    }
}
