//! Deterministic fault injection for chaos tests.
//!
//! Production code marks interesting failure sites with
//! [`fault_point!`](crate::fault_point):
//!
//! ```ignore
//! if let Err(msg) = geotorch_telemetry::fault_point!("serve.batcher.forward") {
//!     return Err(ServeError::Internal(msg));
//! }
//! ```
//!
//! With no plan installed (the production default) a fault point is a
//! single relaxed atomic load — no lock, no allocation, no clock read —
//! so the sites can stay in release builds permanently. A test installs
//! a [`FaultPlan`] describing *which* points fail, *when* (always, on
//! the n-th hit, or with a seeded pseudo-random probability), and *how*
//! ([`FaultAction`]: panic, injected error, or delay). Probability
//! triggers are a pure function of `(seed, point, hit index)`, so the
//! same seed reproduces the same injected failure sequence run after
//! run; the sequence actually injected is recorded and returned by
//! [`injection_log`]/[`clear`] so tests can assert that determinism.
//!
//! The registry is process-global (like the rest of this crate); tests
//! that install plans must serialise themselves around
//! [`install`]/[`clear`] pairs.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

static ARMED: AtomicBool = AtomicBool::new(false);

/// Whether any fault plan is installed. A relaxed load — this is the
/// entire cost of a fault point in production.
#[inline(always)]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// What an armed fault point does when its trigger fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with this message (simulates a crash at the site).
    Panic(String),
    /// Make the fault point return `Err` with this message.
    Error(String),
    /// Sleep this many milliseconds, then continue normally (simulates
    /// a stall: slow disk, GC pause, cold cache).
    DelayMs(u64),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Trigger {
    Always,
    /// Fire on exactly the n-th hit of the point (1-based).
    Nth(u64),
    /// Fire with this probability, derived deterministically from the
    /// plan seed, the point name, and the hit index.
    Probability(f64),
}

#[derive(Debug, Clone)]
struct Rule {
    point: String,
    trigger: Trigger,
    action: FaultAction,
}

/// A programmed failure schedule. Build one with the chainable
/// constructors, then [`install`] it.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<Rule>,
}

impl FaultPlan {
    /// An empty plan. The seed only matters for
    /// [`with_probability`](FaultPlan::with_probability) rules.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Fire `action` on every hit of `point`.
    pub fn always(mut self, point: &str, action: FaultAction) -> FaultPlan {
        self.rules.push(Rule {
            point: point.to_string(),
            trigger: Trigger::Always,
            action,
        });
        self
    }

    /// Fire `action` on exactly the `nth` hit of `point` (1-based).
    pub fn on_nth(mut self, point: &str, nth: u64, action: FaultAction) -> FaultPlan {
        self.rules.push(Rule {
            point: point.to_string(),
            trigger: Trigger::Nth(nth),
            action,
        });
        self
    }

    /// Fire `action` on each hit of `point` with probability
    /// `probability` (clamped to `[0, 1]`), decided by a pure function
    /// of the plan seed, the point name, and the hit index — the same
    /// seed always injects the same sequence.
    pub fn with_probability(
        mut self,
        point: &str,
        probability: f64,
        action: FaultAction,
    ) -> FaultPlan {
        self.rules.push(Rule {
            point: point.to_string(),
            trigger: Trigger::Probability(probability.clamp(0.0, 1.0)),
            action,
        });
        self
    }
}

/// One injected fault, as recorded in the injection log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// The fault point that fired.
    pub point: String,
    /// Which hit of the point fired (1-based).
    pub hit: u64,
    /// The action that was applied.
    pub action: FaultAction,
}

struct State {
    plan: FaultPlan,
    counts: BTreeMap<String, u64>,
    log: Vec<FaultRecord>,
}

fn state() -> &'static Mutex<Option<State>> {
    static STATE: OnceLock<Mutex<Option<State>>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(None))
}

/// Install `plan`, arming every fault point in the process. Replaces any
/// previously installed plan (and discards its log and hit counts).
pub fn install(plan: FaultPlan) {
    let mut guard = state().lock().unwrap_or_else(|e| e.into_inner());
    *guard = Some(State {
        plan,
        counts: BTreeMap::new(),
        log: Vec::new(),
    });
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarm every fault point and return the log of faults the removed
/// plan injected (empty if no plan was installed).
pub fn clear() -> Vec<FaultRecord> {
    let mut guard = state().lock().unwrap_or_else(|e| e.into_inner());
    ARMED.store(false, Ordering::Relaxed);
    guard.take().map(|s| s.log).unwrap_or_default()
}

/// The faults injected so far by the currently installed plan.
pub fn injection_log() -> Vec<FaultRecord> {
    let guard = state().lock().unwrap_or_else(|e| e.into_inner());
    guard.as_ref().map(|s| s.log.clone()).unwrap_or_default()
}

/// How many times `point` has been hit under the current plan.
pub fn hits(point: &str) -> u64 {
    let guard = state().lock().unwrap_or_else(|e| e.into_inner());
    guard
        .as_ref()
        .and_then(|s| s.counts.get(point).copied())
        .unwrap_or(0)
}

/// Evaluate an armed fault point. Called by [`fault_point!`] only when
/// [`armed`] is true; panics or sleeps according to the matched rule,
/// and returns `Err` for [`FaultAction::Error`] rules.
///
/// # Panics
/// When the matched rule is [`FaultAction::Panic`] — that is the point.
pub fn hit(point: &str) -> Result<(), String> {
    let action = {
        let mut guard = state().lock().unwrap_or_else(|e| e.into_inner());
        let Some(st) = guard.as_mut() else {
            return Ok(());
        };
        let count = st.counts.entry(point.to_string()).or_insert(0);
        *count += 1;
        let count = *count;
        let seed = st.plan.seed;
        let matched = st.plan.rules.iter().find(|r| {
            r.point == point
                && match r.trigger {
                    Trigger::Always => true,
                    Trigger::Nth(n) => n == count,
                    Trigger::Probability(p) => unit_interval(seed, point, count) < p,
                }
        });
        match matched {
            None => None,
            Some(rule) => {
                let action = rule.action.clone();
                st.log.push(FaultRecord {
                    point: point.to_string(),
                    hit: count,
                    action: action.clone(),
                });
                Some(action)
            }
        }
    };
    // The lock is released before the action runs: a delay must not
    // serialise unrelated fault points, and a panic must not poison the
    // registry for the rest of the test.
    match action {
        None => Ok(()),
        Some(FaultAction::DelayMs(ms)) => {
            std::thread::sleep(Duration::from_millis(ms));
            Ok(())
        }
        Some(FaultAction::Error(msg)) => Err(msg),
        Some(FaultAction::Panic(msg)) => panic!("injected fault at `{point}`: {msg}"),
    }
}

/// Deterministic value in `[0, 1)` from `(seed, point, hit index)` —
/// FNV-1a over the point name mixed through a splitmix64 finaliser.
fn unit_interval(seed: u64, point: &str, count: u64) -> f64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in point.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    let mut z = seed
        .wrapping_add(h)
        .wrapping_add(count.wrapping_mul(0x9e3779b97f4a7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// A named failure site. Expands to a `Result<(), String>`: `Ok(())` on
/// the (default, disarmed) fast path, or whatever the installed
/// [`FaultPlan`] dictates — `Err` for injected errors, a panic or an
/// inline sleep for the other actions.
#[macro_export]
macro_rules! fault_point {
    ($name:literal) => {
        if $crate::fault::armed() {
            $crate::fault::hit($name)
        } else {
            ::core::result::Result::<(), ::std::string::String>::Ok(())
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The fault registry is process-global; serialise the tests that
    /// install plans.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disarmed_points_are_ok_and_unlogged() {
        let _g = serial();
        clear();
        assert!(!armed());
        for _ in 0..1000 {
            assert_eq!(crate::fault_point!("test.fault.noop"), Ok(()));
        }
        assert!(injection_log().is_empty());
        assert_eq!(hits("test.fault.noop"), 0, "disarmed hits are not counted");
    }

    #[test]
    fn nth_rule_fires_exactly_once() {
        let _g = serial();
        install(FaultPlan::new(0).on_nth("test.fault.nth", 3, FaultAction::Error("boom".into())));
        let results: Vec<_> = (0..5).map(|_| crate::fault_point!("test.fault.nth")).collect();
        assert_eq!(results[0], Ok(()));
        assert_eq!(results[1], Ok(()));
        assert_eq!(results[2], Err("boom".to_string()));
        assert_eq!(results[3], Ok(()));
        assert_eq!(hits("test.fault.nth"), 5);
        let log = clear();
        assert_eq!(
            log,
            vec![FaultRecord {
                point: "test.fault.nth".into(),
                hit: 3,
                action: FaultAction::Error("boom".into()),
            }]
        );
    }

    #[test]
    fn always_rule_targets_only_its_point() {
        let _g = serial();
        install(FaultPlan::new(0).always("test.fault.here", FaultAction::Error("x".into())));
        assert!(crate::fault_point!("test.fault.here").is_err());
        assert!(crate::fault_point!("test.fault.elsewhere").is_ok());
        clear();
    }

    #[test]
    fn panic_action_panics_with_point_name() {
        let _g = serial();
        install(FaultPlan::new(0).always("test.fault.panic", FaultAction::Panic("kaboom".into())));
        let caught = std::panic::catch_unwind(|| {
            let _ = crate::fault_point!("test.fault.panic");
        });
        let msg = *caught
            .expect_err("panic action must panic")
            .downcast::<String>()
            .expect("panic payload is a formatted string");
        assert!(msg.contains("test.fault.panic") && msg.contains("kaboom"), "{msg}");
        clear();
    }

    #[test]
    fn delay_action_sleeps() {
        let _g = serial();
        install(FaultPlan::new(0).always("test.fault.delay", FaultAction::DelayMs(30)));
        let start = std::time::Instant::now();
        assert!(crate::fault_point!("test.fault.delay").is_ok());
        assert!(start.elapsed() >= Duration::from_millis(25));
        clear();
    }

    #[test]
    fn probability_rules_are_deterministic_per_seed() {
        let _g = serial();
        let run = |seed: u64| -> Vec<FaultRecord> {
            install(FaultPlan::new(seed).with_probability(
                "test.fault.prob",
                0.3,
                FaultAction::Error("p".into()),
            ));
            for _ in 0..200 {
                let _ = crate::fault_point!("test.fault.prob");
            }
            clear()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed must inject the same sequence");
        assert!(
            !a.is_empty() && a.len() < 200,
            "p=0.3 over 200 hits should fire sometimes, not always: fired {}",
            a.len()
        );
        let c = run(8);
        assert_ne!(a, c, "a different seed should produce a different sequence");
    }

    #[test]
    fn disarmed_points_are_fast() {
        let _g = serial();
        clear();
        let start = std::time::Instant::now();
        for _ in 0..1_000_000 {
            let _ = crate::fault_point!("test.fault.speed");
        }
        let elapsed = start.elapsed();
        // One relaxed load per hit: even a slow CI box does 1M in well
        // under this bound; a registry lookup or allocation would not.
        assert!(
            elapsed < Duration::from_millis(500),
            "1M disarmed fault points took {elapsed:?}"
        );
    }
}
