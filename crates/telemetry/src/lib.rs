//! # geotorch-telemetry
//!
//! A lightweight, always-compiled observability layer for the GeoTorch-RS
//! hot paths: a process-wide registry of atomic counters and scoped timers
//! that every crate in the workspace can write into.
//!
//! The paper's evaluation (§V, Figs. 8–9) is entirely about *measured*
//! behaviour — epoch time, throughput, kernel scaling — so the library
//! needs a way to see where time goes without perturbing what it measures.
//! The design rules:
//!
//! * **Disabled is free.** Recording is gated on a single relaxed atomic
//!   load ([`enabled`]). When telemetry is off (the default), a [`scope!`]
//!   or [`count!`] site costs one predictable branch — no clock read, no
//!   registry lookup, no allocation.
//! * **Enabled is cheap.** Each call site caches its registry entry in a
//!   `static OnceLock`, so steady-state recording is two `Instant` reads
//!   and a handful of relaxed atomic adds. Stats are `&'static` and
//!   lock-free to update from any thread, including pool workers.
//! * **Self-time, not double counting.** Timers nest (e.g. `conv2d` calls
//!   `matmul` internally). Each thread tracks child time so a stat records
//!   both *total* (inclusive) and *self* (exclusive) nanoseconds; summing
//!   `self_ns` over all stats on one thread never counts a nanosecond
//!   twice, which is what makes the `repro --profile` coverage numbers
//!   meaningful.
//!
//! ```
//! geotorch_telemetry::set_enabled(true);
//! {
//!     let _t = geotorch_telemetry::scope!("example.outer");
//!     geotorch_telemetry::count!("example.items", 3);
//! }
//! let snap = geotorch_telemetry::snapshot();
//! assert!(snap.iter().any(|s| s.name == "example.outer" && s.calls == 1));
//! geotorch_telemetry::set_enabled(false);
//! geotorch_telemetry::reset();
//! ```

#![warn(missing_docs)]

pub mod fault;

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether telemetry recording is on. A relaxed load — cheap enough to
/// guard every kernel entry.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on or off globally. Already-open scopes still record on
/// drop; stats keep their values until [`reset`].
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// One named metric: a call/event counter plus inclusive and exclusive
/// timing accumulators. All fields are updated with relaxed atomics; a
/// stat is either used as a timer (via [`Scope`]), a counter (via
/// [`Stat::add`]), or both.
pub struct Stat {
    name: &'static str,
    calls: AtomicU64,
    total_ns: AtomicU64,
    self_ns: AtomicU64,
    count: AtomicU64,
}

impl Stat {
    fn new(name: &'static str) -> Stat {
        Stat {
            name,
            calls: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            self_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// The registry key.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `n` to the event counter (used by [`count!`]).
    #[inline]
    pub fn add(&self, n: u64) {
        self.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Record an externally measured duration (both inclusive and
    /// exclusive). Used where a [`Scope`] guard cannot live, e.g. pool
    /// workers timing a job slot.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.self_ns.fetch_add(ns, Ordering::Relaxed);
    }

    fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.self_ns.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }
}

fn registry() -> &'static Mutex<Vec<&'static Stat>> {
    static REGISTRY: OnceLock<Mutex<Vec<&'static Stat>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn register(name: &'static str) -> &'static Stat {
    let stat: &'static Stat = Box::leak(Box::new(Stat::new(name)));
    registry()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(stat);
    stat
}

/// Resolve a call site's cached stat, registering it on first use. The
/// `slot` must be a `static` local to the call site (the [`scope!`] and
/// [`count!`] macros arrange this).
#[inline]
pub fn stat(slot: &'static OnceLock<&'static Stat>, name: &'static str) -> &'static Stat {
    slot.get_or_init(|| register(name))
}

/// Register a dynamically named stat (leaks the name; intended for small
/// bounded families like per-worker busy timers).
pub fn register_dynamic(name: String) -> &'static Stat {
    register(Box::leak(name.into_boxed_str()))
}

/// A gauge provider: polled at snapshot time.
type GaugeFn = Box<dyn Fn() -> u64 + Send + Sync>;

fn gauges() -> &'static Mutex<Vec<(&'static str, GaugeFn)>> {
    static GAUGES: OnceLock<Mutex<Vec<(&'static str, GaugeFn)>>> = OnceLock::new();
    GAUGES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Register a *gauge*: a named value polled at snapshot time instead of
/// accumulated through [`count!`]. Gauges let subsystems with their own
/// always-on counters (e.g. the tensor buffer pool) surface state in
/// every snapshot — including serve's `/metrics` and `repro --profile`
/// — without double bookkeeping. The value lands in the snapshot's
/// `count` field with zero `calls`/timing.
///
/// Gauges are owned by their provider: [`reset`] does not touch them
/// (diff two snapshots to measure an interval). Re-registering a name
/// replaces the previous provider.
pub fn register_gauge(name: &'static str, read: fn() -> u64) {
    register_gauge_with(name, Box::new(read));
}

/// [`register_gauge`] for dynamically named gauges with capturing
/// providers (leaks the name; intended for small bounded families like
/// per-replica queue depths — `serve.replica_depth.<model>.<i>`).
/// Re-registering a name replaces the previous provider, so a subsystem
/// that restarts (e.g. a fresh server in tests) reports its live state
/// rather than a stale closure's.
pub fn register_gauge_dynamic<F>(name: String, read: F)
where
    F: Fn() -> u64 + Send + Sync + 'static,
{
    register_gauge_with(Box::leak(name.into_boxed_str()), Box::new(read));
}

fn register_gauge_with(name: &'static str, read: GaugeFn) {
    let mut gauges = gauges().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(slot) = gauges.iter_mut().find(|(n, _)| *n == name) {
        slot.1 = read;
    } else {
        gauges.push((name, read));
    }
}

thread_local! {
    /// Nanoseconds spent in already-closed child scopes of the innermost
    /// open scope on this thread. Lets a parent subtract child time and
    /// record exclusive self-time.
    static CHILD_NS: Cell<u64> = const { Cell::new(0) };
}

/// RAII timer for a [`Stat`]. Construct via [`scope!`]; when telemetry is
/// disabled this is an inert unit-sized guard.
pub struct Scope {
    active: Option<(&'static Stat, Instant, u64)>,
}

impl Scope {
    /// Open a scope on `slot`/`name` if telemetry is enabled.
    #[inline]
    pub fn enter(slot: &'static OnceLock<&'static Stat>, name: &'static str) -> Scope {
        if !enabled() {
            return Scope { active: None };
        }
        let stat = crate::stat(slot, name);
        let saved_child = CHILD_NS.with(|c| c.replace(0));
        Scope {
            active: Some((stat, Instant::now(), saved_child)),
        }
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        if let Some((stat, start, saved_child)) = self.active.take() {
            let elapsed = start.elapsed().as_nanos() as u64;
            let child = CHILD_NS.with(|c| c.get());
            stat.calls.fetch_add(1, Ordering::Relaxed);
            stat.total_ns.fetch_add(elapsed, Ordering::Relaxed);
            stat.self_ns
                .fetch_add(elapsed.saturating_sub(child), Ordering::Relaxed);
            // This whole scope is child time from the parent's viewpoint.
            CHILD_NS.with(|c| c.set(saved_child + elapsed));
        }
    }
}

/// Time the enclosing block under `name`. Expands to an RAII guard; bind
/// it (`let _t = scope!(...)`) so it lives to the end of the block.
#[macro_export]
macro_rules! scope {
    ($name:literal) => {{
        static __GEOTORCH_STAT: ::std::sync::OnceLock<&'static $crate::Stat> =
            ::std::sync::OnceLock::new();
        $crate::Scope::enter(&__GEOTORCH_STAT, $name)
    }};
}

/// Add `n` events to the counter `name` (no-op while disabled).
#[macro_export]
macro_rules! count {
    ($name:literal, $n:expr) => {{
        if $crate::enabled() {
            static __GEOTORCH_STAT: ::std::sync::OnceLock<&'static $crate::Stat> =
                ::std::sync::OnceLock::new();
            $crate::stat(&__GEOTORCH_STAT, $name).add($n as u64);
        }
    }};
}

/// Point-in-time copy of one stat, aggregated by name across call sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatSnapshot {
    /// Registry key, e.g. `tensor.matmul`.
    pub name: String,
    /// Times a scope closed (or `record_ns` was called) under this name.
    pub calls: u64,
    /// Inclusive wall nanoseconds (children counted).
    pub total_ns: u64,
    /// Exclusive wall nanoseconds (children subtracted, per thread).
    pub self_ns: u64,
    /// Event counter value ([`count!`] / [`Stat::add`]).
    pub count: u64,
}

impl StatSnapshot {
    /// Inclusive seconds.
    pub fn total_seconds(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }

    /// Exclusive seconds.
    pub fn self_seconds(&self) -> f64 {
        self.self_ns as f64 / 1e9
    }
}

/// Snapshot every registered stat, merged by name, sorted by descending
/// self-time then name. Stats that never recorded anything are skipped;
/// gauges ([`register_gauge`]) are always reported, even at zero, so
/// their presence in `/metrics` does not depend on traffic.
pub fn snapshot() -> Vec<StatSnapshot> {
    let mut merged: std::collections::BTreeMap<&'static str, StatSnapshot> =
        std::collections::BTreeMap::new();
    for stat in registry().lock().unwrap_or_else(|e| e.into_inner()).iter() {
        let entry = merged.entry(stat.name).or_insert_with(|| StatSnapshot {
            name: stat.name.to_string(),
            calls: 0,
            total_ns: 0,
            self_ns: 0,
            count: 0,
        });
        entry.calls += stat.calls.load(Ordering::Relaxed);
        entry.total_ns += stat.total_ns.load(Ordering::Relaxed);
        entry.self_ns += stat.self_ns.load(Ordering::Relaxed);
        entry.count += stat.count.load(Ordering::Relaxed);
    }
    let mut out: Vec<StatSnapshot> = merged
        .into_values()
        .filter(|s| s.calls > 0 || s.count > 0)
        .collect();
    for (name, read) in gauges().lock().unwrap_or_else(|e| e.into_inner()).iter() {
        let value = read();
        match out.iter_mut().find(|s| s.name == *name) {
            Some(existing) => existing.count += value,
            None => out.push(StatSnapshot {
                name: name.to_string(),
                calls: 0,
                total_ns: 0,
                self_ns: 0,
                count: value,
            }),
        }
    }
    out.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
    out
}

/// Zero every stat (registrations are kept). Gauges are *not* reset —
/// they mirror live state owned by their provider.
pub fn reset() {
    for stat in registry().lock().unwrap_or_else(|e| e.into_inner()).iter() {
        stat.reset();
    }
}

/// The snapshot as a JSON object: `{"stats": [{"name": ..., "calls": ...,
/// "total_ns": ..., "self_ns": ..., "count": ...}, ...]}`.
///
/// Hand-rolled (this crate is dependency-free); names are code literals
/// and never need escaping beyond the basics handled here.
pub fn snapshot_json() -> String {
    let mut out = String::from("{\"stats\":[");
    for (i, s) in snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"calls\":{},\"total_ns\":{},\"self_ns\":{},\"count\":{}}}",
            json_escape(&s.name),
            s.calls,
            s.total_ns,
            s.self_ns,
            s.count
        ));
    }
    out.push_str("]}");
    out
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// The snapshot as a markdown table sorted by self-time (the format the
/// `repro --profile` reports embed).
pub fn snapshot_markdown() -> String {
    let snap = snapshot();
    let mut out = String::from("| stat | calls | total (ms) | self (ms) | count |\n|---|---|---|---|---|\n");
    for s in &snap {
        out.push_str(&format!(
            "| {} | {} | {:.3} | {:.3} | {} |\n",
            s.name,
            s.calls,
            s.total_ns as f64 / 1e6,
            s.self_ns as f64 / 1e6,
            s.count
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Telemetry state is process-global; serialise tests that toggle it.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn find(name: &str) -> Option<StatSnapshot> {
        snapshot().into_iter().find(|s| s.name == name)
    }

    #[test]
    fn disabled_by_default_records_nothing() {
        let _g = serial();
        set_enabled(false);
        reset();
        {
            let _t = scope!("test.disabled_scope");
            count!("test.disabled_count", 7);
        }
        assert!(find("test.disabled_scope").is_none());
        assert!(find("test.disabled_count").is_none());
    }

    #[test]
    fn scope_and_count_record_when_enabled() {
        let _g = serial();
        reset();
        set_enabled(true);
        {
            let _t = scope!("test.enabled_scope");
            std::thread::sleep(std::time::Duration::from_millis(2));
            count!("test.enabled_count", 3);
            count!("test.enabled_count", 4);
        }
        set_enabled(false);
        let s = find("test.enabled_scope").expect("scope recorded");
        assert_eq!(s.calls, 1);
        assert!(s.total_ns >= 2_000_000, "slept 2ms, recorded {}ns", s.total_ns);
        assert_eq!(s.total_ns, s.self_ns, "no children: total == self");
        let c = find("test.enabled_count").expect("count recorded");
        assert_eq!(c.count, 7);
        reset();
    }

    #[test]
    fn nested_scopes_split_self_time() {
        let _g = serial();
        reset();
        set_enabled(true);
        {
            let _outer = scope!("test.nest_outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = scope!("test.nest_inner");
                std::thread::sleep(std::time::Duration::from_millis(4));
            }
        }
        set_enabled(false);
        let outer = find("test.nest_outer").unwrap();
        let inner = find("test.nest_inner").unwrap();
        assert!(outer.total_ns >= inner.total_ns);
        assert!(
            outer.self_ns + inner.total_ns <= outer.total_ns + 1_000_000,
            "outer self ({}) should exclude inner total ({}) of outer total ({})",
            outer.self_ns,
            inner.total_ns,
            outer.total_ns
        );
        assert!(outer.self_ns < outer.total_ns, "inner time must be subtracted");
        reset();
    }

    #[test]
    fn sibling_scopes_accumulate_child_time() {
        let _g = serial();
        reset();
        set_enabled(true);
        {
            let _outer = scope!("test.sib_outer");
            for _ in 0..3 {
                let _inner = scope!("test.sib_inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        set_enabled(false);
        let outer = find("test.sib_outer").unwrap();
        let inner = find("test.sib_inner").unwrap();
        assert_eq!(inner.calls, 3);
        assert!(
            outer.self_ns <= outer.total_ns.saturating_sub(inner.total_ns) + 1_000_000,
            "all three siblings subtract from outer self"
        );
        reset();
    }

    #[test]
    fn counts_are_exact_across_threads() {
        let _g = serial();
        reset();
        set_enabled(true);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        count!("test.mt_count", 1);
                    }
                });
            }
        });
        set_enabled(false);
        assert_eq!(find("test.mt_count").unwrap().count, 8000);
        reset();
    }

    #[test]
    fn reset_zeroes_but_keeps_registration() {
        let _g = serial();
        set_enabled(true);
        count!("test.reset_me", 5);
        assert_eq!(find("test.reset_me").unwrap().count, 5);
        reset();
        assert!(find("test.reset_me").is_none(), "zeroed stats are hidden");
        count!("test.reset_me", 2);
        assert_eq!(find("test.reset_me").unwrap().count, 2);
        set_enabled(false);
        reset();
    }

    #[test]
    fn json_snapshot_is_parseable_shape() {
        let _g = serial();
        reset();
        set_enabled(true);
        count!("test.json_count", 1);
        {
            let _t = scope!("test.json_scope");
        }
        set_enabled(false);
        let json = snapshot_json();
        assert!(json.starts_with("{\"stats\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"test.json_count\""));
        assert!(json.contains("\"name\":\"test.json_scope\""));
        // Balanced braces/brackets — a cheap structural sanity check; the
        // bench crate parses it with serde_json for real.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        reset();
    }

    #[test]
    fn markdown_snapshot_lists_stats() {
        let _g = serial();
        reset();
        set_enabled(true);
        count!("test.md_count", 9);
        set_enabled(false);
        let md = snapshot_markdown();
        assert!(md.starts_with("| stat |"));
        assert!(md.contains("test.md_count"));
        reset();
    }

    #[test]
    fn gauges_appear_in_snapshots_and_survive_reset() {
        let _g = serial();
        reset();
        static GAUGE_VALUE: AtomicU64 = AtomicU64::new(41);
        register_gauge("test.gauge", || GAUGE_VALUE.load(Ordering::Relaxed));
        let snap = find("test.gauge").expect("gauge reported even while disabled");
        assert_eq!(snap.count, 41);
        assert_eq!(snap.calls, 0);
        GAUGE_VALUE.store(42, Ordering::Relaxed);
        reset();
        assert_eq!(find("test.gauge").unwrap().count, 42, "reset leaves gauges alone");
        assert!(snapshot_json().contains("\"name\":\"test.gauge\""));
        // Re-registering replaces the provider instead of duplicating.
        register_gauge("test.gauge", || 7);
        let snaps: Vec<_> = snapshot()
            .into_iter()
            .filter(|s| s.name == "test.gauge")
            .collect();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].count, 7);
        register_gauge("test.gauge", || 0);
        assert!(find("test.gauge").is_some(), "zero-valued gauges still listed");
    }

    #[test]
    fn dynamic_registration_works() {
        let _g = serial();
        reset();
        set_enabled(true);
        let s = register_dynamic("test.dyn.worker0".to_string());
        s.record_ns(1234);
        s.add(2);
        set_enabled(false);
        let snap = find("test.dyn.worker0").unwrap();
        assert_eq!(snap.calls, 1);
        assert_eq!(snap.total_ns, 1234);
        assert_eq!(snap.count, 2);
        reset();
    }
}
