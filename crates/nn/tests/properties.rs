//! Property-based tests for autograd and optimisation invariants.

use proptest::prelude::*;
use rand::SeedableRng;

use geotorch_nn::gradcheck::check_gradients;
use geotorch_nn::loss::{bce_with_logits_loss, cross_entropy_loss, mse_loss};
use geotorch_nn::optim::{Adam, Optimizer, Sgd};
use geotorch_nn::Var;
use geotorch_tensor::Tensor;

proptest! {
    /// d(a+b) distributes: grad of sum-of-all equals ones for both
    /// operands regardless of shapes (broadcast-compatible pairs).
    #[test]
    fn addition_gradients_are_ones(rows in 1usize..5, cols in 1usize..5, seed in 0u64..100) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Var::parameter(Tensor::rand_uniform(&[rows, cols], -1.0, 1.0, &mut rng));
        let b = Var::parameter(Tensor::rand_uniform(&[cols], -1.0, 1.0, &mut rng));
        a.add(&b).sum_all().backward();
        prop_assert_eq!(a.grad().unwrap(), Tensor::ones(&[rows, cols]));
        prop_assert_eq!(b.grad().unwrap(), Tensor::full(&[cols], rows as f32));
    }

    /// Random expression trees pass finite-difference gradient checks.
    #[test]
    fn random_expressions_gradcheck(seed in 0u64..50, depth in 1usize..4) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let w = Var::parameter(Tensor::rand_uniform(&[3, 3], 0.2, 1.0, &mut rng));
        let err = check_gradients(
            std::slice::from_ref(&w),
            |params| {
                let mut x = params[0].clone();
                for level in 0..depth {
                    x = match (seed as usize + level) % 4 {
                        0 => x.tanh(),
                        1 => x.sigmoid(),
                        2 => x.square().add_scalar(0.1).sqrt(),
                        _ => x.mul(&params[0]).add_scalar(0.5),
                    };
                }
                x.mean_all()
            },
            1e-3,
        );
        prop_assert!(err < 2e-2, "gradcheck error {err}");
    }

    /// MSE is symmetric, non-negative, and zero iff inputs match.
    #[test]
    fn mse_properties(data in prop::collection::vec(-10.0f32..10.0, 1..32)) {
        let n = data.len();
        let a = Var::constant(Tensor::from_vec(data.clone(), &[n]));
        let b = Var::constant(Tensor::from_vec(data.iter().map(|v| v + 1.0).collect(), &[n]));
        prop_assert!((mse_loss(&a, &b).value().item() - 1.0).abs() < 1e-5);
        prop_assert_eq!(mse_loss(&a, &a).value().item(), 0.0);
        let ab = mse_loss(&a, &b).value().item();
        let ba = mse_loss(&b, &a).value().item();
        prop_assert!((ab - ba).abs() < 1e-6);
    }

    /// Cross-entropy is minimised by the true class: boosting the target
    /// logit always lowers the loss.
    #[test]
    fn cross_entropy_monotone_in_target_logit(
        logits in prop::collection::vec(-3.0f32..3.0, 4),
        target in 0usize..4,
        boost in 0.1f32..3.0,
    ) {
        let base = Tensor::from_vec(logits.clone(), &[1, 4]);
        let mut boosted = logits;
        boosted[target] += boost;
        let boosted = Tensor::from_vec(boosted, &[1, 4]);
        let l0 = cross_entropy_loss(&Var::constant(base), &[target]).value().item();
        let l1 = cross_entropy_loss(&Var::constant(boosted), &[target]).value().item();
        prop_assert!(l1 < l0, "boosting the target logit must reduce CE: {l0} -> {l1}");
    }

    /// BCE-with-logits is always non-negative and finite, even at huge
    /// logits.
    #[test]
    fn bce_always_finite(
        logits in prop::collection::vec(-500.0f32..500.0, 1..16),
        flip in 0u8..2,
    ) {
        let n = logits.len();
        let y: Vec<f32> = (0..n).map(|i| ((i as u8 + flip) % 2) as f32).collect();
        let loss = bce_with_logits_loss(
            &Var::constant(Tensor::from_vec(logits, &[n])),
            &Var::constant(Tensor::from_vec(y, &[n])),
        )
        .value()
        .item();
        prop_assert!(loss.is_finite());
        prop_assert!(loss >= 0.0);
    }

    /// Both optimizers strictly decrease a convex quadratic from any
    /// start, for any reasonable learning rate.
    #[test]
    fn optimizers_descend_quadratics(start in -5.0f32..5.0, lr in 0.001f32..0.2, adam in any::<bool>()) {
        // Adam's bias-corrected step is ~lr regardless of gradient size,
        // so within ~lr of the optimum it can oscillate; require a start
        // comfortably outside that basin.
        prop_assume!(start.abs() > lr * 8.0 && start.abs() > 1e-2);
        let p = Var::parameter(Tensor::scalar(start));
        let mut opt: Box<dyn Optimizer> = if adam {
            Box::new(Adam::new(vec![p.clone()], lr))
        } else {
            Box::new(Sgd::new(vec![p.clone()], lr, 0.0))
        };
        let before = p.value().item().powi(2);
        for _ in 0..5 {
            opt.zero_grad();
            p.square().sum_all().backward();
            opt.step();
        }
        let after = p.value().item().powi(2);
        prop_assert!(after < before, "loss must drop: {before} -> {after}");
    }

    /// Backward through a shared subgraph scales linearly with fan-out:
    /// using a node k times multiplies its gradient by k.
    #[test]
    fn gradient_fanout_scaling(k in 1usize..6, value in -2.0f32..2.0) {
        let w = Var::parameter(Tensor::scalar(value));
        let mut acc = w.mul_scalar(1.0);
        for _ in 1..k {
            acc = acc.add(&w);
        }
        acc.sum_all().backward();
        prop_assert_eq!(w.grad().unwrap().item(), k as f32);
    }
}
