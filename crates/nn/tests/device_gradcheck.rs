//! Finite-difference gradient checks for MaxPool, BatchNorm2d (train and
//! eval) and ConvLSTM, run under both `Device::Cpu` and
//! `Device::Parallel(4)` so the parallel kernel paths are verified against
//! the same numeric gradients as the serial ones.

use geotorch_nn::gradcheck::assert_gradients_close;
use geotorch_nn::layers::{BatchNorm2d, ConvLstmCell, MaxPool2d};
use geotorch_nn::{Layer, Module, Var};
use geotorch_tensor::{with_device, Device, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DEVICES: [Device; 2] = [Device::Cpu, Device::Parallel(4)];

#[test]
fn maxpool_gradients_both_devices() {
    for device in DEVICES {
        with_device(device, || {
            let mut rng = StdRng::seed_from_u64(10);
            // Well-separated values keep the argmax stable under the
            // finite-difference perturbation.
            let base: Vec<f32> = (0..2 * 2 * 6 * 6).map(|i| (i * 7 % 144) as f32).collect();
            let mut x = Tensor::from_vec(base, &[2, 2, 6, 6]);
            x = x.add(&Tensor::rand_uniform(x.shape(), -0.3, 0.3, &mut rng));
            let pool = MaxPool2d::new(2, 2);
            let p = Var::parameter(x);
            assert_gradients_close(
                &[p],
                |params| pool.forward(&params[0]).square().mean_all(),
                1e-2,
                2e-2,
            );
        });
    }
}

#[test]
fn batchnorm_train_gradients_both_devices() {
    for device in DEVICES {
        with_device(device, || {
            let mut rng = StdRng::seed_from_u64(11);
            let bn = BatchNorm2d::new(2);
            let x = Var::parameter(Tensor::rand_uniform(&[3, 2, 4, 4], -1.0, 1.0, &mut rng));
            let mut params = vec![x];
            params.extend_from_slice(&bn.parameters()[..2]); // gamma, beta
            assert_gradients_close(
                &params,
                |p| bn.forward(&p[0]).square().mean_all(),
                1e-2,
                2e-2,
            );
        });
    }
}

#[test]
fn batchnorm_eval_gradients_both_devices() {
    for device in DEVICES {
        with_device(device, || {
            let mut rng = StdRng::seed_from_u64(12);
            let bn = BatchNorm2d::new(2);
            bn.set_running_stats(
                Tensor::from_vec(vec![0.3, -0.2], &[2]),
                Tensor::from_vec(vec![1.5, 0.8], &[2]),
            );
            bn.set_training(false);
            let x = Var::parameter(Tensor::rand_uniform(&[3, 2, 4, 4], -1.0, 1.0, &mut rng));
            let mut params = vec![x];
            params.extend_from_slice(&bn.parameters()[..2]);
            assert_gradients_close(
                &params,
                |p| bn.forward(&p[0]).square().mean_all(),
                1e-3,
                5e-3,
            );
        });
    }
}

#[test]
fn convlstm_gradients_both_devices() {
    for device in DEVICES {
        with_device(device, || {
            let mut rng = StdRng::seed_from_u64(13);
            let cell = ConvLstmCell::new(1, 2, 3, &mut rng);
            let x0 = Tensor::rand_uniform(&[1, 1, 4, 4], -1.0, 1.0, &mut rng);
            let x1 = Tensor::rand_uniform(&[1, 1, 4, 4], -1.0, 1.0, &mut rng);
            // Check the cell's own weights through a two-step rollout.
            let params = cell.parameters();
            assert_gradients_close(
                &params,
                |_| {
                    let (h, c) = cell.zero_state(1, 4, 4);
                    let (h, c) = cell.step(&Var::constant(x0.clone()), (&h, &c));
                    let (h, _) = cell.step(&Var::constant(x1.clone()), (&h, &c));
                    h.square().mean_all()
                },
                1e-2,
                2e-2,
            );
        });
    }
}
