//! Finite-difference gradient checks for MaxPool, BatchNorm2d (train and
//! eval), ConvLSTM and the conv2d lowerings (im2col, direct
//! large-plane 3×3/stride-1, and implicit-GEMM 1×1), run under both `Device::Cpu` and
//! `Device::Parallel(4)` so the parallel kernel paths are verified against
//! the same numeric gradients as the serial ones.

use geotorch_nn::gradcheck::assert_gradients_close;
use geotorch_nn::layers::{BatchNorm2d, Conv2d, ConvLstmCell, MaxPool2d};
use geotorch_nn::{Layer, Module, Var};
use geotorch_tensor::{with_device, Device, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DEVICES: [Device; 2] = [Device::Cpu, Device::Parallel(4)];

#[test]
fn maxpool_gradients_both_devices() {
    for device in DEVICES {
        with_device(device, || {
            let mut rng = StdRng::seed_from_u64(10);
            // Well-separated values keep the argmax stable under the
            // finite-difference perturbation.
            let base: Vec<f32> = (0..2 * 2 * 6 * 6).map(|i| (i * 7 % 144) as f32).collect();
            let mut x = Tensor::from_vec(base, &[2, 2, 6, 6]);
            x = x.add(&Tensor::rand_uniform(x.shape(), -0.3, 0.3, &mut rng));
            let pool = MaxPool2d::new(2, 2);
            let p = Var::parameter(x);
            assert_gradients_close(
                &[p],
                |params| pool.forward(&params[0]).square().mean_all(),
                1e-2,
                2e-2,
            );
        });
    }
}

#[test]
fn batchnorm_train_gradients_both_devices() {
    for device in DEVICES {
        with_device(device, || {
            let mut rng = StdRng::seed_from_u64(11);
            let bn = BatchNorm2d::new(2);
            let x = Var::parameter(Tensor::rand_uniform(&[3, 2, 4, 4], -1.0, 1.0, &mut rng));
            let mut params = vec![x];
            params.extend_from_slice(&bn.parameters()[..2]); // gamma, beta
            assert_gradients_close(
                &params,
                |p| bn.forward(&p[0]).square().mean_all(),
                1e-2,
                2e-2,
            );
        });
    }
}

#[test]
fn batchnorm_eval_gradients_both_devices() {
    for device in DEVICES {
        with_device(device, || {
            let mut rng = StdRng::seed_from_u64(12);
            let bn = BatchNorm2d::new(2);
            bn.set_running_stats(
                Tensor::from_vec(vec![0.3, -0.2], &[2]),
                Tensor::from_vec(vec![1.5, 0.8], &[2]),
            );
            bn.set_training(false);
            let x = Var::parameter(Tensor::rand_uniform(&[3, 2, 4, 4], -1.0, 1.0, &mut rng));
            let mut params = vec![x];
            params.extend_from_slice(&bn.parameters()[..2]);
            assert_gradients_close(
                &params,
                |p| bn.forward(&p[0]).square().mean_all(),
                1e-3,
                5e-3,
            );
        });
    }
}

#[test]
fn conv_3x3_stride1_gradients_both_devices() {
    // Small plane: the dispatcher routes 3×3/stride-1 through im2col +
    // blocked GEMM. Input and weights both checked.
    for device in DEVICES {
        with_device(device, || {
            let mut rng = StdRng::seed_from_u64(14);
            let conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
            let x = Var::parameter(Tensor::rand_uniform(&[2, 2, 6, 6], -1.0, 1.0, &mut rng));
            let mut params = vec![x];
            params.extend_from_slice(&conv.parameters());
            assert_gradients_close(
                &params,
                |p| conv.forward(&p[0]).square().mean_all(),
                1e-2,
                2e-2,
            );
        });
    }
}

#[test]
fn conv_direct_3x3_large_plane_gradients_both_devices() {
    // A 48×48 plane crosses DIRECT_CONV_MIN_PLANE, so the forward runs
    // the direct shift-and-axpy kernel while the backward still goes
    // through the im2col/col2im adjoints — this checks the two
    // lowerings agree as a forward/adjoint pair on both devices.
    // Weights and bias only: sweeping 48²-element inputs through
    // central differences would dwarf the suite's runtime.
    for device in DEVICES {
        with_device(device, || {
            let mut rng = StdRng::seed_from_u64(16);
            let conv = Conv2d::new(1, 2, 3, 1, 1, &mut rng);
            let x = Tensor::rand_uniform(&[1, 1, 48, 48], -1.0, 1.0, &mut rng);
            assert_gradients_close(
                &conv.parameters(),
                |_| conv.forward(&Var::constant(x.clone())).square().mean_all(),
                1e-2,
                2e-2,
            );
        });
    }
}

#[test]
fn conv_1x1_implicit_gemm_gradients_both_devices() {
    // 1×1/stride-1/no-pad routes through the zero-copy im2col reshape
    // (implicit GEMM) in both the forward and the backward pass.
    for device in DEVICES {
        with_device(device, || {
            let mut rng = StdRng::seed_from_u64(15);
            let conv = Conv2d::new(3, 2, 1, 1, 0, &mut rng);
            let x = Var::parameter(Tensor::rand_uniform(&[2, 3, 5, 5], -1.0, 1.0, &mut rng));
            let mut params = vec![x];
            params.extend_from_slice(&conv.parameters());
            assert_gradients_close(
                &params,
                |p| conv.forward(&p[0]).square().mean_all(),
                1e-2,
                2e-2,
            );
        });
    }
}

#[test]
fn convlstm_gradients_both_devices() {
    for device in DEVICES {
        with_device(device, || {
            let mut rng = StdRng::seed_from_u64(13);
            let cell = ConvLstmCell::new(1, 2, 3, &mut rng);
            let x0 = Tensor::rand_uniform(&[1, 1, 4, 4], -1.0, 1.0, &mut rng);
            let x1 = Tensor::rand_uniform(&[1, 1, 4, 4], -1.0, 1.0, &mut rng);
            // Check the cell's own weights through a two-step rollout.
            let params = cell.parameters();
            assert_gradients_close(
                &params,
                |_| {
                    let (h, c) = cell.zero_state(1, 4, 4);
                    let (h, c) = cell.step(&Var::constant(x0.clone()), (&h, &c));
                    let (h, _) = cell.step(&Var::constant(x1.clone()), (&h, &c));
                    h.square().mean_all()
                },
                1e-2,
                2e-2,
            );
        });
    }
}
