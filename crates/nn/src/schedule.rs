//! Learning-rate schedules and gradient utilities.

use geotorch_tensor::Tensor;

use crate::optim::Optimizer;
use crate::Var;

/// A learning-rate schedule: maps an epoch index to a multiplier on the
/// base learning rate.
pub trait LrSchedule {
    /// Multiplier for `epoch` (0-based).
    fn factor(&self, epoch: usize) -> f32;

    /// Apply the schedule for `epoch` to an optimizer, given its base
    /// learning rate.
    fn apply(&self, optimizer: &mut dyn Optimizer, base_lr: f32, epoch: usize) {
        optimizer.set_learning_rate(base_lr * self.factor(epoch));
    }
}

/// Multiply the learning rate by `gamma` every `step_size` epochs.
pub struct StepLr {
    step_size: usize,
    gamma: f32,
}

impl StepLr {
    /// New step schedule.
    ///
    /// # Panics
    /// If `step_size == 0` or `gamma` is not positive.
    pub fn new(step_size: usize, gamma: f32) -> StepLr {
        assert!(step_size > 0, "step_size must be positive");
        assert!(gamma > 0.0, "gamma must be positive");
        StepLr { step_size, gamma }
    }
}

impl LrSchedule for StepLr {
    fn factor(&self, epoch: usize) -> f32 {
        self.gamma.powi((epoch / self.step_size) as i32)
    }
}

/// Cosine annealing from 1 down to `min_factor` over `total_epochs`.
pub struct CosineLr {
    total_epochs: usize,
    min_factor: f32,
}

impl CosineLr {
    /// New cosine schedule.
    pub fn new(total_epochs: usize, min_factor: f32) -> CosineLr {
        assert!(total_epochs > 0, "total_epochs must be positive");
        CosineLr {
            total_epochs,
            min_factor,
        }
    }
}

impl LrSchedule for CosineLr {
    fn factor(&self, epoch: usize) -> f32 {
        let t = (epoch.min(self.total_epochs) as f32) / self.total_epochs as f32;
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
        self.min_factor + (1.0 - self.min_factor) * cos
    }
}

/// Clip the global L2 norm of the gradients on `params` to `max_norm`.
/// Returns the pre-clip norm. Parameters without gradients are skipped.
///
/// Standard recurrent-network stabiliser (ConvLSTM backprop through many
/// steps can spike).
pub fn clip_grad_norm(params: &[Var], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let mut total_sq = 0.0f64;
    for p in params {
        if let Some(g) = p.grad() {
            total_sq += g.as_slice().iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>();
        }
    }
    let norm = (total_sq as f32).sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            if let Some(g) = p.grad() {
                let clipped = g.mul_scalar(scale);
                p.zero_grad();
                // Re-seed the gradient with the clipped value.
                set_grad(p, clipped);
            }
        }
    }
    norm
}

fn set_grad(param: &Var, grad: Tensor) {
    // Accumulate into the cleared slot.
    // zero_grad left grad = None; emulate accumulation via backward-free
    // assignment by reusing the public accumulate path: create a
    // temporary graph is overkill, so Var exposes this internally.
    param.seed_grad(grad);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;

    #[test]
    fn step_lr_decays_in_steps() {
        let s = StepLr::new(10, 0.5);
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(9), 1.0);
        assert_eq!(s.factor(10), 0.5);
        assert_eq!(s.factor(25), 0.25);
    }

    #[test]
    fn cosine_lr_anneals_smoothly() {
        let s = CosineLr::new(100, 0.1);
        assert!((s.factor(0) - 1.0).abs() < 1e-6);
        assert!((s.factor(100) - 0.1).abs() < 1e-6);
        let mid = s.factor(50);
        assert!(mid > 0.1 && mid < 1.0);
        // Monotone decreasing.
        assert!(s.factor(20) > s.factor(40));
    }

    #[test]
    fn schedule_applies_to_optimizer() {
        let mut opt = Sgd::new(vec![], 0.1, 0.0);
        StepLr::new(5, 0.1).apply(&mut opt, 0.1, 7);
        assert!((opt.learning_rate() - 0.01).abs() < 1e-8);
    }

    #[test]
    fn clip_grad_norm_scales_large_gradients() {
        let p = Var::parameter(Tensor::from_vec(vec![1.0, 1.0], &[2]));
        p.mul_scalar(3.0).sum_all().backward();
        // grad = [3, 3], norm = sqrt(18) ≈ 4.24
        let norm = clip_grad_norm(std::slice::from_ref(&p), 1.0);
        assert!((norm - 18.0f32.sqrt()).abs() < 1e-4);
        let clipped = p.grad().unwrap();
        let new_norm: f32 = clipped.as_slice().iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((new_norm - 1.0).abs() < 1e-4);
    }

    #[test]
    fn clip_grad_norm_leaves_small_gradients() {
        let p = Var::parameter(Tensor::scalar(1.0));
        p.mul_scalar(0.5).sum_all().backward();
        let before = p.grad().unwrap();
        clip_grad_norm(std::slice::from_ref(&p), 10.0);
        assert_eq!(p.grad().unwrap(), before);
    }

    #[test]
    fn clip_skips_gradient_less_params() {
        let p = Var::parameter(Tensor::scalar(1.0));
        assert_eq!(clip_grad_norm(&[p], 1.0), 0.0);
    }
}
