//! # geotorch-nn
//!
//! Reverse-mode automatic differentiation, neural-network layers, loss
//! functions, and optimizers for GeoTorch-RS.
//!
//! This crate is the PyTorch-autograd substrate of the GeoTorchAI
//! reproduction. Differentiable computation is expressed over [`Var`]
//! values: each tensor operation records its inputs and a backward closure
//! on a dynamically built tape, and [`Var::backward`] walks the tape in
//! reverse topological order, accumulating gradients into every variable
//! created with [`Var::parameter`].
//!
//! ## Example: one gradient step
//!
//! ```
//! use geotorch_nn::{Var, optim::{Sgd, Optimizer}};
//! use geotorch_tensor::Tensor;
//!
//! let w = Var::parameter(Tensor::from_vec(vec![2.0], &[1]));
//! let x = Var::constant(Tensor::from_vec(vec![3.0], &[1]));
//! let loss = w.mul(&x).sub(&Var::constant(Tensor::from_vec(vec![12.0], &[1]))).square().mean_all();
//! loss.backward();
//! // d/dw (3w - 12)^2 = 2*(3w-12)*3 = -36 at w = 2
//! assert_eq!(w.grad().unwrap().as_slice(), &[-36.0]);
//!
//! let mut opt = Sgd::new(vec![w.clone()], 0.01, 0.0);
//! opt.step();
//! assert!((w.value().as_slice()[0] - 2.36).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

pub mod gradcheck;
pub mod init;
pub mod layers;
pub mod loss;
pub mod module;
pub mod ops;
pub mod optim;
pub mod schedule;
mod var;

pub use module::{Layer, Module, StateDictError};
pub use var::{is_no_grad, no_grad, Var};
