//! Module and Layer traits, mirroring `torch.nn.Module`.

use geotorch_tensor::Tensor;

use crate::Var;

/// Anything that owns trainable parameters.
///
/// Mirrors the role of `torch.nn.Module` in the paper's listings: models in
/// `geotorch-models` implement this so optimizers can collect their
/// parameters and training loops can toggle train/eval behaviour
/// (dropout, batch-norm running statistics).
pub trait Module {
    /// All trainable parameters, in a stable order.
    fn parameters(&self) -> Vec<Var>;

    /// Toggle training-mode behaviour (dropout sampling, batch-norm
    /// statistic updates). Default: no-op for stateless modules.
    fn set_training(&self, _training: bool) {}

    /// Snapshot every parameter value (for checkpointing).
    fn state_dict(&self) -> Vec<Tensor> {
        self.parameters().iter().map(|p| p.value()).collect()
    }

    /// Restore parameter values from [`Module::state_dict`] output.
    ///
    /// # Panics
    /// If the number of tensors or any shape differs.
    fn load_state_dict(&self, state: &[Tensor]) {
        let params = self.parameters();
        assert_eq!(
            params.len(),
            state.len(),
            "state dict has {} tensors, model has {} parameters",
            state.len(),
            params.len()
        );
        for (p, t) in params.iter().zip(state) {
            p.assign(t.clone());
        }
    }

    /// Total number of scalar parameters.
    fn num_parameters(&self) -> usize {
        self.parameters().iter().map(|p| p.value().len()).sum()
    }
}

/// A module with the standard one-input-one-output forward pass, usable in
/// [`crate::layers::Sequential`]. Multi-input models (e.g. ST-ResNet's
/// three temporal branches) expose their own typed `forward` instead.
pub trait Layer: Module {
    /// Apply the layer.
    fn forward(&self, input: &Var) -> Var;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Scale {
        w: Var,
    }

    impl Module for Scale {
        fn parameters(&self) -> Vec<Var> {
            vec![self.w.clone()]
        }
    }

    impl Layer for Scale {
        fn forward(&self, input: &Var) -> Var {
            input.mul(&self.w)
        }
    }

    #[test]
    fn state_dict_round_trip() {
        let m = Scale {
            w: Var::parameter(Tensor::from_vec(vec![2.0], &[1])),
        };
        let saved = m.state_dict();
        m.parameters()[0].assign(Tensor::from_vec(vec![5.0], &[1]));
        m.load_state_dict(&saved);
        assert_eq!(m.parameters()[0].value().as_slice(), &[2.0]);
        assert_eq!(m.num_parameters(), 1);
    }

    #[test]
    #[should_panic(expected = "state dict has")]
    fn load_rejects_wrong_length() {
        let m = Scale {
            w: Var::parameter(Tensor::zeros(&[1])),
        };
        m.load_state_dict(&[]);
    }
}
