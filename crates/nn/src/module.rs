//! Module and Layer traits, mirroring `torch.nn.Module`.

use geotorch_tensor::Tensor;

use crate::Var;

/// Why a state dict could not be loaded into a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateDictError {
    /// The state dict holds a different number of tensors than the model
    /// has parameters.
    CountMismatch {
        /// Parameters the model exposes.
        model: usize,
        /// Tensors the state dict holds.
        state: usize,
    },
    /// A tensor's shape does not match the corresponding parameter.
    ShapeMismatch {
        /// Position in the parameter list.
        index: usize,
        /// The model parameter's shape.
        model: Vec<usize>,
        /// The state-dict tensor's shape.
        state: Vec<usize>,
    },
}

impl std::fmt::Display for StateDictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateDictError::CountMismatch { model, state } => write!(
                f,
                "state dict has {state} tensors, model has {model} parameters"
            ),
            StateDictError::ShapeMismatch { index, model, state } => write!(
                f,
                "parameter {index}: model shape {model:?} does not match state-dict shape {state:?}"
            ),
        }
    }
}

impl std::error::Error for StateDictError {}

/// Anything that owns trainable parameters.
///
/// Mirrors the role of `torch.nn.Module` in the paper's listings: models in
/// `geotorch-models` implement this so optimizers can collect their
/// parameters and training loops can toggle train/eval behaviour
/// (dropout, batch-norm running statistics).
pub trait Module {
    /// All trainable parameters, in a stable order.
    fn parameters(&self) -> Vec<Var>;

    /// Toggle training-mode behaviour (dropout sampling, batch-norm
    /// statistic updates). Default: no-op for stateless modules.
    fn set_training(&self, _training: bool) {}

    /// Snapshot every parameter value (for checkpointing).
    fn state_dict(&self) -> Vec<Tensor> {
        self.parameters().iter().map(|p| p.value()).collect()
    }

    /// Restore parameter values from [`Module::state_dict`] output.
    ///
    /// Every shape is validated *before* anything is assigned, so a
    /// mismatched state dict (e.g. a checkpoint from a differently sized
    /// architecture) returns an error and leaves the model untouched.
    fn load_state_dict(&self, state: &[Tensor]) -> Result<(), StateDictError> {
        let params = self.parameters();
        if params.len() != state.len() {
            return Err(StateDictError::CountMismatch {
                model: params.len(),
                state: state.len(),
            });
        }
        for (index, (p, t)) in params.iter().zip(state).enumerate() {
            if p.shape() != t.shape() {
                return Err(StateDictError::ShapeMismatch {
                    index,
                    model: p.shape(),
                    state: t.shape().to_vec(),
                });
            }
        }
        for (p, t) in params.iter().zip(state) {
            p.assign(t.clone());
        }
        Ok(())
    }

    /// Total number of scalar parameters.
    fn num_parameters(&self) -> usize {
        self.parameters().iter().map(|p| p.value().len()).sum()
    }
}

/// A module with the standard one-input-one-output forward pass, usable in
/// [`crate::layers::Sequential`]. Multi-input models (e.g. ST-ResNet's
/// three temporal branches) expose their own typed `forward` instead.
pub trait Layer: Module {
    /// Apply the layer.
    fn forward(&self, input: &Var) -> Var;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Scale {
        w: Var,
    }

    impl Module for Scale {
        fn parameters(&self) -> Vec<Var> {
            vec![self.w.clone()]
        }
    }

    impl Layer for Scale {
        fn forward(&self, input: &Var) -> Var {
            input.mul(&self.w)
        }
    }

    #[test]
    fn state_dict_round_trip() {
        let m = Scale {
            w: Var::parameter(Tensor::from_vec(vec![2.0], &[1])),
        };
        let saved = m.state_dict();
        m.parameters()[0].assign(Tensor::from_vec(vec![5.0], &[1]));
        m.load_state_dict(&saved).unwrap();
        assert_eq!(m.parameters()[0].value().as_slice(), &[2.0]);
        assert_eq!(m.num_parameters(), 1);
    }

    #[test]
    fn load_rejects_wrong_length() {
        let m = Scale {
            w: Var::parameter(Tensor::zeros(&[1])),
        };
        assert_eq!(
            m.load_state_dict(&[]),
            Err(StateDictError::CountMismatch { model: 1, state: 0 })
        );
    }

    #[test]
    fn load_rejects_wrong_shape_without_mutating() {
        let m = Scale {
            w: Var::parameter(Tensor::from_vec(vec![1.0, 2.0], &[2])),
        };
        let err = m
            .load_state_dict(&[Tensor::zeros(&[3])])
            .expect_err("shape mismatch must error");
        assert_eq!(
            err,
            StateDictError::ShapeMismatch {
                index: 0,
                model: vec![2],
                state: vec![3],
            }
        );
        assert_eq!(
            m.parameters()[0].value().as_slice(),
            &[1.0, 2.0],
            "failed load must leave parameters untouched"
        );
    }
}
