//! Finite-difference gradient checking.
//!
//! Every differentiable op and layer in this crate is verified against a
//! central-difference numerical gradient. The checker drives the *same*
//! closure twice per perturbed element, so the closure must be a pure
//! function of the parameter values.

use geotorch_tensor::Tensor;

use crate::Var;

/// Compare analytic gradients against central finite differences.
///
/// `f` builds a scalar loss from the given parameters (it is invoked many
/// times with perturbed values). Returns the maximum relative error across
/// all parameter elements.
pub fn check_gradients(params: &[Var], f: impl Fn(&[Var]) -> Var, eps: f32) -> f32 {
    // Analytic pass.
    for p in params {
        p.zero_grad();
    }
    let loss = f(params);
    loss.backward();
    let analytic: Vec<Tensor> = params
        .iter()
        .map(|p| {
            p.grad()
                .unwrap_or_else(|| Tensor::zeros(&p.shape()))
        })
        .collect();

    let mut worst: f32 = 0.0;
    for (pi, p) in params.iter().enumerate() {
        let base = p.value();
        for i in 0..base.len() {
            let mut plus = base.clone();
            plus.as_mut_slice()[i] += eps;
            p.assign(plus);
            let lp = f(params).value().item();

            let mut minus = base.clone();
            minus.as_mut_slice()[i] -= eps;
            p.assign(minus);
            let lm = f(params).value().item();

            p.assign(base.clone());

            let numeric = (lp - lm) / (2.0 * eps);
            let exact = analytic[pi].as_slice()[i];
            let denom = numeric.abs().max(exact.abs()).max(1.0);
            worst = worst.max((numeric - exact).abs() / denom);
        }
    }
    worst
}

/// Assert that analytic and numeric gradients agree to within `tol`.
///
/// # Panics
/// If the worst relative error exceeds `tol`.
pub fn assert_gradients_close(params: &[Var], f: impl Fn(&[Var]) -> Var, eps: f32, tol: f32) {
    let err = check_gradients(params, f, eps);
    assert!(
        err <= tol,
        "gradient check failed: max relative error {err} > tolerance {tol}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn quadratic_gradient_checks() {
        let w = Var::parameter(Tensor::from_vec(vec![1.0, -2.0, 0.5], &[3]));
        assert_gradients_close(
            &[w],
            |p| p[0].square().sum_all(),
            1e-3,
            1e-3,
        );
    }

    #[test]
    fn composite_expression_checks() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let a = Var::parameter(Tensor::rand_uniform(&[2, 3], -1.0, 1.0, &mut rng));
        let b = Var::parameter(Tensor::rand_uniform(&[3, 2], -1.0, 1.0, &mut rng));
        assert_gradients_close(
            &[a, b],
            |p| p[0].matmul(&p[1]).tanh().square().mean_all(),
            1e-3,
            5e-3,
        );
    }

    #[test]
    fn broadcast_ops_check() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let x = Var::parameter(Tensor::rand_uniform(&[3, 4], 0.5, 1.5, &mut rng));
        let b = Var::parameter(Tensor::rand_uniform(&[4], 0.5, 1.5, &mut rng));
        assert_gradients_close(
            &[x, b],
            |p| p[0].div(&p[1]).sigmoid().sum_all(),
            1e-3,
            5e-3,
        );
    }

    #[test]
    fn conv_and_pool_check() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let x = Var::parameter(Tensor::rand_uniform(&[1, 2, 6, 6], -1.0, 1.0, &mut rng));
        let w = Var::parameter(Tensor::rand_uniform(&[3, 2, 3, 3], -0.5, 0.5, &mut rng));
        let bias = Var::parameter(Tensor::rand_uniform(&[3], -0.1, 0.1, &mut rng));
        assert_gradients_close(
            &[x, w, bias],
            |p| {
                p[0].conv2d(&p[1], Some(&p[2]), 1, 1)
                    .relu()
                    .avgpool2d(2, 2)
                    .mean_all()
            },
            1e-2,
            2e-2,
        );
    }

    #[test]
    fn conv_transpose_check() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let x = Var::parameter(Tensor::rand_uniform(&[1, 2, 4, 4], -1.0, 1.0, &mut rng));
        let w = Var::parameter(Tensor::rand_uniform(&[2, 3, 2, 2], -0.5, 0.5, &mut rng));
        let bias = Var::parameter(Tensor::rand_uniform(&[3], -0.1, 0.1, &mut rng));
        assert_gradients_close(
            &[x, w, bias],
            |p| p[0].conv_transpose2d(&p[1], Some(&p[2]), 2, 0).tanh().mean_all(),
            1e-2,
            2e-2,
        );
    }

    #[test]
    fn upsample_check() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let x = Var::parameter(Tensor::rand_uniform(&[1, 2, 3, 3], -1.0, 1.0, &mut rng));
        assert_gradients_close(
            &[x],
            |p| p[0].upsample_nearest2d(2).square().mean_all(),
            1e-3,
            5e-3,
        );
    }

    #[test]
    fn narrow_concat_check() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let x = Var::parameter(Tensor::rand_uniform(&[2, 6], -1.0, 1.0, &mut rng));
        assert_gradients_close(
            &[x],
            |p| {
                let a = p[0].narrow(1, 0, 3);
                let b = p[0].narrow(1, 3, 6);
                Var::concat(&[&a.tanh(), &b.sigmoid()], 1).square().mean_all()
            },
            1e-3,
            5e-3,
        );
    }
}
